//! Figure 4: throughput of DGEMM emulation on A100 / GH200 / RTX 5080
//! (modelled; see docs/ARCHITECTURE.md on the device-model substitution).
//!
//! Usage: `cargo run --release -p gemm-bench --bin fig4_dgemm_throughput [--csv]`

use gemm_bench::report::{print_csv, print_table, Args};
use gemm_perfmodel::{evaluation_devices, fig4_dgemm_throughput, SWEEP_NS};

fn main() {
    let args = Args::from_env();
    let mut out = std::io::stdout().lock();
    for device in evaluation_devices() {
        println!(
            "# Figure 4 — DGEMM emulation throughput (TFLOPS) on {}",
            device.name
        );
        let series = fig4_dgemm_throughput(device);
        let mut header = vec!["method".to_string()];
        header.extend(SWEEP_NS.iter().map(|n| format!("n={n}")));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut row = vec![s.label.clone()];
                row.extend(s.points.iter().map(|&(_, v)| format!("{v:.1}")));
                row
            })
            .collect();
        if args.flag("csv") {
            print_csv(&mut out, &header, &rows);
        } else {
            print_table(&mut out, &header, &rows);
        }
        println!();
    }
    println!("Expected shape (paper §5.2): emulation >> DGEMM everywhere on RTX 5080;");
    println!("on A100/GH200 DGEMM wins at n <= 2048, OS II wins for n >= 8192 with");
    println!("~1.4x at n = 16384; OS II above ozIMMU_EF at large n.");
}
