//! Ablation: the §6 "homogeneous double-double" extension — what the DD
//! fold buys over the paper's line-11 FMA fold, and what it costs.
//!
//! Usage: `cargo run --release -p gemm-bench --bin ablation_dd_fold`

use gemm_bench::report::print_table;
use gemm_dense::workload::phi_matrix_f64;
use gemm_exact::{dd_gemm, max_rel_error_vs_dd};
use ozaki2::{dgemm_dd, Mode, Ozaki2};
use std::time::Instant;

fn main() {
    let (m, n, k) = (192usize, 192, 384);
    let a = phi_matrix_f64(m, k, 0.5, 4242, 0);
    let b = phi_matrix_f64(k, n, 0.5, 4242, 1);
    let oracle = dd_gemm(&a, &b);

    let header: Vec<String> = [
        "N",
        "f64 fold err",
        "DD fold err",
        "extra bits",
        "f64 ms",
        "DD ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for nmod in [12usize, 15, 18, 20] {
        let t0 = Instant::now();
        let plain = Ozaki2::new(nmod, Mode::Fast).dgemm(&a, &b);
        let t_plain = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let dd = dgemm_dd(&a, &b, nmod, Mode::Fast);
        let t_dd = t0.elapsed().as_secs_f64() * 1e3;

        let e_plain = max_rel_error_vs_dd(&plain, &oracle).max(1e-40);
        let e_dd = dd
            .iter()
            .zip(oracle.iter())
            .map(|(g, w)| {
                let denom = w.to_f64().abs().max(1e-300);
                g.sub(*w).to_f64().abs() / denom
            })
            .fold(0.0f64, f64::max)
            .max(1e-40);
        rows.push(vec![
            nmod.to_string(),
            format!("{e_plain:.2e}"),
            format!("{e_dd:.2e}"),
            format!("{:.1}", (e_plain / e_dd).log2()),
            format!("{t_plain:.1}"),
            format!("{t_dd:.1}"),
        ]);
    }
    println!("# Ablation — line-11 FMA fold (f64 out) vs double-double fold (DD out)");
    println!("# m=n={m}, k={k}, phi=0.5");
    print_table(&mut std::io::stdout().lock(), &header, &rows);
    println!();
    println!("Reading: the f64 fold saturates at ~2^-53 (output format limit); the DD");
    println!("fold keeps improving with N until the Step-2 truncation dominates —");
    println!("the 'homogeneous double-double' extension of §6.");
}
