//! Figure 5: throughput of SGEMM emulation on A100 / GH200 / RTX 5080
//! (modelled; see docs/ARCHITECTURE.md on the device-model substitution).
//!
//! Usage: `cargo run --release -p gemm-bench --bin fig5_sgemm_throughput [--csv]`

use gemm_bench::report::{print_csv, print_table, Args};
use gemm_perfmodel::{evaluation_devices, fig5_sgemm_throughput, SWEEP_NS};

fn main() {
    let args = Args::from_env();
    let mut out = std::io::stdout().lock();
    for device in evaluation_devices() {
        println!(
            "# Figure 5 — SGEMM emulation throughput (TFLOPS) on {}",
            device.name
        );
        let series = fig5_sgemm_throughput(device);
        let mut header = vec!["method".to_string()];
        header.extend(SWEEP_NS.iter().map(|n| format!("n={n}")));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut row = vec![s.label.clone()];
                row.extend(s.points.iter().map(|&(_, v)| format!("{v:.1}")));
                row
            })
            .collect();
        if args.flag("csv") {
            print_csv(&mut out, &header, &rows);
        } else {
            print_table(&mut out, &header, &rows);
        }
        println!();
    }
    println!("Expected shape (paper §5.2): OS II-fast-{{7,8,9}} at 2.3–3.0x SGEMM on");
    println!("GH200 (128–160 TFLOPS at n = 16384), sitting between SGEMM and TF32GEMM.");
}
