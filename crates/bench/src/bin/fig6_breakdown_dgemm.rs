//! Figure 6: time breakdown of DGEMM emulation by Algorithm-1 line, in
//! fast and accurate modes, on RTX 5080 and GH200 (modelled), plus an
//! optional *measured* breakdown of this repository's CPU pipeline
//! (`--measured`), which exercises the same phase structure.
//!
//! Usage:
//!   cargo run --release -p gemm-bench --bin fig6_breakdown_dgemm
//!   cargo run --release -p gemm-bench --bin fig6_breakdown_dgemm -- --measured --size=512

use gemm_bench::report::{print_table, Args};
use gemm_dense::workload::phi_matrix_f64;
use gemm_perfmodel::{breakdown, gh200, rtx5080, Os2Input, Os2Mode};
use ozaki2::{Mode, Ozaki2};

fn main() {
    let args = Args::from_env();
    let nmod: usize = args.get("n").unwrap_or(15);
    let mut out = std::io::stdout().lock();

    for device in [rtx5080(), gh200()] {
        for (mode, label) in [(Os2Mode::Fast, "fast"), (Os2Mode::Accurate, "accurate")] {
            println!(
                "# Figure 6 — DGEMM emulation time breakdown ({label} mode, N={nmod}) on {} [modelled]",
                device.name
            );
            let bars = breakdown(device, nmod, mode, Os2Input::F64);
            let header: Vec<String> = std::iter::once("n".to_string())
                .chain(bars[0].shares.iter().map(|(l, _)| l.to_string()))
                .collect();
            let rows: Vec<Vec<String>> = bars
                .iter()
                .map(|b| {
                    std::iter::once(b.n.to_string())
                        .chain(b.shares.iter().map(|(_, f)| format!("{:.1}%", f * 100.0)))
                        .collect()
                })
                .collect();
            print_table(&mut out, &header, &rows);
            println!();
        }
    }

    if args.flag("measured") {
        let size: usize = args.get("size").unwrap_or(256);
        println!("# Measured breakdown of this repository's CPU pipeline (m=n=k={size})");
        let a = phi_matrix_f64(size, size, 0.5, 99, 0);
        let b = phi_matrix_f64(size, size, 0.5, 99, 1);
        for mode in [Mode::Fast, Mode::Accurate] {
            let (_, rep) = Ozaki2::new(nmod, mode).dgemm_with_report(&a, &b);
            let total = rep.phases.total().as_secs_f64();
            println!("mode = {:?}, total = {:.3} ms", mode, total * 1e3);
            for (label, secs) in rep.phases.as_rows() {
                println!(
                    "  {label:<22} {:>7.3} ms  ({:>4.1}%)",
                    secs * 1e3,
                    100.0 * secs / total
                );
            }
        }
    }
    println!("Expected shape (paper §5.3): conversion dominates overheads on RTX 5080");
    println!("(slow FP64); on GH200 the INT8 GEMM share grows with n; accurate mode");
    println!("adds the estimation GEMM to the scale phase.");
}
