//! Figure 2: the bit layout of the CRT weight splits `s_i1` / `s_i2`.
//!
//! Prints, for a chosen `N`, each weight `w_i = (P/p_i)·q_i` with its
//! `β_i` budget, the number of significant bits kept in `s_i1`, and the
//! shared-ulp alignment that makes `Σ s_i1·U_i` exact in FP64.
//!
//! Usage: `cargo run --release -p gemm-bench --bin fig2_constants [--n=15]`

use gemm_bench::report::{print_table, Args};
use gemm_exact::I256;
use ozaki2::constants;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n").unwrap_or(15);
    let c = constants(n);
    println!("# Figure 2 — s_i1 / s_i2 layout for N = {n}");
    println!(
        "P = 2^{:.2} (exactly {} bits)",
        c.p_big.to_f64().log2(),
        c.p_big.bits()
    );
    println!("P1 = {:e}, P2 = {:e}, P_inv = {:e}", c.p1, c.p2, c.p_inv);
    println!(
        "fast budget = 2^{:.2} per side, accurate budget = 2^{:.2}",
        c.p_fast, c.p_accu
    );
    println!();
    let header: Vec<String> = ["i", "p_i", "bits(w_i)", "beta_i", "s_i1", "s_i2", "ulp exp"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let w_bits = c.weights[i].bits();
            let ulp = I256::from_f64_exact(c.s1[i]).abs_u256().trailing_zeros();
            vec![
                (i + 1).to_string(),
                c.p[i].to_string(),
                w_bits.to_string(),
                c.beta[i].to_string(),
                format!("{:e}", c.s1[i]),
                format!("{:e}", c.s2[i]),
                ulp.to_string(),
            ]
        })
        .collect();
    print_table(&mut std::io::stdout().lock(), &header, &rows);
    println!();
    println!("All s_i1 share the common ulp (same 'ulp exp' column) — the Fig. 2 alignment.");
}
