//! INT8 engine benchmark harness: measures the blocked kernel against the
//! seed scalar kernel, the fused vectorized convert phase against the PR 1
//! scalar convert, and records GEMM GOPS, convert throughput, and the
//! per-phase shares of a representative emulated DGEMM to
//! `BENCH_int8.json`, giving future PRs a perf trajectory.
//!
//! Usage: `cargo run --release -p gemm_bench --bin bench_int8 --
//! [--n=1024] [--reps=3] [--out=BENCH_int8.json]`

use gemm_bench::report::Args;
use gemm_dense::workload::phi_matrix_f64;
use gemm_engine::{
    int8_gemm_blocked, int8_gemm_blocked_seq, int8_gemm_rm_cm_scalar, microkernel_name,
    padded_a_rows, padded_depth, Int8Workspace,
};
use ozaki2::convert::{convert_kernel_name, convert_pack_panels, rmod_to_i8, steps_for};
use ozaki2::scale::{fast_scale_rows, scale_trunc_a_rowmajor};
use ozaki2::{constants, Mode, Ozaki2, Workspace};
use std::io::Write;
use std::time::Instant;

fn pattern_vec(len: usize, salt: usize) -> Vec<i8> {
    (0..len)
        .map(|i| (((i * 31 + salt) % 255) as i16 - 127) as i8)
        .collect()
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n").unwrap_or(1024);
    let reps: usize = args.get("reps").unwrap_or(3);
    let out_path: String = args.get("out").unwrap_or_else(|| "BENCH_int8.json".into());
    let gops = |secs: f64| 2.0 * (n * n * n) as f64 / secs / 1e9;

    let a = pattern_vec(n * n, 1);
    let b = pattern_vec(n * n, 2);
    let mut c_blocked = vec![0i32; n * n];
    let mut c_scalar = vec![0i32; n * n];
    let mut ws = Int8Workspace::new();

    let t_seq = time_best(reps, || {
        int8_gemm_blocked_seq(n, n, n, &a, &b, &mut c_blocked, &mut ws)
    });
    let t_par = time_best(reps, || {
        int8_gemm_blocked(n, n, n, &a, &b, &mut c_blocked, &mut ws)
    });
    let t_scalar = time_best(reps, || {
        int8_gemm_rm_cm_scalar(n, n, n, &a, &b, &mut c_scalar)
    });
    assert_eq!(c_blocked, c_scalar, "kernels must agree bit-for-bit");
    let speedup = t_scalar / t_seq;

    // Convert phase (Algorithm 1 lines 4-5): the PR 1 scalar per-plane
    // sweep vs the fused vectorized convert->pack, both single-threaded on
    // realistic truncated operand data at N = 15. The baseline replicates
    // residue_planes' per-element kernel in a plain sequential loop so the
    // "1T" label holds on any core count (residue_planes itself is
    // rayon-parallel).
    let nmod = 15usize;
    let consts = constants(nmod);
    let ca = phi_matrix_f64(n, n, 0.5, 7, 0);
    let exps = fast_scale_rows(&ca, consts.p_fast);
    let mut src = vec![0f64; n * n];
    scale_trunc_a_rowmajor(&ca, &exps, &mut src);
    let mut planes8 = vec![0i8; nmod * n * n];
    let steps = steps_for(nmod, true);
    let t_conv_scalar = time_best(reps, || {
        for (s, plane) in planes8.chunks_exact_mut(n * n).enumerate() {
            for (d, &x) in plane.iter_mut().zip(&src) {
                *d = rmod_to_i8(
                    x,
                    consts.p_f64[s],
                    consts.p_f32[s],
                    consts.p_inv_f64[s],
                    consts.p_inv_f32[s],
                    steps,
                );
            }
        }
    });
    let n_pad = padded_a_rows(n);
    let kp = padded_depth(n);
    let mut panels = vec![0i16; nmod * n_pad * kp];
    let t_conv_fused = time_best(reps, || {
        convert_pack_panels(&src, n, n_pad, n, kp, consts, true, false, &mut panels)
    });
    // Residues emitted per second (each one rmod of an f64), in G/s.
    let gres = |secs: f64| (nmod * n * n) as f64 / secs / 1e9;
    let conv_speedup = t_conv_scalar / t_conv_fused;

    // Per-phase shares of a representative emulated DGEMM (N = 15, the
    // paper's DGEMM-accuracy setting), reusing a pipeline workspace so the
    // shares reflect the steady state.
    let pn = n.min(512); // keep the pipeline problem moderate
    let pa = phi_matrix_f64(pn, pn, 0.5, 42, 0);
    let pb = phi_matrix_f64(pn, pn, 0.5, 42, 1);
    let emu = Ozaki2::new(15, Mode::Fast);
    let mut pws = Workspace::new();
    let _ = emu.try_dgemm_with_report_ws(&pa, &pb, &mut pws).unwrap();
    let (_, report) = emu.try_dgemm_with_report_ws(&pa, &pb, &mut pws).unwrap();
    let total = report.phases.total().as_secs_f64().max(1e-12);
    let phase_rows = report.phases.as_rows();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"shape\": [{n}, {n}, {n}],\n"));
    json.push_str(&format!("  \"microkernel\": \"{}\",\n", microkernel_name()));
    json.push_str(&format!(
        "  \"scalar_seed_gops\": {:.3},\n  \"blocked_1t_gops\": {:.3},\n  \"blocked_gops\": {:.3},\n",
        gops(t_scalar),
        gops(t_seq),
        gops(t_par)
    ));
    json.push_str(&format!("  \"speedup_1t_vs_scalar\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"convert\": {{\n    \"shape\": [{n}, {n}],\n    \"n_moduli\": {nmod},\n    \"kernel\": \"{}\",\n    \"scalar_pr1_gres_per_s\": {:.3},\n    \"fused_1t_gres_per_s\": {:.3},\n    \"speedup_1t\": {conv_speedup:.3}\n  }},\n",
        convert_kernel_name(),
        gres(t_conv_scalar),
        gres(t_conv_fused)
    ));
    json.push_str(&format!(
        "  \"pipeline\": {{\n    \"shape\": [{pn}, {pn}, {pn}],\n    \"n_moduli\": {},\n    \"mode\": \"{}\",\n    \"int8_gemm_calls\": {},\n    \"phase_seconds\": {{\n",
        report.n_moduli,
        report.mode.label(),
        report.int8_gemm_calls
    ));
    for (i, (label, secs)) in phase_rows.iter().enumerate() {
        let comma = if i + 1 < phase_rows.len() { "," } else { "" };
        json.push_str(&format!("      \"{label}\": {secs:.6}{comma}\n"));
    }
    json.push_str("    },\n    \"phase_shares\": {\n");
    for (i, (label, secs)) in phase_rows.iter().enumerate() {
        let comma = if i + 1 < phase_rows.len() { "," } else { "" };
        json.push_str(&format!("      \"{label}\": {:.4}{comma}\n", secs / total));
    }
    json.push_str("    }\n  }\n}\n");

    std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    println!(
        "int8 engine @ {n}x{n}x{n} (microkernel: {})",
        microkernel_name()
    );
    println!(
        "  scalar seed : {:8.2} GOPS\n  blocked 1T  : {:8.2} GOPS\n  blocked     : {:8.2} GOPS\n  1T speedup  : {speedup:8.2}x",
        gops(t_scalar),
        gops(t_seq),
        gops(t_par)
    );
    println!(
        "convert lines 4-5 @ {n}x{n}, N={nmod} (kernel: {})",
        convert_kernel_name()
    );
    println!(
        "  PR1 scalar  : {:8.2} Gres/s\n  fused 1T    : {:8.2} Gres/s\n  1T speedup  : {conv_speedup:8.2}x",
        gres(t_conv_scalar),
        gres(t_conv_fused)
    );
    println!("wrote {out_path}");
}
