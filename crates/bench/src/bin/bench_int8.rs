//! INT8 engine benchmark harness: measures the blocked kernel against the
//! seed scalar kernel, the fused vectorized convert phase against the PR 1
//! scalar convert, the vectorized trunc and CRT fold against their PR 2
//! scalar forms, and records GEMM GOPS, per-stage throughput, and the
//! per-phase shares of a representative emulated DGEMM to
//! `BENCH_int8.json`, giving future PRs a perf trajectory.
//!
//! The `batched` section drives the `gemm_batch` runtime against the
//! naive sequential per-item loop on the two scheduler regimes (a
//! shared-operand 64³ x 256 service batch and a compute-bound 256³ x 16
//! batch), recording items/s and the speedup, after asserting the batched
//! results bit-identical to the loop's.
//!
//! `--workers=N` sizes the work-stealing pool for the run (same knob as
//! `OZAKI_WORKERS`); the report records the configured pool width, the
//! host's physical core count, and the shared-operand batch's scaling
//! ratio vs a 1-worker run of the same pool, so the numbers stay honest
//! on single-core runners where configured workers > physical cores.
//!
//! With `--check-against=<baseline.json>` the run doubles as the CI
//! perf-regression gate: the freshly measured int8 GOPS, convert
//! throughput, end-to-end pipeline time, batched speedups and the
//! worker-scaling ratio are compared against the checked-in baseline and
//! the process exits non-zero when any of them regresses past
//! `--tolerance` (default 0.8). Best-of-reps measurement on both sides
//! keeps the gate noise-tolerant.
//!
//! Usage: `cargo run --release -p gemm_bench --bin bench_int8 --
//! [--n=1024] [--reps=3] [--workers=2] [--out=BENCH_int8.json]
//! [--check-against=BENCH_baseline.json] [--tolerance=0.8]
//! [--check-metric=end_to_end_ms,...]`
//!
//! `--check-metric` restricts the gate to a comma-separated subset of
//! metric names, for jobs that gate one deliberately chosen number
//! rather than the full panel. The report always carries an
//! `obs_overhead` section — the steady-state pipeline timed with the
//! `gemm_obs` gate armed vs disabled, interleaved in-process like the
//! ABFT comparison (CI's obs job holds it to 3%) — and with
//! `OZAKI_OBS=1` an `obs` section read straight from the `gemm_obs`
//! registry.

use gemm_batch::{BatchedOzaki2, StridedBatchF64};
use gemm_bench::check::{check_regressions, json_number, json_string, GateMetric};
use gemm_bench::report::Args;
use gemm_dense::workload::phi_matrix_f64;
use gemm_dense::{MatF64, Matrix};
use gemm_engine::{
    int8_gemm_blocked, int8_gemm_blocked_seq, int8_gemm_rm_cm_scalar, microkernel_name,
    mod_kernel_name, padded_a_rows, padded_depth, Int8Workspace,
};
use ozaki2::accumulate::{fold_kernel_name, fold_planes, FoldPrecision};
use ozaki2::convert::{convert_kernel_name, convert_pack_panels, rmod_to_i8, steps_for};
use ozaki2::scale::{fast_scale_rows, scale_by_pow2, scale_trunc_a_rowmajor, trunc_kernel_name};
use ozaki2::{
    choose_n_for, constants, Accuracy, BackendKind, FaultPolicy, GemmArgs, GemmOp, Mode, Ozaki2,
    Workspace,
};
use std::io::Write;
use std::time::Instant;

fn pattern_vec(len: usize, salt: usize) -> Vec<i8> {
    (0..len)
        .map(|i| (((i * 31 + salt) % 255) as i16 - 127) as i8)
        .collect()
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n").unwrap_or(1024);
    let reps: usize = args.get("reps").unwrap_or(3);
    let out_path: String = args.get("out").unwrap_or_else(|| "BENCH_int8.json".into());
    if let Some(w) = args.get::<usize>("workers") {
        rayon::set_num_threads(w);
    }
    let gops = |secs: f64| 2.0 * (n * n * n) as f64 / secs / 1e9;

    let a = pattern_vec(n * n, 1);
    let b = pattern_vec(n * n, 2);
    let mut c_blocked = vec![0i32; n * n];
    let mut c_scalar = vec![0i32; n * n];
    let mut ws = Int8Workspace::new();

    let t_seq = time_best(reps, || {
        int8_gemm_blocked_seq(n, n, n, &a, &b, &mut c_blocked, &mut ws)
    });
    let t_par = time_best(reps, || {
        int8_gemm_blocked(n, n, n, &a, &b, &mut c_blocked, &mut ws)
    });
    let t_scalar = time_best(reps, || {
        int8_gemm_rm_cm_scalar(n, n, n, &a, &b, &mut c_scalar)
    });
    assert_eq!(c_blocked, c_scalar, "kernels must agree bit-for-bit");
    let speedup = t_scalar / t_seq;

    // Trunc phase (Algorithm 1 lines 2-3): the PR 2 per-element
    // scale_by_pow2 tile loop vs the vectorized strunc kernel (which the
    // fused pipeline sweep also runs), both single-threaded.
    let nmod = 15usize;
    let consts = constants(nmod);
    let ca = phi_matrix_f64(n, n, 0.5, 7, 0);
    let exps = fast_scale_rows(&ca, consts.p_fast);
    let mut src = vec![0f64; n * n];
    let t_trunc_scalar = time_best(reps, || {
        // PR 2 kernel: cache-blocked transpose with one powi per element.
        const TILE: usize = 64;
        let a_data = ca.as_slice();
        for j0 in (0..n).step_by(TILE) {
            let j1 = (j0 + TILE).min(n);
            for i0 in (0..n).step_by(TILE) {
                let i1 = (i0 + TILE).min(n);
                for j in j0..j1 {
                    let col = &a_data[j * n..(j + 1) * n];
                    for i in i0..i1 {
                        src[i * n + j] = scale_by_pow2(col[i], exps[i]).trunc();
                    }
                }
            }
        }
    });
    let t_trunc_vec = time_best(reps, || scale_trunc_a_rowmajor(&ca, &exps, &mut src));
    let gelem = |secs: f64| (n * n) as f64 / secs / 1e9;
    let trunc_speedup = t_trunc_scalar / t_trunc_vec;

    // Convert phase (Algorithm 1 lines 4-5): the PR 1 scalar per-plane
    // sweep vs the fused vectorized convert->pack, both single-threaded on
    // realistic truncated operand data at N = 15. The baseline replicates
    // residue_planes' per-element kernel in a plain sequential loop so the
    // "1T" label holds on any core count (residue_planes itself is
    // rayon-parallel).
    let mut planes8 = vec![0i8; nmod * n * n];
    let steps = steps_for(nmod, true);
    let t_conv_scalar = time_best(reps, || {
        for (s, plane) in planes8.chunks_exact_mut(n * n).enumerate() {
            for (d, &x) in plane.iter_mut().zip(&src) {
                *d = rmod_to_i8(
                    x,
                    consts.p_f64[s],
                    consts.p_f32[s],
                    consts.p_inv_f64[s],
                    consts.p_inv_f32[s],
                    steps,
                );
            }
        }
    });
    let n_pad = padded_a_rows(n);
    let kp = padded_depth(n);
    let mut panels = vec![0i16; nmod * n_pad * kp];
    let t_conv_fused = time_best(reps, || {
        convert_pack_panels(&src, n, n_pad, n, kp, consts, true, false, &mut panels)
    });
    // Residues emitted per second (each one rmod of an f64), in G/s.
    let gres = |secs: f64| (nmod * n * n) as f64 / secs / 1e9;
    let conv_speedup = t_conv_scalar / t_conv_fused;

    // Fold phase (Algorithm 1 lines 8-12): the PR 2 scalar per-element
    // fold (mul+add weights, ties-away round, one powi per element) vs the
    // vectorized FMA fold, over synthetic residue planes at N = 15.
    let mut useed = 0x2545f491_4f6cdd1du64;
    let u: Vec<u8> = (0..nmod * n * n)
        .map(|i| {
            useed = useed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((useed >> 33) % consts.p[i / (n * n)]) as u8
        })
        .collect();
    let mut fold_out = vec![0f64; n * n];
    let (s1w, s2w) = (&consts.s1, &consts.s2);
    let (p1, p2, p_inv) = (consts.p1, consts.p2, consts.p_inv);
    let t_fold_scalar = time_best(reps, || {
        for j in 0..n {
            let neg_eb = -exps[j];
            for (i, &ei) in exps.iter().enumerate() {
                let idx = j * n + i;
                let mut c1 = 0.0f64;
                let mut c2 = 0.0f64;
                for s in 0..nmod {
                    let us = u[s * n * n + idx] as f64;
                    c1 += s1w[s] * us;
                    c2 += s2w[s] * us;
                }
                let q = (p_inv * c1).round();
                let t = q.mul_add(-p1, c1) + c2;
                let cpp = q.mul_add(-p2, t);
                fold_out[idx] = scale_by_pow2(cpp, neg_eb - ei);
            }
        }
    });
    let t_fold_vec = time_best(reps, || {
        fold_planes(
            &u,
            n,
            n,
            consts,
            FoldPrecision::Double,
            &exps,
            &exps,
            &mut fold_out,
        )
    });
    let fold_speedup = t_fold_scalar / t_fold_vec;

    // Batched runtime (crates/batch): throughput of many-GEMM serving vs
    // the naive sequential per-item loop, on both scheduler regimes.
    //  * shared64: 64^3 x 256 items with one broadcast B — the
    //    weight-stationary service batch (inter-item schedule, cached B,
    //    pooled workspaces, raw-A conversion into reused panels);
    //  * large256: 256^3 x 16 items — compute-bound (intra-item stripes,
    //    pooled workspaces).
    // Results are asserted bit-identical to the naive loop before timing
    // counts for anything.
    let bench_batched = |bs: usize, count: usize| -> (f64, f64) {
        let bb = phi_matrix_f64(bs, bs, 0.5, 17, 1);
        let a_mats: Vec<MatF64> = (0..count)
            .map(|i| phi_matrix_f64(bs, bs, 0.5, 100 + i as u64, 0))
            .collect();
        let mut a_data = Vec::with_capacity(count * bs * bs);
        for a in &a_mats {
            a_data.extend_from_slice(a.as_slice());
        }
        let emu = Ozaki2::new(nmod, Mode::Fast);
        let mut naive_out: Vec<MatF64> = Vec::new();
        let t_naive = time_best(reps, || {
            naive_out = a_mats.iter().map(|a| emu.dgemm(a, &bb)).collect();
        });
        let runtime = BatchedOzaki2::new(nmod, Mode::Fast);
        let a_batch = StridedBatchF64::packed(&a_data, bs, bs, count);
        let b_batch = StridedBatchF64::broadcast(&bb, count);
        let mut outs: Vec<MatF64> = (0..count).map(|_| Matrix::zeros(bs, bs)).collect();
        let t_batched = time_best(reps, || {
            runtime
                .try_dgemm_batched_into(&a_batch, &b_batch, &mut outs)
                .expect("batched run");
        });
        assert_eq!(outs, naive_out, "batched must stay bit-identical");
        (count as f64 / t_batched, t_naive / t_batched)
    };
    // Worker scaling: the shared-operand batch once on a degenerate
    // 1-worker pool, then on the configured pool. The ratio isolates what
    // the work-stealing pool itself buys (inter-item overlap) from what
    // caching + pooling buy (present in both runs). On a host with fewer
    // physical cores than configured workers the ratio honestly hovers
    // near 1.0 — the report records both numbers so nobody mistakes pool
    // width for hardware parallelism.
    let workers = rayon::current_num_threads();
    rayon::set_num_threads(1);
    let (shared64_w1_items_per_s, _) = bench_batched(64, 256);
    rayon::set_num_threads(workers);
    let (shared64_items_per_s, shared64_speedup) = bench_batched(64, 256);
    let (large256_items_per_s, large256_speedup) = bench_batched(256, 16);
    let shared64_scaling = shared64_items_per_s / shared64_w1_items_per_s;
    let physical_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Per-phase shares of a representative emulated DGEMM (N = 15, the
    // paper's DGEMM-accuracy setting), reusing a pipeline workspace so the
    // shares reflect the steady state. Best-of-reps end-to-end wall time
    // feeds the perf gate.
    let pn = n.min(512); // keep the pipeline problem moderate
    let pa = phi_matrix_f64(pn, pn, 0.5, 42, 0);
    let pb = phi_matrix_f64(pn, pn, 0.5, 42, 1);
    let emu = Ozaki2::new(15, Mode::Fast);
    let mut pws = Workspace::new();
    let mut report = None;
    let t_pipeline = time_best(reps, || {
        let (_, rep) = emu.try_dgemm_with_report_ws(&pa, &pb, &mut pws).unwrap();
        report = Some(rep);
    });
    let report = report.expect("pipeline ran");
    let end_to_end_ms = t_pipeline * 1e3;
    let total = report.phases.total().as_secs_f64().max(1e-12);
    let phase_rows = report.phases.as_rows();

    // Observability overhead: the same steady-state pipeline with the
    // gemm_obs gate toggled in-process, interleaved rep-by-rep like the
    // ABFT comparison below so clock/thermal drift hits both minima
    // equally. This is the number CI's obs job holds to 3%: an
    // instrumented and a clean run in *separate processes* would gate on
    // shared-runner drift (easily 10%+) instead of on instrumentation
    // cost.
    let obs_was_enabled = gemm_obs::enabled();
    let (mut t_obs_off, mut t_obs_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..=reps {
        gemm_obs::set_enabled(false);
        let t0 = Instant::now();
        let _ = emu.try_dgemm_with_report_ws(&pa, &pb, &mut pws).unwrap();
        t_obs_off = t_obs_off.min(t0.elapsed().as_secs_f64());
        gemm_obs::set_enabled(true);
        let t0 = Instant::now();
        let _ = emu.try_dgemm_with_report_ws(&pa, &pb, &mut pws).unwrap();
        t_obs_on = t_obs_on.min(t0.elapsed().as_secs_f64());
    }
    gemm_obs::set_enabled(obs_was_enabled);
    let obs_overhead_pct = (t_obs_on / t_obs_off - 1.0) * 100.0;

    // ABFT overhead: the same steady-state pipeline with per-plane
    // checksum verification armed (FaultPolicy::Detect) vs explicitly
    // unprotected, through the facade with per-call policies so the
    // comparison is immune to any OZAKI_FAULT_POLICY in the environment.
    // A clean Detect run must stay bit-identical to the Off run before
    // the timing counts for anything.
    let mut c_off = MatF64::zeros(pn, pn);
    let mut c_det = MatF64::zeros(pn, pn);
    // The two policies interleave rep-by-rep so clock/thermal drift hits
    // both minima equally — the overhead is a ratio, and sequential
    // blocks let drift masquerade as (or hide) checksum cost.
    let (mut t_abft_off, mut t_abft_det) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..=reps {
        let t0 = Instant::now();
        emu.gemm_into(
            GemmArgs::new(&pa, &pb)
                .fault_policy(FaultPolicy::Off)
                .workspace(&mut pws),
            c_off.view_mut(),
        )
        .expect("unprotected run");
        t_abft_off = t_abft_off.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        emu.gemm_into(
            GemmArgs::new(&pa, &pb)
                .fault_policy(FaultPolicy::Detect)
                .workspace(&mut pws),
            c_det.view_mut(),
        )
        .expect("detect run");
        t_abft_det = t_abft_det.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(c_det, c_off, "clean ABFT run must stay bit-identical");
    let abft_overhead_pct = (t_abft_det / t_abft_off - 1.0) * 100.0;

    // BLAS-surface transposed operand: C = A · Bᵀ at pn³ via the view
    // facade (zero-copy transpose flip) vs the historical materialize
    // path (owned transpose copy fed to the plain pipeline). Bitwise
    // equality is asserted before the timing counts for anything.
    let bt = phi_matrix_f64(pn, pn, 0.5, 43, 1); // stored as Bᵀ (n x k)
    let mut c_mat = MatF64::zeros(pn, pn);
    let mut c_view = MatF64::zeros(pn, pn);
    // The two paths interleave rep-by-rep (same technique as the ABFT and
    // obs-overhead ratios): the gated metric is their ratio, and two
    // sequential best-of blocks let clock/thermal/box drift land on one
    // side only — which is exactly how PR 9 reproduced a phantom
    // 0.94-vs-1.19 "regression" on an unchanged build.
    let (mut t_blas_mat, mut t_blas_view) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..=reps {
        let t0 = Instant::now();
        let b_eff = bt.transpose();
        emu.try_dgemm_into_ws(&pa, &b_eff, &mut c_mat, &mut pws)
            .expect("materialize path");
        t_blas_mat = t_blas_mat.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        emu.gemm_into(
            GemmArgs::new(&pa, &bt)
                .trans_b(GemmOp::T)
                .workspace(&mut pws),
            c_view.view_mut(),
        )
        .expect("view path");
        t_blas_view = t_blas_view.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(c_view, c_mat, "view path must stay bit-identical");
    let blas_view_speedup = t_blas_mat / t_blas_view;

    // Residue backends head-to-head at pn³: each engine runs the emulated
    // DGEMM on its *own* pool resolved for the same 2^-20 target (N is not
    // transferable between pools — the bf16-FMA planes carry fewer bits),
    // so the numbers compare what a user actually gets at equal accuracy.
    // Effective GOPS counts the emulated product's 2·pn³ flops, not the
    // engine-plane ops.
    let backend_target = 2f64.powi(-20);
    let pgops = |secs: f64| 2.0 * (pn * pn * pn) as f64 / secs / 1e9;
    let mut backend_rows: Vec<(&'static str, usize, f64)> = Vec::new();
    for kind in [BackendKind::Int8, BackendKind::FmaBf16] {
        let n_b =
            choose_n_for(kind, backend_target, pn, false).expect("both pools reach 2^-20 at pn");
        let emu_b = Ozaki2::new(n_b, Mode::Fast).with_backend(kind);
        let mut ws_b = Workspace::new();
        let mut c_b = MatF64::zeros(pn, pn);
        let t_b = time_best(reps, || {
            emu_b
                .try_dgemm_into_ws(&pa, &pb, &mut c_b, &mut ws_b)
                .expect("backend run");
        });
        backend_rows.push((kind.as_str(), n_b, t_b));
    }
    // Fast-inference mode: the low-moduli builder preset on the default
    // INT8 pool. Throughput is reported next to the *predicted* normwise
    // error bound the report carries, so the accuracy price of the speed
    // is on the same page as the speed.
    let emu_fi = Ozaki2::builder()
        .accuracy(Accuracy::FastInference)
        .k(pn)
        .build()
        .expect("fast-inference resolves on the int8 pool");
    let mut ws_fi = Workspace::new();
    let mut fi_report = None;
    let t_fi = time_best(reps, || {
        let (_, rep) = emu_fi
            .try_dgemm_with_report_ws(&pa, &pb, &mut ws_fi)
            .expect("fast-inference run");
        fi_report = Some(rep);
    });
    let fi_report = fi_report.expect("fast-inference ran");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"shape\": [{n}, {n}, {n}],\n"));
    json.push_str(&format!("  \"microkernel\": \"{}\",\n", microkernel_name()));
    json.push_str(&format!("  \"mod_kernel\": \"{}\",\n", mod_kernel_name()));
    json.push_str(&format!(
        "  \"scalar_seed_gops\": {:.3},\n  \"blocked_1t_gops\": {:.3},\n  \"blocked_gops\": {:.3},\n",
        gops(t_scalar),
        gops(t_seq),
        gops(t_par)
    ));
    json.push_str(&format!("  \"speedup_1t_vs_scalar\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"trunc\": {{\n    \"shape\": [{n}, {n}],\n    \"kernel\": \"{}\",\n    \"scalar_pr2_gelem_per_s\": {:.3},\n    \"vectorized_1t_gelem_per_s\": {:.3},\n    \"speedup_1t\": {trunc_speedup:.3}\n  }},\n",
        trunc_kernel_name(),
        gelem(t_trunc_scalar),
        gelem(t_trunc_vec)
    ));
    json.push_str(&format!(
        "  \"convert\": {{\n    \"shape\": [{n}, {n}],\n    \"n_moduli\": {nmod},\n    \"kernel\": \"{}\",\n    \"scalar_pr1_gres_per_s\": {:.3},\n    \"fused_1t_gres_per_s\": {:.3},\n    \"speedup_1t\": {conv_speedup:.3}\n  }},\n",
        convert_kernel_name(),
        gres(t_conv_scalar),
        gres(t_conv_fused)
    ));
    json.push_str(&format!(
        "  \"fold\": {{\n    \"shape\": [{n}, {n}],\n    \"n_moduli\": {nmod},\n    \"kernel\": \"{}\",\n    \"scalar_pr2_gres_per_s\": {:.3},\n    \"vectorized_gres_per_s\": {:.3},\n    \"speedup\": {fold_speedup:.3}\n  }},\n",
        fold_kernel_name(),
        gres(t_fold_scalar),
        gres(t_fold_vec)
    ));
    // `workers` is the configured pool width (`--workers`/`OZAKI_WORKERS`
    // or the machine default), `physical_cores` what the host actually
    // has; the scaling ratio compares the same pool at W=1 so the two can
    // be read together. On a single-core host the inter-item schedule
    // cannot overlap items (scaling ~1.0) and the shared-operand speedup
    // reflects caching + pooling + per-call overhead removal; with real
    // cores the small-item case additionally scales with W.
    json.push_str(&format!(
        "  \"batched\": {{\n    \"n_moduli\": {nmod},\n    \"workers\": {workers},\n    \"physical_cores\": {physical_cores},\n    \"shared64\": {{\n      \"shape\": [64, 64, 64],\n      \"items\": 256,\n      \"shared64_1worker_items_per_s\": {shared64_w1_items_per_s:.3},\n      \"shared64_items_per_s\": {shared64_items_per_s:.3},\n      \"shared64_scaling_vs_1worker\": {shared64_scaling:.3},\n      \"shared64_speedup_vs_naive\": {shared64_speedup:.3}\n    }},\n    \"large256\": {{\n      \"shape\": [256, 256, 256],\n      \"items\": 16,\n      \"large256_items_per_s\": {large256_items_per_s:.3},\n      \"large256_speedup_vs_naive\": {large256_speedup:.3}\n    }}\n  }},\n"
    ));
    json.push_str(&format!(
        "  \"blas_view\": {{\n    \"shape\": [{pn}, {pn}, {pn}],\n    \"n_moduli\": 15,\n    \"transposed_b_materialize_ms\": {:.3},\n    \"transposed_b_view_ms\": {:.3},\n    \"blas_view_speedup_vs_materialize\": {blas_view_speedup:.3}\n  }},\n",
        t_blas_mat * 1e3,
        t_blas_view * 1e3
    ));
    {
        let (_, n_i8, t_i8) = backend_rows[0];
        let (_, n_fma, t_fma) = backend_rows[1];
        json.push_str(&format!(
            "  \"backends\": {{\n    \"shape\": [{pn}, {pn}, {pn}],\n    \"target\": {backend_target:e},\n    \"int8\": {{\n      \"n_moduli\": {n_i8},\n      \"backend_int8_e2e_ms\": {:.3},\n      \"backend_int8_gops\": {:.3}\n    }},\n    \"fma_bf16\": {{\n      \"n_moduli\": {n_fma},\n      \"backend_fma_bf16_e2e_ms\": {:.3},\n      \"backend_fma_bf16_gops\": {:.3}\n    }},\n    \"fast_inference\": {{\n      \"backend\": \"{}\",\n      \"n_moduli\": {},\n      \"fast_inference_e2e_ms\": {:.3},\n      \"fast_inference_gops\": {:.3},\n      \"fast_inference_predicted_error\": {:e}\n    }}\n  }},\n",
            t_i8 * 1e3,
            pgops(t_i8),
            t_fma * 1e3,
            pgops(t_fma),
            fi_report.backend.as_str(),
            fi_report.n_moduli,
            t_fi * 1e3,
            pgops(t_fi),
            fi_report.predicted_error
        ));
    }
    json.push_str(&format!(
        "  \"obs_overhead\": {{\n    \"shape\": [{pn}, {pn}, {pn}],\n    \"n_moduli\": 15,\n    \"obs_off_ms\": {:.3},\n    \"obs_on_ms\": {:.3},\n    \"obs_overhead_pct\": {obs_overhead_pct:.2}\n  }},\n",
        t_obs_off * 1e3,
        t_obs_on * 1e3
    ));
    json.push_str(&format!(
        "  \"abft\": {{\n    \"shape\": [{pn}, {pn}, {pn}],\n    \"n_moduli\": 15,\n    \"policy\": \"detect\",\n    \"abft_off_ms\": {:.3},\n    \"abft_detect_ms\": {:.3},\n    \"abft_overhead_pct\": {abft_overhead_pct:.2}\n  }},\n",
        t_abft_off * 1e3,
        t_abft_det * 1e3
    ));
    json.push_str(&format!(
        "  \"pipeline\": {{\n    \"shape\": [{pn}, {pn}, {pn}],\n    \"n_moduli\": {},\n    \"mode\": \"{}\",\n    \"int8_gemm_calls\": {},\n    \"end_to_end_ms\": {end_to_end_ms:.3},\n    \"phase_seconds\": {{\n",
        report.n_moduli,
        report.mode.label(),
        report.int8_gemm_calls
    ));
    for (i, (label, secs)) in phase_rows.iter().enumerate() {
        let comma = if i + 1 < phase_rows.len() { "," } else { "" };
        json.push_str(&format!("      \"{label}\": {secs:.6}{comma}\n"));
    }
    json.push_str("    },\n    \"phase_shares\": {\n");
    for (i, (label, secs)) in phase_rows.iter().enumerate() {
        let comma = if i + 1 < phase_rows.len() { "," } else { "" };
        json.push_str(&format!("      \"{label}\": {:.4}{comma}\n", secs / total));
    }
    json.push_str("    }\n  }");
    // With observability armed (OZAKI_OBS=1) the report also carries a
    // registry read-out: the same per-phase numbers the Prometheus
    // endpoint serves, so a bench run doubles as a check that the
    // instrumentation actually saw the work. The bench's own
    // phase_seconds/phase_shares fields above stay authoritative (and
    // present either way).
    if gemm_obs::enabled() {
        use gemm_obs::catalog as cat;
        json.push_str(",\n  \"obs\": {\n");
        json.push_str(&format!(
            "    \"emulated_gemms\": {},\n    \"engine_int8_calls\": {},\n    \"pool_tasks\": {},\n    \"pool_steals\": {},\n    \"pool_parks\": {},\n    \"phase_histograms\": {{\n",
            cat::EMULATED_GEMMS.value(),
            cat::ENGINE_INT8_CALLS.value(),
            cat::POOL_TASKS.value(),
            cat::POOL_STEALS.value(),
            cat::POOL_PARKS.value()
        ));
        let phase_hists = [
            &cat::PHASE_SCALE,
            &cat::PHASE_TRUNC,
            &cat::PHASE_CONVERT,
            &cat::PHASE_INT8_GEMM,
            &cat::PHASE_MOD_REDUCE,
            &cat::PHASE_FOLD,
            &cat::PHASE_VERIFY,
        ];
        for (i, h) in phase_hists.iter().enumerate() {
            let comma = if i + 1 < phase_hists.len() { "," } else { "" };
            json.push_str(&format!(
                "      \"{}\": {{\"count\": {}, \"sum_seconds\": {:.6}, \"p99_seconds\": {:.6}}}{comma}\n",
                h.span_name(),
                h.count(),
                h.sum_ns() as f64 / 1e9,
                h.quantile_ns(0.99) as f64 / 1e9
            ));
        }
        json.push_str("    }\n  }");
    }
    json.push_str("\n}\n");

    std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));

    println!(
        "int8 engine @ {n}x{n}x{n} (microkernel: {})",
        microkernel_name()
    );
    println!(
        "  scalar seed : {:8.2} GOPS\n  blocked 1T  : {:8.2} GOPS\n  blocked     : {:8.2} GOPS\n  1T speedup  : {speedup:8.2}x",
        gops(t_scalar),
        gops(t_seq),
        gops(t_par)
    );
    println!(
        "trunc lines 2-3 @ {n}x{n} (kernel: {})",
        trunc_kernel_name()
    );
    println!(
        "  PR2 scalar  : {:8.2} Gelem/s\n  vectorized  : {:8.2} Gelem/s\n  1T speedup  : {trunc_speedup:8.2}x",
        gelem(t_trunc_scalar),
        gelem(t_trunc_vec)
    );
    println!(
        "convert lines 4-5 @ {n}x{n}, N={nmod} (kernel: {})",
        convert_kernel_name()
    );
    println!(
        "  PR1 scalar  : {:8.2} Gres/s\n  fused 1T    : {:8.2} Gres/s\n  1T speedup  : {conv_speedup:8.2}x",
        gres(t_conv_scalar),
        gres(t_conv_fused)
    );
    println!(
        "fold lines 8-12 @ {n}x{n}, N={nmod} (kernel: {})",
        fold_kernel_name()
    );
    println!(
        "  PR2 scalar  : {:8.2} Gres/s\n  vectorized  : {:8.2} Gres/s\n  speedup     : {fold_speedup:8.2}x",
        gres(t_fold_scalar),
        gres(t_fold_vec)
    );
    println!(
        "batched runtime, N={nmod}, {workers} worker(s) on {physical_cores} core(s) (vs naive sequential per-item loop)"
    );
    println!(
        "  shared-B 64^3 x256 : {shared64_items_per_s:8.1} items/s  ({shared64_speedup:.2}x, {shared64_scaling:.2}x vs 1 worker)\n  large 256^3 x16    : {large256_items_per_s:8.1} items/s  ({large256_speedup:.2}x)"
    );
    println!("pipeline @ {pn}^3, N=15: {end_to_end_ms:.1} ms end-to-end (steady state)");
    println!("observability @ {pn}^3, N=15 (gemm_obs armed vs disabled, interleaved)");
    println!(
        "  disabled    : {:8.1} ms\n  armed       : {:8.1} ms\n  overhead    : {obs_overhead_pct:8.2}%",
        t_obs_off * 1e3,
        t_obs_on * 1e3
    );
    println!("abft checksum verify @ {pn}^3, N=15 (FaultPolicy::Detect vs Off)");
    println!(
        "  off         : {:8.1} ms\n  detect      : {:8.1} ms\n  overhead    : {abft_overhead_pct:8.2}%",
        t_abft_off * 1e3,
        t_abft_det * 1e3
    );
    println!("blas transposed-B @ {pn}^3, N=15 (view facade vs materialize)");
    println!(
        "  materialize : {:8.1} ms\n  view        : {:8.1} ms\n  speedup     : {blas_view_speedup:8.2}x",
        t_blas_mat * 1e3,
        t_blas_view * 1e3
    );
    println!("residue backends @ {pn}^3, equal-accuracy target 2^-20 (each on its own pool)");
    for &(name, n_b, t_b) in &backend_rows {
        println!(
            "  {name:11} : {:8.1} ms  ({:6.2} effective GOPS, N={n_b})",
            t_b * 1e3,
            pgops(t_b)
        );
    }
    println!(
        "  fast-infer  : {:8.1} ms  ({:6.2} effective GOPS, N={}, predicted err {:.2e})",
        t_fi * 1e3,
        pgops(t_fi),
        fi_report.n_moduli,
        fi_report.predicted_error
    );
    println!("wrote {out_path}");

    // ---- CI perf-regression gate -----------------------------------------
    if let Some(baseline_path) = args.get::<String>("check-against") {
        let tolerance: f64 = args.get("tolerance").unwrap_or(0.8);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        // Absolute throughput is only comparable on the hardware class
        // that produced the baseline. A different dispatched microkernel
        // (e.g. an avx2-only runner vs an avx512-vnni baseline) would
        // fail — or trivially pass — for reasons unrelated to the code,
        // so skip the gate loudly instead of gating on noise.
        let base_kernel = json_string(&baseline, "microkernel").unwrap_or("<missing>");
        if base_kernel != microkernel_name() {
            println!(
                "perf gate SKIPPED: baseline {baseline_path} was measured with the \
                 '{base_kernel}' microkernel, this machine dispatches '{}' — absolute \
                 numbers are not comparable across hardware classes. Refresh the \
                 baseline on this runner class to re-arm the gate.",
                microkernel_name()
            );
            return;
        }
        let pull = |key: &str| {
            json_number(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {baseline_path} lacks \"{key}\""))
        };
        let all_metrics = vec![
            GateMetric {
                name: "blocked_gops",
                current: gops(t_par),
                baseline: pull("blocked_gops"),
                higher_is_better: true,
            },
            GateMetric {
                name: "fused_1t_gres_per_s",
                current: gres(t_conv_fused),
                baseline: pull("fused_1t_gres_per_s"),
                higher_is_better: true,
            },
            GateMetric {
                name: "end_to_end_ms",
                current: end_to_end_ms,
                baseline: pull("end_to_end_ms"),
                higher_is_better: false,
            },
            // The batched section gates on the *speedups* over the naive
            // loop (ratios travel across hardware better than absolute
            // items/s, and the kernel-mismatch skip above still shields
            // cross-class runs).
            GateMetric {
                name: "shared64_speedup_vs_naive",
                current: shared64_speedup,
                baseline: pull("shared64_speedup_vs_naive"),
                higher_is_better: true,
            },
            GateMetric {
                name: "large256_speedup_vs_naive",
                current: large256_speedup,
                baseline: pull("large256_speedup_vs_naive"),
                higher_is_better: true,
            },
            // Pool scaling on the shared-operand batch, relative to the
            // same pool at W=1. Baseline-relative like the other ratios:
            // on a single-core runner both sides sit near 1.0, on a
            // many-core runner both sides reflect real overlap — either
            // way a scheduling regression (lost inter-item parallelism,
            // serialized stealing) drags `current` below the floor.
            GateMetric {
                name: "shared64_scaling_vs_1worker",
                current: shared64_scaling,
                baseline: pull("shared64_scaling_vs_1worker"),
                higher_is_better: true,
            },
            // Absolute protected-run time (lower is better): keeps the
            // ABFT checksum overhead from quietly growing past the
            // O(mn/NC)-per-plane budget it is designed around.
            GateMetric {
                name: "abft_detect_ms",
                current: t_abft_det * 1e3,
                baseline: pull("abft_detect_ms"),
                higher_is_better: false,
            },
            // The view facade must keep beating (or matching) the
            // transpose-materialize path it replaced; a regression here
            // means an operand copy crept back into the BLAS surface.
            GateMetric {
                name: "blas_view_speedup_vs_materialize",
                current: blas_view_speedup,
                baseline: pull("blas_view_speedup_vs_materialize"),
                higher_is_better: true,
            },
        ];
        // Per-backend throughput at the equal-accuracy target, plus the
        // fast-inference preset. Guarded so a baseline predating the
        // backends section skips these three loudly instead of panicking
        // the whole gate.
        let mut all_metrics = all_metrics;
        if json_number(&baseline, "backend_int8_gops").is_some() {
            all_metrics.push(GateMetric {
                name: "backend_int8_gops",
                current: pgops(backend_rows[0].2),
                baseline: pull("backend_int8_gops"),
                higher_is_better: true,
            });
            all_metrics.push(GateMetric {
                name: "backend_fma_bf16_gops",
                current: pgops(backend_rows[1].2),
                baseline: pull("backend_fma_bf16_gops"),
                higher_is_better: true,
            });
            all_metrics.push(GateMetric {
                name: "fast_inference_gops",
                current: pgops(t_fi),
                baseline: pull("fast_inference_gops"),
                higher_is_better: true,
            });
        } else {
            println!(
                "gate NOTE: baseline {baseline_path} predates the backends section; \
                 backend_int8_gops / backend_fma_bf16_gops / fast_inference_gops \
                 not gated. Refresh the baseline to arm them."
            );
        }
        // `--check-metric=a,b,c` narrows the gate to the named metrics.
        // The obs-overhead CI job uses this to compare an instrumented
        // run against a just-measured uninstrumented baseline on
        // end_to_end_ms alone — the other metrics are noise-dominated at
        // the short rep counts that job can afford.
        let metrics: Vec<GateMetric> = match args.get::<String>("check-metric") {
            Some(list) => {
                let wanted: Vec<&str> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect();
                let filtered: Vec<GateMetric> = all_metrics
                    .into_iter()
                    .filter(|m| wanted.contains(&m.name))
                    .collect();
                assert!(
                    !filtered.is_empty(),
                    "--check-metric={list} matched no gate metrics"
                );
                filtered
            }
            None => all_metrics,
        };
        let failures = check_regressions(&metrics, tolerance);
        for m in &metrics {
            let status = if m.passes(tolerance) { "ok" } else { "FAIL" };
            println!(
                "gate {:22} current {:10.3} baseline {:10.3}  [{status}]",
                m.name, m.current, m.baseline
            );
        }
        if failures.is_empty() {
            println!("perf gate PASSED vs {baseline_path} (tolerance {tolerance})");
        } else {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!("perf gate FAILED vs {baseline_path} (tolerance {tolerance})");
            std::process::exit(1);
        }
    }
}
