//! Figure 3: accuracy of DGEMM (top) and SGEMM (bottom) emulation.
//!
//! Reproduces the paper's accuracy experiment: max componentwise relative
//! error vs a double-double oracle, for every method, over the number of
//! moduli `N`, for φ ∈ {0.5, 1, 2, 4} (DGEMM) / {0.5, 1, 1.5} (SGEMM) and
//! two `k` values. The paper uses m = n = 1024, k ∈ {1024, 16384}; the
//! default here is a scaled-down sweep (error curves depend on size only
//! through `log2 k`); pass `--size=1024 --kbig=16384` for the full runs.
//!
//! Usage:
//!   cargo run --release -p gemm-bench --bin fig3_accuracy
//!   cargo run --release -p gemm-bench --bin fig3_accuracy -- --size=1024 --kbig=16384
//!   cargo run --release -p gemm-bench --bin fig3_accuracy -- --csv

use gemm_baselines::{Bf16x9, CuMpSgemm, OzImmu, Tf32Gemm};
use gemm_bench::accuracy::{DgemmCell, SgemmCell};
use gemm_bench::report::{print_csv, print_table, Args};
use gemm_dense::{MatMulF32, MatMulF64, NativeDgemm, NativeSgemm};
use ozaki2::{Mode, Ozaki2};

fn main() {
    let args = Args::from_env();
    let size: usize = args.get("size").unwrap_or(256);
    let k_small = size;
    let k_big: usize = args.get("kbig").unwrap_or(4 * size);
    let csv = args.flag("csv");
    let seed = 20_250_811;

    // ---- DGEMM panel ------------------------------------------------------
    println!("# Figure 3 (top) — DGEMM emulation accuracy, m = n = {size}");
    let dgemm_phis = [0.5f64, 1.0, 2.0, 4.0];
    let n_range: Vec<usize> = (8..=17).collect();
    let mut header = vec!["method".to_string()];
    for &phi in &dgemm_phis {
        for &k in &[k_small, k_big] {
            header.push(format!("phi={phi},k={k}"));
        }
    }
    let mut methods_f64: Vec<Box<dyn MatMulF64>> = vec![
        Box::new(NativeDgemm),
        Box::new(OzImmu::new(8)),
        Box::new(OzImmu::new(9)),
    ];
    for &n in &n_range {
        methods_f64.push(Box::new(Ozaki2::new(n, Mode::Fast)));
    }
    for &n in &n_range {
        methods_f64.push(Box::new(Ozaki2::new(n, Mode::Accurate)));
    }
    let mut rows: Vec<Vec<String>> = methods_f64.iter().map(|m| vec![m.name()]).collect();
    for &phi in &dgemm_phis {
        for &k in &[k_small, k_big] {
            eprintln!("[dgemm] phi={phi} k={k}: generating workload + oracle…");
            let cell = DgemmCell::new(size, size, k, phi, seed);
            for (mi, method) in methods_f64.iter().enumerate() {
                let p = cell.measure(method.as_ref());
                rows[mi].push(format!("{:.3e}", p.max_rel_error));
            }
        }
    }
    let mut out = std::io::stdout().lock();
    if csv {
        print_csv(&mut out, &header, &rows);
    } else {
        print_table(&mut out, &header, &rows);
    }

    // ---- SGEMM panel ------------------------------------------------------
    println!();
    println!("# Figure 3 (bottom) — SGEMM emulation accuracy, m = n = {size}");
    let sgemm_phis = [0.5f32, 1.0, 1.5];
    let n_range_s: Vec<usize> = (2..=10).collect();
    let mut header_s = vec!["method".to_string()];
    for &phi in &sgemm_phis {
        for &k in &[k_small, k_big] {
            header_s.push(format!("phi={phi},k={k}"));
        }
    }
    let mut methods_f32: Vec<Box<dyn MatMulF32>> = vec![
        Box::new(NativeSgemm),
        Box::new(Tf32Gemm),
        Box::new(Bf16x9),
        Box::new(CuMpSgemm),
    ];
    for &n in &n_range_s {
        methods_f32.push(Box::new(Ozaki2::new(n, Mode::Fast)));
    }
    for &n in &n_range_s {
        methods_f32.push(Box::new(Ozaki2::new(n, Mode::Accurate)));
    }
    let mut rows_s: Vec<Vec<String>> = methods_f32.iter().map(|m| vec![m.name()]).collect();
    for &phi in &sgemm_phis {
        for &k in &[k_small, k_big] {
            eprintln!("[sgemm] phi={phi} k={k}: generating workload + oracle…");
            let cell = SgemmCell::new(size, size, k, phi, seed + 1);
            for (mi, method) in methods_f32.iter().enumerate() {
                let p = cell.measure(method.as_ref());
                rows_s[mi].push(format!("{:.3e}", p.max_rel_error));
            }
        }
    }
    if csv {
        print_csv(&mut out, &header_s, &rows_s);
    } else {
        print_table(&mut out, &header_s, &rows_s);
    }
    println!();
    println!("Expected shape (paper §5.1): OS II-fast-14 slightly above DGEMM error,");
    println!("OS II-fast-15 / accu-15 at or below it; fast mode degrades as phi grows");
    println!("while accurate mode holds; OS II-fast-{{7,8}} reach SGEMM level; small-N");
    println!("points land between TF32 and SGEMM.");
}
