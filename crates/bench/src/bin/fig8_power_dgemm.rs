//! Figure 8: power efficiency (GFLOPS/W) of DGEMM emulation on the three
//! devices (modelled).
//!
//! Usage: `cargo run --release -p gemm-bench --bin fig8_power_dgemm [--csv]`

use gemm_bench::report::{print_csv, print_table, Args};
use gemm_perfmodel::{evaluation_devices, fig8_dgemm_power, SWEEP_NS};

fn main() {
    let args = Args::from_env();
    let mut out = std::io::stdout().lock();
    for device in evaluation_devices() {
        println!(
            "# Figure 8 — DGEMM emulation power efficiency (GFLOPS/W) on {}",
            device.name
        );
        let series = fig8_dgemm_power(device);
        let mut header = vec!["method".to_string()];
        header.extend(SWEEP_NS.iter().map(|n| format!("n={n}")));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut row = vec![s.label.clone()];
                row.extend(s.points.iter().map(|&(_, v)| format!("{v:.1}")));
                row
            })
            .collect();
        if args.flag("csv") {
            print_csv(&mut out, &header, &rows);
        } else {
            print_table(&mut out, &header, &rows);
        }
        println!();
    }
    println!("Expected shape (paper §5.4): trends mirror Fig. 4, but emulation closes");
    println!("the gap earlier (INT8 is power-efficient even at moderate sizes);");
    println!("OS II-fast gains 20–43% over DGEMM on GH200 at n = 16384.");
}
