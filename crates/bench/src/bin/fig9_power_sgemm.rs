//! Figure 9: power efficiency (GFLOPS/W) of SGEMM emulation on the three
//! devices (modelled).
//!
//! Usage: `cargo run --release -p gemm-bench --bin fig9_power_sgemm [--csv]`

use gemm_bench::report::{print_csv, print_table, Args};
use gemm_perfmodel::{evaluation_devices, fig9_sgemm_power, SWEEP_NS};

fn main() {
    let args = Args::from_env();
    let mut out = std::io::stdout().lock();
    for device in evaluation_devices() {
        println!(
            "# Figure 9 — SGEMM emulation power efficiency (GFLOPS/W) on {}",
            device.name
        );
        let series = fig9_sgemm_power(device);
        let mut header = vec!["method".to_string()];
        header.extend(SWEEP_NS.iter().map(|n| format!("n={n}")));
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|s| {
                let mut row = vec![s.label.clone()];
                row.extend(s.points.iter().map(|&(_, v)| format!("{v:.1}")));
                row
            })
            .collect();
        if args.flag("csv") {
            print_csv(&mut out, &header, &rows);
        } else {
            print_table(&mut out, &header, &rows);
        }
        println!();
    }
    println!("Expected shape (paper §5.4): OS II-fast-{{7,8,9}} at +103–154% over SGEMM");
    println!("on GH200 at n = 16384; on RTX 5080 INT8's 13.3x power-efficiency edge at");
    println!("n = 1024 lets emulation match SGEMM's GFLOPS/W even at small sizes.");
}
