//! Regenerate every table and figure into `results/` in one command.
//!
//! Usage: `cargo run --release -p gemm-bench --bin run_all_figures [-- --outdir=results]`
//!
//! Spawns each `fig*`/`ablation*` binary (which must already be built in
//! the same profile) and captures its stdout to `<outdir>/<name>.txt`.

use gemm_bench::report::Args;
use std::path::PathBuf;
use std::process::Command;

const BINARIES: &[&str] = &[
    "fig1_datasheet",
    "fig2_constants",
    "fig3_accuracy",
    "fig4_dgemm_throughput",
    "fig5_sgemm_throughput",
    "fig6_breakdown_dgemm",
    "fig7_breakdown_sgemm",
    "fig8_power_dgemm",
    "fig9_power_sgemm",
    "headline_summary",
    "ablation_rmod_steps",
    "ablation_moduli",
    "ablation_dd_fold",
];

fn main() {
    let args = Args::from_env();
    let outdir: String = args.get("outdir").unwrap_or_else(|| "results".to_string());
    std::fs::create_dir_all(&outdir).expect("create output directory");

    // Sibling binaries live next to this executable.
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();

    let mut failures = Vec::new();
    for name in BINARIES {
        let exe: PathBuf = bin_dir.join(name);
        eprintln!("[run_all_figures] {name} …");
        let mut cmd = Command::new(&exe);
        if *name == "fig6_breakdown_dgemm" || *name == "fig7_breakdown_sgemm" {
            cmd.arg("--measured");
        }
        match cmd.output() {
            Ok(out) if out.status.success() => {
                let path = format!("{outdir}/{name}.txt");
                std::fs::write(&path, &out.stdout).expect("write output");
                eprintln!("[run_all_figures]   -> {path}");
            }
            Ok(out) => {
                eprintln!(
                    "[run_all_figures]   FAILED (status {:?}):\n{}",
                    out.status.code(),
                    String::from_utf8_lossy(&out.stderr)
                );
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("[run_all_figures]   could not spawn {exe:?}: {e}");
                eprintln!("[run_all_figures]   (build first: cargo build --release -p gemm-bench)");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("All figures regenerated into {outdir}/");
    } else {
        println!("Completed with failures: {failures:?}");
        std::process::exit(1);
    }
}
