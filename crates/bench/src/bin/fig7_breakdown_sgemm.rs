//! Figure 7: time breakdown of SGEMM emulation by Algorithm-1 line
//! (fast/accurate, RTX 5080 + GH200, modelled; `--measured` adds the CPU
//! pipeline's wall-clock phase split).
//!
//! Usage:
//!   cargo run --release -p gemm-bench --bin fig7_breakdown_sgemm
//!   cargo run --release -p gemm-bench --bin fig7_breakdown_sgemm -- --measured --size=512

use gemm_bench::report::{print_table, Args};
use gemm_dense::workload::phi_matrix_f32;
use gemm_perfmodel::{breakdown, gh200, rtx5080, Os2Input, Os2Mode};
use ozaki2::{Mode, Ozaki2};

fn main() {
    let args = Args::from_env();
    let nmod: usize = args.get("n").unwrap_or(8);
    let mut out = std::io::stdout().lock();

    for device in [rtx5080(), gh200()] {
        for (mode, label) in [(Os2Mode::Fast, "fast"), (Os2Mode::Accurate, "accurate")] {
            println!(
                "# Figure 7 — SGEMM emulation time breakdown ({label} mode, N={nmod}) on {} [modelled]",
                device.name
            );
            let bars = breakdown(device, nmod, mode, Os2Input::F32);
            let header: Vec<String> = std::iter::once("n".to_string())
                .chain(bars[0].shares.iter().map(|(l, _)| l.to_string()))
                .collect();
            let rows: Vec<Vec<String>> = bars
                .iter()
                .map(|b| {
                    std::iter::once(b.n.to_string())
                        .chain(b.shares.iter().map(|(_, f)| format!("{:.1}%", f * 100.0)))
                        .collect()
                })
                .collect();
            print_table(&mut out, &header, &rows);
            println!();
        }
    }

    if args.flag("measured") {
        let size: usize = args.get("size").unwrap_or(256);
        println!("# Measured breakdown of this repository's CPU pipeline (m=n=k={size})");
        let a = phi_matrix_f32(size, size, 0.5, 77, 0);
        let b = phi_matrix_f32(size, size, 0.5, 77, 1);
        for mode in [Mode::Fast, Mode::Accurate] {
            let (_, rep) = Ozaki2::new(nmod, mode).sgemm_with_report(&a, &b);
            let total = rep.phases.total().as_secs_f64();
            println!("mode = {:?}, total = {:.3} ms", mode, total * 1e3);
            for (label, secs) in rep.phases.as_rows() {
                println!(
                    "  {label:<22} {:>7.3} ms  ({:>4.1}%)",
                    secs * 1e3,
                    100.0 * secs / total
                );
            }
        }
    }
    println!("Expected shape (paper §5.3): SGEMM conversion is much cheaper than in");
    println!("Fig. 6 on RTX 5080 because it runs in FP32 (64x faster than FP64 there).");
}
