//! The paper's §1 headline numbers, regenerated from the device model:
//! DGEMM 1.4x / +43%, SGEMM 3.0x / +154% on GH200; >2x over prior
//! emulation.
//!
//! Usage: `cargo run --release -p gemm-bench --bin headline_summary`

use gemm_bench::report::print_table;
use gemm_perfmodel::{evaluation_devices, headline};

fn main() {
    let header: Vec<String> = [
        "device",
        "DGEMM speedup (OS II-fast-14)",
        "DGEMM power gain",
        "SGEMM speedup (OS II-fast-8)",
        "SGEMM power gain",
        "vs ozIMMU_EF-8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = evaluation_devices()
        .into_iter()
        .map(|d| {
            let h = headline(d);
            vec![
                h.device.to_string(),
                format!("{:.2}x", h.dgemm_speedup),
                format!("{:+.0}%", h.dgemm_power_gain * 100.0),
                format!("{:.2}x", h.sgemm_speedup),
                format!("{:+.0}%", h.sgemm_power_gain * 100.0),
                format!("{:.2}x", h.vs_prior_emulation),
            ]
        })
        .collect();
    println!("# Headline summary at n = 16384 (modelled; paper §1 claims for GH200:");
    println!("# 1.4x DGEMM / +43% power, 3.0x SGEMM / +154% power, >2x vs prior emulation)");
    print_table(&mut std::io::stdout().lock(), &header, &rows);
}
