//! Ablation: why the `rmod` kernel needs its N-gated correction steps
//! (§4.2's `(N1, N2) = (13, 19)` thresholds for `b = 64`).
//!
//! Sweeps the number of FMA reduction steps (1/2/3) for each `N` and
//! counts wrong residues over the pipeline's actual value domain
//! (`|x| ≤ 2^p_fast`). With too few steps at large `N`, the first-step
//! quotient error leaves residuals beyond ±p/2 (or beyond f32's exact
//! integer range) and the residues go wrong — which would corrupt the
//! entire CRT reconstruction.
//!
//! Usage: `cargo run --release -p gemm-bench --bin ablation_rmod_steps`

use gemm_bench::report::print_table;
use gemm_dense::Philox4x32;
use ozaki2::constants;
use ozaki2::convert::{rmod_to_i8, steps_for};

fn main() {
    let mut rng = Philox4x32::new(31337);
    let samples = 40_000;
    let header: Vec<String> = [
        "N",
        "|x| up to",
        "steps=1 bad",
        "steps=2 bad",
        "steps=3 bad",
        "paper steps",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for n in [8usize, 12, 13, 16, 19, 20] {
        let c = constants(n);
        let bound = 2f64.powf(c.p_fast);
        let mut bad = [0usize; 3];
        for _ in 0..samples {
            // Integer-valued f64 drawn log-uniformly up to the budget.
            let mag = 2f64.powf(rng.uniform_f64() * c.p_fast);
            let x = (mag * if rng.uniform_f64() < 0.5 { -1.0 } else { 1.0 }).trunc();
            let s = (rng.next_u32() as usize) % n;
            let want = gemm_exact::I256::from_f64_exact(x).rem_euclid_u64(c.p[s]);
            for (step_idx, slot) in bad.iter_mut().enumerate() {
                let r = rmod_to_i8(
                    x,
                    c.p_f64[s],
                    c.p_f32[s],
                    c.p_inv_f64[s],
                    c.p_inv_f32[s],
                    step_idx as u8 + 1,
                );
                if (r as i64).rem_euclid(c.p[s] as i64) as u64 != want {
                    *slot += 1;
                }
            }
        }
        rows.push(vec![
            n.to_string(),
            format!("2^{:.1}", bound.log2()),
            format!("{:.3}%", 100.0 * bad[0] as f64 / samples as f64),
            format!("{:.3}%", 100.0 * bad[1] as f64 / samples as f64),
            format!("{:.3}%", 100.0 * bad[2] as f64 / samples as f64),
            steps_for(n, true).to_string(),
        ]);
    }
    println!("# Ablation — rmod correction steps vs N (DGEMM path, {samples} samples each)");
    print_table(&mut std::io::stdout().lock(), &header, &rows);
    println!();
    println!("Reading: a single step is exact only while |x| stays small (N <= 12);");
    println!("the paper's thresholds add steps exactly where single-step residues break.");
}
