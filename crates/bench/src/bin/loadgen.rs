//! Serving-runtime load generator: replays a mixed-size, multi-tenant
//! trace against `gemm_serve::Server` and records sustained GEMMs/s,
//! p50/p99 request latency, the coalesce rate, and the operand cache hit
//! rate into a `serving` section of `BENCH_int8.json` (spliced into the
//! snapshot `bench_int8` writes, preserving its sections).
//!
//! The trace is three tenants: two weight-stationary inference tenants
//! (`svc-a`, `svc-b`) streaming small below-crossover GEMMs against their
//! own pinned weight matrix, and one HPC tenant (`hpc`) submitting large
//! above-crossover GEMMs that take the solo striped path. Requests are
//! driven in bursts (pause → submit → resume → drain), which makes the
//! coalescing outcome — and therefore the coalesce and cache-hit rates —
//! exactly reproducible run to run. Every response is asserted
//! bit-identical to the sequential `Ozaki2::dgemm` oracle before any
//! timing counts for anything.
//!
//! With `--check-against=<baseline.json>` the run doubles as a CI gate:
//! the deterministic ratio metrics (coalesce rate, cache hit rate) are
//! always gated; the timing metrics (GEMMs/s, p99) are gated only in
//! full (non-`--smoke`) runs, since the smoke trace is too short to time
//! reliably on shared runners. A baseline measured with a different INT8
//! microkernel, or predating the serving section, skips loudly instead
//! of gating on noise.
//!
//! With `--open-loop` the burst-driven closed loop is replaced by an
//! **open-loop Poisson trace**: arrivals follow exponential inter-arrival
//! gaps at `--rate=<reqs/s>` sampled from a seeded Philox stream (the
//! offered trace is reproducible even though service order is not), and
//! submission never waits on service — `try_submit` sheds to the bounded
//! queue's backpressure exactly as a real open-loop client would. The
//! `serving` section then records the offered arrival rate, the shed
//! count, and the achieved throughput next to the latency percentiles,
//! which is the honest way to report a saturating server (closed loops
//! hide overload by slowing the client down). Open-loop timing is
//! scheduler-dependent, so `--check-against` gating is loudly skipped in
//! this mode.
//!
//! Usage: `cargo run --release -p gemm_bench --bin loadgen --
//! [--smoke] [--workers=2] [--open-loop] [--rate=400]
//! [--out=BENCH_int8.json]
//! [--check-against=BENCH_baseline.json] [--tolerance=0.8]
//! [--trace-out=loadgen-trace.json]`
//!
//! With `OZAKI_OBS=1` the run opens a [`gemm_obs::ObsSession`] around
//! the trace replay, exports a chrome://tracing JSON of every captured
//! span to `--trace-out`, and asserts that per-phase span sums reconcile
//! with the Prometheus histogram totals (exactly when no span ring
//! wrapped; see `docs/OBSERVABILITY.md`).

use gemm_bench::check::{check_regressions, json_number, json_string, upsert_section, GateMetric};
use gemm_bench::report::Args;
use gemm_dense::workload::phi_matrix_f64;
use gemm_dense::{MatF64, Philox4x32};
use gemm_engine::microkernel_name;
use gemm_serve::{GemmRequest, JobHandle, Server};
use ozaki2::{Mode, Ozaki2};
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One tenant's replayable traffic: a pinned weight matrix and a cycled
/// pool of activation matrices (the weight-stationary pattern), plus the
/// per-pair oracle results.
struct Tenant {
    name: &'static str,
    acts: Vec<Arc<MatF64>>,
    weights: Arc<MatF64>,
    oracle: Vec<MatF64>,
}

impl Tenant {
    fn new(name: &'static str, m: usize, k: usize, n: usize, pool: usize, seed: u64) -> Self {
        let acts: Vec<Arc<MatF64>> = (0..pool)
            .map(|i| Arc::new(phi_matrix_f64(m, k, 0.5, seed + i as u64, 0)))
            .collect();
        let weights = Arc::new(phi_matrix_f64(k, n, 0.5, seed + 1000, 1));
        Self {
            name,
            acts,
            weights,
            oracle: Vec::new(),
        }
    }

    /// Precompute the per-activation oracle with the sequential emulator.
    fn bake_oracle(&mut self, emu: &Ozaki2) {
        self.oracle = self
            .acts
            .iter()
            .map(|a| emu.dgemm(a, &self.weights))
            .collect();
    }

    fn request(&self, i: usize) -> (GemmRequest, &MatF64) {
        let idx = i % self.acts.len();
        (
            GemmRequest::new(self.name, self.acts[idx].clone(), self.weights.clone()),
            &self.oracle[idx],
        )
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Reap every completed in-flight job: record its latency and assert the
/// result bit-identical to the oracle. Called between open-loop arrivals
/// so latency is measured at completion, not at drain order.
fn drain_done(pending: &mut Vec<(Instant, JobHandle, &MatF64)>, latencies: &mut Vec<f64>) {
    let mut i = 0;
    while i < pending.len() {
        if pending[i].1.is_done() {
            let (t0, handle, want) = pending.swap_remove(i);
            let got = handle.wait().expect("open-loop jobs complete");
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(&got, want, "served result must stay bit-identical");
        } else {
            i += 1;
        }
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let open_loop = args.flag("open-loop");
    let rate: f64 = args
        .get("rate")
        .unwrap_or(if smoke { 400.0 } else { 200.0 });
    let out_path: String = args.get("out").unwrap_or_else(|| "BENCH_int8.json".into());
    if let Some(w) = args.get::<usize>("workers") {
        rayon::set_num_threads(w);
    }
    let workers = rayon::current_num_threads();
    let nmod = 15usize; // the paper's DGEMM-accuracy setting

    // Trace scale: smoke keeps CI runs in the seconds, full sizes the
    // measurement for a perf snapshot.
    let (small, large, n_small, n_large, burst) = if smoke {
        (48usize, 192usize, 96usize, 4usize, 8usize)
    } else {
        (64, 256, 1024, 16, 16)
    };

    let emu = Ozaki2::new(nmod, Mode::Fast);
    let mut tenants = [
        Tenant::new("svc-a", small, small, small, 16, 10),
        Tenant::new("svc-b", small, small, small, 16, 500),
    ];
    let mut hpc = Tenant::new("hpc", large, large, large, 2, 900);
    for t in &mut tenants {
        t.bake_oracle(&emu);
    }
    hpc.bake_oracle(&emu);

    // Observability session: opened *after* oracle baking so the baked
    // sequential GEMMs (pure setup) stay out of the trace and out of the
    // span/histogram reconciliation window, and *before* the server is
    // built so every admission falls inside it.
    let obs = gemm_obs::enabled().then(gemm_obs::ObsSession::begin);

    let server = Server::builder(nmod, Mode::Fast)
        .queue_depth(burst + 2)
        .max_batch(burst)
        .coalesce_window(Duration::from_micros(500))
        .build();

    let mut latencies: Vec<f64> = Vec::with_capacity(n_small + n_large);
    let mut submitted_small = 0usize;
    let mut submitted_large = 0usize;
    let mut shed = 0usize;
    let t_start = Instant::now();
    if open_loop {
        // Open-loop Poisson trace: exponential inter-arrival gaps at
        // `rate` req/s from a seeded Philox stream. Arrivals never wait
        // on service; a full queue sheds the request (counted, not
        // fatal) — so the latency percentiles below describe the server
        // under the *offered* load, not under a client throttled by its
        // own waits.
        let mut rng = Philox4x32::new_stream(4242, 7);
        let n_total = n_small + n_large;
        let large_every = n_total / n_large.max(1);
        let mut pending: Vec<(Instant, JobHandle, &MatF64)> = Vec::new();
        let mut arrival = Duration::ZERO;
        for i in 0..n_total {
            let u = rng.uniform_f64();
            arrival += Duration::from_secs_f64(-(1.0 - u).ln() / rate);
            while t_start.elapsed() < arrival {
                drain_done(&mut pending, &mut latencies);
                std::thread::sleep(Duration::from_micros(50));
            }
            let (req, want) = if large_every > 0
                && i % large_every == large_every - 1
                && submitted_large < n_large
            {
                submitted_large += 1;
                hpc.request(submitted_large - 1)
            } else {
                submitted_small += 1;
                tenants[(submitted_small - 1) % 2].request((submitted_small - 1) / 2)
            };
            match server.try_submit(req) {
                Ok(handle) => pending.push((Instant::now(), handle, want)),
                Err(_) => shed += 1,
            }
            drain_done(&mut pending, &mut latencies);
        }
        for (t0, handle, want) in pending {
            let got = handle.wait().expect("open-loop jobs complete");
            latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(&got, want, "served result must stay bit-identical");
        }
    } else {
        // Burst-driven closed loop: pause, enqueue one burst of small
        // jobs (tenants alternating) plus any due large job, resume,
        // drain. Each burst coalesces into exactly one group round and
        // each large job runs solo, so the coalesce rate is a property
        // of the trace, not of scheduler timing — which is what lets CI
        // gate on it.
        let n_bursts = n_small / burst;
        let large_every = n_bursts.max(1) / n_large.max(1);
        for b in 0..n_bursts {
            server.pause();
            let mut inflight: Vec<(Instant, JobHandle, &MatF64)> = Vec::with_capacity(burst + 1);
            for _ in 0..burst {
                let tenant = &tenants[submitted_small % 2];
                let (req, want) = tenant.request(submitted_small / 2);
                inflight.push((Instant::now(), server.submit(req).expect("admit"), want));
                submitted_small += 1;
            }
            if large_every > 0 && b % large_every == 0 && submitted_large < n_large {
                let (req, want) = hpc.request(submitted_large);
                inflight.push((Instant::now(), server.submit(req).expect("admit"), want));
                submitted_large += 1;
            }
            server.resume();
            for (t0, handle, want) in inflight {
                let got = handle.wait().expect("trace jobs complete");
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                assert_eq!(&got, want, "served result must stay bit-identical");
            }
        }
    }
    let wall = t_start.elapsed().as_secs_f64();
    let offered = submitted_small + submitted_large;
    let total = offered - shed;

    let stats = server.stats();
    assert_eq!(stats.completed as usize, total, "every request completed");
    let gemms_per_s = total as f64 / wall;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50_ms = percentile(&latencies, 0.50);
    let p99_ms = percentile(&latencies, 0.99);
    let coalesce_rate = stats.coalesce_rate();
    let (mut hits, mut submissions) = (0u64, 0u64);
    for (_, t) in server.tenants() {
        hits += t.cache_hits;
        submissions += t.submitted;
    }
    // Two operands per submission; hits are identity re-sightings.
    let cache_hit_rate = hits as f64 / (2 * submissions) as f64;

    println!(
        "serving loadgen: {total} reqs ({submitted_small} x {small}^3 across 2 tenants, \
         {submitted_large} x {large}^3 hpc), N={nmod}, {workers} worker(s), burst {burst}"
    );
    if open_loop {
        let arrival_rate = offered as f64 / wall;
        println!(
            "  open loop   : offered {rate:.1} req/s (measured {arrival_rate:.1}), \
             {shed} shed at the queue"
        );
    }
    println!(
        "  sustained   : {gemms_per_s:8.1} GEMMs/s\n  p50 latency : {p50_ms:8.3} ms\n  p99 latency : {p99_ms:8.3} ms"
    );
    println!(
        "  coalesce    : {:8.1} %  ({} coalesced, {} solo, {} rounds)\n  cache hits  : {:8.1} %",
        coalesce_rate * 100.0,
        stats.coalesced,
        stats.solo,
        stats.rounds,
        cache_hit_rate * 100.0
    );
    for (name, t) in server.tenants() {
        println!(
            "  tenant {name:6}: {} submitted, {} completed, {} residue-GEMMs, {} operand hits",
            t.submitted, t.completed, t.residue_gemms, t.cache_hits
        );
    }
    server.shutdown();

    // Observability read-back (OZAKI_OBS=1): export a Chrome trace of
    // every span the session captured, then cross-check each paired
    // histogram's `_sum` delta against the summed span durations. The
    // two sides record the same nanosecond value per observation, so
    // they reconcile exactly whenever no per-thread span ring wrapped;
    // the 1% tolerance only exists to absorb ring-drop truncation, and
    // the assert is skipped (loudly) when drops occurred.
    if let Some(session) = &obs {
        let trace_path: String = args
            .get("trace-out")
            .unwrap_or_else(|| "loadgen-trace.json".into());
        session
            .export_chrome_trace_to(&trace_path)
            .unwrap_or_else(|e| panic!("write {trace_path}: {e}"));
        println!(
            "wrote chrome trace to {trace_path} ({} spans, {} dropped)",
            session.events().len(),
            session.dropped()
        );
        use gemm_obs::catalog as cat;
        println!(
            "  obs registry: {} submitted, {} completed, {} rounds, {} int8 engine calls",
            cat::SERVE_SUBMITTED.value(),
            cat::SERVE_COMPLETED.value(),
            cat::SERVE_ROUNDS.value(),
            cat::ENGINE_INT8_CALLS.value()
        );
        assert_eq!(
            cat::SERVE_COMPLETED.value(),
            stats.completed,
            "registry completion counter must agree with server stats"
        );
        let recs = session.reconcile();
        for r in &recs {
            println!(
                "  obs {:16} spans {:10.3} ms  histogram {:10.3} ms  ({} samples)",
                r.span_name,
                r.span_ns as f64 / 1e6,
                r.hist_ns as f64 / 1e6,
                r.hist_count
            );
        }
        if session.dropped() == 0 {
            for r in &recs {
                assert!(
                    r.within(0.01),
                    "span/histogram mismatch for {}: spans {} ns vs histogram {} ns",
                    r.span_name,
                    r.span_ns,
                    r.hist_ns
                );
            }
            println!(
                "  obs reconciliation: {} histograms agree within 1%",
                recs.len()
            );
        } else {
            println!(
                "  obs reconciliation SKIPPED: {} spans dropped (ring wrapped); \
                 histogram totals remain exact",
                session.dropped()
            );
        }
    }

    // Open-loop runs additionally record the offered (Poisson) arrival
    // rate and the shed count next to the achieved throughput —
    // `serving_gemms_per_s` is always *achieved* (completed / wall).
    let open_loop_fields = if open_loop {
        format!(
            "\n    \"serving_arrival_rate_per_s\": {rate:.3},\n    \"serving_offered\": {offered},\n    \"serving_shed\": {shed},",
        )
    } else {
        String::new()
    };
    let section = format!(
        "{{\n    \"mode\": \"{}\",\n    \"loop\": \"{}\",\n    \"n_moduli\": {nmod},\n    \"workers\": {workers},\n    \"requests\": {total},\n    \"small_shape\": [{small}, {small}, {small}],\n    \"large_shape\": [{large}, {large}, {large}],\n    \"burst\": {burst},{open_loop_fields}\n    \"serving_gemms_per_s\": {gemms_per_s:.3},\n    \"serving_p50_ms\": {p50_ms:.3},\n    \"serving_p99_ms\": {p99_ms:.3},\n    \"serving_coalesce_rate\": {coalesce_rate:.4},\n    \"serving_cache_hit_rate\": {cache_hit_rate:.4}\n  }}",
        if smoke { "smoke" } else { "full" },
        if open_loop { "open" } else { "closed" }
    );
    let doc = std::fs::read_to_string(&out_path).unwrap_or_else(|_| "{\n}\n".into());
    let doc = upsert_section(&doc, "serving", &section);
    std::fs::File::create(&out_path)
        .and_then(|mut f| f.write_all(doc.as_bytes()))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote serving section into {out_path}");

    // ---- CI gate ---------------------------------------------------------
    if open_loop {
        if args.get::<String>("check-against").is_some() {
            println!(
                "serving gate SKIPPED: open-loop coalescing and timing depend on \
                 scheduler interleaving; gate on a closed-loop (burst) run instead."
            );
        }
        return;
    }
    if let Some(baseline_path) = args.get::<String>("check-against") {
        let tolerance: f64 = args.get("tolerance").unwrap_or(0.8);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        // Same hardware-class shield as bench_int8's gate.
        let base_kernel = json_string(&baseline, "microkernel").unwrap_or("<missing>");
        if base_kernel != microkernel_name() {
            println!(
                "serving gate SKIPPED: baseline {baseline_path} was measured with the \
                 '{base_kernel}' microkernel, this machine dispatches '{}'. Refresh the \
                 baseline on this runner class to re-arm the gate.",
                microkernel_name()
            );
            return;
        }
        if json_number(&baseline, "serving_coalesce_rate").is_none() {
            println!(
                "serving gate SKIPPED: baseline {baseline_path} has no serving section \
                 (predates the serving runtime). Refresh it to arm the gate."
            );
            return;
        }
        let pull = |key: &str| {
            json_number(&baseline, key)
                .unwrap_or_else(|| panic!("baseline {baseline_path} lacks \"{key}\""))
        };
        // The ratio metrics are exact properties of the replayed trace —
        // gate them in every mode. Timing only gates in full runs.
        let mut metrics = vec![
            GateMetric {
                name: "serving_coalesce_rate",
                current: coalesce_rate,
                baseline: pull("serving_coalesce_rate"),
                higher_is_better: true,
            },
            GateMetric {
                name: "serving_cache_hit_rate",
                current: cache_hit_rate,
                baseline: pull("serving_cache_hit_rate"),
                higher_is_better: true,
            },
        ];
        if !smoke {
            metrics.push(GateMetric {
                name: "serving_gemms_per_s",
                current: gemms_per_s,
                baseline: pull("serving_gemms_per_s"),
                higher_is_better: true,
            });
            metrics.push(GateMetric {
                name: "serving_p99_ms",
                current: p99_ms,
                baseline: pull("serving_p99_ms"),
                higher_is_better: false,
            });
        }
        let failures = check_regressions(&metrics, tolerance);
        for m in &metrics {
            let status = if m.passes(tolerance) { "ok" } else { "FAIL" };
            println!(
                "gate {:24} current {:10.3} baseline {:10.3}  [{status}]",
                m.name, m.current, m.baseline
            );
        }
        if failures.is_empty() {
            println!("serving gate PASSED vs {baseline_path} (tolerance {tolerance})");
        } else {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!("serving gate FAILED vs {baseline_path} (tolerance {tolerance})");
            std::process::exit(1);
        }
    }
}
