//! Ablation: the moduli-pool choice.
//!
//! docs/ARCHITECTURE.md picks the greedy maximal pairwise-coprime descending pool;
//! the paper prints a pool whose tail reaches down to {41, 37, 29}. This
//! binary quantifies what the pool choice costs: `log2 P(N)` decides the
//! per-side scale budget and therefore the accuracy bits per modulus —
//! smaller moduli buy strictly less accuracy for the same number of INT8
//! GEMMs.
//!
//! Usage: `cargo run --release -p gemm-bench --bin ablation_moduli`

use gemm_bench::report::print_table;
use gemm_exact::CrtBasis;

/// A pairwise-coprime pool that wastes its tail on small values (the
/// literal tail printed in the paper's §4.1 pool notation).
const SMALL_TAIL_POOL: [u64; 20] = [
    256, 255, 253, 251, 247, 241, 239, 233, 229, 227, 223, 217, 211, 199, 197, 193, 191, 41, 37, 29,
];

fn main() {
    let greedy = ozaki2::MODULI;
    // Sanity: both pools must be valid CRT bases.
    let _ = CrtBasis::new(&greedy);
    let _ = CrtBasis::new(&SMALL_TAIL_POOL);

    let header: Vec<String> = [
        "N",
        "log2 P (greedy)",
        "log2 P (small tail)",
        "budget/side greedy",
        "budget/side small",
        "accuracy cost (bits)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for n in [14usize, 16, 18, 20] {
        let lp_g: f64 = greedy[..n].iter().map(|&p| (p as f64).log2()).sum();
        let lp_s: f64 = SMALL_TAIL_POOL[..n]
            .iter()
            .map(|&p| (p as f64).log2())
            .sum();
        let bud_g = 0.5 * (lp_g - 1.5);
        let bud_s = 0.5 * (lp_s - 1.5);
        rows.push(vec![
            n.to_string(),
            format!("{lp_g:.2}"),
            format!("{lp_s:.2}"),
            format!("{bud_g:.2}"),
            format!("{bud_s:.2}"),
            format!("{:.2}", bud_g - bud_s),
        ]);
    }
    println!("# Ablation — moduli pool: greedy maximal vs small-tail pool");
    print_table(&mut std::io::stdout().lock(), &header, &rows);
    println!();
    println!(
        "Reading: at N = 20 the small-tail pool gives up ~{:.1} bits of per-side",
        0.5 * (greedy[17..20]
            .iter()
            .map(|&p| (p as f64).log2())
            .sum::<f64>()
            - SMALL_TAIL_POOL[17..20]
                .iter()
                .map(|&p| (p as f64).log2())
                .sum::<f64>())
    );
    println!("budget — every INT8 GEMM costs the same, so the greedy pool is strictly");
    println!("better. All accuracy claims hold under either pool at the paper's N.");
}
