//! Figure 1: TFLOPS and TOPS of AMD and NVIDIA GPUs for dense data.
//!
//! Prints the datasheet series behind the paper's motivation chart: the
//! per-generation growth of FP64 / FP32 / FP16 / INT8 peak rates.
//!
//! Usage: `cargo run --release -p gemm-bench --bin fig1_datasheet [--csv]`

use gemm_bench::report::{print_csv, print_table};
use gemm_perfmodel::FIG1_DATASHEET;

fn main() {
    let args = gemm_bench::report::Args::from_env();
    let header: Vec<String> = [
        "GPU",
        "vendor",
        "year",
        "FP64 TFLOPS",
        "FP32 TFLOPS",
        "FP16 TFLOPS",
        "INT8 TOPS",
        "INT8/FP64",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = FIG1_DATASHEET
        .iter()
        .map(|e| {
            vec![
                e.name.to_string(),
                e.vendor.to_string(),
                e.year.to_string(),
                format!("{:.2}", e.fp64),
                format!("{:.1}", e.fp32),
                format!("{:.1}", e.fp16),
                format!("{:.1}", e.int8),
                if e.fp64 > 0.0 && e.int8 > 0.0 {
                    format!("{:.0}x", e.int8 / e.fp64)
                } else {
                    "-".to_string()
                },
            ]
        })
        .collect();
    let mut out = std::io::stdout().lock();
    println!("# Figure 1 — dense peak rates by GPU generation");
    if args.flag("csv") {
        print_csv(&mut out, &header, &rows);
    } else {
        print_table(&mut out, &header, &rows);
    }
    println!();
    println!(
        "Takeaway: INT8 grew {:.0}x from V100 to H100 while FP64 grew {:.1}x —",
        FIG1_DATASHEET[3].int8 / FIG1_DATASHEET[1].int8,
        FIG1_DATASHEET[3].fp64 / FIG1_DATASHEET[1].fp64
    );
    println!("the gap the emulation exploits.");
}
