//! # gemm-bench
//!
//! Benchmark harness: shared infrastructure for the `fig*` regeneration
//! binaries (one per paper figure, see `src/bin/`) and the criterion
//! microbenches (`benches/`).
//!
//! * [`report`] — CSV / aligned-table printing used by every binary;
//! * [`accuracy`] — the Fig. 3 experiment: run every method over the
//!   φ-lognormal workloads against the double-double oracle;
//! * [`check`] — the CI perf-regression gate behind
//!   `bench_int8 --check-against`.

#![warn(missing_docs)]

pub mod accuracy;
pub mod check;
pub mod report;
