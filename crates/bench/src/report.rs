//! Plain-text table / CSV emission for the figure binaries.

use std::io::Write;

/// Print a CSV table: header row then data rows.
pub fn print_csv<W: Write>(out: &mut W, header: &[String], rows: &[Vec<String>]) {
    writeln!(out, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(out, "{}", row.join(",")).expect("write row");
    }
}

/// Print an aligned markdown-ish table for terminal reading.
pub fn print_table<W: Write>(out: &mut W, header: &[String], rows: &[Vec<String>]) {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    writeln!(out, "{}", fmt_row(header)).expect("write header");
    writeln!(
        out,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    )
    .expect("write rule");
    for row in rows {
        assert_eq!(row.len(), ncols);
        writeln!(out, "{}", fmt_row(row)).expect("write row");
    }
}

/// Format a float compactly for tables.
pub fn fmt_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3e}")
    }
}

/// Parse a `--key=value` style argument list (tiny, no external deps).
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn from_env() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Construct from a fixed list (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Presence of a bare `--flag`.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }

    /// Value of `--key=value`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let prefix = format!("--{name}=");
        self.raw
            .iter()
            .find_map(|a| a.strip_prefix(&prefix))
            .and_then(|v| v.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let mut buf = Vec::new();
        print_csv(
            &mut buf,
            &["a".into(), "b".into()],
            &[vec!["1".into(), "2".into()]],
        );
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }

    #[test]
    fn table_alignment() {
        let mut buf = Vec::new();
        print_table(
            &mut buf,
            &["name".into(), "v".into()],
            &[vec!["x".into(), "12345".into()]],
        );
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("name"));
        assert!(s.contains("12345"));
    }

    #[test]
    fn args_parsing() {
        let a = Args::from_vec(vec!["--full".into(), "--size=512".into()]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get::<usize>("size"), Some(512));
        assert_eq!(a.get::<usize>("missing"), None);
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(123.4), "123");
        assert_eq!(fmt_sig(1.5), "1.50");
        assert_eq!(fmt_sig(0.000123), "1.230e-4");
    }
}
