//! The Fig. 3 experiment: accuracy of every DGEMM / SGEMM method against
//! a double-double oracle, over the paper's φ-lognormal workloads.
//!
//! The paper uses `m = n = 1024`, `k ∈ {1024, 16384}`; sizes here are
//! parameters so the binary can run a scaled-down sweep by default (the
//! error *curves* as a function of `N` are size-stable — the `k`
//! dependence enters through `log2 k` in the truncation budget).

use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
use gemm_dense::Matrix;
use gemm_dense::{MatMulF32, MatMulF64};
use gemm_exact::{dd_gemm, max_rel_error_vs_dd, Dd};

/// One measured point.
#[derive(Clone, Debug)]
pub struct AccuracyPoint {
    /// Method label.
    pub method: String,
    /// Exponent-spread parameter.
    pub phi: f64,
    /// Inner dimension.
    pub k: usize,
    /// Max componentwise relative error vs the DD oracle.
    pub max_rel_error: f64,
}

/// Shared precomputed workload + oracle for one `(φ, k)` cell.
pub struct DgemmCell {
    /// Left operand.
    pub a: Matrix<f64>,
    /// Right operand.
    pub b: Matrix<f64>,
    /// DD reference product.
    pub exact: Matrix<Dd>,
    /// φ used.
    pub phi: f64,
}

impl DgemmCell {
    /// Generate the workload (paper's generator, fixed seed) and oracle.
    pub fn new(m: usize, n: usize, k: usize, phi: f64, seed: u64) -> Self {
        let a = phi_matrix_f64(m, k, phi, seed, 0);
        let b = phi_matrix_f64(k, n, phi, seed, 1);
        let exact = dd_gemm(&a, &b);
        Self { a, b, exact, phi }
    }

    /// Error of one method on this cell.
    pub fn measure(&self, method: &dyn MatMulF64) -> AccuracyPoint {
        let c = method.matmul_f64(&self.a, &self.b);
        AccuracyPoint {
            method: method.name(),
            phi: self.phi,
            k: self.a.cols(),
            max_rel_error: max_rel_error_vs_dd(&c, &self.exact),
        }
    }
}

/// Shared precomputed workload + oracle for one SGEMM `(φ, k)` cell.
pub struct SgemmCell {
    /// Left operand.
    pub a: Matrix<f32>,
    /// Right operand.
    pub b: Matrix<f32>,
    /// DD reference product (of the f32 values, exactly).
    pub exact: Matrix<Dd>,
    /// φ used.
    pub phi: f64,
}

impl SgemmCell {
    /// Generate the workload and oracle.
    pub fn new(m: usize, n: usize, k: usize, phi: f32, seed: u64) -> Self {
        let a = phi_matrix_f32(m, k, phi, seed, 0);
        let b = phi_matrix_f32(k, n, phi, seed, 1);
        let exact = dd_gemm(&a.map(|x| x as f64), &b.map(|x| x as f64));
        Self {
            a,
            b,
            exact,
            phi: phi as f64,
        }
    }

    /// Error of one method on this cell.
    pub fn measure(&self, method: &dyn MatMulF32) -> AccuracyPoint {
        let c = method.matmul_f32(&self.a, &self.b);
        AccuracyPoint {
            method: method.name(),
            phi: self.phi,
            k: self.a.cols(),
            max_rel_error: max_rel_error_vs_dd(&c.map(|x| x as f64), &self.exact),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::{NativeDgemm, NativeSgemm};
    use ozaki2::{Mode, Ozaki2};

    #[test]
    fn dgemm_cell_orders_methods_correctly() {
        let cell = DgemmCell::new(32, 32, 48, 0.5, 42);
        let native = cell.measure(&NativeDgemm);
        let os2_low = cell.measure(&Ozaki2::new(6, Mode::Fast));
        let os2_high = cell.measure(&Ozaki2::new(15, Mode::Fast));
        assert!(native.max_rel_error < 1e-13);
        assert!(os2_low.max_rel_error > os2_high.max_rel_error);
        assert!(os2_high.max_rel_error < 1e-11);
    }

    #[test]
    fn sgemm_cell_basics() {
        let cell = SgemmCell::new(24, 24, 32, 0.5, 7);
        let native = cell.measure(&NativeSgemm);
        let tf32 = cell.measure(&gemm_baselines::Tf32Gemm);
        assert!(native.max_rel_error < 1e-4);
        assert!(tf32.max_rel_error > native.max_rel_error);
        assert_eq!(native.method, "SGEMM");
    }
}
