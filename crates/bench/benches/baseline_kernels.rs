//! Criterion bench: the scalar kernels the paper optimises — the fast
//! `rmod` (§4.2), the `__mulhi` modulo (§4.3), the low-precision
//! conversions, and the Philox generator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gemm_dense::Philox4x32;
use gemm_lowfp::{Tf32, BF16, F16};
use ozaki2::constants;
use ozaki2::convert::rmod_to_i8;
use ozaki2::modred::mod_i32_to_u8;

const LEN: usize = 1 << 16;

fn bench_rmod(c: &mut Criterion) {
    let consts = constants(15);
    let xs: Vec<f64> = (0..LEN)
        .map(|i| ((i as f64) * 1_234_567.89).trunc() - 4e10)
        .collect();
    let mut group = c.benchmark_group("rmod_kernel");
    group.throughput(Throughput::Elements(LEN as u64));
    for steps in [1u8, 2, 3] {
        group.bench_function(format!("steps={steps}"), |bench| {
            bench.iter(|| {
                let mut acc = 0i32;
                for &x in &xs {
                    acc = acc.wrapping_add(rmod_to_i8(
                        x,
                        consts.p_f64[1],
                        consts.p_f32[1],
                        consts.p_inv_f64[1],
                        consts.p_inv_f32[1],
                        steps,
                    ) as i32);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_mulhi_mod(c: &mut Criterion) {
    let consts = constants(15);
    let xs: Vec<i32> = (0..LEN as i32)
        .map(|i| i.wrapping_mul(2_654_435_761u32 as i32))
        .collect();
    let mut group = c.benchmark_group("mod_kernel");
    group.throughput(Throughput::Elements(LEN as u64));
    group.bench_function("mulhi", |bench| {
        bench.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc = acc
                    .wrapping_add(mod_i32_to_u8(x, consts.p[1] as i32, consts.p_inv_u32[1]) as u32);
            }
            acc
        });
    });
    group.bench_function("rem_euclid (reference)", |bench| {
        let p = consts.p[1] as i32;
        bench.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc = acc.wrapping_add(x.rem_euclid(p) as u32);
            }
            acc
        });
    });
    group.finish();
}

fn bench_lowfp_conversions(c: &mut Criterion) {
    let xs: Vec<f32> = (0..LEN).map(|i| (i as f32) * 0.37 - 9000.0).collect();
    let mut group = c.benchmark_group("lowfp_convert");
    group.throughput(Throughput::Elements(LEN as u64));
    group.bench_function("f16", |bench| {
        bench.iter(|| xs.iter().map(|&x| F16::from_f32(x).0 as u32).sum::<u32>());
    });
    group.bench_function("bf16", |bench| {
        bench.iter(|| xs.iter().map(|&x| BF16::from_f32(x).0 as u32).sum::<u32>());
    });
    group.bench_function("tf32", |bench| {
        bench.iter(|| {
            xs.iter()
                .map(|&x| Tf32::from_f32(x).to_bits())
                .fold(0u32, u32::wrapping_add)
        });
    });
    group.finish();
}

fn bench_philox(c: &mut Criterion) {
    let mut group = c.benchmark_group("philox");
    group.throughput(Throughput::Elements(LEN as u64));
    group.bench_function("uniform_f64", |bench| {
        let mut rng = Philox4x32::new(1);
        bench.iter(|| (0..LEN).map(|_| rng.uniform_f64()).sum::<f64>());
    });
    group.bench_function("normal_f64", |bench| {
        let mut rng = Philox4x32::new(2);
        bench.iter(|| (0..LEN).map(|_| rng.normal_f64()).sum::<f64>());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rmod,
    bench_mulhi_mod,
    bench_lowfp_conversions,
    bench_philox
);
criterion_main!(benches);
