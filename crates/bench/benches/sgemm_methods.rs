//! Criterion bench: end-to-end SGEMM methods — the measured (CPU-substrate)
//! analogue of Fig. 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemm_baselines::{Bf16x9, CuMpSgemm, Tf32Gemm};
use gemm_dense::gemm::gemm_f32;
use gemm_dense::workload::phi_matrix_f32;
use ozaki2::{Mode, Ozaki2};

fn bench_sgemm_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgemm_methods");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let a = phi_matrix_f32(n, n, 0.5, 9, 0);
        let b = phi_matrix_f32(n, n, 0.5, 9, 1);
        group.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("SGEMM", n), &n, |bench, _| {
            bench.iter(|| gemm_f32(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("TF32GEMM", n), &n, |bench, _| {
            bench.iter(|| Tf32Gemm.sgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("BF16x9", n), &n, |bench, _| {
            bench.iter(|| Bf16x9.sgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("cuMpSGEMM", n), &n, |bench, _| {
            bench.iter(|| CuMpSgemm.sgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("OS II-fast-8", n), &n, |bench, _| {
            let m = Ozaki2::new(8, Mode::Fast);
            bench.iter(|| m.sgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("OS II-accu-7", n), &n, |bench, _| {
            let m = Ozaki2::new(7, Mode::Accurate);
            bench.iter(|| m.sgemm(&a, &b));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sgemm_methods);
criterion_main!(benches);
