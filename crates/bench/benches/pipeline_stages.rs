//! Criterion bench: each Algorithm-1 phase in isolation — the measured
//! counterpart of the Figs. 6–7 time breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use gemm_dense::workload::phi_matrix_f64;
use gemm_engine::{padded_a_rows, padded_depth};
use ozaki2::accumulate::{fold_planes, fold_span_scalar, FoldPrecision};
use ozaki2::constants;
use ozaki2::convert::{
    convert_pack_panels, residue_planes, trunc_convert_pack_panels, TruncSource,
};
use ozaki2::modred::reduce_plane;
use ozaki2::scale::{
    accurate_scale, fast_scale_cols, fast_scale_rows, scale_trunc_a_rowmajor,
    scale_trunc_b_colmajor,
};

const N: usize = 256;
const NMOD: usize = 15;

fn bench_phases(c: &mut Criterion) {
    let consts = constants(NMOD);
    let a = phi_matrix_f64(N, N, 0.5, 11, 0);
    let b = phi_matrix_f64(N, N, 0.5, 11, 1);

    let mut group = c.benchmark_group("pipeline_phase");
    group.sample_size(20);

    group.bench_function("scale_fast (line 1)", |bench| {
        bench.iter(|| {
            let ea = fast_scale_rows(&a, consts.p_fast);
            let eb = fast_scale_cols(&b, consts.p_fast);
            (ea, eb)
        });
    });
    group.bench_function("scale_accurate (line 1)", |bench| {
        bench.iter(|| accurate_scale(&a, &b, consts.p_accu));
    });

    let exps_a = fast_scale_rows(&a, consts.p_fast);
    let exps_b = fast_scale_cols(&b, consts.p_fast);
    let mut aprime = vec![0f64; N * N];
    let mut bprime = vec![0f64; N * N];
    group.bench_function("trunc (lines 2-3)", |bench| {
        bench.iter(|| {
            scale_trunc_a_rowmajor(&a, &exps_a, &mut aprime);
            scale_trunc_b_colmajor(&b, &exps_b, &mut bprime);
        });
    });

    scale_trunc_a_rowmajor(&a, &exps_a, &mut aprime);
    scale_trunc_b_colmajor(&b, &exps_b, &mut bprime);
    let mut a8 = vec![0i8; NMOD * N * N];
    group.bench_function("convert_unfused_pr1 (lines 4-5)", |bench| {
        bench.iter(|| residue_planes(&aprime, consts, true, &mut a8));
    });

    // The hot-pipeline convert: vectorized rmod fused with panel packing.
    let n_pad = padded_a_rows(N);
    let kp = padded_depth(N);
    let mut a16 = vec![0i16; NMOD * n_pad * kp];
    group.bench_function("convert_fused (lines 4-5)", |bench| {
        bench.iter(|| convert_pack_panels(&aprime, N, n_pad, N, kp, consts, true, true, &mut a16));
    });

    // The full fused sweep the pipeline actually runs: scale + trunc +
    // transpose gather + rmod + pack in one cache-blocked pass over A.
    group.bench_function("trunc_convert_fused (lines 2-5)", |bench| {
        bench.iter(|| {
            trunc_convert_pack_panels(
                TruncSource::Gathered {
                    data: ozaki2::ElemSlice::F64(a.as_slice()),
                    ld: N,
                    exps: &exps_a,
                },
                N,
                n_pad,
                N,
                kp,
                consts,
                true,
                true,
                &mut a16,
                None,
            )
        });
    });

    residue_planes(&aprime, consts, true, &mut a8);
    let mut b8 = vec![0i8; NMOD * N * N];
    residue_planes(&bprime, consts, true, &mut b8);
    let mut c32 = vec![0i32; N * N];
    group.bench_function("int8_gemm x1 (line 6)", |bench| {
        bench.iter(|| gemm_engine::int8_gemm_rm_cm(N, N, N, &a8[..N * N], &b8[..N * N], &mut c32));
    });

    let mut u = vec![0u8; NMOD * N * N];
    group.bench_function("mod_reduce x1 (line 7)", |bench| {
        bench.iter(|| reduce_plane(&c32, consts.p[0], consts.p_inv_u32[0], &mut u[..N * N]));
    });

    let mut out = vec![0f64; N * N];
    group.bench_function("fold (lines 8-12)", |bench| {
        bench.iter(|| {
            fold_planes(
                &u,
                N,
                N,
                consts,
                FoldPrecision::Double,
                &exps_a,
                &exps_b,
                &mut out,
            )
        });
    });

    // The scalar lane oracle of the fold, for the SIMD-vs-scalar margin.
    group.bench_function("fold_scalar_oracle (lines 8-12)", |bench| {
        bench.iter(|| {
            for (j, out_col) in out.chunks_mut(N).enumerate() {
                fold_span_scalar(
                    &u,
                    N * N,
                    j * N,
                    &consts.s1,
                    Some(&consts.s2),
                    consts.p1,
                    consts.p2,
                    consts.p_inv,
                    out_col,
                );
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
