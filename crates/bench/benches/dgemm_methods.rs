//! Criterion bench: end-to-end DGEMM methods — the measured (CPU-substrate)
//! analogue of Fig. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemm_baselines::OzImmu;
use gemm_dense::gemm::gemm_f64;
use gemm_dense::workload::phi_matrix_f64;
use ozaki2::{Mode, Ozaki2};

fn bench_dgemm_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgemm_methods");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let a = phi_matrix_f64(n, n, 0.5, 5, 0);
        let b = phi_matrix_f64(n, n, 0.5, 5, 1);
        group.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("DGEMM", n), &n, |bench, _| {
            bench.iter(|| gemm_f64(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("OS II-fast-15", n), &n, |bench, _| {
            let m = Ozaki2::new(15, Mode::Fast);
            bench.iter(|| m.dgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("OS II-accu-15", n), &n, |bench, _| {
            let m = Ozaki2::new(15, Mode::Accurate);
            bench.iter(|| m.dgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("OS II-fast-8", n), &n, |bench, _| {
            let m = Ozaki2::new(8, Mode::Fast);
            bench.iter(|| m.dgemm(&a, &b));
        });
        group.bench_with_input(BenchmarkId::new("ozIMMU_EF-8", n), &n, |bench, _| {
            let m = OzImmu::new(8);
            bench.iter(|| m.dgemm(&a, &b));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dgemm_methods);
criterion_main!(benches);
