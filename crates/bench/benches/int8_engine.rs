//! Criterion bench: the INT8 matrix engine itself — the substrate whose
//! throughput advantage (Fig. 1) the whole paper builds on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemm_dense::Matrix;
use gemm_engine::{int8_gemm, int8_gemm_rm_cm};

fn mat_i8(rows: usize, cols: usize, salt: i32) -> Matrix<i8> {
    Matrix::from_fn(rows, cols, |i, j| {
        (((i as i32 * 31 + j as i32 * 17 + salt) % 255) - 127) as i8
    })
}

fn bench_int8_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("int8_gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256, 512] {
        let a = mat_i8(n, n, 1);
        let b = mat_i8(n, n, 2);
        group.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| int8_gemm(&a, &b));
        });
    }
    group.finish();
}

fn bench_int8_gemm_packed(c: &mut Criterion) {
    // The hot path used by the pipeline: pre-packed operands.
    let mut group = c.benchmark_group("int8_gemm_packed");
    group.sample_size(10);
    for &n in &[128usize, 256] {
        let a = mat_i8(n, n, 1).to_row_major();
        let b = mat_i8(n, n, 2);
        let mut cbuf = vec![0i32; n * n];
        group.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| int8_gemm_rm_cm(n, n, n, &a, b.as_slice(), &mut cbuf));
        });
    }
    group.finish();
}

fn bench_rectangular(c: &mut Criterion) {
    // Tall-k shapes (k dominates in the emulation's inner products).
    let mut group = c.benchmark_group("int8_gemm_tall_k");
    group.sample_size(10);
    for &k in &[1024usize, 4096] {
        let m = 64;
        let a = mat_i8(m, k, 3).to_row_major();
        let b = mat_i8(k, m, 4);
        let mut cbuf = vec![0i32; m * m];
        group.throughput(Throughput::Elements(2 * (m * m * k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| int8_gemm_rm_cm(m, m, k, &a, b.as_slice(), &mut cbuf));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_int8_gemm,
    bench_int8_gemm_packed,
    bench_rectangular
);
criterion_main!(benches);
