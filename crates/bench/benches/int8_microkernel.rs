//! Criterion bench: the blocked, register-tiled INT8 microkernel against
//! the seed scalar kernel it replaced. The `blocked-1T` rows are the
//! single-threaded numbers the `>= 5x` kernel acceptance criterion refers
//! to; `blocked` adds stripe parallelism on multi-core hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemm_engine::{
    int8_gemm_blocked, int8_gemm_blocked_seq, int8_gemm_rm_cm_scalar, Int8Workspace,
};

fn pattern_vec(len: usize, salt: usize) -> Vec<i8> {
    (0..len)
        .map(|i| (((i * 31 + salt) % 255) as i16 - 127) as i8)
        .collect()
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("int8_microkernel");
    group.sample_size(10);
    for &n in &[256usize, 512, 1024] {
        let a = pattern_vec(n * n, 1);
        let b = pattern_vec(n * n, 2);
        let mut cbuf = vec![0i32; n * n];
        let mut ws = Int8Workspace::new();
        group.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked-1T", n), &n, |bench, _| {
            bench.iter(|| int8_gemm_blocked_seq(n, n, n, &a, &b, &mut cbuf, &mut ws));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| int8_gemm_blocked(n, n, n, &a, &b, &mut cbuf, &mut ws));
        });
        group.bench_with_input(BenchmarkId::new("scalar-seed", n), &n, |bench, _| {
            bench.iter(|| int8_gemm_rm_cm_scalar(n, n, n, &a, &b, &mut cbuf));
        });
    }
    group.finish();
}

fn bench_tall_k(c: &mut Criterion) {
    // The emulation's dominant shape: modest m/n, deep k.
    let mut group = c.benchmark_group("int8_microkernel_tall_k");
    group.sample_size(10);
    for &k in &[4096usize, 16384] {
        let m = 128;
        let a = pattern_vec(m * k, 3);
        let b = pattern_vec(k * m, 4);
        let mut cbuf = vec![0i32; m * m];
        let mut ws = Int8Workspace::new();
        group.throughput(Throughput::Elements(2 * (m * m * k) as u64));
        group.bench_with_input(BenchmarkId::new("blocked-1T", k), &k, |bench, _| {
            bench.iter(|| int8_gemm_blocked_seq(m, m, k, &a, &b, &mut cbuf, &mut ws));
        });
        group.bench_with_input(BenchmarkId::new("scalar-seed", k), &k, |bench, _| {
            bench.iter(|| int8_gemm_rm_cm_scalar(m, m, k, &a, &b, &mut cbuf));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_square, bench_tall_k);
criterion_main!(benches);
