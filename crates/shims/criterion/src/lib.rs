//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this crate implements
//! the bench-definition API the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] — backed by a simple
//! median-of-samples wall-clock harness.
//!
//! Each benchmark warms up once, picks an iteration count targeting
//! ~60 ms per sample, runs up to `sample_size` samples (time-capped), and
//! prints the median per-iteration time plus derived throughput. A
//! substring filter can be passed on the command line
//! (`cargo bench -p <crate> --bench <name> -- <filter>`).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work performed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (e.g. FLOPs or MACs) per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name provides the prefix).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Measures one benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_budget: usize,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + iteration-count calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(60);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;
        // Cap total wall time at ~2 s regardless of sample_size.
        let cap = Duration::from_secs(2);
        let mut spent = once;
        for _ in 0..self.sample_budget {
            if spent >= cap && !self.samples.is_empty() {
                break;
            }
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            let dt = t0.elapsed();
            spent += dt;
            self.samples.push(dt / self.iters_per_sample as u32);
        }
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        if s.is_empty() {
            return Duration::ZERO;
        }
        s.sort();
        s[s.len() / 2]
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Allow longer samples (accepted for API compatibility; the harness
    /// is already time-capped).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benchmark `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_budget: self.sample_size.max(3),
        };
        f(&mut bencher);
        let med = bencher.median();
        let thrpt = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(
                "  thrpt: {:>9.3} Gelem/s",
                n as f64 / med.as_secs_f64().max(1e-12) / 1e9
            ),
            Throughput::Bytes(n) => format!(
                "  thrpt: {:>9.3} GiB/s",
                n as f64 / med.as_secs_f64().max(1e-12) / (1u64 << 30) as f64
            ),
        });
        println!(
            "{full:<44} time: {:>12}{}",
            format_duration(med),
            thrpt.unwrap_or_default()
        );
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry object.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag CLI argument acts as a substring filter, matching
        // `cargo bench -- <filter>` usage.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($f(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(4);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::from_parameter(1000), &1000usize, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<usize>());
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { filter: None };
        sample_bench(&mut c);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("DGEMM", 256).id, "DGEMM/256");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
