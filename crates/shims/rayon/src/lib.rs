//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access, so this crate provides the
//! (small) subset of rayon's parallel-iterator API the workspace actually
//! uses, implemented on a **persistent work-stealing thread pool**:
//!
//! * [`ParallelSlice::par_chunks`] / [`ParallelSliceMut::par_chunks_mut`]
//! * [`IntoParallelRefMutIterator::par_iter_mut`] (slices and `Vec`)
//! * [`IntoParallelIterator::into_par_iter`] (`Vec`)
//! * adaptors [`ParIter::zip`], [`ParIter::enumerate`], terminal
//!   [`ParIter::for_each`]
//!
//! # Pool design
//!
//! The pool is a process-global set of `W` persistent worker threads, one
//! double-ended queue per worker. Owners push and pop at the back of their
//! own deque (LIFO, keeps nested work cache-hot); idle workers steal **half**
//! of a victim's queue from the front (FIFO, takes the oldest, coarsest
//! work). External submitters (threads that are not pool workers) distribute
//! a region's tasks round-robin across the worker deques, so task `i` of a
//! region consistently lands on worker `i % W` — stripe `i` of a GEMM meets
//! the same worker (and therefore the same core and workspace shard) on
//! every call.
//!
//! A *region* ([`ParIter::for_each`]) submits its items as tasks and then
//! **helps**: the submitting thread executes tasks of its own region —
//! popping its own deque if it is a worker, otherwise scanning the worker
//! deques — until the region's pending count reaches zero. Helping is
//! restricted to the submitter's own region so a thread that holds
//! region-scoped thread-local state (fault-injection scopes, suppression
//! flags) never executes unrelated work under that state. Nested regions
//! submitted from a worker go to that worker's own deque where siblings can
//! steal them, so nesting splits instead of serialising.
//!
//! Worker count precedence: [`set_num_threads`] (explicit) >
//! `OZAKI_WORKERS` (environment) > `available_parallelism()`. Results of
//! every region are **bit-identical for any worker count** by construction:
//! tasks are data-disjoint and each task's work is itself deterministic, so
//! scheduling only permutes *when* disjoint writes happen, never what they
//! contain. [`set_steal_seed`] perturbs victim-selection order so tests can
//! drive adversarial steal interleavings.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Worker-count resolution
// ---------------------------------------------------------------------------

/// Sanity ceiling on configurable worker counts.
const MAX_WORKERS: usize = 256;

/// Pure worker-count resolution: explicit override > `OZAKI_WORKERS` env >
/// `available_parallelism()`. Zero or unparsable values fall through to the
/// next source, so `OZAKI_WORKERS=0` or `OZAKI_WORKERS=banana` mean "use the
/// machine default" rather than erroring.
fn resolve_worker_count(explicit: Option<usize>, env: Option<&str>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n.min(MAX_WORKERS);
        }
    }
    if let Some(s) = env {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_WORKERS);
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn resolved_from_globals() -> usize {
    let explicit = EXPLICIT_WORKERS.load(Ordering::Relaxed);
    let env = std::env::var("OZAKI_WORKERS").ok();
    resolve_worker_count(
        if explicit > 0 { Some(explicit) } else { None },
        env.as_deref(),
    )
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// Completion state shared by every task of one `for_each` region.
struct Region {
    /// Tasks not yet finished. The submitter returns when this hits zero.
    pending: AtomicUsize,
    /// First captured panic payload; re-thrown on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Parking spot for the submitter while workers finish the tail.
    done: Mutex<()>,
    done_cv: Condvar,
    /// Stable id, used to derive a deterministic steal-order stream when a
    /// steal seed is set (region pointers are not stable across runs).
    id: u64,
}

/// One unit of region work: a lifetime-erased closure over a single item.
struct Task {
    region: Arc<Region>,
    job: Box<dyn FnOnce() + Send>,
}

/// State shared between the workers of one pool generation. Reconfiguring
/// via [`set_num_threads`] swaps the global `Arc` for a fresh generation;
/// regions still draining an old generation hold their own `Arc` and finish
/// their tasks themselves even after the old workers exit.
struct PoolShared {
    /// Pool generation id; thread-local worker indices are tagged with it so
    /// a worker of a retired pool is not mistaken for one of the current.
    id: u64,
    workers: usize,
    deques: Vec<Mutex<VecDeque<Task>>>,
    shutdown: AtomicBool,
    /// Non-zero: seed for deterministic victim-selection order (test hook).
    steal_seed: AtomicU64,
    /// Wake generation counter: bumped (under the lock) on every submission
    /// so sleepers never miss work that was pushed between their last scan
    /// and their wait.
    sleep: Mutex<u64>,
    sleep_cv: Condvar,
}

thread_local! {
    /// `(pool id, worker index)` on pool worker threads, `None` elsewhere.
    static WORKER_TLS: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

static POOL: Mutex<Option<Arc<PoolShared>>> = Mutex::new(None);
/// Fast path for [`current_num_threads`]: worker count of the live pool.
static WORKERS_CACHE: AtomicUsize = AtomicUsize::new(0);
/// Last explicit [`set_num_threads`] value (0 = no explicit override).
static EXPLICIT_WORKERS: AtomicUsize = AtomicUsize::new(0);
/// Seed applied to newly built pools (and the live one) by [`set_steal_seed`].
static STEAL_SEED: AtomicU64 = AtomicU64::new(0);
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_REGION_ID: AtomicU64 = AtomicU64::new(1);

/// Lock that shrugs off poisoning: pool bookkeeping must stay usable after a
/// task panic (the panic is re-thrown to the submitter, not swallowed).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl PoolShared {
    /// Bump the wake generation and wake every parked worker.
    fn wake_all(&self) {
        {
            let mut generation = lock(&self.sleep);
            *generation = generation.wrapping_add(1);
        }
        self.sleep_cv.notify_all();
    }

    /// Victim scan order for `who` on steal attempt `attempt`: a rotation of
    /// the other workers. Seeded pools derive the rotation from the seed so
    /// tests can replay (or sweep) steal interleavings; unseeded pools just
    /// advance a cheap per-thread counter.
    fn victim_start(&self, who: u64, attempt: u64) -> usize {
        let seed = self.steal_seed.load(Ordering::Relaxed);
        let h = if seed == 0 {
            splitmix64(who.wrapping_mul(0x9e37).wrapping_add(attempt))
        } else {
            splitmix64(seed ^ who.rotate_left(32) ^ attempt.wrapping_mul(0x2545_f491_4f6c_dd1d))
        };
        (h % self.workers as u64) as usize
    }

    /// Worker fast path: pop the back of our own deque (newest first — keeps
    /// nested work on the thread that created it), else steal half of the
    /// front of someone else's (oldest first — coarsest-grained work).
    fn find_any_task(&self, me: usize, attempt: &mut u64) -> Option<Task> {
        if let Some(task) = lock(&self.deques[me]).pop_back() {
            return Some(task);
        }
        *attempt = attempt.wrapping_add(1);
        let start = self.victim_start(me as u64, *attempt);
        for off in 0..self.workers {
            let victim = (start + off) % self.workers;
            if victim == me {
                continue;
            }
            let (mut stolen, left): (VecDeque<Task>, usize) = {
                let mut vq = lock(&self.deques[victim]);
                let take = vq.len().div_ceil(2);
                if take == 0 {
                    continue;
                }
                let stolen = vq.drain(..take).collect();
                (stolen, vq.len())
            };
            // Recorded outside the deque lock: one steal, and the victim's
            // post-steal depth as a sampled load signal.
            gemm_obs::catalog::POOL_STEALS.inc();
            gemm_obs::catalog::POOL_QUEUE_DEPTH.set(victim, left as i64);
            let first = stolen.pop_front();
            if !stolen.is_empty() {
                let mut mine = lock(&self.deques[me]);
                mine.extend(stolen);
            }
            return first;
        }
        None
    }

    /// Helper path: find a task belonging to `region` only. The submitting
    /// thread may carry region-scoped thread-local state (fault-injection
    /// scopes), so it must never execute unrelated work while waiting.
    fn find_region_task(
        &self,
        region: &Arc<Region>,
        me: Option<usize>,
        attempt: &mut u64,
    ) -> Option<Task> {
        if let Some(own) = me {
            let mut q = lock(&self.deques[own]);
            if let Some(pos) = q.iter().rposition(|t| Arc::ptr_eq(&t.region, region)) {
                return q.remove(pos);
            }
        }
        *attempt = attempt.wrapping_add(1);
        let who = me.map(|m| m as u64).unwrap_or(region.id | 1 << 63);
        let start = self.victim_start(who, *attempt);
        for off in 0..self.workers {
            let victim = (start + off) % self.workers;
            if Some(victim) == me {
                continue;
            }
            let mut q = lock(&self.deques[victim]);
            if let Some(pos) = q.iter().position(|t| Arc::ptr_eq(&t.region, region)) {
                return q.remove(pos);
            }
        }
        None
    }

    /// Submit `items` as one region and block until all of them ran.
    ///
    /// # Safety of the lifetime erasure
    ///
    /// Tasks capture `f` by raw pointer and may borrow stack data through
    /// `T` (e.g. `&mut [f64]` chunks). They are transmuted to `'static` to
    /// live in the deques, which is sound because this function does not
    /// return until `pending == 0`, and `pending` only reaches zero when
    /// every task has been consumed by `execute_task` (panics included —
    /// they are caught, recorded, and the count still drops). Tasks are
    /// never dropped unexecuted: nothing else removes them from the deques.
    fn run_region<T: Send, F: Fn(T) + Sync>(self: &Arc<Self>, items: Vec<T>, f: &F) {
        let region = Arc::new(Region {
            pending: AtomicUsize::new(items.len()),
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            id: NEXT_REGION_ID.fetch_add(1, Ordering::Relaxed),
        });
        let me = WORKER_TLS
            .with(|w| w.get())
            .filter(|(pool_id, _)| *pool_id == self.id)
            .map(|(_, idx)| idx);

        struct FnPtr<F>(*const F);
        unsafe impl<F: Sync> Send for FnPtr<F> {}

        for (i, item) in items.into_iter().enumerate() {
            let fp = FnPtr(f as *const F);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // Capture the whole `FnPtr` wrapper (it is the Send carrier),
                // not just its raw-pointer field.
                let FnPtr(fp) = { fp };
                // SAFETY: `f` outlives the region (see run_region docs).
                unsafe { (*fp)(item) }
            });
            // SAFETY: lifetime erasure justified in the method docs above.
            let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
            let target = match me {
                // Nested region on a worker: own deque, siblings steal.
                Some(own) => own,
                // External region: round-robin so task i is core-affine.
                None => i % self.workers,
            };
            lock(&self.deques[target]).push_back(Task {
                region: Arc::clone(&region),
                job,
            });
        }
        self.wake_all();

        let mut attempt = splitmix64(region.id);
        loop {
            if region.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            if let Some(task) = self.find_region_task(&region, me, &mut attempt) {
                execute_task(task);
                continue;
            }
            // Nothing of ours to run: the tail is in flight on workers.
            let parked = lock(&region.done);
            if region.pending.load(Ordering::Acquire) != 0 {
                // Timeout is a belt-and-braces fallback; completion notifies.
                let _parked = self
                    .done_wait(parked, &region)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let payload = lock(&region.panic).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    fn done_wait<'a>(
        &self,
        guard: MutexGuard<'a, ()>,
        region: &Region,
    ) -> Result<MutexGuard<'a, ()>, PoisonError<MutexGuard<'a, ()>>> {
        region
            .done_cv
            .wait_timeout(guard, Duration::from_micros(500))
            .map(|(g, _)| g)
            .map_err(|e| PoisonError::new(e.into_inner().0))
    }
}

/// Run one task: catch panics into the region, then retire the task. The
/// last retirement wakes the submitter.
fn execute_task(task: Task) {
    gemm_obs::catalog::POOL_TASKS.inc();
    let Task { region, job } = task;
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
        let mut slot = lock(&region.panic);
        slot.get_or_insert(payload);
    }
    if region.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Take the lock so the submitter's pending re-check and our notify
        // cannot interleave into a missed wakeup.
        drop(lock(&region.done));
        region.done_cv.notify_all();
    }
}

fn worker_main(shared: Arc<PoolShared>, index: usize) {
    WORKER_TLS.with(|w| w.set(Some((shared.id, index))));
    let mut attempt = splitmix64(index as u64 ^ 0xa5a5);
    loop {
        let seen_generation = *lock(&shared.sleep);
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(task) = shared.find_any_task(index, &mut attempt) {
            execute_task(task);
            continue;
        }
        let generation = lock(&shared.sleep);
        if *generation == seen_generation && !shared.shutdown.load(Ordering::Acquire) {
            // Counted, not spanned: idle workers park ~200x/s each and
            // would flood the span rings with no information.
            gemm_obs::catalog::POOL_PARKS.inc();
            // Timed wait: a stray lost wakeup costs 5 ms, not a hang.
            let _ = shared
                .sleep_cv
                .wait_timeout(generation, Duration::from_millis(5))
                .map_err(PoisonError::into_inner);
        }
    }
}

fn build_pool(workers: usize) -> Arc<PoolShared> {
    let shared = Arc::new(PoolShared {
        id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
        workers,
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        shutdown: AtomicBool::new(false),
        steal_seed: AtomicU64::new(STEAL_SEED.load(Ordering::Relaxed)),
        sleep: Mutex::new(0),
        sleep_cv: Condvar::new(),
    });
    if workers >= 2 {
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("ozaki-worker-{i}"))
                .spawn(move || worker_main(worker_shared, i))
                .expect("spawn pool worker");
        }
    }
    shared
}

fn current_pool() -> Arc<PoolShared> {
    let mut slot = lock(&POOL);
    if slot.is_none() {
        let workers = resolved_from_globals();
        *slot = Some(build_pool(workers));
        WORKERS_CACHE.store(workers, Ordering::Relaxed);
    }
    Arc::clone(slot.as_ref().unwrap())
}

// ---------------------------------------------------------------------------
// Public pool controls
// ---------------------------------------------------------------------------

/// Number of workers in the live pool.
///
/// A single relaxed atomic load once the pool exists (the first call builds
/// it): `std::thread::available_parallelism` re-reads cgroup limits from the
/// filesystem on every invocation (tens of microseconds inside containers),
/// which a dispatch check on the hot path of every small GEMM cannot afford.
/// Unlike the old `OnceLock` cache, this tracks [`set_num_threads`]
/// reconfiguration and honours `OZAKI_WORKERS`.
pub fn current_num_threads() -> usize {
    let cached = WORKERS_CACHE.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    current_pool().workers
}

/// Worker index (`0..current_num_threads()`) on pool worker threads, `None`
/// on external threads. Stable for the lifetime of a pool generation — used
/// by `WorkspacePool` to give each worker its own free-list shard.
pub fn current_worker_index() -> Option<usize> {
    WORKER_TLS.with(|w| w.get()).map(|(_, idx)| idx)
}

/// Reconfigure the global pool to `n` workers (`0` clears the explicit
/// override and re-resolves from `OZAKI_WORKERS` / the machine).
///
/// Process-global. In-flight regions are unaffected: they hold their own
/// reference to the retired pool generation and drain their remaining tasks
/// on the submitting thread even after the old workers exit.
pub fn set_num_threads(n: usize) {
    EXPLICIT_WORKERS.store(n, Ordering::Relaxed);
    let workers = resolved_from_globals();
    let mut slot = lock(&POOL);
    if let Some(old) = slot.take() {
        if old.workers == workers {
            // Same size: keep the generation (worker TLS indices stay valid).
            *slot = Some(old);
            WORKERS_CACHE.store(workers, Ordering::Relaxed);
            return;
        }
        old.shutdown.store(true, Ordering::Release);
        old.wake_all();
    }
    *slot = Some(build_pool(workers));
    WORKERS_CACHE.store(workers, Ordering::Relaxed);
}

/// Test hook: seed the steal-order permutation (0 restores the default
/// free-running order). Applies to the live pool and any pool built later.
/// Different seeds drive different steal interleavings; results must be (and
/// are asserted to be) bit-identical under all of them.
pub fn set_steal_seed(seed: u64) {
    STEAL_SEED.store(seed, Ordering::Relaxed);
    if let Some(pool) = lock(&POOL).as_ref() {
        pool.steal_seed.store(seed, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Parallel iterator surface
// ---------------------------------------------------------------------------

/// A materialised "parallel" iterator: a list of independent work items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair items positionally with another parallel iterator
    /// (truncates to the shorter side, like rayon's `zip`).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attach the item index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` over every item, distributing items across the worker pool.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_parallel(self.items, &f);
    }
}

fn run_parallel<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: &F) {
    if items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let pool = current_pool();
    if pool.workers <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    pool.run_region(items, f);
}

/// `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Split into `size`-element chunks (last may be shorter).
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into disjoint mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// `par_iter_mut` over collections of independent elements.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type yielded to workers.
    type Item: Send;
    /// One item per element, mutably borrowed.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `into_par_iter` over owned collections.
pub trait IntoParallelIterator {
    /// Element type yielded to workers.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefMutIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Tests that reconfigure the process-global pool serialise on this.
    static POOL_CONFIG: Mutex<()> = Mutex::new(());

    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = POOL_CONFIG
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        super::set_num_threads(n);
        let out = f();
        super::set_num_threads(0);
        out
    }

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut dst = vec![0i32; 100];
        let src: Vec<i32> = (0..100).collect();
        dst.par_chunks_mut(7)
            .zip(src.par_chunks(7))
            .enumerate()
            .for_each(|(idx, (d, s))| {
                for (x, &y) in d.iter_mut().zip(s) {
                    *x = y * 2 + idx as i32;
                }
            });
        for (i, &x) in dst.iter().enumerate() {
            assert_eq!(x, (i as i32) * 2 + (i / 7) as i32);
        }
    }

    #[test]
    fn nested_regions_complete() {
        let mut data = vec![0u64; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(o, chunk)| {
            let mut inner = [0u64; 16];
            inner.par_chunks_mut(4).for_each(|c| c.fill(1));
            chunk.fill(o as u64 + inner.iter().sum::<u64>());
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 8) as u64 + 16);
        }
    }

    #[test]
    fn into_par_iter_runs_all() {
        let total = AtomicUsize::new(0);
        let jobs: Vec<usize> = (1..=50).collect();
        jobs.into_par_iter().for_each(|j| {
            total.fetch_add(j, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 50 * 51 / 2);
    }

    #[test]
    fn worker_count_precedence_explicit_beats_env_beats_default() {
        // Pure resolution, no process-global state involved.
        assert_eq!(super::resolve_worker_count(Some(3), Some("7")), 3);
        assert_eq!(super::resolve_worker_count(None, Some("7")), 7);
        assert_eq!(super::resolve_worker_count(Some(0), Some("7")), 7);
        // Unparsable / zero env falls back to the machine default.
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(super::resolve_worker_count(None, Some("banana")), machine);
        assert_eq!(super::resolve_worker_count(None, Some("0")), machine);
        assert_eq!(super::resolve_worker_count(None, None), machine);
        // Ceiling is clamped.
        assert_eq!(
            super::resolve_worker_count(Some(100_000), None),
            super::MAX_WORKERS
        );
    }

    #[test]
    fn set_num_threads_reconfigures_and_resets() {
        with_workers(3, || {
            assert_eq!(super::current_num_threads(), 3);
            super::set_num_threads(5);
            assert_eq!(super::current_num_threads(), 5);
        });
    }

    #[test]
    fn worker_indices_are_in_range_and_external_thread_has_none() {
        assert_eq!(super::current_worker_index(), None);
        with_workers(4, || {
            let seen = Mutex::new(Vec::new());
            let jobs: Vec<usize> = (0..64).collect();
            jobs.into_par_iter().for_each(|_| {
                if let Some(idx) = super::current_worker_index() {
                    assert!(idx < 4);
                    seen.lock().unwrap().push(idx);
                }
                std::thread::yield_now();
            });
            // The submitting thread helps, so not every item reports an
            // index, but pool workers must have executed some of the 64.
            assert!(!seen.lock().unwrap().is_empty());
        });
        assert_eq!(super::current_worker_index(), None);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        with_workers(4, || {
            let result = std::panic::catch_unwind(|| {
                let jobs: Vec<usize> = (0..32).collect();
                jobs.into_par_iter().for_each(|j| {
                    if j == 17 {
                        panic!("boom from item 17");
                    }
                });
            });
            assert!(result.is_err(), "panic must reach the submitter");
            // The pool keeps working after a panicked region.
            let total = AtomicUsize::new(0);
            let jobs: Vec<usize> = (1..=100).collect();
            jobs.into_par_iter().for_each(|j| {
                total.fetch_add(j, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 100 * 101 / 2);
        });
    }

    #[test]
    fn nested_regions_split_across_workers() {
        with_workers(4, || {
            let mut data = vec![0u64; 256];
            data.par_chunks_mut(32).enumerate().for_each(|(o, chunk)| {
                // Nested region from inside a pool task: must complete and
                // produce the same result as sequential execution.
                chunk.par_chunks_mut(8).enumerate().for_each(|(i, c)| {
                    c.fill((o * 10 + i) as u64);
                });
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, ((i / 32) * 10 + (i % 32) / 8) as u64);
            }
        });
    }

    #[test]
    fn steal_seed_sweep_is_bit_identical() {
        with_workers(4, || {
            let oracle: Vec<u64> = (0..128u64).map(|i| i.wrapping_mul(i ^ 0x5bd1)).collect();
            for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
                super::set_steal_seed(seed);
                let mut out = vec![0u64; 128];
                out.par_chunks_mut(4).enumerate().for_each(|(c, chunk)| {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        let i = (c * 4 + j) as u64;
                        *x = i.wrapping_mul(i ^ 0x5bd1);
                    }
                });
                assert_eq!(out, oracle, "steal seed {seed} changed results");
            }
            super::set_steal_seed(0);
        });
    }

    #[test]
    fn concurrent_regions_from_many_threads() {
        with_workers(3, || {
            std::thread::scope(|scope| {
                for t in 0..6 {
                    scope.spawn(move || {
                        for round in 0..20 {
                            let total = AtomicUsize::new(0);
                            let jobs: Vec<usize> = (0..40).collect();
                            jobs.into_par_iter().for_each(|j| {
                                total.fetch_add(j + t + round, Ordering::Relaxed);
                            });
                            let expect = (0..40).sum::<usize>() + 40 * (t + round);
                            assert_eq!(total.load(Ordering::Relaxed), expect);
                        }
                    });
                }
            });
        });
    }

    #[test]
    fn reconfigure_during_active_regions_loses_no_items() {
        let _guard = POOL_CONFIG
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        super::set_num_threads(4);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let done = &done;
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..25 {
                        let jobs: Vec<usize> = (0..16).collect();
                        jobs.into_par_iter().for_each(|_| {
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
            // Churn the pool while regions are in flight: old generations
            // must still drain every task.
            scope.spawn(|| {
                for n in [2usize, 4, 3, 2, 4] {
                    super::set_num_threads(n);
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(done.load(Ordering::Relaxed), 4 * 25 * 16);
        super::set_num_threads(0);
    }
}
