//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access, so this crate provides the
//! (small) subset of rayon's parallel-iterator API the workspace actually
//! uses, implemented on `std::thread::scope`:
//!
//! * [`ParallelSlice::par_chunks`] / [`ParallelSliceMut::par_chunks_mut`]
//! * [`IntoParallelRefMutIterator::par_iter_mut`] (slices and `Vec`)
//! * [`IntoParallelIterator::into_par_iter`] (`Vec`)
//! * adaptors [`ParIter::zip`], [`ParIter::enumerate`], terminal
//!   [`ParIter::for_each`]
//!
//! Work items are materialised up front (every call site chunks a slice, so
//! item counts are small and coarse) and drained from a shared queue by up
//! to `available_parallelism()` scoped worker threads. Nested parallel
//! regions run sequentially on the worker that encounters them, which keeps
//! thread counts bounded without a work-stealing scheduler.

use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    /// Set inside pool workers so nested `for_each` calls stay sequential.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a fresh parallel region may use.
///
/// Cached after the first call: `std::thread::available_parallelism`
/// re-reads cgroup limits from the filesystem on every invocation (tens
/// of microseconds inside containers), which a dispatch check on the hot
/// path of every small GEMM cannot afford.
pub fn current_num_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// A materialised "parallel" iterator: a list of independent work items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Pair items positionally with another parallel iterator
    /// (truncates to the shorter side, like rayon's `zip`).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Attach the item index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Run `f` over every item, distributing items across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_parallel(self.items, &f);
    }
}

fn run_parallel<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: &F) {
    let workers = current_num_threads().min(items.len());
    if workers <= 1 || IN_POOL.with(|p| p.get()) {
        for item in items {
            f(item);
        }
        return;
    }
    let queue = Mutex::new(items.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_POOL.with(|p| p.set(true));
                loop {
                    let item = queue.lock().unwrap().next();
                    match item {
                        Some(it) => f(it),
                        None => break,
                    }
                }
            });
        }
    });
}

/// `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Split into `size`-element chunks (last may be shorter).
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into disjoint mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size != 0, "chunk size must be non-zero");
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

/// `par_iter_mut` over collections of independent elements.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type yielded to workers.
    type Item: Send;
    /// One item per element, mutably borrowed.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `into_par_iter` over owned collections.
pub trait IntoParallelIterator {
    /// Element type yielded to workers.
    type Item: Send;
    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefMutIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_zip_enumerate() {
        let mut dst = vec![0i32; 100];
        let src: Vec<i32> = (0..100).collect();
        dst.par_chunks_mut(7)
            .zip(src.par_chunks(7))
            .enumerate()
            .for_each(|(idx, (d, s))| {
                for (x, &y) in d.iter_mut().zip(s) {
                    *x = y * 2 + idx as i32;
                }
            });
        for (i, &x) in dst.iter().enumerate() {
            assert_eq!(x, (i as i32) * 2 + (i / 7) as i32);
        }
    }

    #[test]
    fn nested_regions_complete() {
        let mut data = vec![0u64; 64];
        data.par_chunks_mut(8).enumerate().for_each(|(o, chunk)| {
            let mut inner = [0u64; 16];
            inner.par_chunks_mut(4).for_each(|c| c.fill(1));
            chunk.fill(o as u64 + inner.iter().sum::<u64>());
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, (i / 8) as u64 + 16);
        }
    }

    #[test]
    fn into_par_iter_runs_all() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let total = AtomicUsize::new(0);
        let jobs: Vec<usize> = (1..=50).collect();
        jobs.into_par_iter().for_each(|j| {
            total.fetch_add(j, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 50 * 51 / 2);
    }
}
