//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this crate implements
//! the subset of proptest the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(..)]` attribute and multiple `#[test]` functions);
//! * strategies: [`any`], integer/float [`Range`](std::ops::Range) and
//!   [`RangeInclusive`](std::ops::RangeInclusive), [`Just`], and
//!   [`Strategy::prop_map`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Sampling is a deterministic SplitMix64 stream seeded from the test's
//! name, so failures reproduce exactly across runs. Integer `any` sampling
//! is lightly biased toward boundary values (0, ±1, MIN, MAX), which is
//! where the kernels under test historically break.

/// Why a generated case did not count as a passing case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test panics with this message.
    Fail(String),
}

/// Result type each generated case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (only the `cases` knob is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// Deterministic SplitMix64 generator.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for a primitive type; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — sample the whole domain of `T`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// Types `any` can sample.
pub trait ArbitrarySample {
    /// Draw one value covering the full domain.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl ArbitrarySample for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> $t {
                // 1-in-8 boundary bias: the interesting kernel bugs live at
                // 0 / ±1 / MIN / MAX.
                if rng.next_u64() % 8 == 0 {
                    let edges = [0 as $t, 1 as $t, (0 as $t).wrapping_sub(1),
                                 <$t>::MIN, <$t>::MAX,
                                 <$t>::MIN.wrapping_add(1), <$t>::MAX.wrapping_sub(1)];
                    edges[(rng.next_u64() % edges.len() as u64) as usize]
                } else {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide as $t
                }
            }
        }
    )+};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl<T: ArbitrarySample, const N: usize> ArbitrarySample for [T; N] {
    fn arbitrary_sample(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary_sample(rng))
    }
}

impl ArbitrarySample for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> f64 {
        // Finite doubles spread over a wide exponent range.
        let mant = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 1200) as i32 - 600;
        mant * 2f64.powi(exp)
    }
}

impl ArbitrarySample for f32 {
    fn arbitrary_sample(rng: &mut TestRng) -> f32 {
        let mant = rng.unit_f64() as f32 * 2.0 - 1.0;
        let exp = (rng.next_u64() % 150) as i32 - 75;
        mant * 2f32.powi(exp)
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $wide;
                (self.start as $wide).wrapping_add(off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as $wide;
                (lo as $wide).wrapping_add(off) as $t
            }
        }
    )+};
}

// The widened type must hold any span of the base type, so 64-bit bases
// widen to 128 bits. (i128/u128 ranges wider than 2^127 stay unsupported.)
impl_range_int!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i128, isize => i128,
    u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128,
    i128 => i128, u128 => u128
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Fixed-length `Vec` of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Glob-import surface matching real proptest call sites.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Define property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = config.cases.saturating_mul(32).max(256);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> $crate::TestCaseResult { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempts, msg)
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest: all {} generated cases were rejected by prop_assume!",
                attempts
            );
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..=5, z in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z), "z={}", z);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "n={}", n);
        }

        #[test]
        fn prop_map_applies(d in (0u8..10).prop_map(|v| v as i32 * 3)) {
            prop_assert!(d % 3 == 0 && d < 30);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = super::TestRng::from_name("t");
        let mut b = super::TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn any_hits_edges_eventually() {
        let mut rng = super::TestRng::from_name("edges");
        let strat = any::<i32>();
        let mut saw_min = false;
        for _ in 0..10_000 {
            if Strategy::sample(&strat, &mut rng) == i32::MIN {
                saw_min = true;
            }
        }
        assert!(saw_min, "boundary bias should surface i32::MIN");
    }
}
