//! Property tests pinning the serving runtime's core contract: **any**
//! interleaving of submissions — mixed sizes straddling the intensity
//! crossover, shared and unique `Arc` operands, multiple submitter
//! threads, any worker count — yields results bit-identical to the
//! per-call sequential [`Ozaki2::dgemm`] oracle. Coalescing, batching,
//! caching and scheduling may change *when* work happens, never *what*
//! is computed.

use gemm_dense::workload::phi_matrix_f64;
use gemm_dense::MatF64;
use gemm_serve::{GemmRequest, Server};
use ozaki2::{Mode, Ozaki2};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Worker counts the property sweeps: the no-thread fast path and a
/// stealing pool.
const WORKER_SWEEP: [usize; 2] = [1, 4];

/// The work-stealing pool is process-global; tests that reconfigure it
/// serialise here (same pattern as `gemm_batch`'s worker_matrix tests).
static POOL_CONFIG: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL_CONFIG.lock().unwrap_or_else(|e| e.into_inner())
}

/// One generated submission: indices into the shared operand pools.
#[derive(Clone, Debug)]
struct Job {
    a_idx: usize,
    b_idx: usize,
    tenant: usize,
}

/// Build the operand pools: `n_small` small matrices per side (submitted
/// repeatedly — the shared-`Arc` weight-stationary pattern) plus, when
/// `with_large`, one high-intensity pair above the crossover.
fn operand_pools(
    n_small: usize,
    with_large: bool,
    seed: u64,
) -> (Vec<Arc<MatF64>>, Vec<Arc<MatF64>>) {
    // Small: m x 16 · 16 x n with m, n ∈ 6..=14 — intensity ~2, coalesces.
    let mut a_pool: Vec<Arc<MatF64>> = (0..n_small)
        .map(|i| {
            Arc::new(phi_matrix_f64(
                6 + (seed as usize + i) % 9,
                16,
                0.5,
                seed + i as u64,
                0,
            ))
        })
        .collect();
    let mut b_pool: Vec<Arc<MatF64>> = (0..n_small)
        .map(|i| {
            Arc::new(phi_matrix_f64(
                16,
                6 + (seed as usize + 3 * i) % 9,
                0.5,
                seed + 50 + i as u64,
                1,
            ))
        })
        .collect();
    if with_large {
        // 192³ at N = 8: intensity 2Ns/(9N+8) ≈ 38 > 32 ⇒ the solo
        // striped path runs inside the same trace.
        a_pool.push(Arc::new(phi_matrix_f64(192, 192, 0.5, seed + 200, 0)));
        b_pool.push(Arc::new(phi_matrix_f64(192, 192, 0.5, seed + 201, 1)));
    }
    (a_pool, b_pool)
}

/// Submit `jobs` from `n_threads` submitter threads (striped assignment)
/// against `server`, wait out every handle, and return the results in
/// job order.
fn run_trace(
    server: &Server,
    jobs: &[Job],
    pools: &(Vec<Arc<MatF64>>, Vec<Arc<MatF64>>),
    n_threads: usize,
) -> Vec<MatF64> {
    let (a_pool, b_pool) = pools;
    let mut results: Vec<Option<MatF64>> = (0..jobs.len()).map(|_| None).collect();
    let collected: Vec<(usize, MatF64)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..n_threads)
            .map(|t| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for (j, job) in jobs.iter().enumerate().skip(t).step_by(n_threads) {
                        let req = GemmRequest::new(
                            format!("tenant-{}", job.tenant),
                            a_pool[job.a_idx].clone(),
                            b_pool[job.b_idx].clone(),
                        );
                        let handle = server.submit(req).expect("trace jobs always admit");
                        out.push((j, handle));
                    }
                    out.into_iter()
                        .map(|(j, h)| (j, h.wait().expect("trace jobs always complete")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("submitter thread"))
            .collect()
    });
    for (j, c) in collected {
        results[j] = Some(c);
    }
    results
        .into_iter()
        .map(|r| r.expect("every job returned"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving of mixed-size shared/unique-operand submissions,
    /// from several threads, at W ∈ {1, 4}, is bitwise-equal to running
    /// the same products sequentially through `Ozaki2::dgemm`.
    #[test]
    fn any_interleaving_matches_sequential_dgemm(
        n_jobs in 1usize..=24,
        n_small in 1usize..=4,
        with_large in any::<bool>(),
        n_threads in 1usize..=3,
        window_us in 0u64..800,
        max_batch in 1usize..=8,
        seed in 0u64..1000,
    ) {
        let nmod = 8usize;
        let pools = operand_pools(n_small, with_large, seed);
        let (a_pool, b_pool) = &pools;
        // Deterministic pseudo-random trace over the pools; when a large
        // pair exists it is submitted at least once, mid-trace.
        let mut jobs: Vec<Job> = (0..n_jobs)
            .map(|j| {
                let r = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((j as u64).wrapping_mul(1442695040888963407));
                Job {
                    a_idx: (r % n_small as u64) as usize,
                    b_idx: ((r >> 16) % n_small as u64) as usize,
                    tenant: ((r >> 32) % 3) as usize,
                }
            })
            .collect();
        if with_large {
            jobs.insert(n_jobs / 2, Job { a_idx: n_small, b_idx: n_small, tenant: 2 });
        }

        let emu = Ozaki2::new(nmod, Mode::Fast);
        let oracle: Vec<MatF64> = jobs
            .iter()
            .map(|job| emu.dgemm(&a_pool[job.a_idx], &b_pool[job.b_idx]))
            .collect();

        let _guard = pool_lock();
        for w in WORKER_SWEEP {
            rayon::set_num_threads(w);
            let server = Server::builder(nmod, Mode::Fast)
                .coalesce_window(Duration::from_micros(window_us))
                .max_batch(max_batch)
                .build();
            let got = run_trace(&server, &jobs, &pools, n_threads);
            let stats = server.stats();
            prop_assert_eq!(stats.submitted, jobs.len() as u64);
            prop_assert_eq!(stats.completed, jobs.len() as u64);
            server.shutdown();
            for (j, (g, o)) in got.iter().zip(&oracle).enumerate() {
                prop_assert_eq!(g, o, "job {} diverged at W={}", j, w);
            }
        }
        rayon::set_num_threads(0);
    }

    /// Pause/resume burst coalescing never changes results either: a
    /// whole paused backlog released at once (maximum batch pressure)
    /// stays bitwise-equal to the sequential oracle at W ∈ {1, 4}.
    #[test]
    fn paused_burst_matches_sequential_dgemm(
        n_jobs in 1usize..=16,
        n_small in 1usize..=3,
        max_batch in 1usize..=6,
        seed in 0u64..1000,
    ) {
        let nmod = 6usize;
        let (a_pool, b_pool) = operand_pools(n_small, false, seed);
        let jobs: Vec<(usize, usize)> = (0..n_jobs)
            .map(|j| {
                let r = seed.wrapping_add(j as u64).wrapping_mul(0x9e3779b97f4a7c15);
                ((r % n_small as u64) as usize, ((r >> 8) % n_small as u64) as usize)
            })
            .collect();
        let emu = Ozaki2::new(nmod, Mode::Fast);
        let oracle: Vec<MatF64> = jobs
            .iter()
            .map(|&(ai, bi)| emu.dgemm(&a_pool[ai], &b_pool[bi]))
            .collect();

        let _guard = pool_lock();
        for w in WORKER_SWEEP {
            rayon::set_num_threads(w);
            let server = Server::builder(nmod, Mode::Fast)
                .max_batch(max_batch)
                .queue_depth(n_jobs.max(1))
                .build();
            server.pause();
            let handles: Vec<_> = jobs
                .iter()
                .map(|&(ai, bi)| {
                    server
                        .submit(GemmRequest::new("burst", a_pool[ai].clone(), b_pool[bi].clone()))
                        .expect("admitted while paused")
                })
                .collect();
            server.resume();
            for (j, h) in handles.into_iter().enumerate() {
                let c = h.wait().expect("burst completes");
                prop_assert_eq!(&c, &oracle[j], "burst job {} diverged at W={}", j, w);
            }
        }
        rayon::set_num_threads(0);
    }
}
