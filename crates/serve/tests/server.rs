//! Unit tests for the serving runtime's policy machinery: backpressure
//! at the configured queue depth, coalesce-window flush on timeout,
//! deadline shedding, admission validation, and exact tenant/server
//! accounting. (Bit-identicality across interleavings and worker counts
//! lives in `tests/proptests.rs`.)

use gemm_dense::workload::phi_matrix_f64;
use gemm_dense::MatF64;
use gemm_serve::{GemmRequest, JobError, Server, SubmitError};
use ozaki2::{EmulationError, Mode, Ozaki2};
use std::sync::Arc;
use std::time::Duration;

fn mat(rows: usize, cols: usize, seed: u64) -> Arc<MatF64> {
    Arc::new(phi_matrix_f64(rows, cols, 0.5, seed, 0))
}

/// `try_submit` reports `QueueFull` exactly at the configured depth, the
/// blocking `submit` path still admits after capacity frees up, and the
/// rejection is charged to the submitting tenant.
#[test]
fn try_submit_hits_queue_full_at_configured_depth() {
    let server = Server::builder(6, Mode::Fast).queue_depth(2).build();
    server.pause(); // dispatcher stops popping: occupancy is deterministic
    let w = mat(12, 8, 1);
    let mk = |s: u64| GemmRequest::new("t0", mat(8, 12, 10 + s), w.clone());
    let h0 = server.try_submit(mk(0)).expect("depth 2: first admits");
    let h1 = server.try_submit(mk(1)).expect("depth 2: second admits");
    assert_eq!(server.queue_len(), 2);
    match server.try_submit(mk(2)) {
        Err(SubmitError::QueueFull) => {}
        other => panic!("expected QueueFull, got {:?}", other.map(|_| ())),
    }
    let stats = server.tenant_stats("t0").expect("tenant exists");
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.rejected, 1);
    server.resume();
    // Capacity frees as the dispatcher drains; blocking submit admits.
    let h2 = server.submit(mk(3)).expect("blocking submit admits");
    for h in [h0, h1, h2] {
        h.wait().expect("drained jobs complete");
    }
    let stats = server.tenant_stats("t0").expect("tenant exists");
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
}

/// A lone small job must not wait forever for companions: the coalesce
/// window flushes it as a solo round.
#[test]
fn coalesce_window_flushes_a_lone_small_job_on_timeout() {
    let server = Server::builder(6, Mode::Fast)
        .coalesce_window(Duration::from_millis(20))
        .max_batch(64)
        .build();
    let a = mat(10, 14, 3);
    let b = mat(14, 9, 4);
    let h = server
        .submit(GemmRequest::new("solo", a.clone(), b.clone()))
        .expect("admitted");
    let c = h.wait().expect("window flush completes the job");
    assert_eq!(c, Ozaki2::new(6, Mode::Fast).dgemm(&a, &b));
    let stats = server.stats();
    assert_eq!(stats.solo, 1);
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.rounds, 1);
}

/// Jobs buffered while paused coalesce into one round on resume; a full
/// round (pending == max_batch) flushes without waiting for the window.
#[test]
fn paused_submissions_coalesce_into_one_round() {
    let server = Server::builder(6, Mode::Fast)
        .coalesce_window(Duration::from_millis(50))
        .max_batch(8)
        .build();
    server.pause();
    let w = mat(16, 12, 7);
    let handles: Vec<_> = (0..5u64)
        .map(|s| {
            server
                .submit(GemmRequest::new("inf", mat(8, 16, 20 + s), w.clone()))
                .expect("admitted")
        })
        .collect();
    server.resume();
    for h in handles {
        h.wait().expect("coalesced round completes");
    }
    let stats = server.stats();
    assert_eq!(stats.coalesced, 5, "all five jobs rode one round");
    assert_eq!(stats.solo, 0);
    assert_eq!(stats.rounds, 1);
    assert_eq!(stats.peak_queue_depth, 5);
}

/// `max_batch` chunks an oversized backlog into full rounds.
#[test]
fn max_batch_chunks_the_backlog() {
    let server = Server::builder(5, Mode::Fast)
        .coalesce_window(Duration::from_millis(30))
        .max_batch(4)
        .build();
    server.pause();
    let w = mat(12, 10, 11);
    let handles: Vec<_> = (0..10u64)
        .map(|s| {
            server
                .submit(GemmRequest::new("bulk", mat(6, 12, 40 + s), w.clone()))
                .expect("admitted")
        })
        .collect();
    server.resume();
    for h in handles {
        h.wait().expect("chunked rounds complete");
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 10);
    // 4 + 4 full rounds, then a window-flushed pair.
    assert_eq!(stats.rounds, 3);
    assert_eq!(stats.coalesced, 10);
}

/// An admitted job that out-waits its deadline is shed, not executed,
/// and the shed is charged to its tenant.
#[test]
fn overdue_jobs_are_shed_with_queue_residence_time() {
    let server = Server::builder(6, Mode::Fast).build();
    server.pause();
    let h = server
        .submit(
            GemmRequest::new("late", mat(8, 8, 1), mat(8, 8, 2)).deadline(Duration::from_nanos(1)),
        )
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(5));
    server.resume();
    match h.wait() {
        Err(JobError::Shed { queued_for }) => {
            assert!(queued_for >= Duration::from_millis(5));
        }
        other => panic!("expected Shed, got {:?}", other.map(|_| ())),
    }
    let stats = server.tenant_stats("late").expect("tenant exists");
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(server.stats().shed, 1);
}

/// The server-level `default_deadline` applies to requests without one.
#[test]
fn default_deadline_sheds_requests_without_their_own() {
    let server = Server::builder(6, Mode::Fast)
        .default_deadline(Duration::from_nanos(1))
        .build();
    server.pause();
    let h = server
        .submit(GemmRequest::new("d", mat(8, 8, 1), mat(8, 8, 2)))
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(2));
    server.resume();
    assert!(matches!(h.wait(), Err(JobError::Shed { .. })));
}

/// Malformed requests are rejected at the door — shape mismatch and
/// non-finite operands never reach a coalesced round.
#[test]
fn admission_rejects_invalid_requests() {
    let server = Server::builder(6, Mode::Fast).build();
    // Inner dimensions disagree: 8x12 · 8x12.
    let err = server
        .submit(GemmRequest::new("bad", mat(8, 12, 1), mat(8, 12, 2)))
        .expect_err("shape mismatch must not admit");
    assert_eq!(err, SubmitError::Invalid(EmulationError::ShapeMismatch));
    // A NaN operand.
    let mut poisoned = phi_matrix_f64(8, 8, 0.5, 3, 0);
    poisoned.as_mut_slice()[5] = f64::NAN;
    let err = server
        .submit(GemmRequest::new("bad", Arc::new(poisoned), mat(8, 8, 4)))
        .expect_err("non-finite operand must not admit");
    assert!(matches!(
        err,
        SubmitError::Invalid(EmulationError::NonFiniteInput { index: 5, .. })
    ));
    let stats = server.tenant_stats("bad").expect("tenant exists");
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.submitted, 0);
}

/// A high-intensity job takes the solo striped path and still matches
/// the per-call emulator bitwise.
#[test]
fn large_jobs_dispatch_solo_and_stay_bit_identical() {
    let s = 192; // above the inter/intra crossover at N = 8
    let server = Server::builder(8, Mode::Fast).build();
    let a = mat(s, s, 5);
    let b = Arc::new(phi_matrix_f64(s, s, 0.5, 6, 1));
    let h = server
        .submit(GemmRequest::new("hpc", a.clone(), b.clone()))
        .expect("admitted");
    let c = h.wait().expect("large job completes");
    assert_eq!(c, Ozaki2::new(8, Mode::Fast).dgemm(&a, &b));
    let stats = server.stats();
    assert_eq!(stats.solo, 1);
    assert_eq!(stats.coalesced, 0);
}

/// Exact accounting: submissions, completions, bytes, residue-GEMMs and
/// operand-reuse hits per tenant, asserted with equality.
#[test]
fn tenant_accounting_is_exact() {
    let nmod = 7;
    let server = Server::builder(nmod, Mode::Fast).build();
    server.pause();
    let w = mat(16, 12, 70); // t0's stationary weights, submitted 3x
    let mut handles = Vec::new();
    for s in 0..3u64 {
        handles.push(
            server
                .submit(GemmRequest::new("t0", mat(8, 16, 80 + s), w.clone()))
                .expect("admitted"),
        );
    }
    for s in 0..2u64 {
        handles.push(
            server
                .submit(GemmRequest::new(
                    "t1",
                    mat(10, 14, 90 + s),
                    mat(14, 6, 95 + s),
                ))
                .expect("admitted"),
        );
    }
    server.resume();
    for h in handles {
        h.wait().expect("all jobs complete");
    }
    let t0 = server.tenant_stats("t0").expect("t0 exists");
    assert_eq!(t0.submitted, 3);
    assert_eq!(t0.completed, 3);
    assert_eq!(t0.rejected, 0);
    assert_eq!(t0.shed, 0);
    assert_eq!(t0.residue_gemms, 3 * nmod as u64);
    // Per product: A 8x16, B 16x12, C 8x12, all f64.
    assert_eq!(t0.bytes, 3 * 8 * (8 * 16 + 16 * 12 + 8 * 12) as u64);
    // The shared weight matrix was re-admitted twice after its first
    // sighting; the unique activations never hit.
    assert_eq!(t0.cache_hits, 2);
    let t1 = server.tenant_stats("t1").expect("t1 exists");
    assert_eq!(t1.submitted, 2);
    assert_eq!(t1.completed, 2);
    assert_eq!(t1.cache_hits, 0);
    assert_eq!(
        server
            .tenants()
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        ["t0", "t1"]
    );
    let totals = server.stats();
    assert_eq!(totals.submitted, 5);
    assert_eq!(totals.completed, 5);
}

/// Dropping the server drains every admitted job before the dispatcher
/// exits — no handle is left dangling.
#[test]
fn shutdown_drains_admitted_jobs() {
    let server = Server::builder(6, Mode::Fast)
        .coalesce_window(Duration::from_millis(100))
        .build();
    server.pause();
    let w = mat(12, 10, 50);
    let handles: Vec<_> = (0..4u64)
        .map(|s| {
            server
                .submit(GemmRequest::new("drain", mat(6, 12, 60 + s), w.clone()))
                .expect("admitted")
        })
        .collect();
    drop(server); // shutdown: un-pauses, drains, joins
    for h in handles {
        h.wait().expect("drained job completed during shutdown");
    }
}

/// `close()` wakes a submitter blocked on a full queue with
/// `SubmitError::Shutdown` instead of leaving it hanging, while the
/// already-admitted job still drains.
#[test]
fn close_wakes_blocked_submitters_and_drains() {
    let server = Server::builder(6, Mode::Fast).queue_depth(1).build();
    server.pause();
    let filler = server
        .submit(GemmRequest::new("t", mat(8, 8, 1), mat(8, 8, 2)))
        .expect("fills the depth-1 queue");
    let result = std::thread::scope(|s| {
        let blocked = s.spawn(|| server.submit(GemmRequest::new("t", mat(8, 8, 3), mat(8, 8, 4))));
        // Give the submitter time to actually block on the full queue.
        std::thread::sleep(Duration::from_millis(10));
        server.close();
        blocked.join().expect("submitter thread exits")
    });
    match result {
        Err(SubmitError::Shutdown) => {}
        other => panic!("expected Shutdown, got {:?}", other.map(|_| ())),
    }
    filler.wait().expect("queued job drained on close");
    // And a closed server refuses new work outright.
    assert_eq!(
        server
            .try_submit(GemmRequest::new("t", mat(8, 8, 5), mat(8, 8, 6)))
            .map(|_| ())
            .expect_err("closed server refuses"),
        SubmitError::Shutdown
    );
}

/// `is_done` / `try_wait` poll without blocking and hand the result
/// over exactly once.
#[test]
fn handle_polling_works() {
    let server = Server::builder(6, Mode::Fast).build();
    let a = mat(8, 8, 1);
    let b = mat(8, 8, 2);
    let h = server
        .submit(GemmRequest::new("poll", a.clone(), b.clone()))
        .expect("admitted");
    assert_eq!(h.tenant(), "poll");
    // Poll until done (bounded by the suite timeout, practically ms).
    let mut h = h;
    let result = loop {
        match h.try_wait() {
            Ok(result) => break result,
            Err(pending) => {
                h = pending;
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    };
    assert_eq!(
        result.expect("completes"),
        Ozaki2::new(6, Mode::Fast).dgemm(&a, &b)
    );
}

/// A server switched to the fma-bf16 backend serves results bit-identical
/// to a per-call emulator on the same backend — including through the
/// prepared-operand cache (two tenants sharing one weight matrix), which
/// must key on the backend and never serve the INT8 panels.
#[test]
fn fma_backend_server_is_bit_identical_to_its_emulator() {
    use ozaki2::BackendKind;
    let server = Server::builder(8, Mode::Fast)
        .backend(BackendKind::FmaBf16)
        .build();
    assert_eq!(server.backend(), BackendKind::FmaBf16);
    let w = mat(32, 24, 7);
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let a = mat(16, 32, t);
            server
                .submit(GemmRequest::new(format!("t{t}"), a, w.clone()))
                .expect("admitted")
        })
        .collect();
    let emu = Ozaki2::new(8, Mode::Fast).with_backend(BackendKind::FmaBf16);
    for (t, h) in handles.into_iter().enumerate() {
        let a = phi_matrix_f64(16, 32, 0.5, t as u64, 0);
        assert_eq!(h.wait().expect("served"), emu.dgemm(&a, &w));
    }
}

/// The advisor-driven constructor resolves backend × N per pool: a
/// DGEMM-level target is only reachable on the INT8 pool, so the advised
/// server must land there with the paper's sweet-spot N; an impossible
/// target surfaces `AccuracyUnreachable`.
#[test]
fn advised_builder_resolves_backend_and_n() {
    use ozaki2::BackendKind;
    let server = Server::advised_builder(
        gemm_perfmodel::gh200(),
        4096,
        4096,
        1024,
        2f64.powi(-52),
        Mode::Fast,
    )
    .expect("DGEMM level reachable")
    .build();
    assert_eq!(server.backend(), BackendKind::Int8);
    assert_eq!(server.n_moduli(), 15, "§5.1 sweet spot at k=1024");
    assert!(matches!(
        Server::advised_builder(gemm_perfmodel::gh200(), 4096, 4096, 1024, 1e-40, Mode::Fast),
        Err(EmulationError::AccuracyUnreachable { .. })
    ));
}
