//! Submission-side types: [`GemmRequest`], [`JobHandle`], and the error
//! taxonomy ([`SubmitError`] for admission, [`JobError`] for execution).

use gemm_dense::MatF64;
use ozaki2::EmulationError;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One emulated-DGEMM product submitted to a [`crate::Server`]:
/// `C = A · B` on behalf of a named tenant.
///
/// Operands are `Arc`-shared so a weight-stationary tenant can submit the
/// same prepared matrix thousands of times without copying it — operand
/// *identity* (pointer + shape) is what the server's coalescer and the
/// underlying prepared-operand cache key on, so resubmitting the same
/// `Arc` is what makes the Algorithm 1 front end amortize.
///
/// # Examples
/// ```
/// use gemm_dense::workload::phi_matrix_f64;
/// use gemm_serve::GemmRequest;
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let weights = Arc::new(phi_matrix_f64(64, 64, 0.5, 7, 1));
/// let acts = Arc::new(phi_matrix_f64(8, 64, 0.5, 1, 0));
/// let req = GemmRequest::new("tenant-a", acts, weights.clone())
///     .deadline(Duration::from_millis(50));
/// assert_eq!(req.tenant(), "tenant-a");
/// assert_eq!(req.shape(), (8, 64, 64)); // (m, k, n)
/// ```
#[derive(Clone)]
pub struct GemmRequest {
    pub(crate) tenant: Arc<str>,
    pub(crate) a: Arc<MatF64>,
    pub(crate) b: Arc<MatF64>,
    pub(crate) deadline: Option<Duration>,
}

impl GemmRequest {
    /// A request computing `a · b` for `tenant`. The shape is validated
    /// at submission, not here.
    pub fn new(tenant: impl Into<Arc<str>>, a: Arc<MatF64>, b: Arc<MatF64>) -> Self {
        Self {
            tenant: tenant.into(),
            a,
            b,
            deadline: None,
        }
    }

    /// Maximum time this request may wait in the queue, measured from
    /// submission. A request still queued past its deadline is **shed**
    /// (completed with [`JobError::Shed`]) instead of executed — the
    /// overload degradation knob. Overrides the server's
    /// `default_deadline`; requests without either never shed.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// The submitting tenant's name.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Product shape `(m, k, n)`: `A` is `m x k`, `B` is `k x n`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.a.rows(), self.a.cols(), self.b.cols())
    }

    /// Operand + output footprint in bytes (what [`crate::TenantStats`]
    /// accounts per completed product).
    pub fn bytes(&self) -> u64 {
        let (m, k, n) = self.shape();
        (8 * (m * k + k * n + m * n)) as u64
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The bounded queue is at its configured depth (`try_submit` only;
    /// the blocking `submit` waits instead). This is the backpressure
    /// signal: the caller should retry later, slow down, or shed.
    QueueFull,
    /// The request is malformed: inner dimensions disagree
    /// ([`EmulationError::ShapeMismatch`]) or an operand holds a NaN or
    /// infinity ([`EmulationError::NonFiniteInput`]). Validated at
    /// admission so one tenant's bad payload cannot poison a coalesced
    /// round of another's.
    Invalid(EmulationError),
    /// The server is shutting down and no longer admits work.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is at its configured depth"),
            SubmitError::Invalid(e) => write!(f, "invalid request: {e}"),
            SubmitError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted job did not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum JobError {
    /// The job sat in the queue past its deadline and was shed without
    /// executing (overload degradation). `queued_for` is how long it
    /// waited before the dispatcher gave up on it.
    Shed {
        /// Queue residence time at the moment the job was shed.
        queued_for: Duration,
    },
    /// The emulation pipeline rejected or failed the job.
    Emulation(EmulationError),
    /// The execution round panicked (an internal engine bug — the
    /// dispatcher survives and the message is preserved here).
    Internal(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Shed { queued_for } => {
                write!(f, "shed after {queued_for:?} in queue (deadline exceeded)")
            }
            JobError::Emulation(e) => write!(f, "emulation failed: {e}"),
            JobError::Internal(msg) => write!(f, "execution round panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Shared completion cell between a [`JobHandle`] and the dispatcher.
pub(crate) struct JobCell {
    slot: Mutex<Option<Result<MatF64, JobError>>>,
    done: Condvar,
}

impl JobCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Complete the job (dispatcher side). Double completion is a bug.
    pub(crate) fn complete(&self, result: Result<MatF64, JobError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "job completed twice");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// The caller's side of one submitted job: block on [`JobHandle::wait`]
/// for the result, or poll with [`JobHandle::is_done`] /
/// [`JobHandle::try_wait`].
///
/// Results are **bit-identical** to `Ozaki2::dgemm` on the same operands
/// — coalescing, caching, and scheduling change when work happens, never
/// what is computed.
pub struct JobHandle {
    pub(crate) cell: Arc<JobCell>,
    pub(crate) tenant: Arc<str>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("tenant", &self.tenant)
            .field("done", &self.is_done())
            .finish()
    }
}

impl JobHandle {
    /// The tenant this job was submitted for.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Whether the result (or error) is ready; never blocks.
    pub fn is_done(&self) -> bool {
        self.cell
            .slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    /// Block until the job completes and return its result.
    pub fn wait(self) -> Result<MatF64, JobError> {
        let mut slot = self.cell.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cell.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking variant of [`JobHandle::wait`]: the result if ready,
    /// otherwise the handle back for a later attempt.
    pub fn try_wait(self) -> Result<Result<MatF64, JobError>, JobHandle> {
        {
            let mut slot = self.cell.slot.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(result) = slot.take() {
                return Ok(result);
            }
        }
        Err(self)
    }
}
