//! Accounting: per-tenant [`TenantStats`] and server-wide [`ServerStats`].
//!
//! Every counter is updated under one short-lived lock at well-defined
//! events (admission, shed, completion), so the numbers are **exact** —
//! test suites assert them with `assert_eq!`, not tolerances.

/// Per-tenant accounting, exact at every instant.
///
/// `submitted` counts admissions; `rejected` counts submissions refused
/// at the door (queue full or invalid); `shed` counts admitted jobs
/// abandoned past their deadline; `completed`/`failed` split the jobs
/// that reached execution. At quiescence
/// `submitted == completed + failed + shed` and the in-flight difference
/// is the queue residue.
///
/// # Examples
/// ```
/// use gemm_dense::workload::phi_matrix_f64;
/// use gemm_serve::{GemmRequest, Server};
/// use std::sync::Arc;
///
/// let server = Server::builder(8, ozaki2::Mode::Fast).build();
/// let w = Arc::new(phi_matrix_f64(16, 16, 0.5, 7, 1));
/// let mut handles = Vec::new();
/// for s in 0..3u64 {
///     let a = Arc::new(phi_matrix_f64(16, 16, 0.5, s, 0));
///     handles.push(server.submit(GemmRequest::new("t0", a, w.clone())).unwrap());
/// }
/// for h in handles {
///     h.wait().unwrap();
/// }
/// let stats = server.tenant_stats("t0").unwrap();
/// assert_eq!(stats.submitted, 3);
/// assert_eq!(stats.completed, 3);
/// assert_eq!(stats.residue_gemms, 3 * 8); // N plane-GEMMs per product
/// assert_eq!(stats.cache_hits, 2); // the shared B resubmitted twice
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Jobs executed to a bit-exact result.
    pub completed: u64,
    /// Submissions refused at admission (`QueueFull` from `try_submit`,
    /// or an invalid shape / non-finite operand).
    pub rejected: u64,
    /// Admitted jobs abandoned unexecuted because they out-waited their
    /// deadline (overload degradation; see `GemmRequest::deadline`).
    pub shed: u64,
    /// Jobs that reached execution and failed (emulation error or an
    /// internal panic).
    pub failed: u64,
    /// Operand + output bytes of completed products.
    pub bytes: u64,
    /// Residue-plane INT8 GEMMs executed for this tenant: `N` (the
    /// moduli count) per completed product. ABFT checksum or recovery
    /// re-runs are not counted — this is the useful work metric.
    pub residue_gemms: u64,
    /// Operand resubmissions: sides whose data identity (pointer +
    /// shape) had already been admitted before, i.e. the submissions
    /// the prepared-operand cache exists to make cheap. Two hits per
    /// request when both sides recur.
    pub cache_hits: u64,
}

/// Whole-server counters plus coalescing outcomes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted across all tenants.
    pub submitted: u64,
    /// Jobs completed across all tenants.
    pub completed: u64,
    /// Admission rejections across all tenants.
    pub rejected: u64,
    /// Deadline sheds across all tenants.
    pub shed: u64,
    /// Execution failures across all tenants.
    pub failed: u64,
    /// Execution rounds dispatched (a coalesced group, or one large job
    /// running with intra-GEMM stripes).
    pub rounds: u64,
    /// Jobs executed inside a coalesced round of ≥ 2 items.
    pub coalesced: u64,
    /// Jobs executed alone: every intensity-admitted large job, plus
    /// small jobs whose coalesce window closed with no companions.
    pub solo: u64,
    /// Highest queue occupancy observed at any admission.
    pub peak_queue_depth: usize,
}

impl ServerStats {
    /// Fraction of executed jobs that rode a coalesced round:
    /// `coalesced / (coalesced + solo)`, `0.0` before any execution.
    /// The tuning target of the coalesce window (see `docs/SERVING.md`).
    pub fn coalesce_rate(&self) -> f64 {
        let executed = self.coalesced + self.solo;
        if executed == 0 {
            0.0
        } else {
            self.coalesced as f64 / executed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_rate_handles_empty_and_partial() {
        let mut s = ServerStats::default();
        assert_eq!(s.coalesce_rate(), 0.0);
        s.coalesced = 3;
        s.solo = 1;
        assert_eq!(s.coalesce_rate(), 0.75);
    }
}
