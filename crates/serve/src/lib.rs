//! # gemm-serve — async many-tenant GEMM serving runtime
//!
//! Production matrix-engine traffic is many concurrent callers, not one
//! loop: inference tenants streaming small weight-stationary products,
//! the occasional large compute-bound GEMM, all against one machine.
//! This crate turns the batched Ozaki-II runtime
//! ([`gemm_batch::BatchedOzaki2`]) into a *service*:
//!
//! * **Submission queue** — [`Server::submit`] (blocking) and
//!   [`Server::try_submit`] ([`SubmitError::QueueFull`]) against a
//!   bounded queue: backpressure is a first-class, configurable
//!   boundary, not an OOM.
//! * **Intensity-driven coalescing** — every request's
//!   [`ozaki2::arithmetic_intensity`] is computed at admission. Jobs
//!   below the inter/intra crossover wait (up to a configurable window)
//!   to coalesce into shared-operand group rounds — weight-stationary
//!   tenants resubmitting the same `Arc`'d matrix share one prepared
//!   operand through the fingerprint-guarded cache — while jobs above
//!   it dispatch immediately with intra-GEMM stripe parallelism.
//! * **Deadline shedding** — overloaded queues degrade by abandoning
//!   jobs that out-wait their deadline ([`JobError::Shed`]) instead of
//!   serving everyone late.
//! * **Exact accounting** — per-tenant [`TenantStats`]
//!   (submitted/completed/rejected/shed, bytes, residue-GEMMs, operand
//!   cache hits) and server-wide [`ServerStats`] with the coalesce
//!   rate.
//!
//! Every served result is **bit-identical** to [`ozaki2::Ozaki2::dgemm`]
//! on the same operands — at any worker count, under any coalescing
//! outcome, and under any [`ozaki2::FaultPolicy`]. The operator's guide
//! lives in `docs/SERVING.md`.
//!
//! ```
//! use gemm_dense::workload::phi_matrix_f64;
//! use gemm_serve::{GemmRequest, Server};
//! use ozaki2::{Mode, Ozaki2};
//! use std::sync::Arc;
//!
//! let server = Server::builder(12, Mode::Fast).build();
//! let weights = Arc::new(phi_matrix_f64(48, 32, 0.5, 7, 1));
//! let acts = Arc::new(phi_matrix_f64(16, 48, 0.5, 1, 0));
//! let handle = server
//!     .submit(GemmRequest::new("tenant-a", acts.clone(), weights.clone()))
//!     .expect("admitted");
//! let c = handle.wait().expect("served");
//! assert_eq!(c, Ozaki2::new(12, Mode::Fast).dgemm(&acts, &weights));
//! ```

#![warn(missing_docs)]

mod request;
mod server;
mod stats;

pub use request::{GemmRequest, JobError, JobHandle, SubmitError};
pub use server::{Server, ServerBuilder};
pub use stats::{ServerStats, TenantStats};
