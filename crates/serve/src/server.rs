//! The serving runtime: bounded submission queue, intensity-driven
//! coalescing dispatcher, deadline shedding, and exact accounting.
//!
//! One dispatcher thread owns the policy. Submitters validate and
//! enqueue; the dispatcher pops, classifies each job by
//! [`ozaki2::arithmetic_intensity`] (computed at admission), coalesces
//! the low-intensity jobs into shared-operand [`gemm_batch`] group
//! rounds, and runs high-intensity jobs immediately with intra-GEMM
//! stripe parallelism. Execution itself happens on the process-global
//! work-stealing pool — the dispatcher thread only sequences rounds.

use crate::request::{GemmRequest, JobCell, JobError, JobHandle, SubmitError};
use crate::stats::{ServerStats, TenantStats};
use gemm_batch::{BatchedOzaki2, DEFAULT_CACHE_CAPACITY, INTENSITY_CROSSOVER};
use gemm_dense::MatF64;
use ozaki2::{arithmetic_intensity, BackendKind, EmulationError, FaultPolicy, Mode, OperandSide};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resolved server configuration (see [`ServerBuilder`] for the knobs
/// and their defaults).
#[derive(Clone, Debug)]
struct Config {
    queue_depth: usize,
    coalesce_window: Duration,
    max_batch: usize,
    default_deadline: Option<Duration>,
    intensity_crossover: f64,
}

/// One admitted job travelling from the queue to its completion cell.
struct Admitted {
    req: GemmRequest,
    cell: Arc<JobCell>,
    submitted_at: Instant,
    /// Admission time on the observability clock (0 when disabled) — the
    /// anchor of the job's `queue_wait` span.
    submitted_ns: u64,
    deadline: Option<Duration>,
    /// `true` when the job's arithmetic intensity sits below the
    /// crossover: it waits in the coalesce buffer for companions.
    coalesce: bool,
}

impl Admitted {
    /// `Some(queue residence)` when the job has out-waited its deadline.
    fn overdue(&self, now: Instant) -> Option<Duration> {
        let deadline = self.deadline?;
        let queued_for = now.saturating_duration_since(self.submitted_at);
        (queued_for > deadline).then_some(queued_for)
    }
}

/// Queue state guarded by `Shared::queue`.
struct QueueState {
    items: VecDeque<Admitted>,
    paused: bool,
    shutdown: bool,
}

/// Everything the submitters and the dispatcher share.
struct Shared {
    cfg: Config,
    n_moduli: usize,
    queue: Mutex<QueueState>,
    /// Signals the dispatcher: work arrived, or pause/shutdown flipped.
    not_empty: Condvar,
    /// Signals blocked submitters: queue capacity freed up.
    not_full: Condvar,
    tenants: Mutex<HashMap<Arc<str>, TenantStats>>,
    totals: Mutex<ServerStats>,
    /// Operand identities (pointer + shape) admitted so far — the basis
    /// of the per-tenant `cache_hits` counter and of the skip-rescan
    /// fast path for finiteness validation.
    seen: Mutex<HashSet<(usize, usize, usize)>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn with_tenant(&self, tenant: &Arc<str>, f: impl FnOnce(&mut TenantStats)) {
        let mut map = lock(&self.tenants);
        f(map.entry(tenant.clone()).or_default());
    }
}

/// Configuration builder for [`Server`]; every knob has a serving-ready
/// default. See `docs/SERVING.md` for the tuning cookbook.
///
/// # Examples
/// ```
/// use gemm_serve::Server;
/// use ozaki2::Mode;
/// use std::time::Duration;
///
/// let server = Server::builder(8, Mode::Fast)
///     .queue_depth(128)
///     .coalesce_window(Duration::from_micros(200))
///     .max_batch(32)
///     .default_deadline(Duration::from_millis(250))
///     .build();
/// assert_eq!(server.n_moduli(), 8);
/// ```
pub struct ServerBuilder {
    n_moduli: usize,
    mode: Mode,
    backend: BackendKind,
    queue_depth: usize,
    coalesce_window: Duration,
    max_batch: usize,
    default_deadline: Option<Duration>,
    fault_policy: Option<FaultPolicy>,
    cache_capacity: usize,
    intensity_crossover: f64,
}

impl ServerBuilder {
    /// Maximum admitted-but-undispatched jobs. Submissions beyond it
    /// block ([`Server::submit`]) or are rejected with
    /// [`SubmitError::QueueFull`] ([`Server::try_submit`]) — the
    /// backpressure boundary. Default 256.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "queue_depth must be >= 1");
        self.queue_depth = depth;
        self
    }

    /// How long the first low-intensity job of a batch waits for
    /// companions before the round flushes anyway. Larger windows raise
    /// the coalesce rate (throughput), smaller ones cut queue latency.
    /// Default 500 µs — about the cost of one small emulated GEMM.
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Maximum jobs per coalesced round (bounds round latency and the
    /// per-round working set). Default 64.
    pub fn max_batch(mut self, max: usize) -> Self {
        assert!(max >= 1, "max_batch must be >= 1");
        self.max_batch = max;
        self
    }

    /// Deadline applied to requests that do not carry their own (see
    /// [`GemmRequest::deadline`]). Unset, only requests with explicit
    /// deadlines ever shed.
    pub fn default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// Fault-tolerance policy for every executed job (see
    /// `ozaki2::FaultPolicy`). Unset, the runtime inherits the
    /// process-wide `OZAKI_FAULT_POLICY` / default, exactly like a
    /// direct `Ozaki2` call.
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Capacity of the cross-round prepared-operand LRU (weight
    /// matrices and other recurring operands). Default
    /// [`gemm_batch::DEFAULT_CACHE_CAPACITY`].
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Residue backend every served product runs on (default
    /// [`BackendKind::Int8`]). Pick with the perf-model advisor
    /// ([`Server::advised_builder`]) or force one for A/B runs. The
    /// served-on backend is visible per process in the
    /// `ozaki_backend_selected_total` metric series.
    ///
    /// # Panics
    /// In [`ServerBuilder::build`] if `n_moduli` exceeds the backend's
    /// moduli pool.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Arithmetic-intensity threshold (INT8 ops per byte) separating
    /// coalesced small jobs from solo striped large jobs. Default
    /// [`gemm_batch::INTENSITY_CROSSOVER`]; raise it to coalesce more
    /// aggressively, lower it to stripe more jobs individually.
    pub fn intensity_crossover(mut self, crossover: f64) -> Self {
        self.intensity_crossover = crossover;
        self
    }

    /// Start the server: spawns the dispatcher thread and returns the
    /// submission surface.
    pub fn build(self) -> Server {
        let mut runtime =
            BatchedOzaki2::with_cache_capacity(self.n_moduli, self.mode, self.cache_capacity)
                .with_backend(self.backend);
        if let Some(policy) = self.fault_policy {
            runtime = runtime.with_fault_policy(policy);
        }
        let runtime = Arc::new(runtime);
        let shared = Arc::new(Shared {
            cfg: Config {
                queue_depth: self.queue_depth,
                coalesce_window: self.coalesce_window,
                max_batch: self.max_batch,
                default_deadline: self.default_deadline,
                intensity_crossover: self.intensity_crossover,
            },
            n_moduli: self.n_moduli,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                paused: false,
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            tenants: Mutex::new(HashMap::new()),
            totals: Mutex::new(ServerStats::default()),
            seen: Mutex::new(HashSet::new()),
        });
        let dispatcher = {
            let shared = shared.clone();
            let runtime = runtime.clone();
            std::thread::Builder::new()
                .name("gemm-serve-dispatcher".into())
                .spawn(move || Dispatcher { shared, runtime }.run())
                .expect("spawn dispatcher thread")
        };
        Server {
            shared,
            runtime,
            dispatcher: Some(dispatcher),
        }
    }
}

/// The many-tenant GEMM serving runtime.
///
/// `Server` fronts a [`BatchedOzaki2`] with a bounded submission queue
/// and a single dispatcher thread. Admission computes each request's
/// [`ozaki2::arithmetic_intensity`]: jobs below the crossover coalesce —
/// within a configurable window — into shared-operand group rounds
/// (weight-stationary tenants share one prepared operand through the
/// fingerprint-guarded cache), while jobs above it run immediately with
/// intra-GEMM stripe parallelism. Every result is **bit-identical** to
/// [`ozaki2::Ozaki2::dgemm`] on the same operands, under any worker
/// count and any [`FaultPolicy`].
///
/// Dropping the server drains the queue (every admitted job completes)
/// and joins the dispatcher.
///
/// # Examples
/// ```
/// use gemm_dense::workload::phi_matrix_f64;
/// use gemm_serve::{GemmRequest, Server};
/// use ozaki2::{Mode, Ozaki2};
/// use std::sync::Arc;
///
/// let server = Server::builder(10, Mode::Fast).build();
/// // Two tenants sharing one weight matrix, one unique activation each.
/// let w = Arc::new(phi_matrix_f64(32, 24, 0.5, 7, 1));
/// let handles: Vec<_> = (0..2u64)
///     .map(|t| {
///         let a = Arc::new(phi_matrix_f64(16, 32, 0.5, t, 0));
///         let req = GemmRequest::new(format!("tenant-{t}"), a, w.clone());
///         server.submit(req).expect("admitted")
///     })
///     .collect();
/// let emu = Ozaki2::new(10, Mode::Fast);
/// for (t, h) in handles.into_iter().enumerate() {
///     let c = h.wait().expect("served");
///     let a = phi_matrix_f64(16, 32, 0.5, t as u64, 0);
///     assert_eq!(c, emu.dgemm(&a, &w)); // bit-identical to the emulator
/// }
/// ```
pub struct Server {
    shared: Arc<Shared>,
    runtime: Arc<BatchedOzaki2>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// A builder with `n_moduli ∈ 2..=20`, the given mode, and
    /// serving-ready defaults for every policy knob.
    pub fn builder(n_moduli: usize, mode: Mode) -> ServerBuilder {
        ServerBuilder {
            n_moduli,
            mode,
            backend: BackendKind::Int8,
            queue_depth: 256,
            coalesce_window: Duration::from_micros(500),
            max_batch: 64,
            default_deadline: None,
            fault_policy: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            intensity_crossover: INTENSITY_CROSSOVER,
        }
    }

    /// Advisor-driven construction: pick the residue backend **and**
    /// moduli count from the device's perf model for a representative
    /// shape and normwise accuracy target, then return a builder
    /// preconfigured with the winning pair.
    ///
    /// Candidates are assembled per backend from its own moduli pool
    /// (`ozaki2::choose_n_for` — `N` is not transferable between pools);
    /// a pool that cannot reach `target` is simply not a candidate. The
    /// perf model compares the candidates against each other (a serving
    /// runtime emulates by construction, so a "native faster" verdict
    /// falls back to the fastest candidate rather than refusing).
    ///
    /// # Errors
    /// [`EmulationError::AccuracyUnreachable`] when no pool reaches the
    /// target, carrying the INT8 pool's best achievable point.
    pub fn advised_builder(
        device: gemm_perfmodel::DeviceSpec,
        m: usize,
        n: usize,
        k: usize,
        target: f64,
        mode: Mode,
    ) -> Result<ServerBuilder, EmulationError> {
        use gemm_perfmodel::{BackendRecommendation, Os2Backend, Os2Input};
        let pairs = [
            (BackendKind::Int8, Os2Backend::Int8),
            (BackendKind::FmaBf16, Os2Backend::FmaBf16),
        ];
        let mut candidates = Vec::new();
        for (kind, model_kind) in pairs {
            if let Some(nmod) = ozaki2::choose_n_for(kind, target, k, false) {
                candidates.push((kind, model_kind, nmod));
            }
        }
        let model_candidates: Vec<(Os2Backend, usize)> =
            candidates.iter().map(|&(_, mk, nmod)| (mk, nmod)).collect();
        let (backend, n_moduli) = match gemm_perfmodel::recommend_backend(
            device,
            m,
            n,
            k,
            Os2Input::F64,
            &model_candidates,
        ) {
            BackendRecommendation::Emulate {
                backend, n_moduli, ..
            } => (
                candidates
                    .iter()
                    .find(|&&(_, mk, _)| mk == backend)
                    .expect("recommended backend came from the candidate list")
                    .0,
                n_moduli,
            ),
            // The server always emulates; take the first (fastest-pool)
            // candidate when even it is modelled slower than native.
            BackendRecommendation::Native => match candidates.first() {
                Some(&(kind, _, nmod)) => (kind, nmod),
                None => {
                    return Err(
                        ozaki2::choose_n_checked_for(BackendKind::Int8, target, k, false)
                            .expect_err("no candidate means the target is unreachable"),
                    )
                }
            },
        };
        Ok(Self::builder(n_moduli, mode).backend(backend))
    }

    /// The configured moduli count `N`.
    pub fn n_moduli(&self) -> usize {
        self.shared.n_moduli
    }

    /// The residue backend every served product runs on.
    pub fn backend(&self) -> BackendKind {
        self.runtime.emulator().backend()
    }

    /// Submit a request, **blocking** while the queue is at its
    /// configured depth (the cooperative form of backpressure). Returns
    /// the job's [`JobHandle`] once admitted.
    pub fn submit(&self, req: GemmRequest) -> Result<JobHandle, SubmitError> {
        self.admit(req, true)
    }

    /// Submit without blocking: [`SubmitError::QueueFull`] when the
    /// queue is at depth (counted in the tenant's `rejected`), so
    /// latency-sensitive callers can shed at the door instead of
    /// waiting.
    pub fn try_submit(&self, req: GemmRequest) -> Result<JobHandle, SubmitError> {
        self.admit(req, false)
    }

    /// Jobs admitted but not yet handed to an execution round.
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.queue).items.len()
    }

    /// Stop dispatching (admissions continue up to the queue depth, so
    /// backpressure still engages). For drain-style maintenance and
    /// deterministic tests.
    pub fn pause(&self) {
        lock(&self.shared.queue).paused = true;
        self.shared.not_empty.notify_all();
    }

    /// Resume dispatching after [`Server::pause`].
    pub fn resume(&self) {
        lock(&self.shared.queue).paused = false;
        self.shared.not_empty.notify_all();
    }

    /// Exact accounting snapshot for one tenant; `None` before its
    /// first submission attempt.
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        lock(&self.shared.tenants).get(tenant).cloned()
    }

    /// Every tenant's accounting snapshot, sorted by tenant name.
    pub fn tenants(&self) -> Vec<(String, TenantStats)> {
        let map = lock(&self.shared.tenants);
        let mut rows: Vec<(String, TenantStats)> = map
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        rows.sort_by(|x, y| x.0.cmp(&y.0));
        rows
    }

    /// Server-wide counters and coalescing outcomes.
    pub fn stats(&self) -> ServerStats {
        lock(&self.shared.totals).clone()
    }

    /// The backing batched runtime — inspect its prepared-operand cache
    /// (`.cache().hits()`, `.cache().bytes()`) and workspace pool
    /// (`.pool().created()`) for capacity planning.
    pub fn runtime(&self) -> &BatchedOzaki2 {
        &self.runtime
    }

    /// Stop admitting work and start the drain, without blocking: new
    /// submissions (including submitters blocked on a full queue) get
    /// [`SubmitError::Shutdown`], while every already-admitted job still
    /// completes. The dispatcher is joined later by [`Server::shutdown`]
    /// or drop.
    pub fn close(&self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutdown = true;
            // A paused server still drains on shutdown.
            q.paused = false;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// Drain the queue, complete every admitted job, and join the
    /// dispatcher. Dropping the server does the same; the explicit form
    /// exists so shutdown can be sequenced (and named) in operational
    /// code.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.close();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }

    // -- admission -------------------------------------------------------

    fn admit(&self, req: GemmRequest, block: bool) -> Result<JobHandle, SubmitError> {
        if let Err(e) = self.validate(&req) {
            self.note_rejection(&req.tenant);
            return Err(SubmitError::Invalid(e));
        }
        let shared = &self.shared;
        let (m, k, n) = req.shape();
        let coalesce =
            arithmetic_intensity(m, n, k, shared.n_moduli) < shared.cfg.intensity_crossover;
        let cell = JobCell::new();
        let ids = (ident(&req.a), ident(&req.b));
        let admitted = Admitted {
            deadline: req.deadline.or(shared.cfg.default_deadline),
            cell: cell.clone(),
            submitted_at: Instant::now(),
            submitted_ns: gemm_obs::now_ns(),
            coalesce,
            req,
        };
        let tenant = admitted.req.tenant.clone();
        let depth;
        {
            let mut q = lock(&shared.queue);
            loop {
                if q.shutdown {
                    return Err(SubmitError::Shutdown);
                }
                if q.items.len() < shared.cfg.queue_depth {
                    break;
                }
                if !block {
                    drop(q);
                    self.note_rejection(&tenant);
                    return Err(SubmitError::QueueFull);
                }
                q = shared.not_full.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            q.items.push_back(admitted);
            depth = q.items.len();
        }
        shared.not_empty.notify_all();
        self.note_admission(&tenant, ids, depth);
        Ok(JobHandle { cell, tenant })
    }

    /// Shape and finiteness validation. Operand identities already
    /// admitted skip the finiteness scan (an `Arc`'d weight matrix is
    /// scanned once, not once per request).
    fn validate(&self, req: &GemmRequest) -> Result<(), EmulationError> {
        if req.a.cols() != req.b.rows() {
            return Err(EmulationError::ShapeMismatch);
        }
        let seen = lock(&self.shared.seen);
        let scan_a = !seen.contains(&ident(&req.a));
        let scan_b = !seen.contains(&ident(&req.b));
        drop(seen);
        for (side, mat, scan) in [
            (OperandSide::A, &req.a, scan_a),
            (OperandSide::B, &req.b, scan_b),
        ] {
            if !scan {
                continue;
            }
            if let Some(index) = mat.as_slice().iter().position(|x| !x.is_finite()) {
                return Err(EmulationError::NonFiniteInput { side, index });
            }
        }
        Ok(())
    }

    fn note_rejection(&self, tenant: &Arc<str>) {
        self.shared.with_tenant(tenant, |t| t.rejected += 1);
        lock(&self.shared.totals).rejected += 1;
    }

    /// Record the admission: operand-reuse hits are counted here, at
    /// admission, because a cache hit is a property of the submission
    /// stream, not of when the dispatcher happens to run the round.
    fn note_admission(&self, tenant: &Arc<str>, ids: (Ident, Ident), depth: usize) {
        let (a_id, b_id) = ids;
        let mut hits = 0u64;
        {
            let mut seen = lock(&self.shared.seen);
            // Bound the identity set on long-lived servers: past the cap
            // it resets, costing at most a finiteness rescan and an
            // undercounted hit per recurring operand — never correctness.
            // The reset is announced through the (always-on) registry so
            // operators know `cache_hits` undercounts from here on,
            // instead of silently reading a too-low hit rate.
            if seen.len() >= SEEN_CAP {
                seen.clear();
                gemm_obs::catalog::SERVE_SEEN_RESETS.add_always(1);
                gemm_obs::catalog::SERVE_SEEN_SATURATED.set(1);
            }
            for id in [a_id, b_id] {
                if !seen.insert(id) {
                    hits += 1;
                }
            }
        }
        self.shared.with_tenant(tenant, |t| {
            t.submitted += 1;
            t.cache_hits += hits;
        });
        let mut totals = lock(&self.shared.totals);
        totals.submitted += 1;
        totals.peak_queue_depth = totals.peak_queue_depth.max(depth);
        drop(totals);
        gemm_obs::catalog::SERVE_SUBMITTED.inc();
    }

    /// The whole registry plus the server-level derived series
    /// (coalesce rate, cache-hit rate, per-tenant counters) in the
    /// Prometheus text exposition format — the same numbers the
    /// dispatcher dumps to `OZAKI_METRICS_FILE` and CI gates on.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared, &self.runtime)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Data identity of an operand: pointer + shape (the same notion
/// `gemm_batch`'s group dedup and `OperandKey` use).
type Ident = (usize, usize, usize);

/// Upper bound on tracked operand identities (~1.5 MiB of tuples).
const SEEN_CAP: usize = 1 << 16;

fn ident(m: &MatF64) -> Ident {
    (m.as_slice().as_ptr() as usize, m.rows(), m.cols())
}

// -- the dispatcher -------------------------------------------------------

struct Dispatcher {
    shared: Arc<Shared>,
    runtime: Arc<BatchedOzaki2>,
}

impl Dispatcher {
    fn run(self) {
        let window = self.shared.cfg.coalesce_window;
        let max_batch = self.shared.cfg.max_batch;
        // Periodic Prometheus dump for scrapers: set OZAKI_METRICS_FILE
        // to a path and the dispatcher rewrites it about twice a second
        // (plus once at shutdown, so short runs always leave a snapshot).
        let metrics_file = std::env::var("OZAKI_METRICS_FILE").ok();
        let mut last_dump = Instant::now();
        let mut pending: Vec<Admitted> = Vec::new();
        let mut window_opened: Option<Instant> = None;
        // Observability-clock twin of `window_opened`, anchoring the
        // `coalesce_window` residency span.
        let mut window_opened_ns = 0u64;
        loop {
            let flush_at = window_opened.map(|t| t + window);
            let (popped, shutdown) = self.poll(flush_at, pending.is_empty());
            let mut large = Vec::new();
            for item in popped {
                if item.coalesce {
                    if pending.is_empty() {
                        window_opened = Some(Instant::now());
                        window_opened_ns = gemm_obs::now_ns();
                    }
                    pending.push(item);
                } else {
                    large.push(item);
                }
            }
            // Full rounds flush regardless of the window.
            while pending.len() >= max_batch {
                let round: Vec<Admitted> = pending.drain(..max_batch).collect();
                window_opened_ns = self.note_window_flush(window_opened_ns);
                self.execute_round(round);
                window_opened = (!pending.is_empty()).then(Instant::now);
            }
            // Large jobs run now — their execution time is coalescing
            // time for the pending small jobs.
            for item in large {
                self.execute_round(vec![item]);
            }
            // Window expiry (or shutdown) flushes the partial round.
            let expired = window_opened
                .map(|t| Instant::now() >= t + window)
                .unwrap_or(false);
            if (expired || shutdown) && !pending.is_empty() {
                self.note_window_flush(window_opened_ns);
                self.execute_round(std::mem::take(&mut pending));
            }
            if pending.is_empty() {
                window_opened = None;
            }
            if let Some(path) = &metrics_file {
                if shutdown || last_dump.elapsed() >= METRICS_DUMP_PERIOD {
                    let _ = std::fs::write(path, render_metrics(&self.shared, &self.runtime));
                    last_dump = Instant::now();
                }
            }
            if shutdown && pending.is_empty() {
                return;
            }
        }
    }

    /// Record the coalesce-window residency span ending now; returns the
    /// new window anchor (now) for the case where pending items remain.
    fn note_window_flush(&self, window_opened_ns: u64) -> u64 {
        let now = gemm_obs::now_ns();
        if now != 0 && window_opened_ns != 0 {
            gemm_obs::observe_span(
                "coalesce_window",
                "serve",
                &gemm_obs::catalog::SERVE_COALESCE_WINDOW,
                window_opened_ns,
                now.saturating_sub(window_opened_ns),
            );
        }
        now
    }

    /// Block until there is something to do: queue items (returned,
    /// drained), the coalesce window expiring (`flush_at`), or shutdown.
    /// Respects `paused` — a paused queue neither pops nor flushes.
    fn poll(&self, flush_at: Option<Instant>, pending_empty: bool) -> (Vec<Admitted>, bool) {
        let shared = &self.shared;
        let mut q = lock(&shared.queue);
        loop {
            if q.shutdown {
                let items: Vec<Admitted> = q.items.drain(..).collect();
                drop(q);
                shared.not_full.notify_all();
                return (items, true);
            }
            if !q.paused && !q.items.is_empty() {
                let items: Vec<Admitted> = q.items.drain(..).collect();
                drop(q);
                shared.not_full.notify_all();
                return (items, false);
            }
            if !q.paused && !pending_empty {
                if let Some(at) = flush_at {
                    let now = Instant::now();
                    if now >= at {
                        return (Vec::new(), false);
                    }
                    let (guard, _) = shared
                        .not_empty
                        .wait_timeout(q, at - now)
                        .unwrap_or_else(|e| e.into_inner());
                    q = guard;
                    continue;
                }
            }
            q = shared.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Execute one round: shed overdue jobs, dispatch the rest as a
    /// shared-operand group (or a lone striped job), and complete every
    /// handle. A failing multi-job round degrades to per-item execution
    /// so errors land on the job that caused them, never on a
    /// coalescing neighbour.
    fn execute_round(&self, items: Vec<Admitted>) {
        let now = Instant::now();
        let mut live = Vec::new();
        for item in items {
            match item.overdue(now) {
                Some(queued_for) => self.complete_shed(item, queued_for),
                None => live.push(item),
            }
        }
        if live.is_empty() {
            return;
        }
        // Queue-wait spans close here: admission to dispatch. (On the
        // rare failure-isolation re-run below each surviving job records
        // a second, longer wait — the re-dispatch genuinely waited.)
        let dispatch_ns = gemm_obs::now_ns();
        if dispatch_ns != 0 {
            for item in &live {
                gemm_obs::observe_span(
                    "queue_wait",
                    "serve",
                    &gemm_obs::catalog::SERVE_QUEUE_WAIT,
                    item.submitted_ns,
                    dispatch_ns.saturating_sub(item.submitted_ns),
                );
            }
        }
        let coalesced = live.len() >= 2;
        let outcome = {
            let pairs: Vec<(&MatF64, &MatF64)> =
                live.iter().map(|it| (&*it.req.a, &*it.req.b)).collect();
            catch_unwind(AssertUnwindSafe(|| self.runtime.try_dgemm_group(&pairs)))
        };
        let end_ns = gemm_obs::now_ns();
        if end_ns != 0 {
            gemm_obs::observe_span(
                "execute_round",
                "serve",
                &gemm_obs::catalog::SERVE_EXECUTE,
                dispatch_ns,
                end_ns.saturating_sub(dispatch_ns),
            );
        }
        gemm_obs::catalog::SERVE_ROUNDS.inc();
        lock(&self.shared.totals).rounds += 1;
        match outcome {
            Ok(Ok(outs)) => {
                for (item, out) in live.into_iter().zip(outs) {
                    self.complete_ok(item, out, coalesced);
                }
            }
            Ok(Err(e)) if !coalesced => {
                let item = live.pop().expect("one live item");
                self.complete_failed(item, JobError::Emulation(e));
            }
            Err(payload) if !coalesced => {
                let item = live.pop().expect("one live item");
                self.complete_failed(item, JobError::Internal(panic_message(payload)));
            }
            // Multi-job round failed: isolate the offender by re-running
            // each job alone (deadlines re-checked per job).
            Ok(Err(_)) | Err(_) => {
                for item in live {
                    self.execute_round(vec![item]);
                }
            }
        }
    }

    fn complete_ok(&self, item: Admitted, out: MatF64, coalesced: bool) {
        let bytes = item.req.bytes();
        let nmod = self.shared.n_moduli as u64;
        self.shared.with_tenant(&item.req.tenant, |t| {
            t.completed += 1;
            t.bytes += bytes;
            t.residue_gemms += nmod;
        });
        {
            let mut totals = lock(&self.shared.totals);
            totals.completed += 1;
            if coalesced {
                totals.coalesced += 1;
            } else {
                totals.solo += 1;
            }
        }
        gemm_obs::catalog::SERVE_COMPLETED.inc();
        item.cell.complete(Ok(out));
    }

    fn complete_shed(&self, item: Admitted, queued_for: Duration) {
        self.shared.with_tenant(&item.req.tenant, |t| t.shed += 1);
        lock(&self.shared.totals).shed += 1;
        gemm_obs::catalog::SERVE_SHED.inc();
        item.cell.complete(Err(JobError::Shed { queued_for }));
    }

    fn complete_failed(&self, item: Admitted, err: JobError) {
        self.shared.with_tenant(&item.req.tenant, |t| t.failed += 1);
        lock(&self.shared.totals).failed += 1;
        item.cell.complete(Err(err));
    }
}

/// How often the dispatcher rewrites `OZAKI_METRICS_FILE`.
const METRICS_DUMP_PERIOD: Duration = Duration::from_millis(500);

/// The full Prometheus exposition: the `gemm_obs` registry first, then
/// the server-level series computed from the exact (always-on)
/// accounting — the ratio metrics CI gates on, runtime capacity
/// counters, and one labelled line set per tenant.
fn render_metrics(shared: &Shared, runtime: &BatchedOzaki2) -> String {
    use std::fmt::Write as _;
    let mut out = gemm_obs::render_prometheus();
    let totals = lock(&shared.totals).clone();
    let tenants = lock(&shared.tenants);
    let (mut hits, mut submissions) = (0u64, 0u64);
    for t in tenants.values() {
        hits += t.cache_hits;
        submissions += t.submitted;
    }
    // Two operands per submission; hits are identity re-sightings.
    let cache_hit_rate = if submissions == 0 {
        0.0
    } else {
        hits as f64 / (2 * submissions) as f64
    };
    let gauges: [(&str, &str, f64); 5] = [
        (
            "ozaki_serve_coalesce_rate",
            "Fraction of completed jobs that ran in a coalesced round",
            totals.coalesce_rate(),
        ),
        (
            "ozaki_serve_cache_hit_rate",
            "Operand identity re-sighting rate at admission (see saturation gauge)",
            cache_hit_rate,
        ),
        (
            "ozaki_serve_peak_queue_depth",
            "Deepest the submission queue has been",
            totals.peak_queue_depth as f64,
        ),
        (
            "ozaki_operand_cache_bytes",
            "Bytes held by the prepared-operand cache",
            runtime.cache().bytes() as f64,
        ),
        (
            "ozaki_workspace_pool_created",
            "Workspaces ever created by the pool (peak checkout concurrency)",
            runtime.pool().created() as f64,
        ),
    ];
    for (name, help, v) in gauges {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    let mut rows: Vec<(&Arc<str>, &TenantStats)> = tenants.iter().collect();
    rows.sort_by(|x, y| x.0.cmp(y.0));
    let _ = writeln!(
        out,
        "# HELP ozaki_serve_tenant_requests_total Per-tenant request outcomes\n\
         # TYPE ozaki_serve_tenant_requests_total counter"
    );
    for (name, t) in &rows {
        for (outcome, v) in [
            ("completed", t.completed),
            ("rejected", t.rejected),
            ("shed", t.shed),
            ("failed", t.failed),
        ] {
            let _ = writeln!(
                out,
                "ozaki_serve_tenant_requests_total{{tenant=\"{name}\",outcome=\"{outcome}\"}} {v}"
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP ozaki_serve_tenant_bytes_total Per-tenant operand+result bytes moved\n\
         # TYPE ozaki_serve_tenant_bytes_total counter"
    );
    for (name, t) in &rows {
        let _ = writeln!(
            out,
            "ozaki_serve_tenant_bytes_total{{tenant=\"{name}\"}} {}",
            t.bytes
        );
    }
    out
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
