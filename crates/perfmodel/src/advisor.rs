//! Shape advisor: should this product be emulated at all?
//!
//! The paper's introduction explicitly scopes the method: "matrix
//! multiplication involving tall-and-skinny or small-scale matrices is not
//! considered … such cases fail to fully utilize the computational
//! capabilities of matrix engines and tend to expose performance
//! bottlenecks in the emulation, resulting in memory-bound behavior."
//! This module turns that scoping rule into a queryable decision: given a
//! shape, a device, and an accuracy target, compare the modelled cost of
//! native GEMM against the emulation and recommend one.

use crate::device::DeviceSpec;
use crate::model::PerfModel;
use crate::ops::{self, Os2Backend, Os2Input, Os2Mode};

/// The advisor's verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Recommendation {
    /// Run the native (FP64/FP32) GEMM: emulation would be slower.
    Native,
    /// Emulate with the given moduli count; `speedup` is the modelled
    /// time ratio native/emulated (> 1).
    Emulate {
        /// Moduli count to use.
        n_moduli: usize,
        /// Modelled speedup over the native product.
        speedup: f64,
    },
}

/// Recommend native vs emulated DGEMM for an `m x k · k x n` product.
///
/// `n_moduli` is the accuracy-driven moduli count (e.g. from
/// `ozaki2::n_for_dgemm_level(k)`).
pub fn recommend_dgemm(
    device: DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    n_moduli: usize,
) -> Recommendation {
    let model = PerfModel::new(device);
    let native = model.run(&ops::native_dgemm(m, n, k)).time_s;
    let emulated = model
        .run(&ops::ozaki2(
            m,
            n,
            k,
            n_moduli,
            Os2Mode::Fast,
            Os2Input::F64,
        ))
        .time_s;
    if emulated < native {
        Recommendation::Emulate {
            n_moduli,
            speedup: native / emulated,
        }
    } else {
        Recommendation::Native
    }
}

/// Recommend native vs emulated SGEMM.
pub fn recommend_sgemm(
    device: DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    n_moduli: usize,
) -> Recommendation {
    let model = PerfModel::new(device);
    let native = model.run(&ops::native_sgemm(m, n, k)).time_s;
    let emulated = model
        .run(&ops::ozaki2(
            m,
            n,
            k,
            n_moduli,
            Os2Mode::Fast,
            Os2Input::F32,
        ))
        .time_s;
    if emulated < native {
        Recommendation::Emulate {
            n_moduli,
            speedup: native / emulated,
        }
    } else {
        Recommendation::Native
    }
}

/// The advisor's verdict when choosing among residue engines too.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BackendRecommendation {
    /// Run the native GEMM: every emulated candidate is slower.
    Native,
    /// Emulate on `backend` with `n_moduli` planes; `speedup` is the
    /// modelled native/emulated time ratio (> 1).
    Emulate {
        /// Residue engine to run the planes on.
        backend: Os2Backend,
        /// Moduli count to use on that engine's pool.
        n_moduli: usize,
        /// Modelled speedup over the native product.
        speedup: f64,
    },
}

/// Recommend a residue engine **and** moduli count for an
/// `m x k · k x n` product against the native GEMM.
///
/// `candidates` pairs each engine with the moduli count *its own pool*
/// needs for the caller's accuracy target — the pools carry different
/// bits per plane, so `N` is not transferable between engines and must be
/// resolved per backend (e.g. via `ozaki2::choose_n_for`). An engine
/// whose pool cannot reach the target is simply omitted from the list.
/// With no candidates, the verdict is [`BackendRecommendation::Native`].
pub fn recommend_backend(
    device: DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    input: Os2Input,
    candidates: &[(Os2Backend, usize)],
) -> BackendRecommendation {
    let model = PerfModel::new(device);
    let native_ops = match input {
        Os2Input::F64 => ops::native_dgemm(m, n, k),
        Os2Input::F32 => ops::native_sgemm(m, n, k),
    };
    let native = model.run(&native_ops).time_s;
    let mut best = BackendRecommendation::Native;
    let mut best_time = native;
    for &(backend, n_moduli) in candidates {
        let emulated = model
            .run(&ops::ozaki2_backend(
                m,
                n,
                k,
                n_moduli,
                Os2Mode::Fast,
                input,
                backend,
            ))
            .time_s;
        if emulated < best_time {
            best_time = emulated;
            best = BackendRecommendation::Emulate {
                backend,
                n_moduli,
                speedup: native / emulated,
            };
        }
    }
    best
}

/// True if the shape is in the regime the paper excludes (tall-and-skinny
/// or small): any dimension below `min_dim` or an aspect ratio beyond
/// `max_aspect`.
pub fn is_excluded_shape(m: usize, n: usize, k: usize) -> bool {
    const MIN_DIM: usize = 512;
    const MAX_ASPECT: usize = 32;
    let dims = [m, n, k];
    let lo = *dims.iter().min().unwrap();
    let hi = *dims.iter().max().unwrap();
    lo < MIN_DIM || hi / lo.max(1) > MAX_ASPECT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gh200, rtx5080};

    #[test]
    fn large_square_dgemm_emulates_on_gh200() {
        match recommend_dgemm(gh200(), 16384, 16384, 16384, 14) {
            Recommendation::Emulate { speedup, .. } => {
                assert!((1.2..1.7).contains(&speedup), "speedup={speedup}")
            }
            r => panic!("expected emulation, got {r:?}"),
        }
    }

    #[test]
    fn small_dgemm_stays_native_on_gh200() {
        assert_eq!(
            recommend_dgemm(gh200(), 1024, 1024, 1024, 15),
            Recommendation::Native
        );
    }

    #[test]
    fn tall_skinny_stays_native_on_gh200() {
        // 1M x 64 * 64 x 1M-ish panels: k tiny => conversion overhead per
        // flop explodes; the model must say native.
        assert_eq!(
            recommend_dgemm(gh200(), 65536, 64, 64, 15),
            Recommendation::Native
        );
    }

    #[test]
    fn rtx5080_always_emulates_dgemm() {
        for &(m, n, k) in &[(1024usize, 1024usize, 1024usize), (8192, 8192, 8192)] {
            assert!(matches!(
                recommend_dgemm(rtx5080(), m, n, k, 14),
                Recommendation::Emulate { .. }
            ));
        }
    }

    #[test]
    fn excluded_shape_predicate() {
        assert!(is_excluded_shape(100, 4096, 4096)); // small m
        assert!(is_excluded_shape(65536, 1024, 1024)); // 64:1 aspect
        assert!(!is_excluded_shape(4096, 4096, 4096));
        assert!(!is_excluded_shape(2048, 1024, 4096));
    }

    #[test]
    fn backend_recommendation_picks_int8_for_dgemm_on_gh200() {
        // DGEMM-level accuracy is unreachable on the fma-bf16 pool, so a
        // realistic candidate list holds only the INT8 entry — and the
        // verdict must agree with the single-backend advisor.
        let rec = recommend_backend(
            gh200(),
            16384,
            16384,
            16384,
            Os2Input::F64,
            &[(Os2Backend::Int8, 14)],
        );
        match (rec, recommend_dgemm(gh200(), 16384, 16384, 16384, 14)) {
            (
                BackendRecommendation::Emulate {
                    backend,
                    n_moduli,
                    speedup,
                },
                Recommendation::Emulate { speedup: s0, .. },
            ) => {
                assert_eq!(backend, Os2Backend::Int8);
                assert_eq!(n_moduli, 14);
                assert!((speedup - s0).abs() < 1e-12);
            }
            other => panic!("expected matching Emulate verdicts, got {other:?}"),
        }
    }

    #[test]
    fn backend_recommendation_weighs_plane_count_against_rate() {
        // SGEMM-level: the fma-bf16 pool needs more planes (say 14 vs 8)
        // but each runs at the FP32 rate instead of INT8. On GH200 the
        // INT8 engine's rate advantage dominates; the advisor must not
        // pick fma-bf16 merely because it is listed.
        let cands = [(Os2Backend::Int8, 8), (Os2Backend::FmaBf16, 14)];
        match recommend_backend(gh200(), 16384, 16384, 16384, Os2Input::F32, &cands) {
            BackendRecommendation::Emulate { backend, .. } => {
                assert_eq!(backend, Os2Backend::Int8)
            }
            r => panic!("expected emulation, got {r:?}"),
        }
        // With only the fma-bf16 candidate (e.g. a device with no INT8
        // dot-product path exposed), the advisor still answers: either
        // fma emulation or native, never the absent engine.
        match recommend_backend(gh200(), 16384, 16384, 16384, Os2Input::F32, &cands[1..]) {
            BackendRecommendation::Emulate { backend, .. } => {
                assert_eq!(backend, Os2Backend::FmaBf16)
            }
            BackendRecommendation::Native => {}
        }
    }

    #[test]
    fn backend_recommendation_empty_candidates_is_native() {
        assert_eq!(
            recommend_backend(gh200(), 16384, 16384, 16384, Os2Input::F64, &[]),
            BackendRecommendation::Native
        );
    }

    #[test]
    fn sgemm_recommendation_flips_with_size_on_gh200() {
        assert_eq!(
            recommend_sgemm(gh200(), 1024, 1024, 1024, 8),
            Recommendation::Native
        );
        assert!(matches!(
            recommend_sgemm(gh200(), 16384, 16384, 16384, 8),
            Recommendation::Emulate { .. }
        ));
    }
}
