//! Shape advisor: should this product be emulated at all?
//!
//! The paper's introduction explicitly scopes the method: "matrix
//! multiplication involving tall-and-skinny or small-scale matrices is not
//! considered … such cases fail to fully utilize the computational
//! capabilities of matrix engines and tend to expose performance
//! bottlenecks in the emulation, resulting in memory-bound behavior."
//! This module turns that scoping rule into a queryable decision: given a
//! shape, a device, and an accuracy target, compare the modelled cost of
//! native GEMM against the emulation and recommend one.

use crate::device::DeviceSpec;
use crate::model::PerfModel;
use crate::ops::{self, Os2Input, Os2Mode};

/// The advisor's verdict.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Recommendation {
    /// Run the native (FP64/FP32) GEMM: emulation would be slower.
    Native,
    /// Emulate with the given moduli count; `speedup` is the modelled
    /// time ratio native/emulated (> 1).
    Emulate {
        /// Moduli count to use.
        n_moduli: usize,
        /// Modelled speedup over the native product.
        speedup: f64,
    },
}

/// Recommend native vs emulated DGEMM for an `m x k · k x n` product.
///
/// `n_moduli` is the accuracy-driven moduli count (e.g. from
/// `ozaki2::n_for_dgemm_level(k)`).
pub fn recommend_dgemm(
    device: DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    n_moduli: usize,
) -> Recommendation {
    let model = PerfModel::new(device);
    let native = model.run(&ops::native_dgemm(m, n, k)).time_s;
    let emulated = model
        .run(&ops::ozaki2(
            m,
            n,
            k,
            n_moduli,
            Os2Mode::Fast,
            Os2Input::F64,
        ))
        .time_s;
    if emulated < native {
        Recommendation::Emulate {
            n_moduli,
            speedup: native / emulated,
        }
    } else {
        Recommendation::Native
    }
}

/// Recommend native vs emulated SGEMM.
pub fn recommend_sgemm(
    device: DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    n_moduli: usize,
) -> Recommendation {
    let model = PerfModel::new(device);
    let native = model.run(&ops::native_sgemm(m, n, k)).time_s;
    let emulated = model
        .run(&ops::ozaki2(
            m,
            n,
            k,
            n_moduli,
            Os2Mode::Fast,
            Os2Input::F32,
        ))
        .time_s;
    if emulated < native {
        Recommendation::Emulate {
            n_moduli,
            speedup: native / emulated,
        }
    } else {
        Recommendation::Native
    }
}

/// True if the shape is in the regime the paper excludes (tall-and-skinny
/// or small): any dimension below `min_dim` or an aspect ratio beyond
/// `max_aspect`.
pub fn is_excluded_shape(m: usize, n: usize, k: usize) -> bool {
    const MIN_DIM: usize = 512;
    const MAX_ASPECT: usize = 32;
    let dims = [m, n, k];
    let lo = *dims.iter().min().unwrap();
    let hi = *dims.iter().max().unwrap();
    lo < MIN_DIM || hi / lo.max(1) > MAX_ASPECT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gh200, rtx5080};

    #[test]
    fn large_square_dgemm_emulates_on_gh200() {
        match recommend_dgemm(gh200(), 16384, 16384, 16384, 14) {
            Recommendation::Emulate { speedup, .. } => {
                assert!((1.2..1.7).contains(&speedup), "speedup={speedup}")
            }
            r => panic!("expected emulation, got {r:?}"),
        }
    }

    #[test]
    fn small_dgemm_stays_native_on_gh200() {
        assert_eq!(
            recommend_dgemm(gh200(), 1024, 1024, 1024, 15),
            Recommendation::Native
        );
    }

    #[test]
    fn tall_skinny_stays_native_on_gh200() {
        // 1M x 64 * 64 x 1M-ish panels: k tiny => conversion overhead per
        // flop explodes; the model must say native.
        assert_eq!(
            recommend_dgemm(gh200(), 65536, 64, 64, 15),
            Recommendation::Native
        );
    }

    #[test]
    fn rtx5080_always_emulates_dgemm() {
        for &(m, n, k) in &[(1024usize, 1024usize, 1024usize), (8192, 8192, 8192)] {
            assert!(matches!(
                recommend_dgemm(rtx5080(), m, n, k, 14),
                Recommendation::Emulate { .. }
            ));
        }
    }

    #[test]
    fn excluded_shape_predicate() {
        assert!(is_excluded_shape(100, 4096, 4096)); // small m
        assert!(is_excluded_shape(65536, 1024, 1024)); // 64:1 aspect
        assert!(!is_excluded_shape(4096, 4096, 4096));
        assert!(!is_excluded_shape(2048, 1024, 4096));
    }

    #[test]
    fn sgemm_recommendation_flips_with_size_on_gh200() {
        assert_eq!(
            recommend_sgemm(gh200(), 1024, 1024, 1024, 8),
            Recommendation::Native
        );
        assert!(matches!(
            recommend_sgemm(gh200(), 16384, 16384, 16384, 8),
            Recommendation::Emulate { .. }
        ));
    }
}
