//! The roofline + power model: schedule × device → time, energy,
//! per-phase breakdown.
//!
//! Each kernel's time is `launch + max(compute, memory)` where compute
//! uses the device's peak for the kernel's precision, derated by a fixed
//! achievable-efficiency factor and by SM occupancy for small outputs;
//! memory time is bytes over bandwidth. Energy integrates a per-operation
//! power level. Nothing here depends on wall-clock measurements — the
//! schedules (`ops.rs`) and device sheets (`device.rs`) fully determine
//! the figures.

use crate::device::DeviceSpec;
use crate::ops::{GemmPrecision, Op, Phase};
use std::collections::HashMap;

/// Time/energy estimate for one schedule.
#[derive(Clone, Debug, Default)]
pub struct RunEstimate {
    /// Total wall-clock seconds.
    pub time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Seconds per phase.
    pub phase_time_s: HashMap<Phase, f64>,
}

impl RunEstimate {
    /// Equivalent TFLOPS for a logical product of `flops`.
    pub fn tflops(&self, flops: f64) -> f64 {
        flops / self.time_s / 1e12
    }

    /// GFLOPS per watt for a logical product of `flops`.
    pub fn gflops_per_watt(&self, flops: f64) -> f64 {
        flops / self.energy_j / 1e9
    }
}

/// The analytic device model.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    /// Device constants.
    pub device: DeviceSpec,
}

impl PerfModel {
    /// Wrap a device sheet.
    pub fn new(device: DeviceSpec) -> Self {
        Self { device }
    }

    fn peak_tops(&self, p: GemmPrecision) -> f64 {
        match p {
            GemmPrecision::F64 => self.device.fp64,
            GemmPrecision::F32 => self.device.fp32,
            GemmPrecision::Tf32 => self.device.tf32,
            GemmPrecision::F16 => self.device.fp16,
            GemmPrecision::Bf16 => self.device.bf16,
            GemmPrecision::Int8 => self.device.int8,
        }
    }

    fn power_w(&self, op: &Op) -> f64 {
        match op {
            Op::Gemm { precision, .. } => match precision {
                GemmPrecision::F64 => self.device.power_fp64_w,
                GemmPrecision::F32 => self.device.power_fp32_w,
                GemmPrecision::Int8 => self.device.power_int8_w,
                _ => self.device.power_lowfp_w,
            },
            Op::Elementwise { .. } => self.device.power_mem_w,
        }
    }

    /// Time of one kernel.
    pub fn op_time(&self, op: &Op) -> f64 {
        match *op {
            Op::Gemm {
                precision, m, n, k, ..
            } => {
                let flops = 2.0 * m as f64 * n as f64 * k as f64;
                // Occupancy roll-off: a 128x128-tile GEMM can't fill the
                // device below ~SMs output tiles.
                let tiles = (m as f64 / 128.0).ceil() * (n as f64 / 128.0).ceil();
                let occupancy = (tiles / self.device.sms as f64).min(1.0);
                let eff = match precision {
                    GemmPrecision::Int8 => self.device.int8_efficiency,
                    _ => self.device.gemm_efficiency,
                };
                let eff_peak = self.peak_tops(precision) * 1e12 * eff * occupancy;
                let compute = flops / eff_peak;
                let bytes = precision.in_bytes() * (m * k + k * n) as f64
                    + precision.out_bytes() * (m * n) as f64;
                let memory = bytes / (self.device.mem_bw_gbs * 1e9);
                self.device.launch_overhead_s + compute.max(memory)
            }
            Op::Elementwise {
                bytes, flops, fp, ..
            } => {
                let memory = bytes / (self.device.mem_bw_gbs * 1e9);
                let rate = match fp {
                    crate::ops::ElemFp::F64 => self.device.fp64_cuda,
                    crate::ops::ElemFp::F32 => self.device.fp32,
                } * 1e12;
                let compute = flops / rate;
                self.device.launch_overhead_s + compute.max(memory)
            }
        }
    }

    /// Run a whole schedule.
    pub fn run(&self, ops: &[Op]) -> RunEstimate {
        let mut est = RunEstimate::default();
        for op in ops {
            let t = self.op_time(op);
            let phase = match op {
                Op::Gemm { phase, .. } | Op::Elementwise { phase, .. } => *phase,
            };
            est.time_s += t;
            est.energy_j += t * self.power_w(op);
            *est.phase_time_s.entry(phase).or_insert(0.0) += t;
        }
        est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gh200, rtx5080};
    use crate::ops::{
        self, logical_flops, native_dgemm, native_sgemm, ozaki2, ozimmu, Os2Input, Os2Mode,
    };

    fn tflops_of(model: &PerfModel, ops: &[Op], n: usize) -> f64 {
        model.run(ops).tflops(logical_flops(n, n, n))
    }

    // ---- calibration against the paper's headline numbers ----------------

    #[test]
    fn gh200_dgemm_emulation_headline() {
        // §5.2/§1: OS II-fast-14 ≈ 81.6 TFLOPS at n = 16384 on GH200,
        // ~1.4x native DGEMM.
        let model = PerfModel::new(gh200());
        let n = 16384;
        let emu = tflops_of(
            &model,
            &ozaki2(n, n, n, 14, Os2Mode::Fast, Os2Input::F64),
            n,
        );
        let native = tflops_of(&model, &native_dgemm(n, n, n), n);
        let speedup = emu / native;
        assert!((70.0..100.0).contains(&emu), "emu = {emu} TFLOPS");
        assert!((1.25..1.65).contains(&speedup), "speedup = {speedup}");
    }

    #[test]
    fn gh200_sgemm_emulation_headline() {
        // §5.2: OS II fast-{7,8,9} achieve 128–160 TFLOPS, 2.3–3.0x SGEMM.
        let model = PerfModel::new(gh200());
        let n = 16384;
        let native = tflops_of(&model, &native_sgemm(n, n, n), n);
        for nmod in [7usize, 8, 9] {
            let emu = tflops_of(
                &model,
                &ozaki2(n, n, n, nmod, Os2Mode::Fast, Os2Input::F32),
                n,
            );
            let speedup = emu / native;
            assert!(
                (2.0..3.4).contains(&speedup),
                "N={nmod}: speedup = {speedup} (emu {emu} TF, native {native} TF)"
            );
        }
    }

    #[test]
    fn gh200_dgemm_power_efficiency_headline() {
        // §5.4: OS II-fast-N 20%–43% better GFLOPS/W than DGEMM for
        // N ∈ {14..17} at n = 16384.
        let model = PerfModel::new(gh200());
        let n = 16384;
        let flops = logical_flops(n, n, n);
        let native = model.run(&native_dgemm(n, n, n)).gflops_per_watt(flops);
        for nmod in [14usize, 15, 16, 17] {
            let emu = model
                .run(&ozaki2(n, n, n, nmod, Os2Mode::Fast, Os2Input::F64))
                .gflops_per_watt(flops);
            let gain = emu / native - 1.0;
            assert!(
                (0.10..0.60).contains(&gain),
                "N={nmod}: power gain = {:.0}%",
                gain * 100.0
            );
        }
    }

    #[test]
    fn gh200_sgemm_power_efficiency_headline() {
        // §5.4: +103%–154% for OS II-fast-{7,8,9} at n = 16384.
        let model = PerfModel::new(gh200());
        let n = 16384;
        let flops = logical_flops(n, n, n);
        let native = model.run(&native_sgemm(n, n, n)).gflops_per_watt(flops);
        for nmod in [7usize, 8, 9] {
            let emu = model
                .run(&ozaki2(n, n, n, nmod, Os2Mode::Fast, Os2Input::F32))
                .gflops_per_watt(flops);
            let gain = emu / native - 1.0;
            assert!(
                (0.8..2.0).contains(&gain),
                "N={nmod}: power gain = {:.0}%",
                gain * 100.0
            );
        }
    }

    #[test]
    fn rtx5080_dgemm_emulation_dominates() {
        // §5.2: on RTX 5080 emulation wins even at n = 1024 (FP64 is 1/64
        // of FP32); 18.5x at n = 8192 for OS II-fast-14.
        let model = PerfModel::new(rtx5080());
        for n in [1024usize, 8192] {
            let emu = tflops_of(
                &model,
                &ozaki2(n, n, n, 14, Os2Mode::Fast, Os2Input::F64),
                n,
            );
            let native = tflops_of(&model, &native_dgemm(n, n, n), n);
            assert!(emu > native, "n={n}: emu {emu} vs native {native}");
        }
        let n = 8192;
        let speedup = tflops_of(
            &model,
            &ozaki2(n, n, n, 14, Os2Mode::Fast, Os2Input::F64),
            n,
        ) / tflops_of(&model, &native_dgemm(n, n, n), n);
        // Paper: 18.5x. The model overshoots somewhat (25-32x) because it
        // can't capture every consumer-GPU elementwise cost; the order of
        // magnitude and the "emulation dominates everywhere" shape hold.
        assert!(
            (12.0..36.0).contains(&speedup),
            "speedup at 8192 = {speedup}"
        );
    }

    #[test]
    fn rtx5080_sgemm_emulation_wins_at_large_n() {
        // §5.2: "For SGEMM-level results on RTX 5080, OS II-fast-N with
        // N in {6,7,8} was faster than SGEMM and BF16x9 for n = 12288."
        let model = PerfModel::new(rtx5080());
        let n = 12288;
        let sgemm = tflops_of(&model, &native_sgemm(n, n, n), n);
        let bf = tflops_of(&model, &ops::bf16x9(n, n, n), n);
        for nmod in [6usize, 7, 8] {
            let emu = tflops_of(
                &model,
                &ozaki2(n, n, n, nmod, Os2Mode::Fast, Os2Input::F32),
                n,
            );
            assert!(
                emu > sgemm && emu > bf,
                "N={nmod}: emu {emu} vs sgemm {sgemm} / bf16x9 {bf}"
            );
        }
    }

    #[test]
    fn gh200_crossover_location() {
        // §5.2: on GH200 DGEMM wins at small n; OS II wins for n >= 8192.
        let model = PerfModel::new(gh200());
        let emu_tf = |n: usize| {
            tflops_of(
                &model,
                &ozaki2(n, n, n, 15, Os2Mode::Fast, Os2Input::F64),
                n,
            )
        };
        let nat_tf = |n: usize| tflops_of(&model, &native_dgemm(n, n, n), n);
        assert!(emu_tf(1024) < nat_tf(1024), "native must win at n=1024");
        assert!(
            emu_tf(16384) > nat_tf(16384),
            "emulation must win at n=16384"
        );
    }

    #[test]
    fn scheme2_beats_scheme1_at_scale() {
        // §5.2: >2x over ozIMMU for large problems (fewer INT8 GEMMs).
        let model = PerfModel::new(gh200());
        let n = 16384;
        let os2 = tflops_of(
            &model,
            &ozaki2(n, n, n, 15, Os2Mode::Fast, Os2Input::F64),
            n,
        );
        let os1 = tflops_of(&model, &ozimmu(n, n, n, 8), n);
        assert!(os2 / os1 > 1.8, "OS2/OS1 = {}", os2 / os1);
    }

    #[test]
    fn sgemm_between_tf32_and_sgemm() {
        // §5.2: OS II sits between SGEMM and TF32GEMM in throughput.
        let model = PerfModel::new(gh200());
        let n = 16384;
        let emu = tflops_of(&model, &ozaki2(n, n, n, 8, Os2Mode::Fast, Os2Input::F32), n);
        let sgemm = tflops_of(&model, &native_sgemm(n, n, n), n);
        let tf32 = tflops_of(&model, &ops::tf32gemm(n, n, n), n);
        assert!(
            emu > sgemm && emu < tf32,
            "{sgemm} < {emu} < {tf32} violated"
        );
    }

    #[test]
    fn accurate_mode_slower_than_fast() {
        let model = PerfModel::new(gh200());
        let n = 4096;
        let fast = model
            .run(&ozaki2(n, n, n, 14, Os2Mode::Fast, Os2Input::F64))
            .time_s;
        let accu = model
            .run(&ozaki2(n, n, n, 14, Os2Mode::Accurate, Os2Input::F64))
            .time_s;
        assert!(accu > fast);
    }

    #[test]
    fn breakdown_gemm_fraction_grows_with_n() {
        // §5.3: non-GEMM components shrink as n grows.
        let model = PerfModel::new(gh200());
        let frac = |n: usize| {
            let est = model.run(&ozaki2(n, n, n, 15, Os2Mode::Fast, Os2Input::F64));
            est.phase_time_s
                .get(&Phase::Int8Gemm)
                .copied()
                .unwrap_or(0.0)
                / est.time_s
        };
        assert!(frac(2048) < frac(8192));
        assert!(frac(8192) < frac(16384));
        assert!(frac(16384) > 0.5, "GEMM should dominate at n = 16384");
    }

    #[test]
    fn rtx5080_dgemm_nonmatmul_fraction_large() {
        // §5.3: on RTX 5080, non-GEMM parts ~50% even at n = 8192 for
        // DGEMM emulation (slow FP64-adjacent elementwise work is modelled
        // through bandwidth, which is 4x lower than GH200).
        let model = PerfModel::new(rtx5080());
        let n = 8192;
        let est = model.run(&ozaki2(n, n, n, 15, Os2Mode::Fast, Os2Input::F64));
        let gemm = est
            .phase_time_s
            .get(&Phase::Int8Gemm)
            .copied()
            .unwrap_or(0.0);
        let non_gemm_frac = 1.0 - gemm / est.time_s;
        assert!(
            (0.25..0.75).contains(&non_gemm_frac),
            "non-GEMM fraction = {non_gemm_frac}"
        );
    }

    #[test]
    fn energy_positive_and_consistent() {
        let model = PerfModel::new(gh200());
        let est = model.run(&native_dgemm(1024, 1024, 1024));
        assert!(est.energy_j > 0.0);
        assert!(est.time_s > 0.0);
        // Energy ≈ time × (some device power level).
        let avg_power = est.energy_j / est.time_s;
        assert!((100.0..800.0).contains(&avg_power), "P = {avg_power} W");
    }
}
