//! # gemm-perfmodel
//!
//! Analytic device model that regenerates the *shape* of the paper's
//! throughput and power figures. The substitution (documented in
//! docs/ARCHITECTURE.md): the paper measures wall-clock and NVML power on A100 /
//! GH200 / RTX 5080; we have no GPU, so we model each method's kernel
//! schedule (exact flop and byte counts from Algorithm 1 and the baseline
//! definitions — [`ops`]) through a roofline time model and per-operation
//! power levels ([`model`]) parameterised by datasheet constants
//! ([`device`]). Calibration unit tests pin the model to the paper's
//! headline numbers (1.4x / +43% DGEMM, 3.0x / +154% SGEMM on GH200,
//! crossover locations, >2x over ozIMMU).

#![warn(missing_docs)]

pub mod advisor;
pub mod device;
pub mod figures;
pub mod model;
pub mod ops;

pub use advisor::{
    is_excluded_shape, recommend_backend, recommend_dgemm, recommend_sgemm, BackendRecommendation,
    Recommendation,
};
pub use device::{a100, evaluation_devices, gh200, rtx5080, DeviceSpec, FIG1_DATASHEET};
pub use figures::{
    breakdown, fig4_dgemm_throughput, fig5_sgemm_throughput, fig8_dgemm_power, fig9_sgemm_power,
    headline, BreakdownBar, Headline, Metric, Series, SWEEP_NS,
};
pub use model::{PerfModel, RunEstimate};
pub use ops::{Op, Os2Backend, Os2Input, Os2Mode, Phase};
