//! Series generators for the paper's performance figures (4, 5, 8, 9) and
//! time-breakdown figures (6, 7). Each returns plain labelled data that
//! the `gemm-bench` binaries print as CSV — one function per figure.

use crate::device::DeviceSpec;
use crate::model::PerfModel;
use crate::ops::{self, logical_flops, Op, Os2Input, Os2Mode, Phase};

/// The `m = n = k` sweep used by Figs. 4–9.
pub const SWEEP_NS: [usize; 6] = [1024, 2048, 4096, 8192, 12288, 16384];

/// One plotted line.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (matches the paper's method names).
    pub label: String,
    /// `(n, value)` points over the sweep.
    pub points: Vec<(usize, f64)>,
}

/// What a series reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Equivalent TFLOPS (Figs. 4–5).
    Tflops,
    /// GFLOPS per watt (Figs. 8–9).
    GflopsPerWatt,
}

fn eval(model: &PerfModel, ops: &[Op], n: usize, metric: Metric) -> f64 {
    let est = model.run(ops);
    let flops = logical_flops(n, n, n);
    match metric {
        Metric::Tflops => est.tflops(flops),
        Metric::GflopsPerWatt => est.gflops_per_watt(flops),
    }
}

/// A labelled op-schedule generator: method name plus `n -> op list`.
type MethodSchedules = Vec<(String, Box<dyn Fn(usize) -> Vec<Op>>)>;

/// The DGEMM method set of Figs. 4 and 8.
fn dgemm_methods() -> MethodSchedules {
    let mut out: MethodSchedules = vec![
        ("DGEMM".into(), Box::new(|n| ops::native_dgemm(n, n, n))),
        ("ozIMMU_EF-8".into(), Box::new(|n| ops::ozimmu(n, n, n, 8))),
        ("ozIMMU_EF-9".into(), Box::new(|n| ops::ozimmu(n, n, n, 9))),
    ];
    for nmod in [14usize, 15, 16, 17] {
        out.push((
            format!("OS II-fast-{nmod}"),
            Box::new(move |n| ops::ozaki2(n, n, n, nmod, Os2Mode::Fast, Os2Input::F64)),
        ));
        out.push((
            format!("OS II-accu-{nmod}"),
            Box::new(move |n| ops::ozaki2(n, n, n, nmod, Os2Mode::Accurate, Os2Input::F64)),
        ));
    }
    out
}

/// The SGEMM method set of Figs. 5 and 9.
fn sgemm_methods() -> MethodSchedules {
    let mut out: MethodSchedules = vec![
        ("SGEMM".into(), Box::new(|n| ops::native_sgemm(n, n, n))),
        ("TF32GEMM".into(), Box::new(|n| ops::tf32gemm(n, n, n))),
        ("BF16x9".into(), Box::new(|n| ops::bf16x9(n, n, n))),
        ("cuMpSGEMM".into(), Box::new(|n| ops::cumpsgemm(n, n, n))),
    ];
    for nmod in [7usize, 8, 9] {
        out.push((
            format!("OS II-fast-{nmod}"),
            Box::new(move |n| ops::ozaki2(n, n, n, nmod, Os2Mode::Fast, Os2Input::F32)),
        ));
    }
    for nmod in [6usize, 7, 8] {
        out.push((
            format!("OS II-accu-{nmod}"),
            Box::new(move |n| ops::ozaki2(n, n, n, nmod, Os2Mode::Accurate, Os2Input::F32)),
        ));
    }
    out
}

fn sweep(device: DeviceSpec, methods: MethodSchedules, metric: Metric) -> Vec<Series> {
    let model = PerfModel::new(device);
    methods
        .into_iter()
        .map(|(label, sched)| Series {
            label,
            points: SWEEP_NS
                .iter()
                .map(|&n| (n, eval(&model, &sched(n), n, metric)))
                .collect(),
        })
        .collect()
}

/// Fig. 4: DGEMM-emulation throughput sweep on one device.
pub fn fig4_dgemm_throughput(device: DeviceSpec) -> Vec<Series> {
    sweep(device, dgemm_methods(), Metric::Tflops)
}

/// Fig. 5: SGEMM-emulation throughput sweep on one device.
pub fn fig5_sgemm_throughput(device: DeviceSpec) -> Vec<Series> {
    sweep(device, sgemm_methods(), Metric::Tflops)
}

/// Fig. 8: DGEMM-emulation power efficiency sweep.
pub fn fig8_dgemm_power(device: DeviceSpec) -> Vec<Series> {
    sweep(device, dgemm_methods(), Metric::GflopsPerWatt)
}

/// Fig. 9: SGEMM-emulation power efficiency sweep.
pub fn fig9_sgemm_power(device: DeviceSpec) -> Vec<Series> {
    sweep(device, sgemm_methods(), Metric::GflopsPerWatt)
}

/// One stacked bar of Figs. 6–7: per-phase share of total time.
#[derive(Clone, Debug)]
pub struct BreakdownBar {
    /// Problem size (`m = n = k`).
    pub n: usize,
    /// `(phase label, fraction of total time)` in Algorithm-1 order.
    pub shares: Vec<(&'static str, f64)>,
}

/// Figs. 6–7: modelled time breakdown of the emulation by Algorithm-1 line.
pub fn breakdown(
    device: DeviceSpec,
    nmod: usize,
    mode: Os2Mode,
    input: Os2Input,
) -> Vec<BreakdownBar> {
    let model = PerfModel::new(device);
    let order = [
        Phase::Scale,
        Phase::Trunc,
        Phase::Convert,
        Phase::Int8Gemm,
        Phase::ModReduce,
        Phase::Fold,
    ];
    SWEEP_NS
        .iter()
        .map(|&n| {
            let est = model.run(&ops::ozaki2(n, n, n, nmod, mode, input));
            let shares = order
                .iter()
                .map(|ph| {
                    (
                        ph.label(),
                        est.phase_time_s.get(ph).copied().unwrap_or(0.0) / est.time_s,
                    )
                })
                .collect();
            BreakdownBar { n, shares }
        })
        .collect()
}

/// The §1 headline numbers for one device at `n = 16384`.
#[derive(Clone, Debug)]
pub struct Headline {
    /// Device name.
    pub device: &'static str,
    /// OS II-fast-14 DGEMM speedup over native DGEMM.
    pub dgemm_speedup: f64,
    /// DGEMM power-efficiency gain (fraction, e.g. 0.43 = +43%).
    pub dgemm_power_gain: f64,
    /// OS II-fast-8 SGEMM speedup over native SGEMM.
    pub sgemm_speedup: f64,
    /// SGEMM power-efficiency gain.
    pub sgemm_power_gain: f64,
    /// OS II-fast-15 speedup over ozIMMU_EF-8 (prior emulation).
    pub vs_prior_emulation: f64,
}

/// Compute the headline summary for a device.
pub fn headline(device: DeviceSpec) -> Headline {
    let model = PerfModel::new(device);
    let n = 16384;
    let flops = logical_flops(n, n, n);
    let run = |ops: &[Op]| model.run(ops);

    let dg_native = run(&ops::native_dgemm(n, n, n));
    let dg_emu = run(&ops::ozaki2(n, n, n, 14, Os2Mode::Fast, Os2Input::F64));
    let sg_native = run(&ops::native_sgemm(n, n, n));
    let sg_emu = run(&ops::ozaki2(n, n, n, 8, Os2Mode::Fast, Os2Input::F32));
    let prior = run(&ops::ozimmu(n, n, n, 8));
    let os2_15 = run(&ops::ozaki2(n, n, n, 15, Os2Mode::Fast, Os2Input::F64));

    Headline {
        device: model.device.name,
        dgemm_speedup: dg_native.time_s / dg_emu.time_s,
        dgemm_power_gain: dg_emu.gflops_per_watt(flops) / dg_native.gflops_per_watt(flops) - 1.0,
        sgemm_speedup: sg_native.time_s / sg_emu.time_s,
        sgemm_power_gain: sg_emu.gflops_per_watt(flops) / sg_native.gflops_per_watt(flops) - 1.0,
        vs_prior_emulation: prior.time_s / os2_15.time_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{gh200, rtx5080};

    #[test]
    fn fig4_has_all_methods_and_points() {
        let series = fig4_dgemm_throughput(gh200());
        assert_eq!(series.len(), 3 + 8);
        for s in &series {
            assert_eq!(s.points.len(), SWEEP_NS.len());
            assert!(s.points.iter().all(|&(_, v)| v.is_finite() && v > 0.0));
        }
    }

    #[test]
    fn fig5_method_labels_match_paper() {
        let labels: Vec<String> = fig5_sgemm_throughput(gh200())
            .into_iter()
            .map(|s| s.label)
            .collect();
        for want in [
            "SGEMM",
            "TF32GEMM",
            "BF16x9",
            "cuMpSGEMM",
            "OS II-fast-8",
            "OS II-accu-7",
        ] {
            assert!(labels.iter().any(|l| l == want), "missing {want}");
        }
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        for bar in breakdown(gh200(), 15, Os2Mode::Fast, Os2Input::F64) {
            let total: f64 = bar.shares.iter().map(|(_, f)| f).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={}: {total}", bar.n);
        }
    }

    #[test]
    fn headline_matches_paper_shape_gh200() {
        let h = headline(gh200());
        assert!((1.25..1.7).contains(&h.dgemm_speedup), "{h:?}");
        assert!((0.1..0.6).contains(&h.dgemm_power_gain), "{h:?}");
        assert!((2.0..3.4).contains(&h.sgemm_speedup), "{h:?}");
        assert!((0.8..2.0).contains(&h.sgemm_power_gain), "{h:?}");
        assert!(h.vs_prior_emulation > 1.8, "{h:?}");
    }

    #[test]
    fn rtx5080_fig6_vs_fig7_conversion_contrast() {
        // §5.3: on RTX 5080 the DGEMM-emulation conversion (FP64, 1/64
        // rate) eats a much larger share than the SGEMM-emulation
        // conversion (FP32) — the visible difference between Figs. 6 and 7.
        let dgemm_bars = breakdown(rtx5080(), 15, Os2Mode::Fast, Os2Input::F64);
        let sgemm_bars = breakdown(rtx5080(), 8, Os2Mode::Fast, Os2Input::F32);
        let convert_share = |bars: &[BreakdownBar], n: usize| {
            bars.iter()
                .find(|b| b.n == n)
                .unwrap()
                .shares
                .iter()
                .find(|(l, _)| l.contains("convert"))
                .unwrap()
                .1
        };
        let d = convert_share(&dgemm_bars, 8192);
        let s = convert_share(&sgemm_bars, 8192);
        assert!(
            d > 3.0 * s,
            "DGEMM convert share {d} should dwarf SGEMM's {s} on RTX 5080"
        );
    }

    #[test]
    fn rtx5080_throughput_series_monotone_in_n_for_emulation() {
        // Larger problems amortise overheads: every OS II series should be
        // non-decreasing over the sweep on every device.
        for s in fig4_dgemm_throughput(rtx5080()) {
            if !s.label.starts_with("OS II") {
                continue;
            }
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1 * 0.98, "{}: drop at n={}", s.label, w[1].0);
            }
        }
    }
}
