//! Device specification sheets.
//!
//! Encodes the published dense peak throughputs of the three GPUs in the
//! paper's evaluation plus the generation table behind Fig. 1. Power draws
//! per operation class are calibrated so the model reproduces the paper's
//! reported efficiency ratios (see `calibration` tests in `model.rs`):
//! e.g. on RTX 5080 the paper measures INT8 GEMM at 5.3x SGEMM's speed but
//! 13.3x its GFLOPS/W at n = 1024, implying INT8 draws ~40% of SGEMM's
//! power there.

/// Peak rates (TFLOPS / TOPS, dense) and power behaviour of one device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// FP64 peak (TFLOPS) — tensor-core path where it exists.
    pub fp64: f64,
    /// FP32 peak (TFLOPS).
    pub fp32: f64,
    /// TF32 tensor-core peak (TFLOPS).
    pub tf32: f64,
    /// FP16 tensor-core peak (TFLOPS).
    pub fp16: f64,
    /// BF16 tensor-core peak (TFLOPS).
    pub bf16: f64,
    /// INT8 tensor-core peak (TOPS).
    pub int8: f64,
    /// Non-tensor (CUDA-core) FP64 rate (TFLOPS) — what elementwise f64
    /// kernels run at; 1/64 of FP32 on consumer parts.
    pub fp64_cuda: f64,
    /// Memory bandwidth (GB/s).
    pub mem_bw_gbs: f64,
    /// Streaming multiprocessors (occupancy roll-off for small GEMMs).
    pub sms: usize,
    /// Kernel launch + epilogue overhead per kernel (seconds).
    pub launch_overhead_s: f64,
    /// Fraction of peak a well-tuned large floating-point GEMM achieves.
    pub gemm_efficiency: f64,
    /// Fraction of the INT8 marketing peak an IMMA GEMM achieves
    /// (measurably lower than the FP paths across generations).
    pub int8_efficiency: f64,
    /// Average power (W) during FP64 GEMM.
    pub power_fp64_w: f64,
    /// Average power (W) during FP32 GEMM.
    pub power_fp32_w: f64,
    /// Average power (W) during low-precision tensor-core GEMM.
    pub power_lowfp_w: f64,
    /// Average power (W) during INT8 GEMM.
    pub power_int8_w: f64,
    /// Average power (W) during memory-bound elementwise kernels.
    pub power_mem_w: f64,
}

/// NVIDIA A100 SXM4 (Ampere).
pub fn a100() -> DeviceSpec {
    DeviceSpec {
        name: "A100",
        fp64: 19.5, // FP64 tensor core
        fp32: 19.5,
        tf32: 156.0,
        fp16: 312.0,
        bf16: 312.0,
        int8: 624.0,
        fp64_cuda: 9.7,
        mem_bw_gbs: 2039.0,
        sms: 108,
        launch_overhead_s: 2.5e-6,
        gemm_efficiency: 0.87,
        int8_efficiency: 0.55,
        power_fp64_w: 390.0,
        power_fp32_w: 380.0,
        power_lowfp_w: 400.0,
        power_int8_w: 390.0,
        power_mem_w: 280.0,
    }
}

/// NVIDIA GH200 Grace Hopper (H100-96GB GPU side).
pub fn gh200() -> DeviceSpec {
    DeviceSpec {
        name: "GH200",
        fp64: 67.0, // FP64 tensor core
        fp32: 67.0,
        tf32: 494.7,
        fp16: 989.5,
        bf16: 989.5,
        int8: 1978.9,
        fp64_cuda: 33.5,
        mem_bw_gbs: 4022.0,
        sms: 132,
        launch_overhead_s: 2.0e-6,
        gemm_efficiency: 0.87,
        int8_efficiency: 0.66,
        power_fp64_w: 620.0,
        power_fp32_w: 610.0,
        power_lowfp_w: 640.0,
        power_int8_w: 620.0,
        power_mem_w: 480.0,
    }
}

/// NVIDIA GeForce RTX 5080 (Blackwell consumer: FP64 at 1/64 of FP32).
pub fn rtx5080() -> DeviceSpec {
    DeviceSpec {
        name: "RTX 5080",
        fp64: 0.88,
        fp32: 56.3,
        tf32: 112.7,
        fp16: 225.3,
        bf16: 225.3,
        int8: 901.4, // dense INT8 = 2x dense FP16 on consumer Blackwell
        fp64_cuda: 0.88,
        mem_bw_gbs: 960.0,
        sms: 84,
        launch_overhead_s: 2.0e-6,
        gemm_efficiency: 0.85,
        int8_efficiency: 0.57,
        power_fp64_w: 150.0,
        power_fp32_w: 330.0,
        power_lowfp_w: 300.0,
        power_int8_w: 135.0,
        power_mem_w: 170.0,
    }
}

/// The three evaluation devices, in the paper's plotting order.
pub fn evaluation_devices() -> [DeviceSpec; 3] {
    [a100(), gh200(), rtx5080()]
}

/// One row of the Fig. 1 generation chart.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Entry {
    /// GPU name.
    pub name: &'static str,
    /// Vendor.
    pub vendor: &'static str,
    /// Release year.
    pub year: u32,
    /// FP64 (TFLOPS), FP32 (TFLOPS), FP16 (TFLOPS), INT8 (TOPS) — dense.
    pub fp64: f64,
    /// FP32 peak.
    pub fp32: f64,
    /// FP16 (tensor/matrix core) peak.
    pub fp16: f64,
    /// INT8 peak.
    pub int8: f64,
}

/// Fig. 1: TFLOPS and TOPS of AMD and NVIDIA GPUs for dense data.
pub const FIG1_DATASHEET: &[Fig1Entry] = &[
    Fig1Entry {
        name: "P100",
        vendor: "NVIDIA",
        year: 2016,
        fp64: 5.3,
        fp32: 10.6,
        fp16: 21.2,
        int8: 0.0,
    },
    Fig1Entry {
        name: "V100",
        vendor: "NVIDIA",
        year: 2017,
        fp64: 7.8,
        fp32: 15.7,
        fp16: 125.0,
        int8: 62.0,
    },
    Fig1Entry {
        name: "A100",
        vendor: "NVIDIA",
        year: 2020,
        fp64: 19.5,
        fp32: 19.5,
        fp16: 312.0,
        int8: 624.0,
    },
    Fig1Entry {
        name: "H100 SXM",
        vendor: "NVIDIA",
        year: 2022,
        fp64: 67.0,
        fp32: 67.0,
        fp16: 989.5,
        int8: 1978.9,
    },
    Fig1Entry {
        name: "B200",
        vendor: "NVIDIA",
        year: 2024,
        fp64: 37.0,
        fp32: 75.0,
        fp16: 2250.0,
        int8: 4500.0,
    },
    Fig1Entry {
        name: "MI100",
        vendor: "AMD",
        year: 2020,
        fp64: 11.5,
        fp32: 23.1,
        fp16: 184.6,
        int8: 184.6,
    },
    Fig1Entry {
        name: "MI250X",
        vendor: "AMD",
        year: 2021,
        fp64: 47.9,
        fp32: 47.9,
        fp16: 383.0,
        int8: 383.0,
    },
    Fig1Entry {
        name: "MI300X",
        vendor: "AMD",
        year: 2023,
        fp64: 81.7,
        fp32: 163.4,
        fp16: 1307.4,
        int8: 2614.9,
    },
    Fig1Entry {
        name: "RTX 4090",
        vendor: "NVIDIA",
        year: 2022,
        fp64: 1.3,
        fp32: 82.6,
        fp16: 330.3,
        int8: 660.6,
    },
    Fig1Entry {
        name: "RTX 5080",
        vendor: "NVIDIA",
        year: 2025,
        fp64: 0.88,
        fp32: 56.3,
        fp16: 225.3,
        int8: 901.4,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_precision_outpaces_high_precision_growth() {
        // The premise of Fig. 1: INT8 grew much faster than FP64 across
        // NVIDIA datacenter generations.
        let v100 = &FIG1_DATASHEET[1];
        let h100 = &FIG1_DATASHEET[3];
        let fp64_growth = h100.fp64 / v100.fp64;
        let int8_growth = h100.int8 / v100.int8;
        assert!(int8_growth > 3.0 * fp64_growth);
    }

    #[test]
    fn int8_is_fastest_everywhere() {
        for d in evaluation_devices() {
            assert!(d.int8 >= d.fp16 && d.fp16 >= d.tf32 && d.tf32 >= d.fp32);
            assert!(d.fp32 >= d.fp64);
        }
    }

    #[test]
    fn rtx5080_fp64_is_1_over_64_of_fp32() {
        let d = rtx5080();
        let ratio = d.fp32 / d.fp64;
        assert!((ratio - 64.0).abs() < 1.0, "ratio={ratio}");
    }

    #[test]
    fn rtx5080_int8_power_advantage() {
        // The calibration target: P(int8)/P(fp32) ≈ 5.3/13.3 ≈ 0.4.
        let d = rtx5080();
        let ratio = d.power_int8_w / d.power_fp32_w;
        assert!((0.3..0.5).contains(&ratio), "ratio={ratio}");
    }
}
