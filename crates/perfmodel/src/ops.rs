//! Operation schedules: the kernels each method launches, with exact
//! flop/byte counts derived from Algorithm 1 and the baseline definitions.
//!
//! The schedules are the *structural* ground truth of the time/power
//! figures: who wins and where the crossovers fall is decided by how many
//! INT8 GEMMs and how much elementwise traffic/arithmetic each method
//! needs, which this module encodes — device constants only set the
//! absolute scale. Elementwise kernels carry both a byte count and a flop
//! count with its precision: on datacenter parts they are bandwidth-bound,
//! but on consumer parts the FP64 conversion arithmetic is compute-bound
//! (FP64 = FP32/64), which is exactly the §5.3 observation that non-GEMM
//! phases stay near 50% on RTX 5080 for DGEMM emulation while SGEMM
//! emulation's FP32 conversions are cheap.

/// Phase tag for breakdown figures (maps to Algorithm 1 lines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Line 1 (scale determination; accurate mode includes `Ā·B̄`).
    Scale,
    /// Lines 2–3 (truncation).
    Trunc,
    /// Lines 4–5 (INT8 conversion).
    Convert,
    /// Line 6 (INT8 GEMMs).
    Int8Gemm,
    /// Line 7 (INT32→UINT8 reduction).
    ModReduce,
    /// Lines 8–12 (accumulation, fold, inverse scale).
    Fold,
    /// A native / baseline GEMM kernel.
    NativeGemm,
    /// Baseline split/combine elementwise work.
    Aux,
}

impl Phase {
    /// Display label in Algorithm-1 terms.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Scale => "scale (line 1)",
            Phase::Trunc => "trunc (lines 2-3)",
            Phase::Convert => "convert (lines 4-5)",
            Phase::Int8Gemm => "int8 GEMM (line 6)",
            Phase::ModReduce => "mod (line 7)",
            Phase::Fold => "fold (lines 8-12)",
            Phase::NativeGemm => "GEMM",
            Phase::Aux => "split/combine",
        }
    }
}

/// GEMM input precision (selects peak rate and power).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmPrecision {
    /// FP64 (tensor-core path where available).
    F64,
    /// FP32.
    F32,
    /// TF32 tensor core.
    Tf32,
    /// FP16 tensor core.
    F16,
    /// BF16 tensor core.
    Bf16,
    /// INT8 tensor core.
    Int8,
}

impl GemmPrecision {
    /// Bytes per input element.
    pub fn in_bytes(self) -> f64 {
        match self {
            GemmPrecision::F64 => 8.0,
            GemmPrecision::F32 | GemmPrecision::Tf32 => 4.0,
            GemmPrecision::F16 | GemmPrecision::Bf16 => 2.0,
            GemmPrecision::Int8 => 1.0,
        }
    }

    /// Bytes per output element.
    pub fn out_bytes(self) -> f64 {
        match self {
            GemmPrecision::F64 => 8.0,
            GemmPrecision::Int8 => 4.0, // INT32 accumulator
            _ => 4.0,
        }
    }
}

/// Arithmetic precision of an elementwise kernel's flops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemFp {
    /// FP64 arithmetic (runs at the CUDA-core FP64 rate).
    F64,
    /// FP32 / integer ALU arithmetic (runs at the FP32 rate).
    F32,
}

/// One kernel launch.
#[derive(Clone, Copy, Debug)]
pub enum Op {
    /// A GEMM of the given shape and precision.
    Gemm {
        /// Phase tag.
        phase: Phase,
        /// Input precision.
        precision: GemmPrecision,
        /// Shape.
        m: usize,
        /// Shape.
        n: usize,
        /// Shape.
        k: usize,
    },
    /// An elementwise kernel moving `bytes` and executing `flops`.
    Elementwise {
        /// Phase tag.
        phase: Phase,
        /// Total bytes read + written.
        bytes: f64,
        /// Arithmetic operations executed.
        flops: f64,
        /// Precision of those operations.
        fp: ElemFp,
    },
}

/// Schedule for native DGEMM.
pub fn native_dgemm(m: usize, n: usize, k: usize) -> Vec<Op> {
    vec![Op::Gemm {
        phase: Phase::NativeGemm,
        precision: GemmPrecision::F64,
        m,
        n,
        k,
    }]
}

/// Schedule for native SGEMM.
pub fn native_sgemm(m: usize, n: usize, k: usize) -> Vec<Op> {
    vec![Op::Gemm {
        phase: Phase::NativeGemm,
        precision: GemmPrecision::F32,
        m,
        n,
        k,
    }]
}

/// Schedule for TF32GEMM (quantise + one TF32 GEMM).
pub fn tf32gemm(m: usize, n: usize, k: usize) -> Vec<Op> {
    let elems = (m * k + k * n) as f64;
    vec![
        Op::Elementwise {
            phase: Phase::Aux,
            bytes: 8.0 * elems,
            flops: elems,
            fp: ElemFp::F32,
        },
        Op::Gemm {
            phase: Phase::NativeGemm,
            precision: GemmPrecision::Tf32,
            m,
            n,
            k,
        },
    ]
}

/// Schedule for BF16x9 (3-way split of each operand, 9 BF16 GEMMs).
pub fn bf16x9(m: usize, n: usize, k: usize) -> Vec<Op> {
    let elems = (m * k + k * n) as f64;
    let mut ops = vec![Op::Elementwise {
        // read f32 operands + write 3 bf16 planes each; ~6 flops/element.
        phase: Phase::Aux,
        bytes: (4.0 + 3.0 * 2.0) * elems,
        flops: 6.0 * elems,
        fp: ElemFp::F32,
    }];
    for _ in 0..9 {
        ops.push(Op::Gemm {
            phase: Phase::NativeGemm,
            precision: GemmPrecision::Bf16,
            m,
            n,
            k,
        });
    }
    // Combine: 9 f32 partial reads + 1 write.
    ops.push(Op::Elementwise {
        phase: Phase::Aux,
        bytes: 10.0 * 4.0 * (m * n) as f64,
        flops: 18.0 * (m * n) as f64,
        fp: ElemFp::F32,
    });
    ops
}

/// Schedule for cuMpSGEMM FP16TCEC_SCALING (2-way split, 3 FP16 GEMMs).
pub fn cumpsgemm(m: usize, n: usize, k: usize) -> Vec<Op> {
    let elems = (m * k + k * n) as f64;
    let mut ops = vec![Op::Elementwise {
        phase: Phase::Aux,
        bytes: (4.0 + 2.0 * 2.0) * elems,
        flops: 5.0 * elems,
        fp: ElemFp::F32,
    }];
    for _ in 0..3 {
        ops.push(Op::Gemm {
            phase: Phase::NativeGemm,
            precision: GemmPrecision::F16,
            m,
            n,
            k,
        });
    }
    ops.push(Op::Elementwise {
        phase: Phase::Aux,
        bytes: 4.0 * 4.0 * (m * n) as f64,
        flops: 5.0 * (m * n) as f64,
        fp: ElemFp::F32,
    });
    ops
}

/// Schedule for ozIMMU_EF with `S` slices: `S(S+1)/2` INT8 GEMMs plus f64
/// slicing and f64 accumulation traffic.
pub fn ozimmu(m: usize, n: usize, k: usize, slices: usize) -> Vec<Op> {
    let elems = (m * k + k * n) as f64;
    let pairs = slices * (slices + 1) / 2;
    let mut ops = vec![Op::Elementwise {
        // Slicing: read f64 operands, write S INT8 planes; ~3 f64 ops per
        // slice element.
        phase: Phase::Convert,
        bytes: (8.0 + slices as f64) * elems,
        flops: 3.0 * slices as f64 * elems,
        fp: ElemFp::F64,
    }];
    for _ in 0..pairs {
        ops.push(Op::Gemm {
            phase: Phase::Int8Gemm,
            precision: GemmPrecision::Int8,
            m,
            n,
            k,
        });
        // Each INT32 result folds into the f64 accumulator.
        ops.push(Op::Elementwise {
            phase: Phase::Fold,
            bytes: (4.0 + 2.0 * 8.0) * (m * n) as f64,
            flops: 3.0 * (m * n) as f64,
            fp: ElemFp::F64,
        });
    }
    ops
}

/// Operating mode for the Ozaki Scheme II schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Os2Mode {
    /// Fast (Cauchy–Schwarz) scaling.
    Fast,
    /// Accurate (INT8-estimate) scaling.
    Accurate,
}

/// Input width for the Ozaki Scheme II schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Os2Input {
    /// DGEMM emulation (f64 operands).
    F64,
    /// SGEMM emulation (f32 operands).
    F32,
}

/// Residue engine the plane products run on. This crate is a dependency
/// leaf (the runtime's `BackendKind` lives in `gemm_engine`), so the
/// advisor speaks its own two-valued copy; `as_str` values match the
/// runtime's for painless correlation with `ozaki_backend_selected`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Os2Backend {
    /// INT8 dot-product engine with INT32 accumulation (VNNI / IMMA).
    Int8,
    /// bf16-encoded residues on the f32 FMA pipes. Each plane carries
    /// fewer bits (moduli ≤ 64), so the same accuracy needs more planes —
    /// the candidate list the advisor receives encodes that.
    FmaBf16,
}

impl Os2Backend {
    /// Stable label, equal to the runtime `BackendKind::as_str` value.
    pub fn as_str(self) -> &'static str {
        match self {
            Os2Backend::Int8 => "int8",
            Os2Backend::FmaBf16 => "fma-bf16",
        }
    }

    /// Plane-GEMM precision the device model charges for this engine.
    pub fn plane_precision(self) -> GemmPrecision {
        match self {
            Os2Backend::Int8 => GemmPrecision::Int8,
            Os2Backend::FmaBf16 => GemmPrecision::F32,
        }
    }
}

/// Schedule for Ozaki Scheme II (Algorithm 1) with `nmod` moduli on the
/// INT8 engine (the paper's configuration).
pub fn ozaki2(
    m: usize,
    n: usize,
    k: usize,
    nmod: usize,
    mode: Os2Mode,
    input: Os2Input,
) -> Vec<Op> {
    ozaki2_backend(m, n, k, nmod, mode, input, Os2Backend::Int8)
}

/// [`ozaki2`] with an explicit residue engine: identical phase structure,
/// but the `nmod` plane products are charged at the engine's rate — INT8
/// dot-product throughput for [`Os2Backend::Int8`], the f32 FMA rate for
/// [`Os2Backend::FmaBf16`] (whose residues ride the regular FP32 pipes).
pub fn ozaki2_backend(
    m: usize,
    n: usize,
    k: usize,
    nmod: usize,
    mode: Os2Mode,
    input: Os2Input,
    backend: Os2Backend,
) -> Vec<Op> {
    let (el, fp) = match input {
        Os2Input::F64 => (8.0, ElemFp::F64),
        Os2Input::F32 => (4.0, ElemFp::F32),
    };
    let mk = (m * k) as f64;
    let kn = (k * n) as f64;
    let mn = (m * n) as f64;
    let nm = nmod as f64;
    let mut ops = Vec::new();

    // Line 1: scale vectors.
    match mode {
        Os2Mode::Fast => {
            // Two passes over each operand (max, then round-up norms):
            // ~4 arithmetic ops per element in the input precision.
            ops.push(Op::Elementwise {
                phase: Phase::Scale,
                bytes: 2.0 * el * (mk + kn),
                flops: 4.0 * (mk + kn),
                fp,
            });
        }
        Os2Mode::Accurate => {
            // Magnitude quantisation + estimation GEMM + C̄ row/col maxima.
            ops.push(Op::Elementwise {
                phase: Phase::Scale,
                bytes: (el + 1.0) * (mk + kn),
                flops: 3.0 * (mk + kn),
                fp,
            });
            ops.push(Op::Gemm {
                phase: Phase::Scale,
                precision: GemmPrecision::Int8,
                m,
                n,
                k,
            });
            ops.push(Op::Elementwise {
                phase: Phase::Scale,
                bytes: 4.0 * mn,
                flops: 2.0 * mn,
                fp: ElemFp::F32,
            });
        }
    }
    // Lines 2–3: truncation (read + write both operands, 2 ops/element).
    ops.push(Op::Elementwise {
        phase: Phase::Trunc,
        bytes: 2.0 * el * (mk + kn),
        flops: 2.0 * (mk + kn),
        fp,
    });
    // Lines 4–5: conversion — GEMMul8 fuses this into one read of the
    // integer matrix and N INT8 plane writes; the fast rmod costs ~10
    // arithmetic ops per plane element in the input precision.
    ops.push(Op::Elementwise {
        phase: Phase::Convert,
        bytes: (el + nm) * (mk + kn),
        flops: 10.0 * nm * (mk + kn),
        fp,
    });
    // Line 6: N INT8 GEMMs; line 7: INT32 read + UINT8 write per plane
    // (~5 integer ALU ops, modelled at the FP32 rate).
    for _ in 0..nmod {
        ops.push(Op::Gemm {
            phase: Phase::Int8Gemm,
            precision: backend.plane_precision(),
            m,
            n,
            k,
        });
        ops.push(Op::Elementwise {
            phase: Phase::ModReduce,
            bytes: 5.0 * mn,
            flops: 5.0 * mn,
            fp: ElemFp::F32,
        });
    }
    // Lines 8–12: read N UINT8 planes, write the output once; the
    // accumulation and fold are FP64 regardless of input precision
    // (Algorithm 1 lines 8–11 are F64 for both DGEMM and SGEMM).
    let fold_flops_per_elem = match input {
        Os2Input::F64 => 2.0 * nm + 8.0,
        Os2Input::F32 => nm + 8.0, // s2 = 0
    };
    ops.push(Op::Elementwise {
        phase: Phase::Fold,
        bytes: (nm + el) * mn,
        flops: fold_flops_per_elem * mn,
        fp: ElemFp::F64,
    });
    ops
}

/// Total flops (2mnk) represented by a schedule's *logical* product —
/// the numerator of "equivalent TFLOPS".
pub fn logical_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_count(ops: &[Op]) -> usize {
        ops.iter().filter(|o| matches!(o, Op::Gemm { .. })).count()
    }

    #[test]
    fn ozaki2_issues_n_gemms_fast() {
        let ops = ozaki2(64, 64, 64, 14, Os2Mode::Fast, Os2Input::F64);
        assert_eq!(gemm_count(&ops), 14);
    }

    #[test]
    fn ozaki2_issues_n_plus_one_gemms_accurate() {
        let ops = ozaki2(64, 64, 64, 14, Os2Mode::Accurate, Os2Input::F64);
        assert_eq!(gemm_count(&ops), 15);
    }

    #[test]
    fn ozimmu_issues_triangular_gemms() {
        assert_eq!(gemm_count(&ozimmu(8, 8, 8, 8)), 36);
        assert_eq!(gemm_count(&ozimmu(8, 8, 8, 9)), 45);
    }

    #[test]
    fn scheme2_beats_scheme1_in_gemm_count() {
        // The paper's structural advantage: 14–17 GEMMs vs 36–45.
        assert!(
            gemm_count(&ozaki2(8, 8, 8, 17, Os2Mode::Fast, Os2Input::F64)) * 2
                < gemm_count(&ozimmu(8, 8, 8, 8))
        );
    }

    #[test]
    fn sgemm_baselines_counts() {
        assert_eq!(gemm_count(&bf16x9(8, 8, 8)), 9);
        assert_eq!(gemm_count(&cumpsgemm(8, 8, 8)), 3);
        assert_eq!(gemm_count(&tf32gemm(8, 8, 8)), 1);
        assert_eq!(gemm_count(&native_sgemm(8, 8, 8)), 1);
    }

    #[test]
    fn elementwise_bytes_scale_linearly_with_n_moduli() {
        let b = |nmod| -> f64 {
            ozaki2(128, 128, 128, nmod, Os2Mode::Fast, Os2Input::F64)
                .iter()
                .map(|o| match o {
                    Op::Elementwise { bytes, .. } => *bytes,
                    _ => 0.0,
                })
                .sum()
        };
        let d1 = b(10) - b(8);
        let d2 = b(12) - b(10);
        assert!(
            (d1 - d2).abs() < 1e-6,
            "convert traffic must be linear in N"
        );
    }

    #[test]
    fn sgemm_conversion_flops_run_in_f32() {
        // §5.3: the FP32 conversion path is what rescues SGEMM emulation
        // on consumer silicon.
        let ops = ozaki2(64, 64, 64, 8, Os2Mode::Fast, Os2Input::F32);
        let convert_fp = ops.iter().find_map(|o| match o {
            Op::Elementwise {
                phase: Phase::Convert,
                fp,
                ..
            } => Some(*fp),
            _ => None,
        });
        assert_eq!(convert_fp, Some(ElemFp::F32));
        // While the fold stays F64 in both pipelines.
        let fold_fp = ops.iter().find_map(|o| match o {
            Op::Elementwise {
                phase: Phase::Fold,
                fp,
                ..
            } => Some(*fp),
            _ => None,
        });
        assert_eq!(fold_fp, Some(ElemFp::F64));
    }
}
