//! Property-based tests for the exact-arithmetic substrate.

use gemm_exact::{
    fast_two_sum, gcd_u64, modinv_u64, mul_i128, rmod_i256, two_prod, two_sum, CrtBasis, Dd, I256,
    U256,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn two_sum_residual_identity(a in -1e15f64..1e15, b in -1e15f64..1e15) {
        let (s, e) = two_sum(a, b);
        // s is the rounded sum and (s, e) re-normalises to itself.
        prop_assert_eq!(s, a + b);
        let (s2, e2) = two_sum(s, e);
        prop_assert_eq!(s2, s);
        prop_assert_eq!(e2, e);
    }

    #[test]
    fn fast_two_sum_agrees_when_ordered(a in -1e12f64..1e12, b in -1e6f64..1e6) {
        let (hi, lo) = if a.abs() >= b.abs() { (a, b) } else { (b, a) };
        prop_assert_eq!(fast_two_sum(hi, lo), two_sum(hi, lo));
    }

    #[test]
    fn two_prod_exact_via_integers(a in -(1i64 << 26)..(1i64 << 26), b in -(1i64 << 26)..(1i64 << 26)) {
        // For integer inputs below 2^26 the product fits 53 bits: e == 0.
        let (p, e) = two_prod(a as f64, b as f64);
        prop_assert_eq!(p, (a * b) as f64);
        prop_assert_eq!(e, 0.0);
    }

    #[test]
    fn two_prod_residual_reconstructs(a in -1e10f64..1e10, b in -1e10f64..1e10) {
        let (p, e) = two_prod(a, b);
        // Verify a*b = p + e using exact 256-bit arithmetic on scaled
        // integer representations (scale by 2^60 keeps everything integral
        // only for dyadics, so instead check through DD consistency).
        let dd = Dd::from_f64(a).mul_f64(b);
        let diff = dd.sub(Dd::renorm(p, e)).to_f64().abs();
        prop_assert!(diff <= p.abs() * 1e-30 + 1e-300);
    }

    #[test]
    fn dd_add_commutes(a in -1e10f64..1e10, b in -1e10f64..1e10, c in -1e-6f64..1e-6) {
        let x = Dd::renorm(a, c);
        let y = Dd::from_f64(b);
        let s1 = x.add(y);
        let s2 = y.add(x);
        prop_assert_eq!(s1.hi, s2.hi);
        prop_assert_eq!(s1.lo, s2.lo);
    }

    #[test]
    fn dd_mul_div_round_trip(a in 1e-8f64..1e8, b in 1e-8f64..1e8) {
        let x = Dd::from_f64(a);
        let y = Dd::from_f64(b);
        let back = x.mul(y).div(y);
        let rel = back.sub(x).to_f64().abs() / a;
        prop_assert!(rel < 1e-29, "rel={rel}");
    }

    #[test]
    fn u256_add_sub_round_trip(a in any::<[u64; 3]>(), b in any::<[u64; 3]>()) {
        let x = U256([a[0], a[1], a[2], 0]);
        let y = U256([b[0], b[1], b[2], 0]);
        prop_assert_eq!(x.add(y).sub(y), x);
    }

    #[test]
    fn u256_mul_div_u64_round_trip(a in any::<[u64; 2]>(), m in 1u64..u64::MAX) {
        let x = U256([a[0], a[1], 0, 0]);
        let (q, r) = x.mul_u64(m).div_rem_u64(m);
        prop_assert_eq!(q, x);
        prop_assert_eq!(r, 0);
    }

    #[test]
    fn u256_shifts_invert(a in any::<[u64; 2]>(), n in 0u32..128) {
        let x = U256([a[0], a[1], 0, 0]);
        prop_assert_eq!(x.shl(n).shr(n), x);
    }

    #[test]
    fn u256_to_f64_matches_u128_cast(x in any::<u128>()) {
        prop_assert_eq!(U256::from_u128(x).to_f64(), x as f64);
    }

    #[test]
    fn u256_div_rem_reconstructs(a in any::<[u64; 3]>(), b in any::<[u64; 2]>()) {
        let x = U256([a[0], a[1], a[2], 0]);
        let d = U256([b[0] | 1, b[1], 0, 0]); // nonzero
        let (q, r) = x.div_rem(d);
        prop_assert!(r < d);
        // q*d + r == x, verified with mul_u64 chunks: multiply via shifts.
        // Use f64 check plus small-case exactness instead: reconstruct
        // through div_rem of the rebuilt value only when q fits 64 bits.
        if q.bits() <= 64 {
            let back = d.mul_u64(q.low_u64()).add(r);
            prop_assert_eq!(back, x);
        }
    }

    #[test]
    fn i256_mul_i128_matches_native(a in -(1i128 << 62)..(1i128 << 62), b in -(1i128 << 62)..(1i128 << 62)) {
        // Products below 2^124 also fit i128: compare against native.
        let exact = a.checked_mul(b);
        prop_assume!(exact.is_some());
        let got = mul_i128(a, b);
        prop_assert_eq!(got, I256::from_i128(exact.unwrap()));
    }

    #[test]
    fn i256_rem_euclid_matches_i128(x in any::<i128>(), p in 2u64..1000) {
        prop_assert_eq!(
            I256::from_i128(x).rem_euclid_u64(p) as i128,
            x.rem_euclid(p as i128)
        );
    }

    #[test]
    fn rmod_range_and_congruence(x in -(1i128 << 100)..(1i128 << 100), pidx in 0usize..6) {
        let ps = [256u64, 255, 253, 251, 247, 241];
        let p = ps[pidx];
        let r = rmod_i256(I256::from_i128(x), &U256::from_u64(p));
        let rv = r.to_f64() as i128;
        prop_assert!(rv.abs() <= (p / 2) as i128);
        prop_assert_eq!((x - rv).rem_euclid(p as i128), 0);
    }

    #[test]
    fn crt_round_trip_within_range(x in -(1i128 << 40)..(1i128 << 40)) {
        let basis = CrtBasis::new(&[256, 255, 253, 251, 247, 241, 239]);
        // P(7) ~ 2^55.7 >> 2^41: round trip must be exact.
        let back = basis.reconstruct(&basis.residues(I256::from_i128(x)));
        prop_assert_eq!(back.to_f64() as i128, x);
    }

    #[test]
    fn modinv_is_inverse(a in 1u64..100_000, p in 2u64..100_000) {
        prop_assume!(gcd_u64(a, p) == 1);
        let inv = modinv_u64(a % p, p);
        prop_assume!(a % p != 0);
        prop_assert_eq!((a as u128 * inv as u128) % p as u128, 1);
    }

    #[test]
    fn from_f64_exact_round_trips(x in -(1i64 << 52)..(1i64 << 52)) {
        let v = I256::from_f64_exact(x as f64);
        prop_assert_eq!(v.to_f64(), x as f64);
    }
}
