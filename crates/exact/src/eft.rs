//! Error-free transformations (EFTs) of floating-point sum and product.
//!
//! These are the classical building blocks (Knuth's TwoSum, Dekker's
//! FastTwoSum, FMA-based TwoProd) used by the double-double layer and by
//! the paper's FMA-based `rmod` kernel analysis.

/// Knuth's TwoSum: returns `(s, e)` with `s = fl(a+b)` and `a + b = s + e`
/// exactly. No requirement on the magnitudes of `a` and `b`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Dekker's FastTwoSum: same contract as [`two_sum`] but requires
/// `|a| >= |b|` (or `a == 0`). One branch-free op cheaper.
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a == 0.0 || a.abs() >= b.abs() || a.is_nan() || b.is_nan());
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// FMA-based TwoProd: returns `(p, e)` with `p = fl(a*b)` and
/// `a * b = p + e` exactly (no overflow/underflow assumed).
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = a.mul_add(b, -p);
    (p, e)
}

/// Sum a slice with a compensated (Kahan–Babuška–Neumaier) accumulator.
/// Error is O(eps) independent of length — used where the paper requires
/// "high-precision operations" outside the hot path.
pub fn neumaier_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0f64;
    let mut c = 0.0f64;
    for &x in xs {
        let t = s + x;
        if s.abs() >= x.abs() {
            c += (s - t) + x;
        } else {
            c += (x - t) + s;
        }
        s = t;
    }
    s + c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact() {
        let cases = [
            (1.0, 1e-30),
            (1e16, 1.0),
            (-1.0, 1.0 + 2e-16),
            (3.15625, 2.6875e-12),
        ];
        for (a, b) in cases {
            let (s, e) = two_sum(a, b);
            // Verify with higher-precision arithmetic via integer maths on
            // the binary expansions: s + e must equal a + b exactly, so
            // (a - s) + b == e - (s - a - b) ... easiest check: recompute in
            // two pieces.
            assert_eq!(s, a + b);
            // (s, e) is already normalised: re-running TwoSum must be a
            // fixed point (idempotence), confirming |e| <= ulp(s)/2.
            let (s2, e2) = two_sum(s, e);
            assert_eq!(s2, s);
            assert_eq!(e2, e);
        }
    }

    #[test]
    fn two_sum_huge_cancellation() {
        let a = 1e308;
        let b = -1e308 + 1e292;
        let (s, e) = two_sum(a, b);
        assert_eq!(s + e, a + b);
    }

    #[test]
    fn fast_two_sum_matches_two_sum_when_ordered() {
        let pairs = [(2.0, 1.0), (1e20, -3.5), (-8.0, 0.25)];
        for (a, b) in pairs {
            assert_eq!(fast_two_sum(a, b), two_sum(a, b));
        }
    }

    #[test]
    fn two_prod_exact_residual() {
        let a = 1.0 + 2f64.powi(-30);
        let b = 1.0 + 2f64.powi(-29);
        let (p, e) = two_prod(a, b);
        // a*b = 1 + 2^-29 + 2^-30 + 2^-59; p rounds away the 2^-59 term.
        assert_eq!(p, 1.0 + 2f64.powi(-29) + 2f64.powi(-30));
        assert_eq!(e, 2f64.powi(-59));
    }

    #[test]
    fn two_prod_of_integers_has_zero_error_when_small() {
        let (p, e) = two_prod(3.0, 7.0);
        assert_eq!((p, e), (21.0, 0.0));
    }

    #[test]
    fn neumaier_beats_naive() {
        // 1 + 1e100 - 1e100 + ... the classic pattern.
        let xs = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(&xs), 2.0);
        let naive: f64 = xs.iter().sum();
        assert_ne!(naive, 2.0);
    }
}
