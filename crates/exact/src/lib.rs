//! # gemm-exact
//!
//! Exact and extended-precision arithmetic substrate:
//!
//! * [`eft`] — error-free transformations (TwoSum / TwoProd / compensated sums);
//! * [`dd`] — double-double arithmetic and the DD-accumulated reference GEMM
//!   used as the accuracy oracle for Fig. 3;
//! * [`wide`] — fixed-width [`wide::U256`] / [`wide::I256`]
//!   integers for exact constant construction (`P`, CRT weights) and the
//!   bit-exactness oracle;
//! * [`crt`] — exact Chinese-Remainder reconstruction and exact integer GEMM;
//! * [`roundup`] — certified upper-bound (round-up-mode surrogate) sums used
//!   by the scaling step.

#![warn(missing_docs)]

pub mod crt;
pub mod dd;
pub mod eft;
pub mod roundup;
pub mod wide;

pub use crt::{gcd_u64, modinv_u64, CrtBasis};
pub use dd::{dd_gemm, max_rel_error_vs_dd, Dd};
pub use eft::{fast_two_sum, neumaier_sum, two_prod, two_sum};
pub use wide::{mul_i128, rmod_i256, I256, U256};
