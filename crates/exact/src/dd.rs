//! Double-double ("DD") arithmetic: ~106-bit significands from pairs of
//! doubles, following Dekker/Bailey/QD conventions.
//!
//! Role in the reproduction: the accuracy experiments (Fig. 3) need a
//! reference product more accurate than anything being measured; a DD-
//! accumulated GEMM gives ~1e-31 relative accuracy, two orders of magnitude
//! below the 1e-16 resolution required. The paper also stores `P = Π p_i`
//! as a double-double (`P1`, `P2`) — that split is produced here.

#![allow(clippy::should_implement_trait)] // dd arithmetic keeps textbook names (add/mul/...)

use crate::eft::{fast_two_sum, two_prod, two_sum};
use gemm_dense::Matrix;
use rayon::prelude::*;

/// Unevaluated sum of two doubles with `|lo| <= ulp(hi)/2`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing component.
    pub lo: f64,
}

impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };

    /// Lift a double.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Dd { hi: x, lo: 0.0 }
    }

    /// Build from components, renormalising so `|lo| <= ulp(hi)/2`.
    #[inline]
    pub fn renorm(hi: f64, lo: f64) -> Self {
        let (s, e) = two_sum(hi, lo);
        Dd { hi: s, lo: e }
    }

    /// Round to the nearest double.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// Exact DD + f64.
    #[inline]
    pub fn add_f64(self, b: f64) -> Dd {
        let (s, e) = two_sum(self.hi, b);
        let (hi, lo) = fast_two_sum(s, e + self.lo);
        Dd { hi, lo }
    }

    /// DD + DD (Bailey's accurate variant).
    #[inline]
    pub fn add(self, b: Dd) -> Dd {
        let (s1, e1) = two_sum(self.hi, b.hi);
        let (s2, e2) = two_sum(self.lo, b.lo);
        let (hi, t) = fast_two_sum(s1, e1 + s2);
        let (hi, lo) = fast_two_sum(hi, t + e2);
        Dd { hi, lo }
    }

    /// Negation.
    #[inline]
    pub fn neg(self) -> Dd {
        Dd {
            hi: -self.hi,
            lo: -self.lo,
        }
    }

    /// DD - DD.
    #[inline]
    pub fn sub(self, b: Dd) -> Dd {
        self.add(b.neg())
    }

    /// DD * f64.
    #[inline]
    pub fn mul_f64(self, b: f64) -> Dd {
        let (p, e) = two_prod(self.hi, b);
        let (hi, lo) = fast_two_sum(p, e + self.lo * b);
        Dd { hi, lo }
    }

    /// DD * DD.
    #[inline]
    pub fn mul(self, b: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, b.hi);
        let cross = self.hi * b.lo + self.lo * b.hi;
        let (hi, lo) = fast_two_sum(p, e + cross);
        Dd { hi, lo }
    }

    /// DD / DD (one Newton correction on the double quotient).
    pub fn div(self, b: Dd) -> Dd {
        let q1 = self.hi / b.hi;
        let r = self.sub(b.mul_f64(q1));
        let q2 = r.hi / b.hi;
        let r2 = r.sub(b.mul_f64(q2));
        let q3 = r2.hi / b.hi;
        Dd::renorm(q1, q2).add_f64(q3)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Dd {
        if self.hi < 0.0 || (self.hi == 0.0 && self.lo < 0.0) {
            self.neg()
        } else {
            self
        }
    }

    /// Accumulate the exact product `a * b` (both f64) onto `self`.
    #[inline]
    pub fn fma_acc(self, a: f64, b: f64) -> Dd {
        let (p, e) = two_prod(a, b);
        self.add(Dd { hi: p, lo: e })
    }
}

/// Reference GEMM with double-double accumulation: every `a_ih * b_hj`
/// product enters exactly (TwoProd) and is accumulated in DD.
///
/// Accuracy: relative error O(k · 2^-106) — the oracle for Fig. 3.
pub fn dd_gemm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<Dd> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    let mut c = Matrix::<Dd>::zeros(m, n);
    if m == 0 || n == 0 {
        return c;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    c.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, c_col)| {
            let b_col = &b_data[j * k..(j + 1) * k];
            for (h, &bhj) in b_col.iter().enumerate() {
                if bhj == 0.0 {
                    continue;
                }
                let a_col = &a_data[h * m..(h + 1) * m];
                for (ci, &aih) in c_col.iter_mut().zip(a_col) {
                    *ci = ci.fma_acc(aih, bhj);
                }
            }
        });
    c
}

/// Max componentwise relative error of an f64 matrix against a DD reference.
pub fn max_rel_error_vs_dd(approx: &Matrix<f64>, exact: &Matrix<Dd>) -> f64 {
    assert_eq!(approx.shape(), exact.shape());
    let scale = exact
        .iter()
        .fold(0.0f64, |m, d| m.max(d.to_f64().abs()))
        .max(f64::MIN_POSITIVE);
    approx
        .iter()
        .zip(exact.iter())
        .map(|(&x, &e)| {
            let ev = e.to_f64();
            if ev != 0.0 {
                // (x - e) evaluated in DD to avoid cancellation noise.
                Dd::from_f64(x).sub(e).to_f64().abs() / ev.abs()
            } else {
                x.abs() / scale
            }
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_f64_keeps_tiny_term() {
        let x = Dd::from_f64(1.0).add_f64(2f64.powi(-80));
        assert_eq!(x.hi, 1.0);
        assert_eq!(x.lo, 2f64.powi(-80));
        assert_eq!(x.to_f64(), 1.0);
    }

    #[test]
    fn dd_add_associates_better_than_f64() {
        let big = 1e20;
        let tiny = 1.0;
        let s = Dd::from_f64(big).add_f64(tiny).add_f64(-big);
        assert_eq!(s.to_f64(), 1.0);
    }

    #[test]
    fn mul_exactness() {
        let a = Dd::from_f64(1.0 + 2f64.powi(-40));
        let b = Dd::from_f64(1.0 - 2f64.powi(-40));
        // (1+e)(1-e) = 1 - e^2 with e^2 = 2^-80, representable in DD.
        let p = a.mul(b);
        assert_eq!(p.hi, 1.0);
        assert_eq!(p.lo, -(2f64.powi(-80)));
    }

    #[test]
    fn div_recovers_factor() {
        let a = Dd::from_f64(std::f64::consts::PI);
        let b = Dd::from_f64(std::f64::consts::E);
        let q = a.mul(b).div(b);
        let err = q.sub(a).to_f64().abs();
        assert!(err < 1e-30, "err={err}");
    }

    #[test]
    fn abs_and_neg() {
        let x = Dd::renorm(-3.0, 1e-20);
        assert!(x.abs().hi > 0.0);
        assert_eq!(x.neg().neg(), x);
    }

    #[test]
    fn dd_gemm_matches_integer_products_exactly() {
        // Integer matrices small enough that DD holds products exactly.
        let a = Matrix::from_fn(5, 6, |i, j| ((i * 7 + j) as f64) - 10.0);
        let b = Matrix::from_fn(6, 4, |i, j| ((i * 3 + 2 * j) as f64) - 5.0);
        let c = dd_gemm(&a, &b);
        for i in 0..5 {
            for j in 0..4 {
                let mut exact = 0i64;
                for h in 0..6 {
                    exact += (a[(i, h)] as i64) * (b[(h, j)] as i64);
                }
                assert_eq!(c[(i, j)].to_f64(), exact as f64);
                assert_eq!(c[(i, j)].lo, 0.0);
            }
        }
    }

    #[test]
    fn dd_gemm_beats_f64_gemm_on_cancellation() {
        // Rows designed to cancel catastrophically in f64.
        let a = Matrix::from_fn(1, 4, |_, j| match j {
            0 => 1e16,
            1 => 3.15625,
            2 => -1e16,
            _ => 2.65625,
        });
        let b = Matrix::from_fn(4, 1, |_, _| 1.0);
        let dd = dd_gemm(&a, &b);
        assert_eq!(dd[(0, 0)].to_f64(), 3.15625 + 2.65625);
    }

    #[test]
    fn max_rel_error_detects_perturbation() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + j + 1) as f64);
        let b = Matrix::from_fn(3, 3, |i, j| (2 * i + j + 1) as f64);
        let exact = dd_gemm(&a, &b);
        let mut approx = Matrix::<f64>::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                approx[(i, j)] = exact[(i, j)].to_f64();
            }
        }
        assert_eq!(max_rel_error_vs_dd(&approx, &exact), 0.0);
        approx[(1, 1)] *= 1.0 + 1e-10;
        let e = max_rel_error_vs_dd(&approx, &exact);
        assert!((e - 1e-10).abs() < 1e-12, "e={e}");
    }
}
