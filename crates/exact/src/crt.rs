//! Exact Chinese-Remainder-Theorem machinery (Theorem 1 of the paper) and
//! an exact integer GEMM — the oracles against which the fast emulation
//! pipeline is verified bit for bit.

use crate::wide::{mul_i128, rmod_i256, I256, U256};
use gemm_dense::Matrix;

/// Greatest common divisor (Euclid).
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular multiplicative inverse of `a` modulo `p` (requires gcd = 1).
pub fn modinv_u64(a: u64, p: u64) -> u64 {
    let (mut old_r, mut r) = (a as i128, p as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    assert_eq!(old_r, 1, "modinv: {a} not invertible mod {p}");
    old_s.rem_euclid(p as i128) as u64
}

/// A CRT basis: pairwise-coprime moduli with precomputed exact weights
/// `w_i = (P/p_i) · q_i` where `q_i = (P/p_i)^(-1) mod p_i`.
#[derive(Clone, Debug)]
pub struct CrtBasis {
    moduli: Vec<u64>,
    p_big: U256,
    weights: Vec<U256>,
}

impl CrtBasis {
    /// Build a basis. Panics if the moduli are not pairwise coprime or if
    /// the product would not fit far below 2^255.
    pub fn new(moduli: &[u64]) -> Self {
        assert!(!moduli.is_empty(), "need at least one modulus");
        for (s, &ps) in moduli.iter().enumerate() {
            assert!(ps >= 2, "modulus must be >= 2");
            for &pt in &moduli[s + 1..] {
                assert_eq!(gcd_u64(ps, pt), 1, "moduli {ps} and {pt} are not coprime");
            }
        }
        let mut p_big = U256::ONE;
        for &p in moduli {
            p_big = p_big.mul_u64(p);
        }
        assert!(p_big.bits() < 200, "modulus product too large");
        let weights = moduli
            .iter()
            .map(|&p| {
                let (p_over, rem) = p_big.div_rem_u64(p);
                debug_assert_eq!(rem, 0);
                let q = modinv_u64(p_over.rem_u64(p), p);
                p_over.mul_u64(q)
            })
            .collect();
        Self {
            moduli: moduli.to_vec(),
            p_big,
            weights,
        }
    }

    /// The moduli.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// `P = Π p_i` exactly.
    pub fn p_big(&self) -> U256 {
        self.p_big
    }

    /// Exact weight `w_i = (P/p_i) q_i`.
    pub fn weight(&self, i: usize) -> U256 {
        self.weights[i]
    }

    /// Reconstruct the unique `x` with `x ≡ y_i (mod p_i)` and
    /// `|x| <= P/2` from residues `y_i ∈ [0, p_i)`.
    pub fn reconstruct(&self, residues: &[u64]) -> I256 {
        assert_eq!(residues.len(), self.moduli.len());
        let mut acc = U256::ZERO;
        for (w, &y) in self.weights.iter().zip(residues) {
            acc = acc.add(w.mul_u64(y));
        }
        rmod_i256(I256::from_u256_reduce(acc, &self.p_big), &self.p_big)
    }

    /// Residues of an exact integer: `y_i = x mod p_i ∈ [0, p_i)`.
    pub fn residues(&self, x: I256) -> Vec<u64> {
        self.moduli.iter().map(|&p| x.rem_euclid_u64(p)).collect()
    }
}

impl I256 {
    /// Helper: reduce an unsigned accumulator below a modulus before the
    /// signed fold (the accumulator can exceed 255 bits' signed range
    /// conceptually, so reduce as unsigned first).
    fn from_u256_reduce(acc: U256, p: &U256) -> I256 {
        let (_, r) = acc.div_rem(*p);
        I256::from_u256(r)
    }
}

/// Exact integer GEMM: inputs are integer-valued f64 matrices (as produced
/// by the truncation step of the emulation); output entries are exact I256.
///
/// Test-oracle only — O(mnk) bignum operations.
pub fn gemm_exact_i256(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<I256> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = I256::ZERO;
        for h in 0..k {
            let x = a[(i, h)];
            let y = b[(h, j)];
            debug_assert!(
                x.fract() == 0.0 && y.fract() == 0.0,
                "inputs must be integers"
            );
            acc = acc.add(mul_i128(x as i128, y as i128));
        }
        acc
    })
}

/// Exact residue matrix `(A·B) mod p` for integer-valued f64 inputs.
pub fn gemm_exact_residues(a: &Matrix<f64>, b: &Matrix<f64>, p: u64) -> Matrix<u8> {
    let exact = gemm_exact_i256(a, b);
    exact.map(|x| {
        let r = x.rem_euclid_u64(p);
        debug_assert!(r < 256);
        r as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(256, 255), 1);
        assert_eq!(gcd_u64(0, 7), 7);
    }

    #[test]
    fn modinv_small() {
        for p in [251u64, 256, 173, 255] {
            for a in 2..p {
                if gcd_u64(a, p) != 1 {
                    continue;
                }
                let inv = modinv_u64(a, p);
                assert_eq!((a as u128 * inv as u128) % p as u128, 1, "a={a} p={p}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not invertible")]
    fn modinv_rejects_noncoprime() {
        modinv_u64(8, 256);
    }

    #[test]
    fn crt_round_trip_small() {
        let basis = CrtBasis::new(&[256, 255, 253, 251]);
        for &x in &[0i128, 1, -1, 123456, -999999, 2_000_000_000] {
            let xi = I256::from_i128(x);
            let res = basis.residues(xi);
            let back = basis.reconstruct(&res);
            assert_eq!(back.to_f64(), x as f64, "x={x}");
        }
    }

    #[test]
    fn crt_range_limits() {
        let basis = CrtBasis::new(&[7, 11, 13]); // P = 1001
                                                 // Every |x| <= 500 must round-trip.
        for x in -500i128..=500 {
            let back = basis.reconstruct(&basis.residues(I256::from_i128(x)));
            assert_eq!(back.to_f64() as i128, x, "x={x}");
        }
        // x = 501 aliases to 501 - 1001 = -500.
        let back = basis.reconstruct(&basis.residues(I256::from_i128(501)));
        assert_eq!(back.to_f64() as i128, -500);
    }

    #[test]
    #[should_panic(expected = "not coprime")]
    fn rejects_noncoprime_moduli() {
        CrtBasis::new(&[256, 254]);
    }

    #[test]
    fn weights_are_one_mod_self_zero_mod_others() {
        let moduli = [256u64, 255, 253, 251, 247];
        let basis = CrtBasis::new(&moduli);
        for (i, &pi) in moduli.iter().enumerate() {
            let w = basis.weight(i);
            assert_eq!(w.rem_u64(pi), 1, "w_{i} mod p_{i}");
            for (j, &pj) in moduli.iter().enumerate() {
                if i != j {
                    assert_eq!(w.rem_u64(pj), 0, "w_{i} mod p_{j}");
                }
            }
        }
    }

    #[test]
    fn exact_gemm_small_integers() {
        let a = Matrix::from_fn(3, 4, |i, j| (i as f64) * 2.0 - j as f64);
        let b = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let c = gemm_exact_i256(&a, &b);
        for i in 0..3 {
            for j in 0..2 {
                let mut want = 0i64;
                for h in 0..4 {
                    want += (a[(i, h)] as i64) * (b[(h, j)] as i64);
                }
                assert_eq!(c[(i, j)].to_f64(), want as f64);
            }
        }
    }

    #[test]
    fn exact_gemm_huge_values_beyond_f64() {
        // Entries ~2^60: products ~2^120, sums exceed f64's exact range.
        let v = (1u64 << 60) as f64;
        let a = Matrix::from_fn(1, 3, |_, _| v);
        let b = Matrix::from_fn(3, 1, |_, _| v);
        let c = gemm_exact_i256(&a, &b);
        // 3 * 2^120
        let expect = U256::ONE.shl(120).mul_u64(3);
        assert_eq!(c[(0, 0)].abs_u256(), expect);
    }

    #[test]
    fn residue_gemm_matches_modulo() {
        let a = Matrix::from_fn(2, 3, |i, j| ((i * 3 + j) as f64) - 4.0);
        let b = Matrix::from_fn(3, 2, |i, j| ((i + 2 * j) as f64) - 1.0);
        let r = gemm_exact_residues(&a, &b, 251);
        let c = gemm_exact_i256(&a, &b);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(r[(i, j)] as u64, c[(i, j)].rem_euclid_u64(251));
            }
        }
    }
}
