//! Fixed-width 256-bit integers.
//!
//! `P = Π p_i` reaches ~2^156 for N = 20 moduli and the exact CRT weights
//! `(P/p_i)·q_i` reach ~2^164; products `A'B'` reach ~2^167 for the largest
//! supported `k`. All fit comfortably in 256 bits, so a fixed-width type is
//! the right tool (no heap, no external bignum dependency). Used to build
//! the constant tables exactly and as the bit-exactness oracle in tests.

#![allow(clippy::should_implement_trait)] // limb arithmetic keeps textbook names (add/shl/...)
#![allow(clippy::needless_range_loop)] // limb loops index two arrays with carries

use std::cmp::Ordering;

/// Unsigned 256-bit integer, little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256([0; 4]);
    /// One.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// Maximum representable value (2^256 - 1).
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Lift a u64.
    #[inline]
    pub const fn from_u64(x: u64) -> Self {
        U256([x, 0, 0, 0])
    }

    /// Lift a u128.
    #[inline]
    pub const fn from_u128(x: u128) -> Self {
        U256([x as u64, (x >> 64) as u64, 0, 0])
    }

    /// True if zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Position of the most significant set bit plus one (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return 64 * i as u32 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i` (little-endian bit numbering).
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < 256);
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i`.
    #[inline]
    pub fn set_bit(&mut self, i: u32) {
        debug_assert!(i < 256);
        self.0[(i / 64) as usize] |= 1 << (i % 64);
    }

    /// Addition with carry-out flag.
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Checked addition (panics on overflow in debug, wraps in release via
    /// explicit assert — our domain never overflows).
    pub fn add(self, rhs: U256) -> U256 {
        let (v, c) = self.overflowing_add(rhs);
        debug_assert!(!c, "U256 addition overflow");
        v
    }

    /// Wrapping subtraction (two's complement borrow chain).
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        U256(out)
    }

    /// Subtraction that debug-asserts `self >= rhs`.
    pub fn sub(self, rhs: U256) -> U256 {
        debug_assert!(self >= rhs, "U256 subtraction underflow");
        self.wrapping_sub(rhs)
    }

    /// Left shift by `n < 256` bits.
    pub fn shl(self, n: u32) -> U256 {
        if n == 0 {
            return self;
        }
        debug_assert!(n < 256);
        let limb = (n / 64) as usize;
        let off = n % 64;
        let mut out = [0u64; 4];
        for i in (limb..4).rev() {
            let lo = self.0[i - limb] << off;
            let hi = if off > 0 && i > limb {
                self.0[i - limb - 1] >> (64 - off)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        U256(out)
    }

    /// Right shift by `n < 256` bits.
    pub fn shr(self, n: u32) -> U256 {
        if n == 0 {
            return self;
        }
        debug_assert!(n < 256);
        let limb = (n / 64) as usize;
        let off = n % 64;
        let mut out = [0u64; 4];
        for i in 0..(4 - limb) {
            let lo = self.0[i + limb] >> off;
            let hi = if off > 0 && i + limb + 1 < 4 {
                self.0[i + limb + 1] << (64 - off)
            } else {
                0
            };
            out[i] = lo | hi;
        }
        U256(out)
    }

    /// Multiply by a u64, panicking on overflow (debug).
    pub fn mul_u64(self, m: u64) -> U256 {
        let mut out = [0u64; 4];
        let mut carry: u64 = 0;
        for i in 0..4 {
            let prod = self.0[i] as u128 * m as u128 + carry as u128;
            out[i] = prod as u64;
            carry = (prod >> 64) as u64;
        }
        debug_assert_eq!(carry, 0, "U256 mul_u64 overflow");
        U256(out)
    }

    /// Divide by a u64, returning `(quotient, remainder)`.
    pub fn div_rem_u64(self, d: u64) -> (U256, u64) {
        assert!(d != 0, "division by zero");
        let mut out = [0u64; 4];
        let mut rem: u128 = 0;
        for i in (0..4).rev() {
            let cur = (rem << 64) | self.0[i] as u128;
            out[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (U256(out), rem as u64)
    }

    /// Remainder modulo a u64.
    #[inline]
    pub fn rem_u64(self, d: u64) -> u64 {
        self.div_rem_u64(d).1
    }

    /// Full division: `(self / d, self % d)` via binary long division.
    /// O(256) bit steps — used only in constant construction and tests.
    pub fn div_rem(self, d: U256) -> (U256, U256) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (U256::ZERO, self);
        }
        let mut q = U256::ZERO;
        let mut r = U256::ZERO;
        for i in (0..self.bits()).rev() {
            r = r.shl(1);
            if self.bit(i) {
                r.0[0] |= 1;
            }
            if r >= d {
                r = r.sub(d);
                q.set_bit(i);
            }
        }
        (q, r)
    }

    /// Keep only the top `nbits` significant bits (zero the rest).
    /// Used to build `s_i1` = the upper `β_i` bits of the CRT weight.
    pub fn truncate_top_bits(self, nbits: u32) -> U256 {
        let total = self.bits();
        if total <= nbits {
            return self;
        }
        let drop = total - nbits;
        self.shr(drop).shl(drop)
    }

    /// Convert to f64 with round-to-nearest-even.
    pub fn to_f64(self) -> f64 {
        let n = self.bits();
        if n == 0 {
            return 0.0;
        }
        if n <= 53 {
            return self.0[0] as f64;
        }
        let shift = n - 53;
        let top = self.shr(shift).0[0]; // exactly 53 bits
        let guard = self.bit(shift - 1);
        let sticky = if shift >= 2 {
            !self.low_bits_zero(shift - 1)
        } else {
            false
        };
        let mut mant = top;
        if guard && (sticky || (mant & 1) == 1) {
            mant += 1;
        }
        mant as f64 * 2f64.powi(shift as i32)
    }

    /// True if bits `[0, k)` are all zero.
    fn low_bits_zero(&self, k: u32) -> bool {
        for i in 0..k {
            if self.bit(i) {
                return false;
            }
        }
        true
    }

    /// Low 64 bits.
    #[inline]
    pub fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Number of trailing zero bits (256 for zero).
    pub fn trailing_zeros(&self) -> u32 {
        for i in 0..4 {
            if self.0[i] != 0 {
                return 64 * i as u32 + self.0[i].trailing_zeros();
            }
        }
        256
    }

    /// Halve (shift right by one).
    pub fn half(self) -> U256 {
        self.shr(1)
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }
}

/// Signed 256-bit integer, two's-complement over [`U256`] limbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct I256(pub [u64; 4]);

impl I256 {
    /// Zero.
    pub const ZERO: I256 = I256([0; 4]);

    /// Lift an i128.
    pub fn from_i128(x: i128) -> Self {
        let ext = if x < 0 { u64::MAX } else { 0 };
        I256([x as u64, (x >> 64) as u64, ext, ext])
    }

    /// Lift an unsigned value (must fit in 255 bits).
    pub fn from_u256(x: U256) -> Self {
        debug_assert!(x.bits() < 256, "U256 value too large for I256");
        I256(x.0)
    }

    /// True if negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Two's-complement negation.
    pub fn neg(self) -> I256 {
        let mut out = [0u64; 4];
        let mut carry = 1u64;
        for i in 0..4 {
            let (v, c) = (!self.0[i]).overflowing_add(carry);
            out[i] = v;
            carry = c as u64;
        }
        I256(out)
    }

    /// Addition (wrapping; our domain never overflows 256 bits).
    pub fn add(self, rhs: I256) -> I256 {
        let (v, _) = U256(self.0).overflowing_add(U256(rhs.0));
        I256(v.0)
    }

    /// Subtraction.
    pub fn sub(self, rhs: I256) -> I256 {
        self.add(rhs.neg())
    }

    /// Magnitude as U256.
    pub fn abs_u256(self) -> U256 {
        if self.is_negative() {
            U256(self.neg().0)
        } else {
            U256(self.0)
        }
    }

    /// Convert to f64 (round-to-nearest-even on the magnitude).
    pub fn to_f64(self) -> f64 {
        let mag = self.abs_u256().to_f64();
        if self.is_negative() {
            -mag
        } else {
            mag
        }
    }

    /// Exact conversion of an integer-valued f64 (e.g. `P1 = double(P)`,
    /// which is a 53-bit integer scaled by a power of two).
    ///
    /// # Panics
    /// If `x` is not a finite integer or exceeds 255 bits.
    pub fn from_f64_exact(x: f64) -> I256 {
        assert!(x.is_finite() && x.fract() == 0.0, "not an integer: {x}");
        if x == 0.0 {
            return I256::ZERO;
        }
        let bits = x.abs().to_bits();
        let exp_field = (bits >> 52) & 0x7ff;
        assert!(exp_field > 0, "subnormal integers are impossible");
        let exp = exp_field as i32 - 1023 - 52;
        let mant = (bits & ((1u64 << 52) - 1)) | (1u64 << 52);
        let mag = if exp >= 0 {
            assert!(exp < 200, "f64 integer too large for I256 domain");
            U256::from_u64(mant).shl(exp as u32)
        } else {
            // x is an integer, so the shifted-out bits are zero.
            debug_assert!(mant.trailing_zeros() >= (-exp) as u32);
            U256::from_u64(mant >> (-exp) as u32)
        };
        let v = I256::from_u256(mag);
        if x < 0.0 {
            v.neg()
        } else {
            v
        }
    }

    /// Euclidean remainder modulo a small u64 (result in `[0, p)`).
    pub fn rem_euclid_u64(self, p: u64) -> u64 {
        let r = self.abs_u256().rem_u64(p);
        if self.is_negative() && r != 0 {
            p - r
        } else {
            r
        }
    }

    /// Compare.
    pub fn cmp_signed(&self, other: &I256) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            // Same sign: two's complement compares like unsigned.
            _ => U256(self.0).cmp(&U256(other.0)),
        }
    }
}

/// Exact product of two i128 values as an I256 (inputs up to ~2^126).
pub fn mul_i128(a: i128, b: i128) -> I256 {
    let neg = (a < 0) != (b < 0);
    let ua = a.unsigned_abs();
    let ub = b.unsigned_abs();
    // Schoolbook on 64-bit halves.
    let (a0, a1) = (ua as u64, (ua >> 64) as u64);
    let (b0, b1) = (ub as u64, (ub >> 64) as u64);
    let p00 = a0 as u128 * b0 as u128;
    let p01 = a0 as u128 * b1 as u128;
    let p10 = a1 as u128 * b0 as u128;
    let p11 = a1 as u128 * b1 as u128;
    let mut limbs = [0u64; 4];
    limbs[0] = p00 as u64;
    // Middle column: (p00 >> 64) + lo(p01) + lo(p10), with carries upward.
    let mid = (p00 >> 64) + (p01 as u64 as u128) + (p10 as u64 as u128);
    limbs[1] = mid as u64;
    let hi = (mid >> 64) + (p01 >> 64) + (p10 >> 64) + (p11 as u64 as u128);
    limbs[2] = hi as u64;
    limbs[3] = ((hi >> 64) + (p11 >> 64)) as u64;
    let mag = I256(limbs);
    if neg {
        mag.neg()
    } else {
        mag
    }
}

/// Symmetric remainder: the unique `r ≡ x (mod p)` with `-p/2 <= r < p/2`
/// (ties at exactly `p/2` map to the negative representative, matching
/// truncation of `round(x/p)` half-away-from-zero for positive x).
pub fn rmod_i256(x: I256, p: &U256) -> I256 {
    let mag = x.abs_u256();
    let (_, r) = mag.div_rem(*p);
    // r in [0, p)
    let twice = r.shl(1);
    let reduced = if twice >= *p {
        // representative beyond half: fold to r - p (negative magnitude p-r)
        I256::from_u256(p.sub(r)).neg()
    } else {
        I256::from_u256(r)
    };
    if x.is_negative() {
        reduced.neg()
    } else {
        reduced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_round_trip() {
        let a = U256([u64::MAX, 3, 0, 1]);
        let b = U256([5, u64::MAX, 7, 0]);
        assert_eq!(a.add(b).sub(b), a);
    }

    #[test]
    fn carry_chain() {
        let a = U256([u64::MAX, u64::MAX, 0, 0]);
        let s = a.add(U256::ONE);
        assert_eq!(s, U256([0, 0, 1, 0]));
    }

    #[test]
    fn shifts_invert() {
        let a = U256([0xDEAD_BEEF, 0x1234, 0, 0]);
        for n in [1u32, 7, 63, 64, 65, 100] {
            assert_eq!(a.shl(n).shr(n), a, "n={n}");
        }
    }

    #[test]
    fn bits_counts_msb() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::from_u64(256).bits(), 9);
        assert_eq!(U256::ONE.shl(200).bits(), 201);
    }

    #[test]
    fn mul_div_u64_round_trip() {
        let a = U256::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let m = 0xfedc_ba98u64;
        let prod = a.mul_u64(m);
        let (q, r) = prod.div_rem_u64(m);
        assert_eq!(q, a);
        assert_eq!(r, 0);
    }

    #[test]
    fn div_rem_u64_matches_u128() {
        let x = 0xffee_ddcc_bbaa_9988_7766_5544_3322_1100u128;
        let d = 251u64;
        let (q, r) = U256::from_u128(x).div_rem_u64(d);
        assert_eq!(q, U256::from_u128(x / d as u128));
        assert_eq!(r as u128, x % d as u128);
    }

    #[test]
    fn full_div_rem() {
        let a = U256::from_u128(u128::MAX).mul_u64(12345);
        let d = U256::from_u64(9999);
        let (q, r) = a.div_rem(d);
        assert!(r < d);
        assert_eq!(q.mul_u64(9999).add(r), a);
    }

    #[test]
    fn to_f64_small_exact() {
        for v in [0u64, 1, 2, 1 << 52, (1 << 53) - 1] {
            assert_eq!(U256::from_u64(v).to_f64(), v as f64);
        }
    }

    #[test]
    fn to_f64_rounds_to_nearest_even() {
        // 2^53 + 1 ties: rounds to 2^53 (even mantissa).
        let x = U256::from_u64((1 << 53) + 1);
        assert_eq!(x.to_f64(), 9007199254740992.0);
        // 2^53 + 3 ties up to 2^53 + 4.
        let y = U256::from_u64((1 << 53) + 3);
        assert_eq!(y.to_f64(), 9007199254740996.0);
        // 2^53 + 2 is exact.
        let z = U256::from_u64((1 << 53) + 2);
        assert_eq!(z.to_f64(), 9007199254740994.0);
    }

    #[test]
    fn to_f64_matches_u128_cast() {
        // Rust's u128 -> f64 cast is RNE, compare against it.
        let samples = [
            0x0001_0000_0000_0000_0001u128,
            0xffff_ffff_ffff_ffff_ffff_ffff_ffff_ffffu128,
            0x8000_0000_0000_0400_0000_0000_0000_0001u128,
            12345678901234567890123456789u128,
        ];
        for &x in &samples {
            assert_eq!(U256::from_u128(x).to_f64(), x as f64, "x={x}");
        }
    }

    #[test]
    fn truncate_top_bits_keeps_leading() {
        let x = U256::from_u64(0b1011_1101);
        let t = x.truncate_top_bits(4);
        assert_eq!(t, U256::from_u64(0b1011_0000));
        // No-op when already narrow enough.
        assert_eq!(x.truncate_top_bits(64), x);
    }

    #[test]
    fn i256_from_i128_round_trip_via_f64() {
        for &x in &[0i128, 1, -1, 123456789, -987654321, i64::MAX as i128] {
            assert_eq!(I256::from_i128(x).to_f64(), x as f64);
        }
    }

    #[test]
    fn i256_neg_add() {
        let a = I256::from_i128(-12345);
        assert_eq!(a.neg(), I256::from_i128(12345));
        assert_eq!(a.add(I256::from_i128(12345)), I256::ZERO);
    }

    #[test]
    fn mul_i128_matches_native_when_small() {
        let cases = [
            (0i128, 5i128),
            (123, 456),
            (-123, 456),
            (123, -456),
            (-123, -456),
            (i64::MAX as i128, i64::MAX as i128),
        ];
        for (a, b) in cases {
            assert_eq!(mul_i128(a, b).to_f64(), (a * b) as f64, "{a}*{b}");
        }
    }

    #[test]
    fn mul_i128_huge() {
        // 2^75 * 2^75 = 2^150 — overflows i128, exact in I256.
        let big = 1i128 << 75;
        let p = mul_i128(big, big);
        assert_eq!(p.to_f64(), 2f64.powi(150));
        let n = mul_i128(-big, big);
        assert_eq!(n.to_f64(), -(2f64.powi(150)));
    }

    #[test]
    fn rem_euclid_matches_i128() {
        for &x in &[0i128, 17, -17, 255, -256, 1_000_003, -1_000_003] {
            for &p in &[251u64, 256, 173] {
                assert_eq!(
                    I256::from_i128(x).rem_euclid_u64(p) as i128,
                    x.rem_euclid(p as i128),
                    "x={x} p={p}"
                );
            }
        }
    }

    #[test]
    fn rmod_symmetric_range() {
        let p = U256::from_u64(251);
        for x in -1000i128..1000 {
            let r = rmod_i256(I256::from_i128(x), &p).to_f64() as i128;
            assert!((-125..=125).contains(&r), "x={x} r={r}");
            assert_eq!((x - r).rem_euclid(251), 0, "x={x} r={r}");
        }
    }

    #[test]
    fn cmp_signed_orders_correctly() {
        let vals = [-100i128, -1, 0, 1, 100];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    I256::from_i128(a).cmp_signed(&I256::from_i128(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }
}
