//! Directed-rounding surrogates.
//!
//! The paper computes the row/column sums of squares "using floating-point
//! arithmetic in round-up mode" so the Cauchy–Schwarz bound in (7) is a
//! guaranteed overestimate. Changing the CPU rounding mode is not portable
//! (and not expressible in stable Rust), so we compute in round-to-nearest
//! and inflate by a rigorous a-priori bound on the accumulated error:
//! for a nonnegative sum of n terms, the RN result `ŝ` satisfies
//! `s <= ŝ · (1 + ε)^(n+2)` with ε = 2^-52, so `ŝ · (1 + (n+3)·ε)` is a
//! certified upper bound (we use a factor-2 safety margin on top).

/// Machine epsilon for f64 (2^-52).
pub const EPS: f64 = 2.220446049250313e-16;

/// Certified upper bound on `Σ x_i^2`.
pub fn sum_sq_upper<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let mut s = 0.0f64;
    let mut n = 0usize;
    for x in xs {
        s += x * x;
        n += 1;
    }
    inflate(s, n)
}

/// Certified upper bound on `Σ |x_i| |y_i|` (dot product of magnitudes).
pub fn dot_abs_upper<'a, I>(pairs: I) -> f64
where
    I: IntoIterator<Item = (&'a f64, &'a f64)>,
{
    let mut s = 0.0f64;
    let mut n = 0usize;
    for (x, y) in pairs {
        s += x.abs() * y.abs();
        n += 1;
    }
    inflate(s, n)
}

/// Inflate a round-to-nearest nonnegative sum of `n` products into a
/// certified upper bound on the exact value.
#[inline]
pub fn inflate(s: f64, n: usize) -> f64 {
    debug_assert!(s >= 0.0);
    s * (1.0 + 2.0 * (n as f64 + 3.0) * EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_dominates_exact_value() {
        // Values chosen so the RN sum rounds *down* repeatedly.
        let xs: Vec<f64> = (0..10_000).map(|i| 1.0 + (i as f64) * 1e-8).collect();
        let upper = sum_sq_upper(xs.iter().copied());
        // Exact reference via double-double.
        let mut exact = crate::dd::Dd::ZERO;
        for &x in &xs {
            exact = exact.fma_acc(x, x);
        }
        assert!(
            upper >= exact.to_f64(),
            "upper={upper} exact={}",
            exact.to_f64()
        );
        // And tight to within a few ULPs' worth of slack.
        assert!(upper <= exact.to_f64() * (1.0 + 1e-10));
    }

    #[test]
    fn zero_sum() {
        assert_eq!(sum_sq_upper(std::iter::empty()), 0.0);
        assert_eq!(sum_sq_upper([0.0, 0.0].into_iter()), 0.0);
    }

    #[test]
    fn dot_abs_ignores_signs() {
        let x = [1.0, -2.0, 3.0];
        let y = [-4.0, 5.0, -6.0];
        let d = dot_abs_upper(x.iter().zip(y.iter()));
        assert!(d >= 4.0 + 10.0 + 18.0);
        assert!(d <= 32.0 * (1.0 + 1e-12));
    }

    #[test]
    fn inflate_monotone() {
        let s = 1e10;
        assert!(inflate(s, 10) < inflate(s, 1_000_000));
        assert!(inflate(s, 10) > s);
    }
}
