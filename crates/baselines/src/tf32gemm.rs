//! TF32GEMM: single-pass TF32 tensor-core matrix multiplication
//! (`cublasGemmEx` with `CUBLAS_COMPUTE_32F_FAST_TF32` in the paper's §5).
//!
//! Inputs are rounded to TF32 (11-bit significands), products accumulate
//! in FP32. This is the *low*-accuracy end of the paper's comparison: the
//! point of Fig. 3/5 is that Ozaki Scheme II with small `N` lands between
//! TF32 and FP32 in both accuracy and speed.

use gemm_dense::{MatF32, MatMulF32};
use gemm_engine::{lowfp_gemm, quantize};
use gemm_lowfp::Tf32;

/// TF32 tensor-core GEMM.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tf32Gemm;

impl Tf32Gemm {
    /// Single TF32 product with FP32 accumulation.
    pub fn sgemm(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        let at = quantize::<Tf32>(a);
        let bt = quantize::<Tf32>(b);
        lowfp_gemm(&at, &bt)
    }
}

impl MatMulF32 for Tf32Gemm {
    fn matmul_f32(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        self.sgemm(a, b)
    }
    fn name(&self) -> String {
        "TF32GEMM".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::gemm::{gemm_f32, gemm_f32_inputs_f64_acc};
    use gemm_dense::norms::{max_relative_error, widen};
    use gemm_dense::workload::phi_matrix_f32;

    #[test]
    fn accuracy_near_2_pow_minus_11() {
        let a = phi_matrix_f32(24, 32, 0.5, 17, 0);
        let b = phi_matrix_f32(32, 24, 0.5, 17, 1);
        let exact = gemm_f32_inputs_f64_acc(&a, &b);
        let err = max_relative_error(&widen(&Tf32Gemm.sgemm(&a, &b)), &exact);
        // 11-bit inputs: relative error around 2^-11 ≈ 5e-4 on benign
        // entries, inflated at cancelling ones.
        assert!(err > 1e-6, "too accurate for tf32: {err:e}");
        assert!(err < 1.0, "too inaccurate: {err:e}");
    }

    #[test]
    fn clearly_worse_than_sgemm() {
        let a = phi_matrix_f32(16, 48, 0.5, 19, 0);
        let b = phi_matrix_f32(48, 16, 0.5, 19, 1);
        let exact = gemm_f32_inputs_f64_acc(&a, &b);
        let e_tf32 = max_relative_error(&widen(&Tf32Gemm.sgemm(&a, &b)), &exact);
        let e_sgemm = max_relative_error(&widen(&gemm_f32(&a, &b)), &exact);
        assert!(
            e_tf32 > 50.0 * e_sgemm,
            "tf32 {e_tf32:e} vs sgemm {e_sgemm:e}"
        );
    }

    #[test]
    fn exact_on_small_integers() {
        let a = MatF32::from_fn(8, 8, |i, j| ((i + j) % 7) as f32 - 3.0);
        let b = MatF32::from_fn(8, 8, |i, j| ((i * j) % 5) as f32 - 2.0);
        let c = Tf32Gemm.sgemm(&a, &b);
        let exact = gemm_f32(&a, &b);
        assert_eq!(c, exact);
    }

    #[test]
    fn name_matches() {
        assert_eq!(MatMulF32::name(&Tf32Gemm), "TF32GEMM");
    }
}
