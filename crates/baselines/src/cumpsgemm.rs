//! cuMpSGEMM-style SGEMM emulation on FP16 tensor cores, in the paper's
//! comparison as "cuMpSGEMM (FP16TCEC_SCALING)" (Ootomo & Yokota 2022,
//! references [8, 10, 12]).
//!
//! Each operand is split into two FP16 terms, `A ≈ A1 + s⁻¹ A2` with
//! `s = 2^-11` (the FP16 significand width), after a power-of-two
//! exponent-scaling pass that keeps values inside FP16's narrow exponent
//! range (the "_SCALING" part). The product is reassembled from three
//! FP16-tensor-core GEMMs with FP32 accumulation:
//! `AB ≈ A1B1 + s⁻¹(A1B2 + A2B1)` — the error-correction ("EC") scheme
//! that restores the FP32 mantissa the FP16 split cannot hold.

use gemm_dense::{MatF32, MatMulF32, Matrix};
use gemm_engine::lowfp_gemm;
use gemm_lowfp::F16;

/// The split scale `s = 2^-11`.
pub const SPLIT_SCALE: f32 = 1.0 / 2048.0;

/// cuMpSGEMM in FP16TCEC_SCALING mode.
#[derive(Clone, Copy, Debug, Default)]
pub struct CuMpSgemm;

impl CuMpSgemm {
    /// Emulated SGEMM.
    pub fn sgemm(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        let (m, k) = a.shape();
        let (kb, n) = b.shape();
        assert_eq!(k, kb, "inner dimensions must agree");
        assert!(
            a.iter().all(|x| x.is_finite()) && b.iter().all(|x| x.is_finite()),
            "inputs must be finite"
        );
        if m == 0 || n == 0 || k == 0 {
            return Matrix::zeros(m, n);
        }

        // SCALING: per-row / per-column power-of-two alignment into a range
        // comfortably inside FP16 (row max scaled to ~2^0).
        let shift_a: Vec<i32> = (0..m)
            .map(|i| {
                let mx = (0..k).map(|h| a[(i, h)].abs()).fold(0.0f32, f32::max);
                if mx == 0.0 {
                    0
                } else {
                    -(mx.log2().floor() as i32)
                }
            })
            .collect();
        let shift_b: Vec<i32> = (0..n)
            .map(|j| {
                let mx = b.col(j).iter().fold(0.0f32, |acc, &x| acc.max(x.abs()));
                if mx == 0.0 {
                    0
                } else {
                    -(mx.log2().floor() as i32)
                }
            })
            .collect();
        let a_scaled = Matrix::from_fn(m, k, |i, j| scale_pow2_f32(a[(i, j)], shift_a[i]));
        let b_scaled = Matrix::from_fn(k, n, |i, j| scale_pow2_f32(b[(i, j)], shift_b[j]));

        // Two-term FP16 split with error term scaled up by 2^11.
        let (a1, a2) = split_f16(&a_scaled);
        let (b1, b2) = split_f16(&b_scaled);

        // Three tensor-core GEMMs (A2·B2 is below the FP32 target accuracy
        // and is skipped, as in cuMpSGEMM).
        let c11 = lowfp_gemm(&a1, &b1);
        let c12 = lowfp_gemm(&a1, &b2);
        let c21 = lowfp_gemm(&a2, &b1);

        Matrix::from_fn(m, n, |i, j| {
            let corr = (c12[(i, j)] + c21[(i, j)]) * SPLIT_SCALE;
            let v = c11[(i, j)] + corr;
            scale_pow2_f32(v, -(shift_a[i] + shift_b[j]))
        })
    }
}

impl MatMulF32 for CuMpSgemm {
    fn matmul_f32(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        self.sgemm(a, b)
    }
    fn name(&self) -> String {
        "cuMpSGEMM".to_string()
    }
}

#[inline]
fn scale_pow2_f32(x: f32, e: i32) -> f32 {
    if (-120..=120).contains(&e) {
        x * 2f32.powi(e)
    } else {
        let half = e / 2;
        x * 2f32.powi(half) * 2f32.powi(e - half)
    }
}

/// `x ≈ hi + 2^-11 lo` with both parts FP16.
fn split_f16(a: &MatF32) -> (Matrix<F16>, Matrix<F16>) {
    let hi = a.map(F16::from_f32);
    let lo = Matrix::from_fn(a.rows(), a.cols(), |i, j| {
        let res = (a[(i, j)] - hi[(i, j)].to_f32()) / SPLIT_SCALE;
        F16::from_f32(res)
    });
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::gemm::gemm_f32_inputs_f64_acc;
    use gemm_dense::norms::{max_relative_error, widen};
    use gemm_dense::workload::phi_matrix_f32;

    fn rel_err(c: &MatF32, a: &MatF32, b: &MatF32) -> f64 {
        let exact = gemm_f32_inputs_f64_acc(a, b);
        max_relative_error(&widen(c), &exact)
    }

    #[test]
    fn split_reconstructs_24_bits() {
        let a = phi_matrix_f32(8, 8, 0.5, 3, 0);
        let (hi, lo) = split_f16(&a);
        for i in 0..8 {
            for j in 0..8 {
                let back = hi[(i, j)].to_f32() + lo[(i, j)].to_f32() * SPLIT_SCALE;
                let err = (back - a[(i, j)]).abs() / a[(i, j)].abs().max(1e-30);
                // hi carries 11 bits, lo the next 11: residual < 2^-21 of
                // the hi magnitude (not a strict 2^-24 because lo is
                // quantised relative to hi's exponent).
                assert!(err < 3e-7, "({i},{j}) err={err}");
            }
        }
    }

    #[test]
    fn reaches_sgemm_level_accuracy() {
        // The right yardstick is native SGEMM on the same data: entries
        // with cancellation inflate the componentwise max for *any* f32
        // method, so compare against SGEMM's own error.
        let a = phi_matrix_f32(32, 48, 0.5, 11, 0);
        let b = phi_matrix_f32(48, 24, 0.5, 11, 1);
        let c = CuMpSgemm.sgemm(&a, &b);
        let err = rel_err(&c, &a, &b);
        let err_native = rel_err(&gemm_dense::gemm::gemm_f32(&a, &b), &a, &b);
        assert!(
            err < err_native * 64.0,
            "emulated {err:e} vs native {err_native:e}"
        );
        assert!(err < 1e-3, "err={err:e}");
    }

    #[test]
    fn beats_plain_f16_gemm_by_orders_of_magnitude() {
        let a = phi_matrix_f32(16, 32, 0.5, 7, 0);
        let b = phi_matrix_f32(32, 16, 0.5, 7, 1);
        let plain = {
            let a16 = a.map(F16::from_f32);
            let b16 = b.map(F16::from_f32);
            lowfp_gemm(&a16, &b16)
        };
        let e_plain = rel_err(&plain, &a, &b);
        let e_ec = rel_err(&CuMpSgemm.sgemm(&a, &b), &a, &b);
        assert!(
            e_ec * 100.0 < e_plain,
            "EC {e_ec:e} should beat plain f16 {e_plain:e} by >100x"
        );
    }

    #[test]
    fn scaling_handles_wide_magnitudes() {
        // Values far outside FP16's range (±2^40) — the SCALING pass must
        // keep accuracy; an unscaled FP16 split would overflow to inf.
        let a = phi_matrix_f32(8, 8, 0.5, 5, 0).map(|x| x * 2f32.powi(40));
        let b = phi_matrix_f32(8, 8, 0.5, 5, 1).map(|x| x * 2f32.powi(-40));
        let c = CuMpSgemm.sgemm(&a, &b);
        assert!(c.iter().all(|x| x.is_finite()));
        let err = rel_err(&c, &a, &b);
        assert!(err < 1e-5, "err={err:e}");
    }

    #[test]
    fn name_matches() {
        assert_eq!(MatMulF32::name(&CuMpSgemm), "cuMpSGEMM");
    }
}
