//! ozIMMU: DGEMM emulation via **Ozaki Scheme I** on INT8 matrix engines,
//! with `S` significand slices (Ootomo–Ozaki–Yokota 2024; accelerated
//! variant "ozIMMU_EF" by Uchino 2024 — references [9, 11, 17, 19] of the
//! paper). This is the principal prior-art DGEMM comparator in §5.
//!
//! Each f64 entry is row/column exponent-aligned and its significand cut
//! into `S` signed 7-bit slices; slice products are exact on the INT8
//! engine (7+7 bits + log2 k ≤ 31 for k ≤ 2^17), and the partial products
//! with `s + t ≤ S - 1` are accumulated in f64 — `S(S+1)/2` INT8 GEMMs
//! against Ozaki Scheme II's `N`. That gap (36 GEMMs for S = 8 vs ~15) is
//! exactly the >2x advantage the paper reports for Scheme II.

use gemm_dense::{MatF64, MatMulF64, Matrix};
use gemm_engine::int8_gemm_rm_cm;
use rayon::prelude::*;

/// Bits per significand slice (7 magnitude bits fit INT8 with sign).
pub const SLICE_BITS: i32 = 7;

/// Largest `k` with error-free INT8/INT32 slice products.
pub const K_MAX: usize = 1 << 17;

/// Ozaki Scheme I DGEMM emulator with `S` slices.
#[derive(Clone, Copy, Debug)]
pub struct OzImmu {
    slices: usize,
}

impl OzImmu {
    /// `slices` in 2..=13 (13·7 = 91 bits, far beyond f64's 53).
    pub fn new(slices: usize) -> Self {
        assert!((2..=13).contains(&slices), "slices must be in 2..=13");
        Self { slices }
    }

    /// Number of slices.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Number of INT8 GEMMs this configuration issues (`S(S+1)/2`).
    pub fn gemm_count(&self) -> usize {
        self.slices * (self.slices + 1) / 2
    }

    /// Emulated DGEMM.
    pub fn dgemm(&self, a: &MatF64, b: &MatF64) -> MatF64 {
        let (m, k) = a.shape();
        let (kb, n) = b.shape();
        assert_eq!(k, kb, "inner dimensions must agree");
        assert!(
            k <= K_MAX,
            "k > 2^17 requires blocking (not exercised by the paper's sweeps)"
        );
        assert!(
            a.iter().all(|x| x.is_finite()) && b.iter().all(|x| x.is_finite()),
            "inputs must be finite"
        );
        let s = self.slices;
        let mut c = Matrix::<f64>::zeros(m, n);
        if m == 0 || n == 0 || k == 0 {
            return c;
        }

        // Row-wise exponent alignment for A (slices taken row-major),
        // column-wise for B.
        let (a_slices, shift_a) = slice_rows(a, s);
        let (b_slices, shift_b) = slice_cols(b, s);

        // Accumulate 2^(-7(st+tt+2)) * A_st * B_tt for st + tt <= S - 1,
        // most-significant pairs last so the f64 additions favour accuracy.
        let mut c32 = vec![0i32; m * n];
        let mut pairs: Vec<(usize, usize)> = (0..s)
            .flat_map(|st| (0..s - st).map(move |tt| (st, tt)))
            .collect();
        pairs.sort_by_key(|&(st, tt)| std::cmp::Reverse(st + tt));
        for (st, tt) in pairs {
            int8_gemm_rm_cm(m, n, k, &a_slices[st], &b_slices[tt], &mut c32);
            let scale_exp = -(SLICE_BITS * (st as i32 + tt as i32 + 2));
            let c_data = c.as_mut_slice();
            c_data
                .par_chunks_mut(m)
                .zip(c32.par_chunks(m))
                .enumerate()
                .for_each(|(j, (c_col, c32_col))| {
                    for (i, (cc, &pc)) in c_col.iter_mut().zip(c32_col).enumerate() {
                        let e = scale_exp + shift_a[i] + shift_b[j];
                        *cc += scale_pow2(pc as f64, e);
                    }
                });
        }
        c
    }
}

impl MatMulF64 for OzImmu {
    fn matmul_f64(&self, a: &MatF64, b: &MatF64) -> MatF64 {
        self.dgemm(a, b)
    }
    fn name(&self) -> String {
        format!("ozIMMU_EF-{}", self.slices)
    }
}

#[inline]
fn scale_pow2(x: f64, e: i32) -> f64 {
    if (-969..=970).contains(&e) {
        x * 2f64.powi(e)
    } else {
        let half = e / 2;
        x * 2f64.powi(half) * 2f64.powi(e - half)
    }
}

#[inline]
fn ilog2_abs(x: f64) -> i32 {
    debug_assert!(x != 0.0 && x.is_finite());
    let bits = x.abs().to_bits();
    let exp_field = (bits >> 52) as i32;
    if exp_field > 0 {
        exp_field - 1023
    } else {
        let mant = bits & ((1u64 << 52) - 1);
        63 - mant.leading_zeros() as i32 - 1074
    }
}

/// Slice the rows of `A`: returns `S` row-major INT8 planes and per-row
/// shift exponents such that
/// `a_ih ≈ 2^{shift_i} · Σ_s slice_s[i,h] · 2^{-7(s+1)}`.
fn slice_rows(a: &MatF64, s: usize) -> (Vec<Vec<i8>>, Vec<i32>) {
    let (m, k) = a.shape();
    let mut shift = vec![0i32; m];
    for i in 0..m {
        let mut mx = 0.0f64;
        for h in 0..k {
            mx = mx.max(a[(i, h)].abs());
        }
        // Normalise so |a| * 2^-shift < 1.
        shift[i] = if mx == 0.0 { 0 } else { ilog2_abs(mx) + 1 };
    }
    let mut planes = vec![vec![0i8; m * k]; s];
    // Parallelise over rows; each row streams its k entries once.
    let shift_ref = &shift;
    let planes_split: Vec<_> = planes.iter_mut().map(|p| p.as_mut_slice()).collect();
    slice_into(planes_split, m, k, s, |i, h| {
        scale_pow2(a[(i, h)], -shift_ref[i])
    });
    (planes, shift)
}

/// Slice the columns of `B`: returns `S` column-major INT8 planes (each
/// `k`-contiguous per output column) and per-column shifts.
fn slice_cols(b: &MatF64, s: usize) -> (Vec<Vec<i8>>, Vec<i32>) {
    let (k, n) = b.shape();
    let mut shift = vec![0i32; n];
    for (j, sh) in shift.iter_mut().enumerate() {
        let mx = b.col(j).iter().fold(0.0f64, |acc, &x| acc.max(x.abs()));
        *sh = if mx == 0.0 { 0 } else { ilog2_abs(mx) + 1 };
    }
    let mut planes = vec![vec![0i8; k * n]; s];
    let shift_ref = &shift;
    let planes_split: Vec<_> = planes.iter_mut().map(|p| p.as_mut_slice()).collect();
    // For B the "row" index of the packing is the output column j and the
    // inner index is h (k-contiguous), matching the engine's B layout.
    slice_into(planes_split, n, k, s, |j, h| {
        scale_pow2(b[(h, j)], -shift_ref[j])
    });
    (planes, shift)
}

/// Shared slicing loop: for outer index `o` and inner index `h`, cut the
/// normalised value into `s` successive 7-bit truncations.
fn slice_into(
    mut planes: Vec<&mut [i8]>,
    outer: usize,
    inner: usize,
    s: usize,
    value: impl Fn(usize, usize) -> f64 + Sync,
) {
    // Split each plane into per-outer chunks so rayon can own them safely.
    let mut chunked: Vec<Vec<&mut [i8]>> = planes
        .iter_mut()
        .map(|p| p.chunks_mut(inner).collect())
        .collect();
    // Transpose the ownership: row o gets its slice from every plane.
    let mut per_outer: Vec<Vec<&mut [i8]>> = (0..outer).map(|_| Vec::with_capacity(s)).collect();
    for plane_chunks in chunked.iter_mut() {
        for (o, chunk) in plane_chunks.drain(..).enumerate() {
            per_outer[o].push(chunk);
        }
    }
    per_outer
        .par_iter_mut()
        .enumerate()
        .for_each(|(o, plane_rows)| {
            for h in 0..inner {
                let mut x = value(o, h);
                debug_assert!(x.abs() < 1.0);
                for plane_row in plane_rows.iter_mut() {
                    let scaled = x * 128.0; // 2^7
                    let d = scaled.trunc();
                    plane_row[h] = d as i8;
                    x = scaled - d; // exact: both are multiples of 2^-46...
                }
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::gemm::gemm_f64_naive;
    use gemm_dense::norms::max_relative_error;
    use gemm_dense::workload::{phi_matrix_f64, uniform_matrix_f64};

    #[test]
    fn eight_slices_reach_double_precision() {
        let a = phi_matrix_f64(24, 32, 0.5, 21, 0);
        let b = phi_matrix_f64(32, 20, 0.5, 21, 1);
        let exact = gemm_f64_naive(&a, &b);
        let c = OzImmu::new(8).dgemm(&a, &b);
        let err = max_relative_error(&c, &exact);
        assert!(err < 1e-13, "err={err:e}");
    }

    #[test]
    fn accuracy_improves_with_slices() {
        let a = uniform_matrix_f64(16, 24, 3, 0);
        let b = uniform_matrix_f64(24, 16, 3, 1);
        let exact = gemm_f64_naive(&a, &b);
        let mut last = f64::INFINITY;
        for s in [2usize, 4, 6, 8] {
            let err = max_relative_error(&OzImmu::new(s).dgemm(&a, &b), &exact).max(1e-17);
            assert!(err < last, "S={s}: {err:e} !< {last:e}");
            last = err;
        }
    }

    #[test]
    fn two_slices_roughly_14_bits() {
        let a = uniform_matrix_f64(8, 16, 5, 0);
        let b = uniform_matrix_f64(16, 8, 5, 1);
        let exact = gemm_f64_naive(&a, &b);
        let err = max_relative_error(&OzImmu::new(2).dgemm(&a, &b), &exact);
        // 2 slices keep ~14 bits of each operand: low precision (entries
        // with cancellation inflate the componentwise max further), but
        // nowhere near double precision.
        assert!(err < 1e-1, "err={err:e}");
        assert!(err > 1e-12, "suspiciously exact: {err:e}");
    }

    #[test]
    fn gemm_count_is_triangular() {
        assert_eq!(OzImmu::new(8).gemm_count(), 36);
        assert_eq!(OzImmu::new(3).gemm_count(), 6);
    }

    #[test]
    fn wide_exponent_rows_lose_accuracy() {
        // The known Scheme-I weakness: row-aligned slicing truncates small
        // entries in rows with wide dynamic range.
        let a = gemm_dense::workload::row_graded_matrix_f64(8, 32, 0.0, 9, 0);
        let a_wide = phi_matrix_f64(8, 32, 4.0, 9, 0);
        let b = uniform_matrix_f64(32, 8, 9, 1);
        let narrow_err = max_relative_error(&OzImmu::new(6).dgemm(&a, &b), &gemm_f64_naive(&a, &b));
        let wide_err = max_relative_error(
            &OzImmu::new(6).dgemm(&a_wide, &b),
            &gemm_f64_naive(&a_wide, &b),
        );
        assert!(
            wide_err > narrow_err,
            "wide {wide_err:e} should exceed narrow {narrow_err:e}"
        );
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(MatMulF64::name(&OzImmu::new(9)), "ozIMMU_EF-9");
    }

    #[test]
    fn zero_matrix() {
        let a = MatF64::zeros(4, 4);
        let b = uniform_matrix_f64(4, 4, 1, 0);
        let c = OzImmu::new(4).dgemm(&a, &b);
        assert!(c.iter().all(|&x| x == 0.0));
    }
}
