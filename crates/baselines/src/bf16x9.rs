//! BF16x9: the cuBLAS 12.9 `CUBLAS_COMPUTE_32F_EMULATED_16BFX9` algorithm
//! (paper reference \[5\]; similar FMA-based approach in Henry et al. \[6\]).
//!
//! Each FP32 operand is cut into three BF16 terms,
//! `A = A1 + 2^-8 A2 + 2^-16 A3`, and the product is assembled from all
//! nine pairings: `AB = Σ_{i,j} 2^{-8(i+j-2)} A_i B_j`, each running on a
//! BF16 tensor core with FP32 accumulation. Three 8-bit significands
//! recover the full 24-bit FP32 significand, so BF16x9 tracks native SGEMM
//! accuracy (the paper observes "SGEMM and BF16x9 exhibited equivalent
//! accuracy").

use gemm_dense::{MatF32, MatMulF32, Matrix};
use gemm_engine::lowfp_gemm;
use gemm_lowfp::BF16;

/// BF16x9 SGEMM emulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Bf16x9;

impl Bf16x9 {
    /// Emulated SGEMM via nine BF16 tensor-core products.
    pub fn sgemm(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        let (m, k) = a.shape();
        let (kb, n) = b.shape();
        assert_eq!(k, kb, "inner dimensions must agree");
        assert!(
            a.iter().all(|x| x.is_finite()) && b.iter().all(|x| x.is_finite()),
            "inputs must be finite"
        );
        if m == 0 || n == 0 || k == 0 {
            return Matrix::zeros(m, n);
        }
        let a_split = split3(a);
        let b_split = split3(b);

        // Accumulate the nine partial products, least significant first so
        // the f32 additions lose as little as possible.
        let mut acc = Matrix::<f32>::zeros(m, n);
        let mut order: Vec<(usize, usize)> =
            (0..3).flat_map(|i| (0..3).map(move |j| (i, j))).collect();
        order.sort_by_key(|&(i, j)| std::cmp::Reverse(i + j));
        for (i, j) in order {
            let c = lowfp_gemm(&a_split[i], &b_split[j]);
            let scale = 2f32.powi(-8 * (i as i32 + j as i32));
            for (av, &cv) in acc.as_mut_slice().iter_mut().zip(c.iter()) {
                *av += cv * scale;
            }
        }
        acc
    }
}

impl MatMulF32 for Bf16x9 {
    fn matmul_f32(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        self.sgemm(a, b)
    }
    fn name(&self) -> String {
        "BF16x9".to_string()
    }
}

/// `x = t0 + 2^-8 t1 + 2^-16 t2` (each BF16, successive residuals).
fn split3(a: &MatF32) -> [Matrix<BF16>; 3] {
    let (m, n) = a.shape();
    let t0 = a.map(BF16::from_f32);
    let r1 = Matrix::from_fn(m, n, |i, j| (a[(i, j)] - t0[(i, j)].to_f32()) * 256.0);
    let t1 = r1.map(BF16::from_f32);
    let r2 = Matrix::from_fn(m, n, |i, j| (r1[(i, j)] - t1[(i, j)].to_f32()) * 256.0);
    let t2 = r2.map(BF16::from_f32);
    [t0, t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::gemm::{gemm_f32, gemm_f32_inputs_f64_acc};
    use gemm_dense::norms::{max_relative_error, widen};
    use gemm_dense::workload::phi_matrix_f32;

    #[test]
    fn split_reconstructs_fp32_exactly_for_most_values() {
        let a = phi_matrix_f32(16, 16, 1.0, 9, 0);
        let [t0, t1, t2] = split3(&a);
        for i in 0..16 {
            for j in 0..16 {
                let back = t0[(i, j)].to_f32()
                    + t1[(i, j)].to_f32() * 2f32.powi(-8)
                    + t2[(i, j)].to_f32() * 2f32.powi(-16);
                let err = (back - a[(i, j)]).abs() / a[(i, j)].abs().max(1e-30);
                // 3 x 8 explicit bits cover the 24-bit significand.
                assert!(err < 1e-7, "({i},{j}) err={err}");
            }
        }
    }

    #[test]
    fn matches_sgemm_level_accuracy() {
        let a = phi_matrix_f32(24, 40, 0.5, 13, 0);
        let b = phi_matrix_f32(40, 24, 0.5, 13, 1);
        let exact = gemm_f32_inputs_f64_acc(&a, &b);
        let e_emu = max_relative_error(&widen(&Bf16x9.sgemm(&a, &b)), &exact);
        let e_native = max_relative_error(&widen(&gemm_f32(&a, &b)), &exact);
        // "SGEMM and BF16x9 exhibited equivalent accuracy": same order.
        assert!(
            e_emu < e_native * 16.0,
            "emulated {e_emu:e} vs native {e_native:e}"
        );
        assert!(e_emu < 1e-5, "e_emu={e_emu:e}");
    }

    #[test]
    fn nine_products_beat_one_bf16_product_hugely() {
        let a = phi_matrix_f32(16, 24, 0.5, 3, 0);
        let b = phi_matrix_f32(24, 16, 0.5, 3, 1);
        let exact = gemm_f32_inputs_f64_acc(&a, &b);
        let plain = lowfp_gemm(&a.map(BF16::from_f32), &b.map(BF16::from_f32));
        let e_plain = max_relative_error(&widen(&plain), &exact);
        let e_9 = max_relative_error(&widen(&Bf16x9.sgemm(&a, &b)), &exact);
        assert!(e_9 * 1000.0 < e_plain, "{e_9:e} vs {e_plain:e}");
    }

    #[test]
    fn zero_and_identity() {
        let z = MatF32::zeros(4, 4);
        let a = phi_matrix_f32(4, 4, 0.5, 2, 0);
        assert!(Bf16x9.sgemm(&z, &a).iter().all(|&x| x == 0.0));
        let eye = Matrix::from_fn(4, 4, |i, j| (i == j) as u8 as f32);
        let c = Bf16x9.sgemm(&a, &eye);
        for (x, y) in c.iter().zip(a.iter()) {
            let err = (x - y).abs() / y.abs().max(1e-30);
            assert!(err < 1e-6);
        }
    }

    #[test]
    fn name_matches() {
        assert_eq!(MatMulF32::name(&Bf16x9), "BF16x9");
    }
}
