//! # gemm-baselines
//!
//! Every comparator method from the paper's evaluation (§5):
//!
//! | Label in paper | Type | Module |
//! |---|---|---|
//! | `ozIMMU_EF-S` | DGEMM, Ozaki Scheme I on INT8, `S` slices | [`ozimmu`] |
//! | `cuMpSGEMM` (FP16TCEC_SCALING) | SGEMM on FP16 tensor cores | [`cumpsgemm`] |
//! | `BF16x9` | SGEMM via 3×3 BF16 split (cuBLAS 12.9) | [`bf16x9`] |
//! | `TF32GEMM` | single TF32 tensor-core pass | [`tf32gemm`] |
//!
//! Native DGEMM / SGEMM live in `gemm-dense` ([`gemm_dense::NativeDgemm`],
//! [`gemm_dense::NativeSgemm`]); Ozaki Scheme II is the `ozaki2` crate.

#![warn(missing_docs)]

pub mod bf16x9;
pub mod cumpsgemm;
pub mod ozimmu;
pub mod tf32gemm;

pub use bf16x9::Bf16x9;
pub use cumpsgemm::CuMpSgemm;
pub use ozimmu::OzImmu;
pub use tf32gemm::Tf32Gemm;
