//! Property-based tests for the dense substrate.

use gemm_dense::gemm::{gemm_f32, gemm_f32_naive, gemm_f64, gemm_f64_naive};
use gemm_dense::norms::{frobenius_f64, max_abs_f64, max_relative_error};
use gemm_dense::{Matrix, Philox4x32};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_f64_matches_naive(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = Philox4x32::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.uniform_f64() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.uniform_f64() - 0.5);
        let c1 = gemm_f64(&a, &b);
        let c2 = gemm_f64_naive(&a, &b);
        for (x, y) in c1.iter().zip(c2.iter()) {
            prop_assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0));
        }
    }

    #[test]
    fn gemm_f32_matches_naive(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = Philox4x32::new(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.uniform_f32() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.uniform_f32() - 0.5);
        let c1 = gemm_f32(&a, &b);
        let c2 = gemm_f32_naive(&a, &b);
        for (x, y) in c1.iter().zip(c2.iter()) {
            prop_assert!((x - y).abs() <= 1e-4 * y.abs().max(1.0));
        }
    }

    #[test]
    fn transpose_involution(m in 1usize..20, n in 1usize..20, seed in any::<u64>()) {
        let mut rng = Philox4x32::new(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.next_u32());
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_major_matches_indexing(m in 1usize..12, n in 1usize..12, seed in any::<u64>()) {
        let mut rng = Philox4x32::new(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.next_u32());
        let rm = a.to_row_major();
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(rm[i * n + j], a[(i, j)]);
            }
        }
    }

    #[test]
    fn philox_streams_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut r1 = Philox4x32::new_stream(seed, stream);
        let mut r2 = Philox4x32::new_stream(seed, stream);
        for _ in 0..16 {
            prop_assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    fn uniform_stays_in_half_open_interval(seed in any::<u64>()) {
        let mut rng = Philox4x32::new(seed);
        for _ in 0..64 {
            let u = rng.uniform_f64();
            prop_assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn norms_are_consistent(seed in any::<u64>(), m in 1usize..10, n in 1usize..10) {
        let mut rng = Philox4x32::new(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.uniform_f64() - 0.5);
        let fro = frobenius_f64(&a);
        let mx = max_abs_f64(&a);
        prop_assert!(fro >= mx - 1e-15);
        prop_assert!(fro <= mx * ((m * n) as f64).sqrt() + 1e-15);
        prop_assert_eq!(max_relative_error(&a, &a), 0.0);
    }

    #[test]
    fn triangle_inequality_for_gemm_error(seed in any::<u64>()) {
        // gemm(a, b+c) ~ gemm(a,b) + gemm(a,c) up to rounding.
        let mut rng = Philox4x32::new(seed);
        let a = Matrix::from_fn(6, 6, |_, _| rng.uniform_f64() - 0.5);
        let b = Matrix::from_fn(6, 6, |_, _| rng.uniform_f64() - 0.5);
        let c = Matrix::from_fn(6, 6, |_, _| rng.uniform_f64() - 0.5);
        let bc = Matrix::from_fn(6, 6, |i, j| b[(i, j)] + c[(i, j)]);
        let lhs = gemm_f64(&a, &bc);
        let rhs_b = gemm_f64(&a, &b);
        let rhs_c = gemm_f64(&a, &c);
        for i in 0..6 {
            for j in 0..6 {
                let d = (lhs[(i, j)] - rhs_b[(i, j)] - rhs_c[(i, j)]).abs();
                prop_assert!(d < 1e-12);
            }
        }
    }
}
