//! Reference floating-point GEMM kernels.
//!
//! These play the role of cuBLAS's native DGEMM / SGEMM in the paper's
//! comparisons: classical IEEE-754 matrix products with one rounding per
//! accumulation step. The blocked/parallel variants are the production
//! entry points; the naive ones exist as independent oracles for tests.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// Number of C columns processed per rayon task. Large enough to amortise
/// scheduling, small enough to load-balance on a few cores.
const COL_CHUNK: usize = 8;

/// Panel width in `k` for the axpy inner loop; keeps the streamed slice of
/// `A` within L2 for typical sizes.
const K_BLOCK: usize = 256;

macro_rules! impl_gemm_float {
    ($name:ident, $naive:ident, $t:ty, $doc:expr) => {
        #[doc = $doc]
        ///
        /// Computes `C = A * B` with `A: m x k`, `B: k x n`, both column-major.
        ///
        /// # Panics
        /// If the inner dimensions disagree.
        pub fn $name(a: &Matrix<$t>, b: &Matrix<$t>) -> Matrix<$t> {
            let (m, k) = a.shape();
            let (kb, n) = b.shape();
            assert_eq!(k, kb, "inner dimensions must agree: {k} vs {kb}");
            let mut c = Matrix::<$t>::zeros(m, n);
            if m == 0 || n == 0 || k == 0 {
                return c;
            }
            let a_data = a.as_slice();
            let b_data = b.as_slice();
            c.as_mut_slice()
                .par_chunks_mut(m * COL_CHUNK)
                .enumerate()
                .for_each(|(chunk_idx, c_chunk)| {
                    let j0 = chunk_idx * COL_CHUNK;
                    for (dj, c_col) in c_chunk.chunks_exact_mut(m).enumerate() {
                        let j = j0 + dj;
                        let b_col = &b_data[j * k..(j + 1) * k];
                        // jki order: c[:,j] += b[h,j] * a[:,h], axpy over
                        // contiguous columns of A; panelled over k.
                        for (h0, b_panel) in b_col.chunks(K_BLOCK).enumerate() {
                            let h_base = h0 * K_BLOCK;
                            for (dh, &bhj) in b_panel.iter().enumerate() {
                                if bhj == 0.0 {
                                    continue;
                                }
                                let h = h_base + dh;
                                let a_col = &a_data[h * m..(h + 1) * m];
                                for (ci, &ai) in c_col.iter_mut().zip(a_col) {
                                    *ci += bhj * ai;
                                }
                            }
                        }
                    }
                });
            c
        }

        /// Naive triple-loop oracle for the same product (test use only).
        pub fn $naive(a: &Matrix<$t>, b: &Matrix<$t>) -> Matrix<$t> {
            let (m, k) = a.shape();
            let (kb, n) = b.shape();
            assert_eq!(k, kb, "inner dimensions must agree");
            Matrix::from_fn(m, n, |i, j| {
                let mut acc: $t = 0.0;
                for h in 0..k {
                    acc += a[(i, h)] * b[(h, j)];
                }
                acc
            })
        }
    };
}

impl_gemm_float!(
    gemm_f64,
    gemm_f64_naive,
    f64,
    "Double-precision GEMM (the native-DGEMM stand-in)."
);
impl_gemm_float!(
    gemm_f32,
    gemm_f32_naive,
    f32,
    "Single-precision GEMM (the native-SGEMM stand-in)."
);

/// `C = A * B` where operands are `f64` and accumulation is `f64`, but the
/// per-element products are first rounded to `f32`. Only used by tests that
/// need a "worse than SGEMM" comparison point.
pub fn gemm_f32_inputs_f64_acc(a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f64> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0f64;
        for h in 0..k {
            acc += a[(i, h)] as f64 * b[(h, j)] as f64;
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Philox4x32;

    fn random_mat_f64(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut rng = Philox4x32::new(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.uniform_f64() - 0.5)
    }

    #[test]
    fn blocked_matches_naive_f64() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (16, 16, 16),
            (33, 65, 17),
            (64, 128, 96),
        ] {
            let a = random_mat_f64(m, k, 42 + m as u64);
            let b = random_mat_f64(k, n, 17 + n as u64);
            let c1 = gemm_f64(&a, &b);
            let c2 = gemm_f64_naive(&a, &b);
            for (x, y) in c1.iter().zip(c2.iter()) {
                assert!(
                    (x - y).abs() <= 1e-12 * y.abs().max(1.0),
                    "blocked={x} naive={y}"
                );
            }
        }
    }

    #[test]
    fn blocked_matches_naive_f32() {
        let mut rng = Philox4x32::new(7);
        let a = Matrix::from_fn(40, 30, |_, _| rng.uniform_f32() - 0.5);
        let b = Matrix::from_fn(30, 50, |_, _| rng.uniform_f32() - 0.5);
        let c1 = gemm_f32(&a, &b);
        let c2 = gemm_f32_naive(&a, &b);
        for (x, y) in c1.iter().zip(c2.iter()) {
            assert!((x - y).abs() <= 1e-4 * y.abs().max(1.0));
        }
    }

    #[test]
    fn identity_product() {
        let n = 24;
        let a = random_mat_f64(n, n, 3);
        let eye = Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 });
        let c = gemm_f64(&a, &eye);
        for (x, y) in c.iter().zip(a.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3);
        let b = Matrix::<f64>::zeros(4, 2);
        let _ = gemm_f64(&a, &b);
    }

    #[test]
    fn empty_dims_ok() {
        let a = Matrix::<f64>::zeros(0, 5);
        let b = Matrix::<f64>::zeros(5, 4);
        let c = gemm_f64(&a, &b);
        assert_eq!(c.shape(), (0, 4));
    }
}
