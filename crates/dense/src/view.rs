//! Borrowed strided matrix views: the canonical operand type of the
//! emulation stack.
//!
//! A [`MatView`] is `(data, rows, cols, layout, leading dimension)` — the
//! BLAS operand convention. It borrows the caller's buffer, so feeding one
//! to the pipeline copies nothing: the fused trunc+convert sweep gathers
//! straight from the strided source. Transposition is **free**
//! ([`MatView::t`] swaps the logical shape and flips the layout tag over
//! the same buffer), which is what lets the BLAS surface serve
//! `op(A)·op(B)` with zero operand materialization.
//!
//! [`MatViewMut`] is the column-major output counterpart (BLAS `C` with
//! `ldc`).

use crate::matrix::Matrix;

/// Element order of a [`MatView`]'s backing buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Element `(i, j)` at `data[i + j * ld]` (BLAS default; columns are
    /// contiguous when `ld == rows`).
    ColMajor,
    /// Element `(i, j)` at `data[i * ld + j]` (rows are contiguous when
    /// `ld == cols`). A row-major view is exactly the zero-copy transpose
    /// of a column-major one.
    RowMajor,
}

impl Layout {
    /// The other layout (what [`MatView::t`] flips to).
    pub fn flipped(self) -> Layout {
        match self {
            Layout::ColMajor => Layout::RowMajor,
            Layout::RowMajor => Layout::ColMajor,
        }
    }
}

/// Minimum buffer length for a `rows x cols` view with the given layout
/// and leading dimension.
fn need(rows: usize, cols: usize, ld: usize, layout: Layout) -> usize {
    if rows == 0 || cols == 0 {
        return 0;
    }
    match layout {
        Layout::ColMajor => (cols - 1) * ld + rows,
        Layout::RowMajor => (rows - 1) * ld + cols,
    }
}

/// A borrowed, strided, immutable matrix view (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct MatView<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    ld: usize,
    layout: Layout,
}

impl<'a, T: Copy> MatView<'a, T> {
    /// General constructor: `rows x cols` over `data` with layout and
    /// leading dimension `ld` (the element stride between consecutive
    /// columns for [`Layout::ColMajor`], rows for [`Layout::RowMajor`]).
    ///
    /// # Panics
    /// If `ld` is below the minor dimension or `data` is too short.
    pub fn new(data: &'a [T], rows: usize, cols: usize, ld: usize, layout: Layout) -> Self {
        let minor = match layout {
            Layout::ColMajor => rows,
            Layout::RowMajor => cols,
        };
        assert!(
            ld >= minor.max(1),
            "leading dimension {ld} below minor dimension {minor}"
        );
        let need = need(rows, cols, ld, layout);
        assert!(
            data.len() >= need,
            "view buffer too short: {} < {need}",
            data.len()
        );
        Self {
            data,
            rows,
            cols,
            ld,
            layout,
        }
    }

    /// Contiguous column-major view (`ld == rows`), the dense default.
    pub fn col_major(data: &'a [T], rows: usize, cols: usize) -> Self {
        Self::new(data, rows, cols, rows.max(1), Layout::ColMajor)
    }

    /// Contiguous row-major view (`ld == cols`).
    pub fn row_major(data: &'a [T], rows: usize, cols: usize) -> Self {
        Self::new(data, rows, cols, cols.max(1), Layout::RowMajor)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element order of the backing buffer.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The borrowed backing buffer (strided; see [`MatView::layout`]).
    #[inline]
    pub fn data(&self) -> &'a [T] {
        self.data
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    /// Out-of-bounds indices panic via the slice index.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        match self.layout {
            Layout::ColMajor => self.data[i + j * self.ld],
            Layout::RowMajor => self.data[i * self.ld + j],
        }
    }

    /// Minimum backing-buffer length this view's shape, layout and
    /// leading dimension span (the constructor's length requirement).
    pub fn min_len(&self) -> usize {
        need(self.rows, self.cols, self.ld, self.layout)
    }

    /// The **zero-copy transpose**: same buffer, swapped logical shape,
    /// flipped layout. `self.t().get(i, j) == self.get(j, i)` with no
    /// element moved.
    pub fn t(&self) -> MatView<'a, T> {
        MatView {
            data: self.data,
            rows: self.cols,
            cols: self.rows,
            ld: self.ld,
            layout: self.layout.flipped(),
        }
    }

    /// Whether the view is a dense column-major buffer (`Layout::ColMajor`
    /// with no inter-column gap), i.e. directly usable as a `rows * cols`
    /// column-major slice.
    pub fn is_contiguous_col_major(&self) -> bool {
        self.layout == Layout::ColMajor && (self.ld == self.rows || self.cols <= 1)
    }

    /// The dense column-major element slice, when the view is one
    /// (`None` for strided, gapped, or row-major views).
    pub fn as_col_major_slice(&self) -> Option<&'a [T]> {
        if self.rows == 0 || self.cols == 0 {
            return Some(&self.data[..0]);
        }
        if self.is_contiguous_col_major() {
            Some(&self.data[..(self.cols - 1) * self.ld + self.rows])
        } else {
            None
        }
    }

    /// Owned column-major copy (gathers the strided elements). This is a
    /// materialization — tests and diagnostics only; the pipeline itself
    /// never needs it.
    pub fn to_matrix(&self) -> Matrix<T>
    where
        T: Default,
    {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

impl<'a, T: Copy> From<&'a Matrix<T>> for MatView<'a, T> {
    fn from(m: &'a Matrix<T>) -> Self {
        MatView::col_major(m.as_slice(), m.rows(), m.cols())
    }
}

impl<T: Copy> Matrix<T> {
    /// Borrow this matrix as a contiguous column-major [`MatView`].
    pub fn view(&self) -> MatView<'_, T> {
        MatView::from(self)
    }

    /// Borrow this matrix as a contiguous column-major [`MatViewMut`].
    pub fn view_mut(&mut self) -> MatViewMut<'_, T> {
        let (rows, cols) = self.shape();
        MatViewMut::col_major(self.as_mut_slice(), rows, cols)
    }
}

/// A borrowed, mutable, column-major output view (BLAS `C` with `ldc`).
///
/// Outputs are always column-major (the workspace convention); strided
/// outputs (`ld > rows`) are written column by column.
#[derive(Debug)]
pub struct MatViewMut<'a, T> {
    data: &'a mut [T],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl<'a, T: Copy> MatViewMut<'a, T> {
    /// `rows x cols` column-major over `data` with leading dimension `ld`.
    ///
    /// # Panics
    /// If `ld < rows` or `data` is too short.
    pub fn new(data: &'a mut [T], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(
            ld >= rows.max(1),
            "leading dimension {ld} below rows {rows}"
        );
        let need = need(rows, cols, ld, Layout::ColMajor);
        assert!(
            data.len() >= need,
            "view buffer too short: {} < {need}",
            data.len()
        );
        Self {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Contiguous column-major mutable view (`ld == rows`).
    pub fn col_major(data: &'a mut [T], rows: usize, cols: usize) -> Self {
        Self::new(data, rows, cols, rows.max(1))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Immutable element access (for read-modify-write epilogues).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Mutable contiguous column `j` (`rows` elements).
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        if self.rows == 0 {
            return &mut self.data[..0];
        }
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Whether the view is a dense `rows * cols` column-major buffer.
    pub fn is_contiguous_col_major(&self) -> bool {
        self.ld == self.rows || self.cols <= 1
    }

    /// The dense column-major element slice, when the view is one.
    pub fn as_col_major_slice_mut(&mut self) -> Option<&mut [T]> {
        if self.rows == 0 || self.cols == 0 {
            return Some(&mut self.data[..0]);
        }
        if self.is_contiguous_col_major() {
            let len = (self.cols - 1) * self.ld + self.rows;
            Some(&mut self.data[..len])
        } else {
            None
        }
    }

    /// Reborrow as an immutable [`MatView`].
    pub fn as_view(&self) -> MatView<'_, T> {
        MatView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            layout: Layout::ColMajor,
        }
    }
}

impl<'a, T: Copy> From<&'a mut Matrix<T>> for MatViewMut<'a, T> {
    fn from(m: &'a mut Matrix<T>) -> Self {
        m.view_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_major_view_indexes_like_matrix() {
        let m = Matrix::from_fn(3, 4, |i, j| (10 * i + j) as i32);
        let v = m.view();
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(v.get(i, j), m[(i, j)]);
            }
        }
        assert_eq!(v.as_col_major_slice(), Some(m.as_slice()));
        assert!(v.is_contiguous_col_major());
    }

    #[test]
    fn transpose_is_zero_copy() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 31 + j) as i64);
        let t = m.view().t();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.layout(), Layout::RowMajor);
        assert!(std::ptr::eq(t.data(), m.as_slice()));
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(t.get(i, j), m[(j, i)]);
            }
        }
        // Double transpose round-trips.
        assert_eq!(t.t().to_matrix(), m);
    }

    #[test]
    fn strided_submatrix_view() {
        // A 2x3 window inside a 5x7 column-major parent, at offset (1, 2).
        let parent = Matrix::from_fn(5, 7, |i, j| (i + 10 * j) as i32);
        let off = 1 + 2 * 5;
        let v = MatView::new(&parent.as_slice()[off..], 2, 3, 5, Layout::ColMajor);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(v.get(i, j), parent[(1 + i, 2 + j)]);
            }
        }
        assert!(!v.is_contiguous_col_major());
        assert!(v.as_col_major_slice().is_none());
    }

    #[test]
    fn row_major_view() {
        let data: Vec<i32> = (0..12).collect();
        let v = MatView::row_major(&data, 3, 4);
        assert_eq!(v.get(0, 0), 0);
        assert_eq!(v.get(1, 0), 4);
        assert_eq!(v.get(2, 3), 11);
        assert!(v.as_col_major_slice().is_none());
        // Its transpose is a contiguous col-major 4x3 view.
        let t = v.t();
        assert!(t.is_contiguous_col_major());
        assert_eq!(t.get(0, 1), 4);
    }

    #[test]
    fn empty_views() {
        let data: [f64; 0] = [];
        let v = MatView::col_major(&data, 0, 3);
        assert_eq!(v.shape(), (0, 3));
        assert_eq!(v.as_col_major_slice(), Some(&data[..]));
        let v2 = MatView::col_major(&data, 2, 0);
        assert_eq!(v2.to_matrix().shape(), (2, 0));
    }

    #[test]
    fn view_mut_columns_and_strides() {
        let mut buf = vec![0i32; 4 * 6];
        {
            let mut v = MatViewMut::new(&mut buf, 3, 4, 4); // ld 4 > rows 3
            assert!(!v.is_contiguous_col_major());
            for j in 0..4 {
                for (i, e) in v.col_mut(j).iter_mut().enumerate() {
                    *e = (10 * i + j) as i32;
                }
            }
            assert_eq!(v.get(2, 3), 23);
            assert_eq!(v.as_view().get(1, 2), 12);
        }
        // The ld-gap rows stay untouched.
        assert_eq!(buf[3], 0);
    }

    #[test]
    fn matrix_view_mut_round_trip() {
        let mut m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        {
            let mut v = m.view_mut();
            assert!(v.is_contiguous_col_major());
            v.col_mut(1)[0] = 9.0;
            assert_eq!(v.as_col_major_slice_mut().unwrap().len(), 4);
        }
        assert_eq!(m[(0, 1)], 9.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_buffer_rejected() {
        let data = vec![0f64; 5];
        let _ = MatView::col_major(&data, 2, 3);
    }

    #[test]
    #[should_panic(expected = "below minor dimension")]
    fn undersized_ld_rejected() {
        let data = vec![0f64; 12];
        let _ = MatView::new(&data, 4, 3, 3, Layout::ColMajor);
    }
}
