//! Norms and error metrics used by the accuracy experiments (Fig. 3).

use crate::matrix::Matrix;

/// Largest absolute entry.
pub fn max_abs_f64(a: &Matrix<f64>) -> f64 {
    a.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Frobenius norm.
pub fn frobenius_f64(a: &Matrix<f64>) -> f64 {
    a.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

/// Maximum componentwise relative error of `approx` against `exact`:
/// `max_ij |approx - exact| / |exact|`, with entries whose exact value is
/// zero contributing `|approx|` scaled by the largest exact magnitude
/// (so a spurious nonzero on a zero entry still registers).
///
/// This is the paper's Fig. 3 metric.
pub fn max_relative_error(approx: &Matrix<f64>, exact: &Matrix<f64>) -> f64 {
    assert_eq!(approx.shape(), exact.shape(), "shape mismatch");
    let scale = max_abs_f64(exact).max(f64::MIN_POSITIVE);
    approx
        .iter()
        .zip(exact.iter())
        .map(|(&x, &e)| {
            if e != 0.0 {
                ((x - e) / e).abs()
            } else {
                x.abs() / scale
            }
        })
        .fold(0.0f64, f64::max)
}

/// Median componentwise relative error — robust variant used to sanity-check
/// that the max is not driven by a single pathological entry.
pub fn median_relative_error(approx: &Matrix<f64>, exact: &Matrix<f64>) -> f64 {
    assert_eq!(approx.shape(), exact.shape(), "shape mismatch");
    let mut errs: Vec<f64> = approx
        .iter()
        .zip(exact.iter())
        .filter(|(_, &e)| e != 0.0)
        .map(|(&x, &e)| ((x - e) / e).abs())
        .collect();
    if errs.is_empty() {
        return 0.0;
    }
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    errs[errs.len() / 2]
}

/// Normwise relative error in the max norm:
/// `max|approx - exact| / max|exact|`.
pub fn normwise_relative_error(approx: &Matrix<f64>, exact: &Matrix<f64>) -> f64 {
    assert_eq!(approx.shape(), exact.shape(), "shape mismatch");
    let denom = max_abs_f64(exact).max(f64::MIN_POSITIVE);
    let num = approx
        .iter()
        .zip(exact.iter())
        .map(|(&x, &e)| (x - e).abs())
        .fold(0.0f64, f64::max);
    num / denom
}

/// Convert an `f32` matrix to `f64` (for error evaluation against a double
/// or extended-precision reference).
pub fn widen(a: &Matrix<f32>) -> Matrix<f64> {
    a.map(|x| x as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_has_zero_error() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64 + 1.0);
        assert_eq!(max_relative_error(&a, &a), 0.0);
        assert_eq!(normwise_relative_error(&a, &a), 0.0);
    }

    #[test]
    fn known_relative_error() {
        let exact = Matrix::from_fn(1, 2, |_, j| if j == 0 { 2.0 } else { 4.0 });
        let approx = Matrix::from_fn(1, 2, |_, j| if j == 0 { 2.002 } else { 4.0 });
        let e = max_relative_error(&approx, &exact);
        assert!((e - 0.001).abs() < 1e-12);
    }

    #[test]
    fn zero_exact_entry_uses_scale() {
        let exact = Matrix::from_fn(1, 2, |_, j| if j == 0 { 0.0 } else { 10.0 });
        let approx = Matrix::from_fn(1, 2, |_, j| if j == 0 { 1.0 } else { 10.0 });
        // |1 - 0| / 10 = 0.1
        assert!((max_relative_error(&approx, &exact) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn frobenius_of_unit_vector() {
        let a = Matrix::from_fn(3, 1, |i, _| {
            if i == 0 {
                3.0
            } else {
                4.0 * (i == 1) as u8 as f64
            }
        });
        assert!((frobenius_f64(&a) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn median_ignores_single_outlier() {
        let exact = Matrix::from_fn(1, 5, |_, _| 1.0);
        let mut approx = exact.clone();
        approx[(0, 0)] = 2.0; // one huge error
        assert!(max_relative_error(&approx, &exact) > 0.5);
        assert!(median_relative_error(&approx, &exact) < 1e-15);
    }
}
