//! Workload generators from the paper's evaluation (§5).
//!
//! The main generator draws `a_ij = (rand − 0.5) · exp(φ · randn)` where
//! `rand ∈ (0,1]` is uniform and `randn` is standard normal, both from a
//! fixed-seed Philox stream (the cuRAND generator family). `φ` controls the
//! exponent spread; `φ = 0.5` is empirically comparable to HPL's matrix
//! multiplications.

use crate::matrix::Matrix;
use crate::rng::Philox4x32;

/// `φ` value the paper identifies as HPL-like.
pub const PHI_HPL: f64 = 0.5;

/// Generate the paper's φ-lognormal test matrix in double precision.
///
/// `stream` selects an independent Philox subsequence so that `A` and `B`
/// of one experiment never share draws.
pub fn phi_matrix_f64(rows: usize, cols: usize, phi: f64, seed: u64, stream: u64) -> Matrix<f64> {
    let mut rng = Philox4x32::new_stream(seed, stream);
    Matrix::from_fn(rows, cols, |_, _| {
        let u = rng.uniform_f64();
        let z = rng.normal_f64();
        (u - 0.5) * (phi * z).exp()
    })
}

/// Generate the paper's φ-lognormal test matrix in single precision.
pub fn phi_matrix_f32(rows: usize, cols: usize, phi: f32, seed: u64, stream: u64) -> Matrix<f32> {
    let mut rng = Philox4x32::new_stream(seed, stream);
    Matrix::from_fn(rows, cols, |_, _| {
        let u = rng.uniform_f32();
        let z = rng.normal_f32();
        (u - 0.5) * (phi * z).exp()
    })
}

/// Uniform `(-0.5, 0.5]` matrix (the φ = 0 special case, used by unit tests).
pub fn uniform_matrix_f64(rows: usize, cols: usize, seed: u64, stream: u64) -> Matrix<f64> {
    let mut rng = Philox4x32::new_stream(seed, stream);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_f64() - 0.5)
}

/// All-positive matrix — adversarial for scaling because row/column sums do
/// not cancel, which maximises `Σ_h |a_ih||b_hj|` relative to `‖a‖‖b‖`.
pub fn positive_matrix_f64(rows: usize, cols: usize, seed: u64, stream: u64) -> Matrix<f64> {
    let mut rng = Philox4x32::new_stream(seed, stream);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_f64())
}

/// Matrix with exponentially graded rows: row `i` is scaled by `2^(-g*i)`.
/// Stresses the per-row diagonal scaling (μ) of the emulation.
pub fn row_graded_matrix_f64(
    rows: usize,
    cols: usize,
    grade: f64,
    seed: u64,
    stream: u64,
) -> Matrix<f64> {
    let mut rng = Philox4x32::new_stream(seed, stream);
    Matrix::from_fn(rows, cols, |i, _| {
        (rng.uniform_f64() - 0.5) * (-grade * i as f64).exp2()
    })
}

/// HPL-style LU test system: returns `(A, b)` with `A` φ=0.5 lognormal and a
/// right-hand side chosen so the exact solution is the all-ones vector is
/// *approximated*; used by the HPL example and integration tests.
pub fn hpl_like_system(n: usize, seed: u64) -> (Matrix<f64>, Vec<f64>) {
    let a = phi_matrix_f64(n, n, PHI_HPL, seed, 0);
    let b = (0..n)
        .map(|i| (0..n).map(|j| a[(i, j)]).sum())
        .collect::<Vec<f64>>();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_workloads() {
        let a = phi_matrix_f64(16, 16, 0.5, 42, 0);
        let b = phi_matrix_f64(16, 16, 0.5, 42, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_streams_differ() {
        let a = phi_matrix_f64(16, 16, 0.5, 42, 0);
        let b = phi_matrix_f64(16, 16, 0.5, 42, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn phi_widens_dynamic_range() {
        let narrow = phi_matrix_f64(64, 64, 0.5, 7, 0);
        let wide = phi_matrix_f64(64, 64, 4.0, 7, 0);
        let range = |m: &Matrix<f64>| {
            let mut lo = f64::INFINITY;
            let mut hi = 0.0f64;
            for &x in m.iter() {
                let a = x.abs();
                if a > 0.0 {
                    lo = lo.min(a);
                    hi = hi.max(a);
                }
            }
            hi / lo
        };
        assert!(
            range(&wide) > 100.0 * range(&narrow),
            "wide range {} vs narrow {}",
            range(&wide),
            range(&narrow)
        );
    }

    #[test]
    fn values_are_centered() {
        let a = phi_matrix_f64(128, 128, 0.5, 3, 0);
        let mean: f64 = a.iter().sum::<f64>() / (128.0 * 128.0);
        assert!(mean.abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn hpl_system_rhs_is_row_sums() {
        let (a, b) = hpl_like_system(10, 5);
        for i in 0..10 {
            let s: f64 = (0..10).map(|j| a[(i, j)]).sum();
            assert_eq!(b[i], s);
        }
    }

    #[test]
    fn row_graded_scales_rows() {
        let a = row_graded_matrix_f64(8, 64, 4.0, 1, 0);
        let row_max = |i: usize| (0..64).map(|j| a[(i, j)].abs()).fold(0.0f64, f64::max);
        assert!(row_max(0) > 100.0 * row_max(7));
    }
}
