//! Algorithm traits shared by every GEMM method in the comparison.
//!
//! The paper's §5 compares eight methods; implementing these traits lets the
//! accuracy harness, the benches, and the examples treat native GEMM, the
//! Ozaki-scheme emulations, and the low-precision baselines uniformly.

use crate::matrix::Matrix;

/// A double-precision matrix-multiplication method (`C ≈ A·B`).
pub trait MatMulF64 {
    /// Compute the (possibly emulated) product.
    fn matmul_f64(&self, a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64>;
    /// Display name used in reports ("DGEMM", "OS II-fast-14", ...).
    fn name(&self) -> String;
}

/// A single-precision matrix-multiplication method (`C ≈ A·B`).
pub trait MatMulF32 {
    /// Compute the (possibly emulated) product.
    fn matmul_f32(&self, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32>;
    /// Display name used in reports ("SGEMM", "OS II-fast-8", ...).
    fn name(&self) -> String;
}

/// Native DGEMM (classical IEEE double-precision product).
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeDgemm;

impl MatMulF64 for NativeDgemm {
    fn matmul_f64(&self, a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        crate::gemm::gemm_f64(a, b)
    }
    fn name(&self) -> String {
        "DGEMM".to_string()
    }
}

/// Native SGEMM (classical IEEE single-precision product).
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeSgemm;

impl MatMulF32 for NativeSgemm {
    fn matmul_f32(&self, a: &Matrix<f32>, b: &Matrix<f32>) -> Matrix<f32> {
        crate::gemm::gemm_f32(a, b)
    }
    fn name(&self) -> String {
        "SGEMM".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_names() {
        assert_eq!(NativeDgemm.name(), "DGEMM");
        assert_eq!(NativeSgemm.name(), "SGEMM");
    }

    #[test]
    fn trait_object_dispatch() {
        let methods: Vec<Box<dyn MatMulF64>> = vec![Box::new(NativeDgemm)];
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let c = methods[0].matmul_f64(&a, &b);
        // [[0,1],[1,2]] * [[0,1],[2,3]] = [[2,3],[4,7]]
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(0, 1)], 3.0);
        assert_eq!(c[(1, 0)], 4.0);
        assert_eq!(c[(1, 1)], 7.0);
    }
}
