//! Philox4x32-10 counter-based RNG — the default generator of cuRAND.
//!
//! The paper generates its workloads with the cuRAND API under a fixed seed;
//! we reimplement the same generator family so the workload distribution is
//! faithful and every experiment is bit-deterministic. Reference: Salmon et
//! al., "Parallel random numbers: as easy as 1, 2, 3" (SC'11).

/// Philox 4x32 multipliers and Weyl key increments (from the Random123 paper).
const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;
const PHILOX_ROUNDS: usize = 10;

/// Counter-based Philox4x32-10 generator with a small output buffer.
#[derive(Clone, Debug)]
pub struct Philox4x32 {
    key: [u32; 2],
    counter: [u32; 4],
    /// Unconsumed outputs of the most recent block.
    buf: [u32; 4],
    buf_pos: usize,
    /// Cached second output of Box–Muller.
    gauss_spare: Option<f64>,
}

#[inline]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let prod = (a as u64) * (b as u64);
    ((prod >> 32) as u32, prod as u32)
}

#[inline]
fn philox_round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(PHILOX_M0, ctr[0]);
    let (hi1, lo1) = mulhilo(PHILOX_M1, ctr[2]);
    [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]
}

/// One full 10-round Philox4x32 block function.
pub fn philox4x32_10(mut ctr: [u32; 4], mut key: [u32; 2]) -> [u32; 4] {
    for _ in 0..PHILOX_ROUNDS {
        ctr = philox_round(ctr, key);
        key[0] = key[0].wrapping_add(PHILOX_W0);
        key[1] = key[1].wrapping_add(PHILOX_W1);
    }
    ctr
}

impl Philox4x32 {
    /// Create a generator from a 64-bit seed (counter starts at zero).
    pub fn new(seed: u64) -> Self {
        Self {
            key: [seed as u32, (seed >> 32) as u32],
            counter: [0; 4],
            buf: [0; 4],
            buf_pos: 4, // empty: forces a block on first use
            gauss_spare: None,
        }
    }

    /// Create a generator positioned on an independent subsequence, e.g. one
    /// per matrix in a workload. Distinct `stream` values never collide
    /// because they occupy the high counter word.
    pub fn new_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Self::new(seed);
        rng.counter[2] = stream as u32;
        rng.counter[3] = (stream >> 32) as u32;
        rng
    }

    #[inline]
    fn advance_counter(&mut self) {
        // 128-bit increment, low word first.
        for w in self.counter.iter_mut() {
            let (v, carry) = w.overflowing_add(1);
            *w = v;
            if !carry {
                break;
            }
        }
    }

    /// Next raw 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.buf_pos == 4 {
            self.buf = philox4x32_10(self.counter, self.key);
            self.advance_counter();
            self.buf_pos = 0;
        }
        let v = self.buf[self.buf_pos];
        self.buf_pos += 1;
        v
    }

    /// Next raw 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform draw in `(0, 1]`, matching cuRAND's `curand_uniform` range
    /// convention (zero excluded, one included).
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        // (x + 1) * 2^-64 over the full 64-bit draw: never 0, can reach 1.
        (self.next_u64() as f64 + 1.0) * (1.0 / 18_446_744_073_709_551_616.0)
    }

    /// Uniform draw in `(0, 1]` as `f32`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        (self.next_u32() as f32 + 1.0) * (1.0 / 4_294_967_296.0)
    }

    /// Standard normal draw via Box–Muller (cuRAND's `curand_normal` uses the
    /// same transform). The second value of each pair is cached.
    pub fn normal_f64(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        let u1 = self.uniform_f64(); // in (0,1]: log is finite
        let u2 = self.uniform_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Standard normal draw as `f32`.
    pub fn normal_f32(&mut self) -> f32 {
        self.normal_f64() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Philox4x32::new(1234);
        let mut b = Philox4x32::new(1234);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Philox4x32::new(1);
        let mut b = Philox4x32::new(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams nearly identical: {same}/64 matches");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Philox4x32::new_stream(9, 0);
        let mut b = Philox4x32::new_stream(9, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn known_answer_philox_zero() {
        // Zero key/counter test vector for philox4x32-10, from the Random123
        // distribution (kat_vectors): philox 4x32 10 zeros =>
        // 6627e8d5 e169c58d bc57ac4c 9b00dbd8
        let out = philox4x32_10([0; 4], [0; 2]);
        assert_eq!(out, [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]);
    }

    #[test]
    fn known_answer_philox_ones() {
        // all-ones test vector: counter/key = ff..f =>
        // 408f276d 41c83b0e a20bc7c6 6d5451fd
        let out = philox4x32_10([u32::MAX; 4], [u32::MAX; 2]);
        assert_eq!(out, [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]);
    }

    #[test]
    fn uniform_in_half_open_unit_interval() {
        let mut rng = Philox4x32::new(5);
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!(u > 0.0 && u <= 1.0, "u={u}");
            let v = rng.uniform_f32();
            assert!(v > 0.0 && v <= 1.0, "v={v}");
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = Philox4x32::new(99);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.normal_f64();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn counter_increment_carries() {
        let mut rng = Philox4x32::new(0);
        rng.counter = [u32::MAX, u32::MAX, 0, 0];
        rng.advance_counter();
        assert_eq!(rng.counter, [0, 0, 1, 0]);
    }
}
