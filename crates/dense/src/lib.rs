//! # gemm-dense
//!
//! Dense-matrix substrate for the GEMMul8 reproduction: column-major
//! [`matrix::Matrix`] storage, reference f32/f64 GEMM (the stand-in
//! for native cuBLAS SGEMM/DGEMM), the cuRAND-compatible Philox4x32-10
//! generator, the paper's φ-lognormal workload generators, error metrics,
//! and the [`algo::MatMulF64`] / [`algo::MatMulF32`]
//! traits every compared method implements.

#![warn(missing_docs)]

pub mod algo;
pub mod gemm;
pub mod matrix;
pub mod norms;
pub mod rng;
pub mod view;
pub mod workload;

pub use algo::{MatMulF32, MatMulF64, NativeDgemm, NativeSgemm};
pub use matrix::{MatF32, MatF64, MatI32, MatI8, MatU8, Matrix};
pub use rng::Philox4x32;
pub use view::{Layout, MatView, MatViewMut};
