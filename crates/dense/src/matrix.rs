//! Column-major dense matrix storage.
//!
//! The emulation pipeline and all baselines operate on BLAS-style
//! column-major matrices (`A[i + j*rows]`), matching the cuBLAS convention
//! used by the paper's reference implementation. A handful of packing
//! helpers produce row-major copies where a kernel wants contiguous rows.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major matrix over an element type `T`.
///
/// Invariant: `data.len() == rows * cols`; element `(i, j)` lives at
/// `data[i + j * rows]`.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Zero-initialised (well, `T::default()`-initialised) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> Matrix<T> {
    /// Build a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing column-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the raw column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the raw column-major buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Contiguous column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable contiguous column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy of row `i` (rows are strided in column-major storage).
    pub fn row_copy(&self, i: usize) -> Vec<T> {
        (0..self.cols).map(|j| self[(i, j)]).collect()
    }

    /// Apply `f` elementwise, producing a new matrix of the same shape.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Row-major copy of the element buffer (`out[i*cols + j] = a[(i,j)]`).
    ///
    /// Used by kernels that want contiguous rows of `A` for dot products.
    pub fn to_row_major(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.push(self[(i, j)]);
            }
        }
        out
    }

    /// Iterator over all elements in storage (column-major) order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T: Copy> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl<T: Copy> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl<T: Copy + fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            if show_cols < self.cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Convenience aliases used across the workspace.
pub type MatF64 = Matrix<f64>;
/// Single-precision matrix.
pub type MatF32 = Matrix<f32>;
/// INT8 matrix (engine input).
pub type MatI8 = Matrix<i8>;
/// Unsigned INT8 matrix (`U_i` in Algorithm 1).
pub type MatU8 = Matrix<u8>;
/// INT32 matrix (engine accumulator output).
pub type MatI32 = Matrix<i32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index_round_trip() {
        let m = Matrix::from_fn(3, 4, |i, j| (10 * i + j) as i32);
        assert_eq!(m.shape(), (3, 4));
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], (10 * i + j) as i32);
            }
        }
    }

    #[test]
    fn storage_is_column_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i, j));
        assert_eq!(
            m.as_slice(),
            &[(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        );
    }

    #[test]
    fn col_is_contiguous() {
        let m = Matrix::from_fn(4, 2, |i, j| i as i64 + 100 * j as i64);
        assert_eq!(m.col(1), &[100, 101, 102, 103]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(5, 7, |i, j| i as i32 * 31 + j as i32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn row_major_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| 10 * i as i32 + j as i32);
        assert_eq!(m.to_row_major(), vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn map_preserves_shape() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let d = m.map(|x| x * 2.0);
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d[(1, 2)], 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1_i32, 2, 3]);
    }

    #[test]
    fn row_copy_matches_elements() {
        let m = Matrix::from_fn(3, 4, |i, j| i as i32 - j as i32);
        assert_eq!(m.row_copy(2), vec![2, 1, 0, -1]);
    }
}
