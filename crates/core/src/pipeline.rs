//! Algorithm 1, end to end: the public emulation API.
//!
//! [`Ozaki2`] bundles the two user-visible knobs — the number of moduli `N`
//! (accuracy) and the computing [`Mode`] (fast vs accurate scaling) — and
//! exposes `dgemm` / `sgemm` plus `*_with_report` variants that return the
//! per-phase wall-clock breakdown used to regenerate Figs. 6–7.

use crate::abft::{FaultPolicy, FaultReport};
use crate::accumulate::{fold_planes, FoldPrecision};
use crate::consts::Constants;
use crate::modred::finalize_block_residues;
use crate::moduli::{backend_n_max, N_MAX};
use crate::prepared::OperandSide;
use gemm_dense::{MatF32, MatF64, MatMulF32, MatMulF64, Matrix};
use gemm_engine::{padded_a_rows, padded_b_cols, padded_depth, BackendKind, ResidueBackend};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Largest `k` per INT8 GEMM before block splitting (§4.3: products of
/// `±128` entries stay within the wrapping-INT32 guarantee up to `2^17`).
///
/// This is the INT8 pool's value of the pool-derived limit
/// [`gemm_engine::ResidueBackend::k_block_max`]; pools with smaller
/// moduli (the bf16-FMA pool) split later. Workspace sizing keeps using
/// this constant — the smallest limit any pool has — so reservations are
/// always sufficient.
pub const K_BLOCK_MAX: usize = 1 << 17;

/// Scaling mode (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Cauchy–Schwarz row/column-norm bound: cheapest, coarser scales.
    Fast,
    /// INT8 magnitude-product bound: one extra INT8 GEMM, tighter scales,
    /// better accuracy (especially for wide exponent distributions).
    Accurate,
}

impl Mode {
    /// Short label used in method names ("fast" / "accu").
    pub fn label(self) -> &'static str {
        match self {
            Mode::Fast => "fast",
            Mode::Accurate => "accu",
        }
    }
}

/// Errors surfaced by the checked entry points.
#[derive(Clone, Debug, PartialEq)]
pub enum EmulationError {
    /// An input entry was NaN or infinite.
    NonFiniteInput {
        /// Which operand held the offending entry.
        side: OperandSide,
        /// Storage index of the first non-finite entry in the operand's
        /// backing slice (column-major: `i + j * ld`; row-major:
        /// `j + i * ld`).
        index: usize,
    },
    /// Requested moduli count outside the supported range.
    UnsupportedN {
        /// The offending request.
        n: usize,
        /// Inclusive maximum for the precision in question.
        max: usize,
    },
    /// Inner dimensions disagree.
    ShapeMismatch,
    /// No supported moduli count reaches the requested accuracy target
    /// (surfaced by [`crate::facade::Ozaki2Builder`] and
    /// [`crate::nselect::choose_n_checked`]).
    AccuracyUnreachable {
        /// The requested normwise relative error.
        target: f64,
        /// The largest supported moduli count for the pipeline asked.
        best_n: usize,
        /// The predicted error at `best_n` — how close the request came.
        predicted: f64,
    },
    /// A `k`-dependent accuracy target was used without an inner
    /// dimension to resolve it against (call
    /// [`crate::facade::Ozaki2Builder::k`] or
    /// [`crate::facade::Ozaki2Builder::build_for_k`]).
    AccuracyNeedsK,
    /// Operand preparation requested for a mode that cannot prepare
    /// operands independently ([`Mode::Accurate`] scales `A` and `B`
    /// jointly, so a cached one-sided preparation cannot exist).
    PreparationUnsupported {
        /// The offending mode.
        mode: Mode,
    },
    /// Two [`crate::prepared::PreparedOperand`]s (or an operand and the
    /// executing emulator) disagree on side, inner dimension, moduli
    /// count, mode, or precision.
    PreparedMismatch {
        /// What disagreed.
        reason: &'static str,
    },
}

impl std::fmt::Display for EmulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmulationError::NonFiniteInput { side, index } => write!(
                f,
                "operand {side:?} contains NaN or infinity (storage index {index})"
            ),
            EmulationError::UnsupportedN { n, max } => {
                write!(f, "N = {n} outside supported range 2..={max}")
            }
            EmulationError::ShapeMismatch => write!(f, "inner matrix dimensions disagree"),
            EmulationError::AccuracyUnreachable {
                target,
                best_n,
                predicted,
            } => write!(
                f,
                "accuracy target {target:e} unreachable: the largest supported \
                 N = {best_n} predicts {predicted:e}"
            ),
            EmulationError::AccuracyNeedsK => write!(
                f,
                "a k-dependent accuracy target needs the inner dimension: \
                 set Ozaki2Builder::k or use build_for_k"
            ),
            EmulationError::PreparationUnsupported { mode } => write!(
                f,
                "operand preparation is only defined for Mode::Fast \
                 (Mode::{mode:?} scales A and B jointly)"
            ),
            EmulationError::PreparedMismatch { reason } => {
                write!(f, "prepared operands disagree: {reason}")
            }
        }
    }
}

impl std::error::Error for EmulationError {}

/// Wall-clock breakdown by Algorithm 1 line (Figs. 6–7).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Line 1: scale-vector determination (includes the `Ā·B̄` INT8 GEMM
    /// in accurate mode).
    pub scale: Duration,
    /// Lines 2–3: the scale+trunc portion of the fused operand sweep
    /// (transpose gather + `trunc(2^e · x)`), attributed out of the
    /// combined trunc+convert pass by per-job CPU-time share.
    pub trunc: Duration,
    /// Lines 4–5: the `rmod` + panel-packing portion of the fused operand
    /// sweep (includes what used to be the engine-side operand packing).
    pub convert: Duration,
    /// Line 6: the `N` INT8 matrix multiplications.
    pub int8_gemm: Duration,
    /// Line 7: INT32 → UINT8 modular reduction.
    pub mod_reduce: Duration,
    /// Lines 8–12: weighted accumulation, CRT fold, inverse scaling.
    pub fold: Duration,
    /// ABFT side channel (zero under [`crate::abft::FaultPolicy::Off`]):
    /// checksum-panel construction, the per-plane checksum GEMMs, the
    /// verification sweep, and any recovery re-execution.
    pub verify: Duration,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.scale
            + self.trunc
            + self.convert
            + self.int8_gemm
            + self.mod_reduce
            + self.fold
            + self.verify
    }

    /// `(label, seconds)` pairs in Algorithm-1 order.
    pub fn as_rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("scale (line 1)", self.scale.as_secs_f64()),
            ("trunc (lines 2-3)", self.trunc.as_secs_f64()),
            ("convert (lines 4-5)", self.convert.as_secs_f64()),
            ("int8 GEMM (line 6)", self.int8_gemm.as_secs_f64()),
            ("mod (line 7)", self.mod_reduce.as_secs_f64()),
            ("fold (lines 8-12)", self.fold.as_secs_f64()),
            ("verify (abft)", self.verify.as_secs_f64()),
        ]
    }
}

/// Mirror one call's phase attribution into the observability registry:
/// each nonzero phase becomes one histogram observation *and* one span
/// event with the same nanosecond value (so Chrome-trace span sums
/// reconcile exactly against the Prometheus `_sum` series). The spans are
/// laid out end-to-end from `call_start_ns` in Algorithm-1 order — a
/// synthetic sequential timeline, since `int8_gemm` and `mod_reduce`
/// physically interleave per residue plane but are *attributed*
/// separately by the executor. No-op when observability is disabled.
pub(crate) fn obs_record_phases(call_start_ns: u64, phases: &PhaseTimes) {
    if !gemm_obs::enabled() {
        return;
    }
    use gemm_obs::catalog as cat;
    let mut t = call_start_ns;
    for (hist, d) in [
        (&cat::PHASE_SCALE, phases.scale),
        (&cat::PHASE_TRUNC, phases.trunc),
        (&cat::PHASE_CONVERT, phases.convert),
        (&cat::PHASE_INT8_GEMM, phases.int8_gemm),
        (&cat::PHASE_MOD_REDUCE, phases.mod_reduce),
        (&cat::PHASE_FOLD, phases.fold),
        (&cat::PHASE_VERIFY, phases.verify),
    ] {
        let ns = d.as_nanos() as u64;
        if ns == 0 {
            continue;
        }
        gemm_obs::observe_span(hist.span_name(), "pipeline", hist, t, ns);
        t += ns;
    }
}

/// [`obs_record_phases`] plus the per-call counters (emulated GEMMs,
/// issued INT8 GEMMs, ABFT outcome) — the shared tail of every execution
/// entry point (facade and prepared/batched paths).
pub(crate) fn obs_record_report(call_start_ns: u64, report: &EmulationReport) {
    if !gemm_obs::enabled() {
        return;
    }
    use gemm_obs::catalog as cat;
    obs_record_phases(call_start_ns, &report.phases);
    cat::EMULATED_GEMMS.inc();
    cat::INT8_GEMM_CALLS.add(report.int8_gemm_calls as u64);
    cat::BACKEND_SELECTED.inc_value(report.backend.as_str());
    if let Some(f) = &report.fault {
        cat::ABFT_DETECTIONS.add(f.detected as u64);
        cat::ABFT_RETRIES.add(f.retries as u64);
        cat::ABFT_SCALAR_FALLBACKS.add(f.scalar_fallbacks as u64);
        cat::ABFT_UNRECOVERED.add(f.unrecovered as u64);
    }
}

/// Metadata returned by the `*_with_report` entry points.
#[derive(Clone, Debug)]
pub struct EmulationReport {
    /// Problem shape `(m, n, k)`.
    pub shape: (usize, usize, usize),
    /// Number of moduli used.
    pub n_moduli: usize,
    /// Scaling mode.
    pub mode: Mode,
    /// The residue backend that executed the plane GEMMs — the emulator's
    /// configured backend unless `OZAKI_FORCE_BACKEND` swapped the engine
    /// (the moduli pool always stays the configured backend's, which is
    /// why forced runs remain bit-identical).
    pub backend: BackendKind,
    /// A-priori normwise relative error bound for this `(backend pool, N,
    /// k)` point ([`crate::nselect::predicted_error_for`]) — what the
    /// low-moduli fast-inference mode reports alongside its throughput.
    pub predicted_error: f64,
    /// Phase breakdown.
    pub phases: PhaseTimes,
    /// INT8 GEMMs issued (N per k-block, +1 in accurate mode). ABFT
    /// checksum GEMMs and recovery re-runs are *not* counted here — they
    /// land in [`FaultReport::checksum_gemms`] / [`FaultReport::retries`]
    /// so this count stays deterministic under fault injection.
    pub int8_gemm_calls: usize,
    /// ABFT outcome: `Some` whenever the run executed under an active
    /// [`FaultPolicy`] (even if no fault was detected), `None` under
    /// [`FaultPolicy::Off`].
    pub fault: Option<FaultReport>,
}

/// Reusable scratch for the whole Algorithm-1 pipeline: the packed residue
/// panels the fused trunc+convert phase emits, the UINT8 residue planes,
/// the INT32 product plane, and the block-residue accumulator.
///
/// A single emulated GEMM needs ~`(5N + 4)·mn` bytes of scratch for a
/// square product (`4N·mk` packed i16 panels, `N·mn` residue planes,
/// `4·mn` INT32; `k > 2^17` adds a `4·mn` block-residue accumulator); the
/// integer matrices `A'`, `B'` of the unfused pipeline no longer exist —
/// the truncation happens inside the convert sweep's cache-resident
/// staging tiles. The workspace grows to the high-water mark of the shapes
/// it has seen and is then reused, so iterative consumers (LU panel
/// updates, purification sweeps, the `N` residue-panel sets of every call)
/// allocate nothing per call.
///
/// The residue panels are stored directly in the INT8 engine's packed i16
/// layout, so the GEMMs run over them with zero repacking
/// ([`gemm_engine::int8_gemm_prepacked_fused`]).
#[derive(Default)]
pub struct Workspace {
    a16: Vec<i16>,
    b16: Vec<i16>,
    u: Vec<u8>,
    c32: Vec<i32>,
    racc: Vec<i32>,
    /// f64 fold staging for outputs the fold cannot write directly: f32
    /// results (narrowed afterwards) and strided or `alpha`/`beta`
    /// epilogue outputs of the view facade.
    cstage: Vec<f64>,
    /// ABFT checksum vectors for `A` (`N` planes of `kp` i16 each; empty
    /// unless a fault policy is active).
    chk_a16: Vec<i16>,
    /// ABFT checksum vectors for `B` (`N` planes of `kp` i16 each).
    chk_b16: Vec<i16>,
    /// ABFT checksum references: per plane, `m` row-sum residues followed
    /// by `n` column-sum residues.
    uchk: Vec<u8>,
    /// i32 accumulator for checksum-vector construction (`kp` entries,
    /// re-reduced mod `p` between chunks so it never overflows).
    chk_sum: Vec<i32>,
    /// Row-sum scratch for the verification sweep (`m` u32).
    vsum: Vec<u32>,
}

/// Mutable borrows of every [`Workspace`] buffer at once, for the
/// execution paths that juggle several of them simultaneously (the view
/// facade, the mixed raw/prepared path, and the ABFT executor). The
/// `chk_*` / `uchk` / `vsum` fields are empty unless
/// [`Workspace::reserve_abft`] ran.
pub(crate) struct WsBuffers<'w> {
    pub a16: &'w mut [i16],
    pub b16: &'w mut [i16],
    pub u: &'w mut [u8],
    pub c32: &'w mut [i32],
    pub racc: &'w mut [i32],
    pub cstage: &'w mut [f64],
    pub chk_a16: &'w mut [i16],
    pub chk_b16: &'w mut [i16],
    pub uchk: &'w mut [u8],
    pub chk_sum: &'w mut [i32],
    pub vsum: &'w mut [u32],
}

impl Workspace {
    /// Fresh, empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current scratch footprint in bytes (excluding `Vec` headers).
    pub fn bytes(&self) -> usize {
        self.a16.capacity() * 2
            + self.b16.capacity() * 2
            + self.u.capacity()
            + self.c32.capacity() * 4
            + self.racc.capacity() * 4
            + self.cstage.capacity() * 8
            + self.chk_a16.capacity() * 2
            + self.chk_b16.capacity() * 2
            + self.uchk.capacity()
            + self.chk_sum.capacity() * 4
            + self.vsum.capacity() * 4
    }

    /// Zero every buffer in place (capacity kept). The batch runtime's
    /// `WorkspacePool` checkout guards call this when a
    /// workspace is returned by a panicking tenant, so partially written
    /// scratch never leaks into the next checkout. (Correctness never
    /// depends on zeroed scratch — every path fully overwrites what it
    /// reads — so this is hygiene, not a functional reset.)
    pub fn scrub(&mut self) {
        self.a16.fill(0);
        self.b16.fill(0);
        self.u.fill(0);
        self.c32.fill(0);
        self.racc.fill(0);
        self.cstage.fill(0.0);
        self.chk_a16.fill(0);
        self.chk_b16.fill(0);
        self.uchk.fill(0);
        self.chk_sum.fill(0);
        self.vsum.fill(0);
    }

    /// Grow-only resize of the fold staging buffer (f32 / epilogue
    /// outputs only; the plain f64 path folds straight into the output).
    pub(crate) fn reserve_stage(&mut self, len: usize) {
        if self.cstage.len() < len {
            self.cstage.resize(len, 0.0);
        }
    }

    /// Grow-only resize of every pipeline buffer for an `m x k · k x n`
    /// product with `nmod` residue-panel sets.
    pub(crate) fn reserve(&mut self, m: usize, n: usize, k: usize, nmod: usize) {
        self.reserve_a(m, k, nmod);
        self.reserve_b(n, k, nmod);
        self.reserve_exec(m, n, k, nmod);
    }

    /// Grow-only resize of the A-side packed panel buffer.
    pub(crate) fn reserve_a(&mut self, m: usize, k: usize, nmod: usize) {
        let want = nmod * padded_a_rows(m) * padded_depth(k);
        if self.a16.len() < want {
            self.a16.resize(want, 0);
        }
    }

    /// Grow-only resize of the B-side packed panel buffer.
    pub(crate) fn reserve_b(&mut self, n: usize, k: usize, nmod: usize) {
        let want = nmod * padded_b_cols(n) * padded_depth(k);
        if self.b16.len() < want {
            self.b16.resize(want, 0);
        }
    }

    /// Grow-only resize of the execute-half buffers only (residue planes,
    /// INT32 product, block accumulator) — what a run over *prepared*
    /// operand panels needs, since the packed `a16`/`b16` live inside the
    /// [`crate::prepared::PreparedOperand`]s instead of the workspace.
    pub(crate) fn reserve_exec(&mut self, m: usize, n: usize, k: usize, nmod: usize) {
        if self.u.len() < nmod * m * n {
            self.u.resize(nmod * m * n, 0);
        }
        if self.c32.len() < m * n {
            self.c32.resize(m * n, 0);
        }
        if k > K_BLOCK_MAX && self.racc.len() < m * n {
            self.racc.resize(m * n, 0);
        }
    }

    /// Grow-only resize of the ABFT side-channel buffers (checksum vectors,
    /// checksum references, verification scratch). Only called when a
    /// fault policy is active — [`crate::abft::FaultPolicy::Off`] packs no
    /// checksum columns and allocates nothing here.
    pub(crate) fn reserve_abft(&mut self, m: usize, n: usize, k: usize, nmod: usize) {
        let kp = padded_depth(k);
        let want = nmod * kp;
        if self.chk_a16.len() < want {
            self.chk_a16.resize(want, 0);
        }
        if self.chk_b16.len() < want {
            self.chk_b16.resize(want, 0);
        }
        if self.uchk.len() < nmod * (m + n) {
            self.uchk.resize(nmod * (m + n), 0);
        }
        if self.chk_sum.len() < kp {
            self.chk_sum.resize(kp, 0);
        }
        if self.vsum.len() < m {
            self.vsum.resize(m, 0);
        }
    }

    /// Every buffer at once, for the execution paths that need several
    /// simultaneously (view facade, mixed raw/prepared path, ABFT
    /// executor). Call the `reserve_*` methods for the buffers in use
    /// first.
    pub(crate) fn buffers(&mut self) -> WsBuffers<'_> {
        WsBuffers {
            a16: &mut self.a16,
            b16: &mut self.b16,
            u: &mut self.u,
            c32: &mut self.c32,
            racc: &mut self.racc,
            cstage: &mut self.cstage,
            chk_a16: &mut self.chk_a16,
            chk_b16: &mut self.chk_b16,
            uchk: &mut self.uchk,
            chk_sum: &mut self.chk_sum,
            vsum: &mut self.vsum,
        }
    }
}

/// The Ozaki Scheme II emulator.
#[derive(Clone, Copy, Debug)]
pub struct Ozaki2 {
    n_moduli: usize,
    mode: Mode,
    fault: FaultPolicy,
    backend: BackendKind,
}

impl Ozaki2 {
    /// Create an emulator with `n ∈ 2..=`[`N_MAX`] moduli on the default
    /// INT8 backend. The fault policy defaults to `OZAKI_FAULT_POLICY`
    /// from the environment ([`FaultPolicy::Off`] when unset); see
    /// [`Ozaki2::with_fault_policy`]. To run on another residue backend
    /// (and its moduli pool), see [`Ozaki2::with_backend`].
    pub fn new(n_moduli: usize, mode: Mode) -> Self {
        assert!(
            (2..=N_MAX).contains(&n_moduli),
            "N must be in 2..={N_MAX}, got {n_moduli}"
        );
        Self {
            n_moduli,
            mode,
            fault: FaultPolicy::default_from_env(),
            backend: BackendKind::Int8,
        }
    }

    /// Number of moduli.
    pub fn n_moduli(&self) -> usize {
        self.n_moduli
    }

    /// Scaling mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configured residue backend. It selects both the moduli pool
    /// the accuracy semantics come from and the preferred execution
    /// engine; `OZAKI_FORCE_BACKEND` can swap the engine at dispatch time
    /// without touching the pool (see [`gemm_engine::forced_backend`]).
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Switch the emulator to another residue backend (builder style).
    /// The moduli count must fit the new backend's pool — the bf16-FMA
    /// pool supports `N ∈ 2..=16`.
    ///
    /// # Examples
    /// ```
    /// use gemm_engine::BackendKind;
    /// use ozaki2::{Mode, Ozaki2};
    /// let emu = Ozaki2::new(12, Mode::Fast).with_backend(BackendKind::FmaBf16);
    /// assert_eq!(emu.backend(), BackendKind::FmaBf16);
    /// ```
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        let max = backend_n_max(backend, false);
        assert!(
            self.n_moduli <= max,
            "N must be in 2..={max} for the {backend} pool, got {}",
            self.n_moduli
        );
        self.backend = backend;
        self
    }

    /// The ABFT fault policy every GEMM entry of this emulator runs under
    /// (overridable per call via `GemmArgs::fault_policy`).
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault
    }

    /// Replace the ABFT fault policy (builder style).
    ///
    /// # Examples
    /// ```
    /// use ozaki2::{FaultPolicy, Mode, Ozaki2};
    /// let emu = Ozaki2::new(15, Mode::Fast)
    ///     .with_fault_policy(FaultPolicy::RetryThenScalar { max_retries: 2 });
    /// assert!(emu.fault_policy().is_active());
    /// ```
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault = policy;
        self
    }

    /// Emulated DGEMM: `C ≈ A·B` for f64 operands.
    ///
    /// # Panics
    /// On shape mismatch or non-finite input (use [`Ozaki2::try_dgemm`]
    /// for a checked version).
    ///
    /// # Examples
    /// ```
    /// use ozaki2::{Mode, Ozaki2};
    /// use gemm_dense::workload::phi_matrix_f64;
    /// use gemm_dense::gemm::gemm_f64_naive;
    /// use gemm_dense::norms::max_relative_error;
    ///
    /// let a = phi_matrix_f64(48, 64, 0.5, 7, 0);
    /// let b = phi_matrix_f64(64, 48, 0.5, 7, 1);
    /// // N = 15 moduli reach ~double-precision accuracy (§5.1).
    /// let c = Ozaki2::new(15, Mode::Fast).dgemm(&a, &b);
    /// let exact = gemm_f64_naive(&a, &b);
    /// assert!(max_relative_error(&c, &exact) < 1e-10);
    /// ```
    pub fn dgemm(&self, a: &MatF64, b: &MatF64) -> MatF64 {
        self.try_dgemm(a, b)
            .unwrap_or_else(|e| panic!("dgemm: {e}"))
    }

    /// Checked emulated DGEMM.
    pub fn try_dgemm(&self, a: &MatF64, b: &MatF64) -> Result<MatF64, EmulationError> {
        self.try_dgemm_with_report(a, b).map(|(c, _)| c)
    }

    /// Emulated DGEMM returning the phase breakdown.
    pub fn dgemm_with_report(&self, a: &MatF64, b: &MatF64) -> (MatF64, EmulationReport) {
        self.try_dgemm_with_report(a, b)
            .unwrap_or_else(|e| panic!("dgemm: {e}"))
    }

    /// Checked emulated DGEMM with report.
    pub fn try_dgemm_with_report(
        &self,
        a: &MatF64,
        b: &MatF64,
    ) -> Result<(MatF64, EmulationReport), EmulationError> {
        self.try_dgemm_with_report_ws(a, b, &mut Workspace::new())
    }

    /// Emulated DGEMM reusing a caller-owned [`Workspace`]: steady-state
    /// repeated calls allocate nothing but the output matrix.
    ///
    /// # Panics
    /// On shape mismatch or non-finite input.
    pub fn dgemm_ws(&self, a: &MatF64, b: &MatF64, ws: &mut Workspace) -> MatF64 {
        self.try_dgemm_with_report_ws(a, b, ws)
            .map(|(c, _)| c)
            .unwrap_or_else(|e| panic!("dgemm: {e}"))
    }

    /// Checked emulated DGEMM with report, reusing a caller-owned
    /// [`Workspace`].
    pub fn try_dgemm_with_report_ws(
        &self,
        a: &MatF64,
        b: &MatF64,
        ws: &mut Workspace,
    ) -> Result<(MatF64, EmulationReport), EmulationError> {
        validate_f64(a, OperandSide::A)?;
        validate_f64(b, OperandSide::B)?;
        if a.cols() != b.rows() {
            return Err(EmulationError::ShapeMismatch);
        }
        Ok(emulate(
            a,
            b,
            self.n_moduli,
            self.mode,
            self.backend,
            self.fault,
            ws,
        ))
    }

    /// Emulated DGEMM writing into a caller-owned output matrix, reusing a
    /// caller-owned [`Workspace`]: the fully allocation-free steady state.
    /// `c` must already have shape `(a.rows(), b.cols())`; it is fully
    /// overwritten. Bit-identical to [`Ozaki2::dgemm`].
    ///
    /// # Panics
    /// On shape mismatch (including `c`) or non-finite input.
    pub fn dgemm_into_ws(&self, a: &MatF64, b: &MatF64, c: &mut MatF64, ws: &mut Workspace) {
        self.try_dgemm_into_ws(a, b, c, ws)
            .unwrap_or_else(|e| panic!("dgemm: {e}"));
    }

    /// Checked form of [`Ozaki2::dgemm_into_ws`], returning the phase
    /// report. The per-call output allocation of `dgemm` disappears: over
    /// repeated same-shape calls neither the workspace nor the output
    /// allocate.
    pub fn try_dgemm_into_ws(
        &self,
        a: &MatF64,
        b: &MatF64,
        c: &mut MatF64,
        ws: &mut Workspace,
    ) -> Result<EmulationReport, EmulationError> {
        validate_f64(a, OperandSide::A)?;
        validate_f64(b, OperandSide::B)?;
        if a.cols() != b.rows() || c.shape() != (a.rows(), b.cols()) {
            return Err(EmulationError::ShapeMismatch);
        }
        Ok(emulate_into(
            a,
            b,
            self.n_moduli,
            self.mode,
            self.backend,
            self.fault,
            ws,
            true,
            c.as_mut_slice(),
        ))
    }

    /// Emulated SGEMM: `C ≈ A·B` for f32 operands.
    ///
    /// # Panics
    /// On shape mismatch, non-finite input, or `N > 18` (the `b = 32`
    /// conversion kernel's validated range).
    pub fn sgemm(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        self.try_sgemm(a, b)
            .unwrap_or_else(|e| panic!("sgemm: {e}"))
    }

    /// Checked emulated SGEMM.
    pub fn try_sgemm(&self, a: &MatF32, b: &MatF32) -> Result<MatF32, EmulationError> {
        self.try_sgemm_with_report(a, b).map(|(c, _)| c)
    }

    /// Emulated SGEMM returning the phase breakdown.
    pub fn sgemm_with_report(&self, a: &MatF32, b: &MatF32) -> (MatF32, EmulationReport) {
        self.try_sgemm_with_report(a, b)
            .unwrap_or_else(|e| panic!("sgemm: {e}"))
    }

    /// Checked emulated SGEMM with report.
    pub fn try_sgemm_with_report(
        &self,
        a: &MatF32,
        b: &MatF32,
    ) -> Result<(MatF32, EmulationReport), EmulationError> {
        self.try_sgemm_with_report_ws(a, b, &mut Workspace::new())
    }

    /// Emulated SGEMM reusing a caller-owned [`Workspace`].
    ///
    /// # Panics
    /// On shape mismatch, non-finite input, or `N > 18`.
    pub fn sgemm_ws(&self, a: &MatF32, b: &MatF32, ws: &mut Workspace) -> MatF32 {
        self.try_sgemm_with_report_ws(a, b, ws)
            .map(|(c, _)| c)
            .unwrap_or_else(|e| panic!("sgemm: {e}"))
    }

    /// Checked emulated SGEMM with report, reusing a caller-owned
    /// [`Workspace`].
    pub fn try_sgemm_with_report_ws(
        &self,
        a: &MatF32,
        b: &MatF32,
        ws: &mut Workspace,
    ) -> Result<(MatF32, EmulationReport), EmulationError> {
        let max = backend_n_max(self.backend, true);
        if self.n_moduli > max {
            return Err(EmulationError::UnsupportedN {
                n: self.n_moduli,
                max,
            });
        }
        validate_f32(a, OperandSide::A)?;
        validate_f32(b, OperandSide::B)?;
        if a.cols() != b.rows() {
            return Err(EmulationError::ShapeMismatch);
        }
        // The generic view body widens f32 lanes exactly inside the fused
        // sweep's staging tiles (the power-of-two scales and truncation
        // commute with exact widening), so no widened operand copy exists
        // and the result matches the historical widen-first path bitwise.
        let mut out = Matrix::<f32>::zeros(a.rows(), b.cols());
        let report = crate::facade::emulate_view_into(
            a.view(),
            b.view(),
            self.n_moduli,
            self.mode,
            self.backend,
            ws,
            true,
            1.0f32,
            0.0f32,
            out.view_mut(),
            false,
            false,
            self.fault,
        )?;
        Ok((out, report))
    }
}

impl MatMulF64 for Ozaki2 {
    fn matmul_f64(&self, a: &MatF64, b: &MatF64) -> MatF64 {
        self.dgemm(a, b)
    }
    fn name(&self) -> String {
        format!("OS II-{}-{}", self.mode.label(), self.n_moduli)
    }
}

impl MatMulF32 for Ozaki2 {
    fn matmul_f32(&self, a: &MatF32, b: &MatF32) -> MatF32 {
        self.sgemm(a, b)
    }
    fn name(&self) -> String {
        format!("OS II-{}-{}", self.mode.label(), self.n_moduli)
    }
}

fn validate_f64(a: &MatF64, side: OperandSide) -> Result<(), EmulationError> {
    match a.iter().position(|x| !x.is_finite()) {
        None => Ok(()),
        Some(index) => Err(EmulationError::NonFiniteInput { side, index }),
    }
}

fn validate_f32(a: &MatF32, side: OperandSide) -> Result<(), EmulationError> {
    match a.iter().position(|x| !x.is_finite()) {
        None => Ok(()),
        Some(index) => Err(EmulationError::NonFiniteInput { side, index }),
    }
}

/// The shared f64 Algorithm-1 body: a thin delegate of the canonical
/// view-based body ([`crate::facade::emulate_view_into`]) over contiguous
/// column-major views. All scratch comes from `ws` (grow-only, reused
/// across calls). Inputs must be pre-validated (finite, shapes agree).
#[allow(clippy::too_many_arguments)]
pub(crate) fn emulate(
    a: &MatF64,
    b: &MatF64,
    n_moduli: usize,
    mode: Mode,
    backend: BackendKind,
    fault: FaultPolicy,
    ws: &mut Workspace,
) -> (MatF64, EmulationReport) {
    let mut out = Matrix::<f64>::zeros(a.rows(), b.cols());
    let report = emulate_into(
        a,
        b,
        n_moduli,
        mode,
        backend,
        fault,
        ws,
        true,
        out.as_mut_slice(),
    );
    (out, report)
}

/// [`emulate`] writing into a caller-owned column-major `m x n` output
/// slice (fully overwritten) — the allocation-free form the batched
/// runtime and [`crate::plan::GemmPlan::execute_into`] run. `parallel`
/// gates every internal rayon region (convert sweep, engine stripes): the
/// inter-GEMM scheduler sets it to `false` so concurrent items do not
/// nest parallel regions. The result is bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emulate_into(
    a: &MatF64,
    b: &MatF64,
    n_moduli: usize,
    mode: Mode,
    backend: BackendKind,
    fault: FaultPolicy,
    ws: &mut Workspace,
    parallel: bool,
    out: &mut [f64],
) -> EmulationReport {
    let (m, k) = a.shape();
    let n = b.cols();
    assert_eq!(out.len(), m * n, "output buffer mismatch");
    debug_assert_eq!(k, b.rows());
    crate::facade::emulate_view_into(
        a.view(),
        b.view(),
        n_moduli,
        mode,
        backend,
        ws,
        parallel,
        1.0f64,
        0.0f64,
        gemm_dense::MatViewMut::col_major(out, m, n),
        false,
        false,
        fault,
    )
    .expect("inputs validated by the caller")
}

/// Algorithm 1 lines 6–12 over already-packed residue panels: the `N`
/// residue-plane GEMMs with fused modular reduction on `engine`, the
/// block-residue finalization for `k` past the pool's block limit, and the
/// CRT fold with inverse scaling. This is the shared back half of
/// [`emulate_into`] and the prepared-operand execution path
/// ([`crate::prepared`]) — both run the very same code, which is what makes
/// batched results bit-identical to per-call [`Ozaki2::dgemm`].
///
/// `a16` / `b16` hold `N` panel sets of `m_pad * kp` / `n_pad * kp` i16
/// each; `u`, `c32`, `racc` are the workspace planes (`racc` only consumed
/// past the block limit). Returns the number of engine GEMMs issued.
/// Every backend computes the same exact integers over the same stripe
/// decomposition and the same pool-derived k-blocking, so the result is
/// bit-identical for every `engine`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_panels(
    m: usize,
    n: usize,
    k: usize,
    consts: &Constants,
    b64: bool,
    engine: &dyn ResidueBackend,
    a16: &[i16],
    b16: &[i16],
    exps_a: &[i32],
    exps_b: &[i32],
    u: &mut [u8],
    c32: &mut [i32],
    racc: &mut [i32],
    parallel: bool,
    out: &mut [f64],
    phases: &mut PhaseTimes,
) -> usize {
    let nmod = consts.n;
    let plane = m * n;
    let kp = padded_depth(k);
    let m_pad = padded_a_rows(m);
    let n_pad = padded_b_cols(n);
    // Pool-derived (`p_max`, the largest modulus): every backend splits
    // at the same depth, which the bit-identity across engines rests on.
    let k_block = engine.k_block_max(consts.p[0]);
    let mut gemm_calls = 0usize;

    // ---- Lines 6–7: residue GEMMs with fused modular reduction ----------
    // The mod-p reduction runs inside the GEMM call, on cache-resident `C`
    // stripes (see `gemm_engine::Epilogue`); the slowest worker's epilogue
    // time lands in `mod_nanos` so the phase split survives the fusion.
    let u = &mut u[..nmod * plane];
    let c32 = &mut c32[..plane];
    let mod_nanos = AtomicU64::new(0);
    if k <= k_block {
        for s in 0..nmod {
            let t0 = Instant::now();
            engine.gemm_reduce(
                m,
                n,
                k,
                &a16[s * m_pad * kp..(s + 1) * m_pad * kp],
                &b16[s * n_pad * kp..(s + 1) * n_pad * kp],
                kp,
                0,
                c32,
                &mut u[s * plane..(s + 1) * plane],
                consts.p[s],
                consts.p_inv_u32[s],
                Some(&mod_nanos),
                parallel,
            );
            gemm_calls += 1;
            let total = t0.elapsed();
            let modd = Duration::from_nanos(mod_nanos.swap(0, Ordering::Relaxed));
            phases.mod_reduce += modd;
            phases.int8_gemm += total.saturating_sub(modd);
        }
    } else {
        // k-blocking: reduce each block's products mod p, accumulate the
        // residues in i32, reduce once more at the end. Every block is a
        // PK-aligned depth window of the same packed panels — no repacking,
        // no copies.
        let racc = &mut racc[..plane];
        for s in 0..nmod {
            racc.fill(0);
            let a_panels = &a16[s * m_pad * kp..(s + 1) * m_pad * kp];
            let b_panels = &b16[s * n_pad * kp..(s + 1) * n_pad * kp];
            let mut h0 = 0usize;
            while h0 < k {
                let kb = k_block.min(k - h0);
                let t0 = Instant::now();
                engine.gemm_accumulate(
                    m,
                    n,
                    kb,
                    a_panels,
                    b_panels,
                    kp,
                    h0,
                    c32,
                    racc,
                    consts.p[s],
                    consts.p_inv_u32[s],
                    Some(&mod_nanos),
                    parallel,
                );
                gemm_calls += 1;
                let total = t0.elapsed();
                let modd = Duration::from_nanos(mod_nanos.swap(0, Ordering::Relaxed));
                phases.mod_reduce += modd;
                phases.int8_gemm += total.saturating_sub(modd);
                h0 += kb;
            }
            let t0 = Instant::now();
            finalize_block_residues(
                racc,
                consts.p[s],
                consts.p_inv_u32[s],
                &mut u[s * plane..(s + 1) * plane],
            );
            phases.mod_reduce += t0.elapsed();
        }
    }

    // ---- Lines 8–12: fold ------------------------------------------------
    // fold_planes' internal column parallelism nests safely inside an
    // inter-GEMM worker (nested regions run sequentially on the worker),
    // and its output is bit-identical for every split.
    let t0 = Instant::now();
    let precision = if b64 {
        FoldPrecision::Double
    } else {
        FoldPrecision::Single
    };
    fold_planes(u, m, n, consts, precision, exps_a, exps_b, out);
    phases.fold = t0.elapsed();
    gemm_calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::gemm::gemm_f64_naive;
    use gemm_dense::norms::max_relative_error;
    use gemm_dense::workload::{phi_matrix_f64, uniform_matrix_f64};

    #[test]
    fn dgemm_small_uniform_high_accuracy() {
        let a = uniform_matrix_f64(24, 32, 7, 0);
        let b = uniform_matrix_f64(32, 16, 7, 1);
        let exact = gemm_f64_naive(&a, &b);
        for n in [8usize, 12, 15] {
            let c = Ozaki2::new(n, Mode::Fast).dgemm(&a, &b);
            let err = max_relative_error(&c, &exact);
            // k = 32 keeps even N = 8 well above DGEMM accuracy here.
            let budget = match n {
                8 => 1e-4,
                12 => 1e-9,
                _ => 1e-13,
            };
            assert!(err < budget, "N={n} err={err:e}");
        }
    }

    #[test]
    fn accuracy_improves_with_n() {
        let a = phi_matrix_f64(16, 48, 0.5, 3, 0);
        let b = phi_matrix_f64(48, 16, 0.5, 3, 1);
        let exact = gemm_f64_naive(&a, &b);
        let mut last = f64::INFINITY;
        for n in [4usize, 8, 12, 15] {
            let c = Ozaki2::new(n, Mode::Fast).dgemm(&a, &b);
            let err = max_relative_error(&c, &exact).max(1e-18);
            assert!(
                err < last * 2.0,
                "error should not regress: N={n} err={err:e} last={last:e}"
            );
            last = err;
        }
        assert!(
            last < 1e-12,
            "N=15 should be near double precision: {last:e}"
        );
    }

    #[test]
    fn accurate_mode_at_least_as_good_on_wide_phi() {
        let a = phi_matrix_f64(16, 32, 3.0, 11, 0);
        let b = phi_matrix_f64(32, 16, 3.0, 11, 1);
        let exact = gemm_f64_naive(&a, &b);
        let ef = max_relative_error(&Ozaki2::new(12, Mode::Fast).dgemm(&a, &b), &exact);
        let ea = max_relative_error(&Ozaki2::new(12, Mode::Accurate).dgemm(&a, &b), &exact);
        assert!(
            ea <= ef * 1.5,
            "accurate mode should not be worse: fast={ef:e} accu={ea:e}"
        );
    }

    #[test]
    fn sgemm_reaches_single_precision() {
        let a = gemm_dense::workload::phi_matrix_f32(24, 32, 0.5, 5, 0);
        let b = gemm_dense::workload::phi_matrix_f32(32, 24, 0.5, 5, 1);
        let a64 = a.map(|x| x as f64);
        let b64 = b.map(|x| x as f64);
        let exact = gemm_f64_naive(&a64, &b64);
        let c = Ozaki2::new(8, Mode::Fast).sgemm(&a, &b);
        let err = max_relative_error(&c.map(|x| x as f64), &exact);
        assert!(err < 1e-6, "err={err:e}");
    }

    #[test]
    fn rejects_nan() {
        let mut a = uniform_matrix_f64(4, 4, 1, 0);
        a[(1, 2)] = f64::NAN;
        let b = uniform_matrix_f64(4, 4, 1, 1);
        assert_eq!(
            Ozaki2::new(8, Mode::Fast).try_dgemm(&a, &b),
            Err(EmulationError::NonFiniteInput {
                side: OperandSide::A,
                index: 9, // col-major storage offset of (1, 2) with m = 4
            })
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = uniform_matrix_f64(4, 5, 1, 0);
        let b = uniform_matrix_f64(4, 4, 1, 1);
        assert_eq!(
            Ozaki2::new(8, Mode::Fast).try_dgemm(&a, &b),
            Err(EmulationError::ShapeMismatch)
        );
    }

    #[test]
    fn sgemm_caps_n_at_18() {
        let a = gemm_dense::workload::phi_matrix_f32(4, 4, 0.5, 1, 0);
        let b = gemm_dense::workload::phi_matrix_f32(4, 4, 0.5, 1, 1);
        let r = Ozaki2::new(20, Mode::Fast).try_sgemm(&a, &b);
        assert_eq!(
            r.unwrap_err(),
            EmulationError::UnsupportedN { n: 20, max: 18 }
        );
    }

    #[test]
    fn report_counts_int8_gemms() {
        let a = uniform_matrix_f64(8, 8, 2, 0);
        let b = uniform_matrix_f64(8, 8, 2, 1);
        let (_, rep) = Ozaki2::new(9, Mode::Fast).dgemm_with_report(&a, &b);
        assert_eq!(rep.int8_gemm_calls, 9);
        let (_, rep) = Ozaki2::new(9, Mode::Accurate).dgemm_with_report(&a, &b);
        assert_eq!(rep.int8_gemm_calls, 10); // +1 estimation GEMM
        assert_eq!(rep.shape, (8, 8, 8));
    }

    #[test]
    fn new_assert_message_tracks_n_max() {
        // The message derives its range from N_MAX, so it can't drift from
        // the constant if the supported range ever widens.
        let err = std::panic::catch_unwind(|| Ozaki2::new(N_MAX + 1, Mode::Fast)).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("assert! with format args panics with String");
        assert!(msg.contains(&format!("2..={N_MAX}")), "{msg}");
    }

    #[test]
    fn empty_inputs() {
        let a = MatF64::zeros(0, 4);
        let b = MatF64::zeros(4, 3);
        let c = Ozaki2::new(4, Mode::Fast).dgemm(&a, &b);
        assert_eq!(c.shape(), (0, 3));
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(
            MatMulF64::name(&Ozaki2::new(14, Mode::Fast)),
            "OS II-fast-14"
        );
        assert_eq!(
            MatMulF64::name(&Ozaki2::new(8, Mode::Accurate)),
            "OS II-accu-8"
        );
    }

    #[test]
    fn workspace_path_bit_identical_and_alloc_free() {
        let a = phi_matrix_f64(24, 40, 0.8, 5, 0);
        let b = phi_matrix_f64(40, 18, 0.8, 5, 1);
        let emu = Ozaki2::new(11, Mode::Fast);
        let baseline = emu.dgemm(&a, &b);
        let mut ws = Workspace::new();
        assert_eq!(emu.dgemm_ws(&a, &b, &mut ws), baseline);
        let steady = ws.bytes();
        assert!(steady > 0);
        for _ in 0..3 {
            assert_eq!(emu.dgemm_ws(&a, &b, &mut ws), baseline);
            assert_eq!(ws.bytes(), steady, "steady state must not allocate");
        }
        // A smaller problem reuses the same buffers.
        let a2 = phi_matrix_f64(8, 16, 0.8, 6, 0);
        let b2 = phi_matrix_f64(16, 8, 0.8, 6, 1);
        assert_eq!(emu.dgemm_ws(&a2, &b2, &mut ws), emu.dgemm(&a2, &b2));
        assert_eq!(ws.bytes(), steady);
    }

    #[test]
    fn k_blocked_path_matches_direct_reference() {
        // k just over the block limit exercises the PK-aligned depth-window
        // path over the prepacked panels; compare against an independently
        // computed exact result on tiny m, n (integer inputs make the
        // reference exact).
        let k = K_BLOCK_MAX + 129;
        let (m, n) = (2usize, 2);
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 60) as i64 % 3 - 1) as f64
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let got = Ozaki2::new(10, Mode::Fast).dgemm(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for h in 0..k {
                    acc += (a[(i, h)] as i64) * (b[(h, j)] as i64);
                }
                assert_eq!(got[(i, j)], acc as f64, "({i},{j})");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = phi_matrix_f64(16, 16, 1.0, 9, 0);
        let b = phi_matrix_f64(16, 16, 1.0, 9, 1);
        let c1 = Ozaki2::new(10, Mode::Fast).dgemm(&a, &b);
        let c2 = Ozaki2::new(10, Mode::Fast).dgemm(&a, &b);
        assert_eq!(c1, c2);
    }
}
