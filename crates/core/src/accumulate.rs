//! Lines 8–12 of Algorithm 1: the weighted accumulation of the UINT8
//! residue planes and the CRT fold back into the integer product (§4.3).
//!
//! `C'⁽¹⁾ = Σ s_i1 U_i` is **exact** in f64: every `s_i1` is an integer
//! multiple of one common power of two (the β_i construction) and carries
//! at most `53 - 8 - ⌈log2 N⌉` significant bits, so each product with a
//! UINT8 value and the whole N-term sum stay inside 53 bits of that common
//! ulp. `C'⁽²⁾` mops up the discarded low bits of the weights. The fold
//!
//! ```text
//! Q   = round(P_inv · C'⁽¹⁾)
//! C'' = fma(-P2, Q, fma(-P1, Q, C'⁽¹⁾) + C'⁽²⁾)
//! ```
//!
//! subtracts the unique multiple of `P` (double-double `P1 + P2`), leaving
//! `C'' ≈ rmod(A'B', P) = A'B'` by the uniqueness condition (3). The
//! inverse diagonal scaling (line 12, exact: powers of two) is fused into
//! the same pass.

use crate::consts::Constants;
use crate::scale::scale_by_pow2;
use rayon::prelude::*;

/// Which weight split drives the accumulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldPrecision {
    /// DGEMM: `s1 + s2` weight split, `P` as a double-double.
    Double,
    /// SGEMM: single f64 weights, `s2 = 0`, `P2 = 0`.
    Single,
}

/// Fold all residue planes into the final matrix.
///
/// * `u` — `N` UINT8 planes, plane-major, each `m*n` column-major;
/// * `exps_a` / `exps_b` — the scale exponents (`μ_i = 2^{e}`), negated here;
/// * `out` — `m*n` column-major f64.
#[allow(clippy::too_many_arguments)]
pub fn fold_planes(
    u: &[u8],
    m: usize,
    n: usize,
    consts: &Constants,
    precision: FoldPrecision,
    exps_a: &[i32],
    exps_b: &[i32],
    out: &mut [f64],
) {
    let plane = m * n;
    let nmod = consts.n;
    assert_eq!(u.len(), nmod * plane, "plane buffer mismatch");
    assert_eq!(out.len(), plane, "output buffer mismatch");
    assert_eq!(exps_a.len(), m);
    assert_eq!(exps_b.len(), n);
    if plane == 0 {
        return;
    }
    let (s1, s2): (&[f64], Option<&[f64]>) = match precision {
        FoldPrecision::Double => (&consts.s1, Some(&consts.s2)),
        FoldPrecision::Single => (&consts.s1_single, None),
    };
    let (p1, p2, p_inv) = (consts.p1, consts.p2, consts.p_inv);

    out.par_chunks_mut(m).enumerate().for_each(|(j, out_col)| {
        let col_off = j * m;
        let neg_eb = -exps_b[j];
        for (i, o) in out_col.iter_mut().enumerate() {
            let idx = col_off + i;
            let mut c1 = 0.0f64;
            let mut c2 = 0.0f64;
            match s2 {
                Some(s2v) => {
                    for s in 0..nmod {
                        let us = u[s * plane + idx] as f64;
                        c1 += s1[s] * us; // exact by construction
                        c2 += s2v[s] * us;
                    }
                }
                None => {
                    for s in 0..nmod {
                        let us = u[s * plane + idx] as f64;
                        c1 += s1[s] * us;
                    }
                }
            }
            let q = (p_inv * c1).round();
            let t = q.mul_add(-p1, c1) + c2;
            let cpp = q.mul_add(-p2, t);
            *o = scale_by_pow2(cpp, neg_eb - exps_a[i]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::constants;
    use gemm_exact::{CrtBasis, I256};

    /// Scalar oracle: reconstruct rmod(Σ w_i u_i, P) exactly.
    fn oracle(consts: &Constants, us: &[u8]) -> f64 {
        let basis = CrtBasis::new(&consts.p);
        let mut acc = gemm_exact::U256::ZERO;
        for (i, &uv) in us.iter().enumerate() {
            acc = acc.add(basis.weight(i).mul_u64(uv as u64));
        }
        let (_, r) = acc.div_rem(basis.p_big());
        let half = basis.p_big().half();
        if r > half {
            I256::from_u256(basis.p_big().sub(r)).neg().to_f64()
        } else {
            I256::from_u256(r).to_f64()
        }
    }

    fn fold_single_element(consts: &Constants, us: &[u8], prec: FoldPrecision) -> f64 {
        let mut u = vec![0u8; consts.n];
        u.copy_from_slice(us);
        let mut out = [0.0f64];
        fold_planes(&u, 1, 1, consts, prec, &[0], &[0], &mut out);
        out[0]
    }

    #[test]
    fn fold_matches_crt_oracle_small_n() {
        // For N <= 8 the weight splits (s1 + s2 = w exactly) leave only the
        // final fold roundings: the result is bit-exact below 2^53 and
        // within a couple of ulps above.
        for n in [2usize, 4, 6, 8] {
            let c = constants(n);
            let mut seed = 0x1234_5678u64;
            for _ in 0..200 {
                let us: Vec<u8> = (0..n)
                    .map(|s| {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((seed >> 33) % c.p[s]) as u8
                    })
                    .collect();
                let got = fold_single_element(c, &us, FoldPrecision::Double);
                let want = oracle(c, &us);
                if want.abs() < 2f64.powi(50) {
                    assert_eq!(got, want, "N={n} us={us:?}");
                } else {
                    let rel = ((got - want) / want).abs();
                    assert!(rel <= 4.0 * f64::EPSILON, "N={n} rel={rel}");
                }
            }
        }
    }

    #[test]
    fn fold_near_exact_large_n() {
        // For N = 15..20 the reconstruction is exact to f64 resolution:
        // the s2 truncation error (~2^-85 relative) is far below the final
        // rounding at ~2^-53.
        for n in [15usize, 18, 20] {
            let c = constants(n);
            let mut seed = 42u64;
            for _ in 0..100 {
                let us: Vec<u8> = (0..n)
                    .map(|s| {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
                        ((seed >> 33) % c.p[s]) as u8
                    })
                    .collect();
                let got = fold_single_element(c, &us, FoldPrecision::Double);
                let want = oracle(c, &us);
                if want != 0.0 {
                    let rel = ((got - want) / want).abs();
                    assert!(
                        rel <= 8.0 * f64::EPSILON,
                        "N={n} rel={rel} got={got} want={want}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_precision_fold_absolute_error_bound() {
        // The single-weight fold rounds each s1·u term: the absolute error
        // is bounded by N·255·ulp(max w) — the float-GEMM error model
        // (absolute error scales with Σ|terms|, not with the result).
        let c = constants(8);
        let lw_max = c.weights.iter().map(|w| w.bits()).max().unwrap() as i32;
        let bound = 8.0 * 255.0 * 2f64.powi(lw_max - 52);
        let mut seed = 77u64;
        for _ in 0..100 {
            let us: Vec<u8> = (0..8)
                .map(|s| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(3);
                    ((seed >> 33) % c.p[s]) as u8
                })
                .collect();
            let got = fold_single_element(c, &us, FoldPrecision::Single);
            let want = oracle(c, &us);
            assert!(
                (got - want).abs() <= bound,
                "err={} bound={bound}",
                (got - want).abs()
            );
        }
    }

    #[test]
    fn inverse_scaling_applied() {
        let c = constants(4);
        // Layout: planes are plane-major; with m = n = 1 and N = 4, `u`
        // holds one element per plane.
        let u = vec![3u8, 3, 3, 3];
        let mut out = [0.0f64];
        fold_planes(&u, 1, 1, c, FoldPrecision::Double, &[2], &[3], &mut out);
        // All residues equal 3 => reconstructed integer is 3; scales 2^-5.
        assert_eq!(out[0], 3.0 / 32.0);
    }

    #[test]
    fn zero_planes_give_zero() {
        let c = constants(5);
        let u = vec![0u8; 5 * 6];
        let mut out = [0.0f64; 6];
        fold_planes(
            &u,
            2,
            3,
            c,
            FoldPrecision::Double,
            &[0, 0],
            &[0, 0, 0],
            &mut out,
        );
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn negative_values_reconstruct() {
        // Residues of x = -7 must fold back to -7.
        let c = constants(6);
        let us: Vec<u8> =
            c.p.iter()
                .map(|&p| ((-7i64).rem_euclid(p as i64)) as u8)
                .collect();
        let got = fold_single_element(c, &us, FoldPrecision::Double);
        assert_eq!(got, -7.0);
    }
}
