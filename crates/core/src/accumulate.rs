//! Lines 8–12 of Algorithm 1: the weighted accumulation of the UINT8
//! residue planes and the CRT fold back into the integer product (§4.3).
//!
//! `C'⁽¹⁾ = Σ s_i1 U_i` is **exact** in f64: every `s_i1` is an integer
//! multiple of one common power of two (the β_i construction) and carries
//! at most `53 - 8 - ⌈log2 N⌉` significant bits, so each product with a
//! UINT8 value and the whole N-term sum stay inside 53 bits of that common
//! ulp. `C'⁽²⁾` mops up the discarded low bits of the weights. The fold
//!
//! ```text
//! Q   = round(P_inv · C'⁽¹⁾)
//! C'' = fma(-P2, Q, fma(-P1, Q, C'⁽¹⁾) + C'⁽²⁾)
//! ```
//!
//! subtracts the unique multiple of `P` (double-double `P1 + P2`), leaving
//! `C'' ≈ rmod(A'B', P) = A'B'` by the uniqueness condition (3). The
//! inverse diagonal scaling (line 12, exact: powers of two) is fused into
//! the same pass.
//!
//! The hot recombination is a runtime-dispatched span kernel (AVX-512 →
//! AVX2+FMA → scalar): residues are widened u8 → f64 in SIMD lanes and
//! accumulated with fused multiply-adds. As with the convert kernels, the
//! scalar span kernel [`fold_span_scalar`] is the bit-exact lane oracle —
//! every operation (FMA-weighted accumulation, round-to-nearest-even
//! quotient, the `P1`/`P2` FMA chain) is mirrored exactly, so the SIMD
//! paths cannot diverge lane for lane. Two deliberate deviations from the
//! PR 2 scalar fold, both documented in `docs/ARCHITECTURE.md`:
//!
//! * the weighted accumulation uses FMA (`s·u + c` fused) instead of
//!   multiply-then-add. The exact `C'⁽¹⁾` sum is unchanged (every term is
//!   exact either way); the `C'⁽²⁾` correction gets *more* accurate (one
//!   rounding per term instead of two);
//! * the quotient rounding `Q = round(P_inv · C'⁽¹⁾)` is ties-to-even, the
//!   mode the vector units implement natively. Any nearest rounding keeps
//!   the fold correct (the uniqueness condition keeps `C'⁽¹⁾/P` away from
//!   half-integers); RNE is what makes scalar/SIMD bit-identicality
//!   possible.

use crate::consts::Constants;
use crate::scale::{ilog2_abs, pow2_split, scale_by_pow2};
use rayon::prelude::*;

/// Which weight split drives the accumulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldPrecision {
    /// DGEMM: `s1 + s2` weight split, `P` as a double-double.
    Double,
    /// SGEMM: single f64 weights, `s2 = 0`, `P2 = 0`.
    Single,
}

// ---------------------------------------------------------------------------
// Vectorized fold span kernels (runtime-dispatched)
// ---------------------------------------------------------------------------

/// Which fold span kernel the running CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FoldKernel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

fn detect_fold_kernel() -> FoldKernel {
    if gemm_engine::force_scalar() {
        return FoldKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx2") {
            return FoldKernel::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return FoldKernel::Avx2;
        }
    }
    FoldKernel::Scalar
}

fn fold_kernel() -> FoldKernel {
    static KERNEL: std::sync::OnceLock<FoldKernel> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(detect_fold_kernel)
}

/// Human-readable name of the fold kernel the running CPU dispatches to.
pub fn fold_kernel_name() -> &'static str {
    match fold_kernel() {
        #[cfg(target_arch = "x86_64")]
        FoldKernel::Avx512 => "avx512",
        #[cfg(target_arch = "x86_64")]
        FoldKernel::Avx2 => "avx2-fma",
        FoldKernel::Scalar => "scalar",
    }
}

/// Scalar fold span kernel — the lane oracle. For each lane `l`, fold the
/// `N = s1.len()` residues at `u[s * plane + idx0 + l]` into the *unscaled*
/// `C''` value (line 12's inverse scaling is applied by the caller).
///
/// `s2 = Some` selects the DGEMM double-double weight split, `None` the
/// SGEMM single-weight fold.
#[allow(clippy::too_many_arguments)]
pub fn fold_span_scalar(
    u: &[u8],
    plane: usize,
    idx0: usize,
    s1: &[f64],
    s2: Option<&[f64]>,
    p1: f64,
    p2: f64,
    p_inv: f64,
    out: &mut [f64],
) {
    let nmod = s1.len();
    debug_assert!(u.len() >= nmod * plane && idx0 + out.len() <= plane);
    for (l, o) in out.iter_mut().enumerate() {
        let idx = idx0 + l;
        let mut c1 = 0.0f64;
        let mut c2 = 0.0f64;
        match s2 {
            Some(s2v) => {
                for s in 0..nmod {
                    let us = u[s * plane + idx] as f64;
                    c1 = s1[s].mul_add(us, c1); // exact by construction
                    c2 = s2v[s].mul_add(us, c2);
                }
            }
            None => {
                for s in 0..nmod {
                    let us = u[s * plane + idx] as f64;
                    c1 = s1[s].mul_add(us, c1);
                }
            }
        }
        let q = (p_inv * c1).round_ties_even();
        let t = q.mul_add(-p1, c1) + c2;
        *o = q.mul_add(-p2, t);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX-512 / AVX2 fold span kernels. Residues are widened u8 → i32 →
    //! f64 (exact), accumulated with `vfmadd`, the quotient rounded with
    //! `roundscale`/`roundpd` (RNE) and the `P1`/`P2` chain mirrored
    //! operation for operation — bit-identical to
    //! [`super::fold_span_scalar`] on every lane.

    use std::arch::x86_64::*;

    /// `_MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC`.
    const RNE: i32 = 0x08;

    /// # Safety
    /// AVX-512F and AVX2 must be available; `u` must hold
    /// `s1.len() * plane` bytes and `idx0 + out.len() <= plane`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx2")]
    pub unsafe fn fold_span_avx512(
        u: &[u8],
        plane: usize,
        idx0: usize,
        s1: &[f64],
        s2: Option<&[f64]>,
        p1: f64,
        p2: f64,
        p_inv: f64,
        out: &mut [f64],
    ) {
        let nmod = s1.len();
        debug_assert!(u.len() >= nmod * plane && idx0 + out.len() <= plane);
        let len = out.len();
        let n8 = len / 8 * 8;
        let np1 = _mm512_set1_pd(-p1);
        let np2 = _mm512_set1_pd(-p2);
        let piv = _mm512_set1_pd(p_inv);
        let ubase = u.as_ptr().add(idx0);
        let mut l = 0;
        while l < n8 {
            let mut c1 = _mm512_setzero_pd();
            let mut c2 = _mm512_setzero_pd();
            match s2 {
                Some(s2v) => {
                    for s in 0..nmod {
                        let bytes = _mm_loadl_epi64(ubase.add(s * plane + l) as *const __m128i);
                        let us = _mm512_cvtepi32_pd(_mm256_cvtepu8_epi32(bytes));
                        c1 = _mm512_fmadd_pd(_mm512_set1_pd(s1[s]), us, c1);
                        c2 = _mm512_fmadd_pd(_mm512_set1_pd(s2v[s]), us, c2);
                    }
                }
                None => {
                    for (s, &w) in s1.iter().enumerate() {
                        let bytes = _mm_loadl_epi64(ubase.add(s * plane + l) as *const __m128i);
                        let us = _mm512_cvtepi32_pd(_mm256_cvtepu8_epi32(bytes));
                        c1 = _mm512_fmadd_pd(_mm512_set1_pd(w), us, c1);
                    }
                }
            }
            let q = _mm512_roundscale_pd::<RNE>(_mm512_mul_pd(piv, c1));
            let t = _mm512_add_pd(_mm512_fmadd_pd(q, np1, c1), c2);
            let cpp = _mm512_fmadd_pd(q, np2, t);
            _mm512_storeu_pd(out.as_mut_ptr().add(l), cpp);
            l += 8;
        }
        super::fold_span_scalar(u, plane, idx0 + n8, s1, s2, p1, p2, p_inv, &mut out[n8..]);
    }

    /// # Safety
    /// AVX2 and FMA must be available; same buffer contract as
    /// `fold_span_avx512`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fold_span_avx2(
        u: &[u8],
        plane: usize,
        idx0: usize,
        s1: &[f64],
        s2: Option<&[f64]>,
        p1: f64,
        p2: f64,
        p_inv: f64,
        out: &mut [f64],
    ) {
        let nmod = s1.len();
        debug_assert!(u.len() >= nmod * plane && idx0 + out.len() <= plane);
        let len = out.len();
        let n4 = len / 4 * 4;
        let np1 = _mm256_set1_pd(-p1);
        let np2 = _mm256_set1_pd(-p2);
        let piv = _mm256_set1_pd(p_inv);
        let ubase = u.as_ptr().add(idx0);
        let mut l = 0;
        while l < n4 {
            let mut c1 = _mm256_setzero_pd();
            let mut c2 = _mm256_setzero_pd();
            match s2 {
                Some(s2v) => {
                    for s in 0..nmod {
                        let w = (ubase.add(s * plane + l) as *const i32).read_unaligned();
                        let us = _mm256_cvtepi32_pd(_mm_cvtepu8_epi32(_mm_cvtsi32_si128(w)));
                        c1 = _mm256_fmadd_pd(_mm256_set1_pd(s1[s]), us, c1);
                        c2 = _mm256_fmadd_pd(_mm256_set1_pd(s2v[s]), us, c2);
                    }
                }
                None => {
                    for (s, &wt) in s1.iter().enumerate() {
                        let w = (ubase.add(s * plane + l) as *const i32).read_unaligned();
                        let us = _mm256_cvtepi32_pd(_mm_cvtepu8_epi32(_mm_cvtsi32_si128(w)));
                        c1 = _mm256_fmadd_pd(_mm256_set1_pd(wt), us, c1);
                    }
                }
            }
            let q = _mm256_round_pd::<RNE>(_mm256_mul_pd(piv, c1));
            let t = _mm256_add_pd(_mm256_fmadd_pd(q, np1, c1), c2);
            let cpp = _mm256_fmadd_pd(q, np2, t);
            _mm256_storeu_pd(out.as_mut_ptr().add(l), cpp);
            l += 4;
        }
        super::fold_span_scalar(u, plane, idx0 + n4, s1, s2, p1, p2, p_inv, &mut out[n4..]);
    }
}

/// Vectorized fold over a contiguous span: dispatches to the best kernel
/// the CPU supports; bit-identical to [`fold_span_scalar`] on every path.
#[allow(clippy::too_many_arguments)]
pub fn fold_span(
    u: &[u8],
    plane: usize,
    idx0: usize,
    s1: &[f64],
    s2: Option<&[f64]>,
    p1: f64,
    p2: f64,
    p_inv: f64,
    out: &mut [f64],
) {
    assert!(
        u.len() >= s1.len() * plane && idx0 + out.len() <= plane,
        "fold span out of bounds"
    );
    if let Some(s2v) = s2 {
        assert_eq!(s2v.len(), s1.len(), "weight split length mismatch");
    }
    match fold_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: variant selected only after runtime feature detection;
        // the buffer contract is asserted above.
        FoldKernel::Avx512 => unsafe {
            x86::fold_span_avx512(u, plane, idx0, s1, s2, p1, p2, p_inv, out)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        FoldKernel::Avx2 => unsafe {
            x86::fold_span_avx2(u, plane, idx0, s1, s2, p1, p2, p_inv, out)
        },
        FoldKernel::Scalar => fold_span_scalar(u, plane, idx0, s1, s2, p1, p2, p_inv, out),
    }
}

/// Fold all residue planes into the final matrix.
///
/// * `u` — `N` UINT8 planes, plane-major, each `m*n` column-major;
/// * `exps_a` / `exps_b` — the scale exponents (`μ_i = 2^{e}`), negated here;
/// * `out` — `m*n` column-major f64.
///
/// The hot recombination runs through the dispatched [`fold_span`] kernel
/// column by column; the exact inverse diagonal scaling (line 12) is a
/// separate cheap pass over the span so the SIMD kernels stay oracle-exact
/// regardless of the per-row exponents.
#[allow(clippy::too_many_arguments)]
pub fn fold_planes(
    u: &[u8],
    m: usize,
    n: usize,
    consts: &Constants,
    precision: FoldPrecision,
    exps_a: &[i32],
    exps_b: &[i32],
    out: &mut [f64],
) {
    let plane = m * n;
    let nmod = consts.n;
    assert_eq!(u.len(), nmod * plane, "plane buffer mismatch");
    assert_eq!(out.len(), plane, "output buffer mismatch");
    assert_eq!(exps_a.len(), m);
    assert_eq!(exps_b.len(), n);
    if plane == 0 {
        return;
    }
    let (s1, s2): (&[f64], Option<&[f64]>) = match precision {
        FoldPrecision::Double => (&consts.s1, Some(&consts.s2)),
        FoldPrecision::Single => (&consts.s1_single, None),
    };
    let (p1, p2, p_inv) = (consts.p1, consts.p2, consts.p_inv);

    // Line 12: the inverse diagonal scales are powers of two, so
    // `2^{-e_i} · 2^{-e_j} · x` is a chain of exact multiplications as
    // long as every partial product stays in the normal f64 range.
    // Hoisting the factor computation to one pow2_split per row/column —
    // instead of one powi per *element* — is what keeps the scaling pass
    // far below the recombination cost. Elements whose partial exponents
    // could leave the normal range (the chain applies 2^{-e_i} before
    // 2^{-e_j}, so opposite-sign extremes can transiently under/overflow
    // even when the combined exponent is benign) take the one-shot
    // combined-exponent path instead, which is the bit-exact PR 2
    // behavior; the integer range check costs a few ALU ops per element.
    let inv_a: Vec<(f64, f64)> = exps_a.iter().map(|&e| pow2_split(-e)).collect();
    let inv_b: Vec<(f64, f64)> = exps_b.iter().map(|&e| pow2_split(-e)).collect();

    out.par_chunks_mut(m).enumerate().for_each(|(j, out_col)| {
        let col_off = j * m;
        fold_span(u, plane, col_off, s1, s2, p1, p2, p_inv, out_col);
        let (b1, b2) = inv_b[j];
        let eb = exps_b[j];
        for (o, (&ea, &(a1, a2))) in out_col.iter_mut().zip(exps_a.iter().zip(&inv_a)) {
            let x = *o;
            if x == 0.0 {
                // ±0 is preserved identically by either path (all factors
                // are positive powers of two).
                continue;
            }
            // Exponents the chained value passes through: 0 (start),
            // -e_i (after the A factors), -e_i - e_j (final). pow2_split
            // halves land inside this hull. All partials normal => every
            // multiply is exact => identical to the combined-exponent
            // form.
            let e1 = -ea;
            let e2 = e1 - eb;
            let ex = ilog2_abs(x);
            let lo = ex + e1.min(0).min(e2);
            let hi = ex + e1.max(0).max(e2);
            if lo >= -1021 && hi <= 1022 {
                *o = x * a1 * a2 * b1 * b2;
            } else {
                *o = scale_by_pow2(x, e2);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::constants;
    use gemm_exact::{CrtBasis, I256};

    /// Scalar oracle: reconstruct rmod(Σ w_i u_i, P) exactly.
    fn oracle(consts: &Constants, us: &[u8]) -> f64 {
        let basis = CrtBasis::new(&consts.p);
        let mut acc = gemm_exact::U256::ZERO;
        for (i, &uv) in us.iter().enumerate() {
            acc = acc.add(basis.weight(i).mul_u64(uv as u64));
        }
        let (_, r) = acc.div_rem(basis.p_big());
        let half = basis.p_big().half();
        if r > half {
            I256::from_u256(basis.p_big().sub(r)).neg().to_f64()
        } else {
            I256::from_u256(r).to_f64()
        }
    }

    fn fold_single_element(consts: &Constants, us: &[u8], prec: FoldPrecision) -> f64 {
        let mut u = vec![0u8; consts.n];
        u.copy_from_slice(us);
        let mut out = [0.0f64];
        fold_planes(&u, 1, 1, consts, prec, &[0], &[0], &mut out);
        out[0]
    }

    #[test]
    fn fold_matches_crt_oracle_small_n() {
        // For N <= 8 the weight splits (s1 + s2 = w exactly) leave only the
        // final fold roundings: the result is bit-exact below 2^53 and
        // within a couple of ulps above.
        for n in [2usize, 4, 6, 8] {
            let c = constants(n);
            let mut seed = 0x1234_5678u64;
            for _ in 0..200 {
                let us: Vec<u8> = (0..n)
                    .map(|s| {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                        ((seed >> 33) % c.p[s]) as u8
                    })
                    .collect();
                let got = fold_single_element(c, &us, FoldPrecision::Double);
                let want = oracle(c, &us);
                if want.abs() < 2f64.powi(50) {
                    assert_eq!(got, want, "N={n} us={us:?}");
                } else {
                    let rel = ((got - want) / want).abs();
                    assert!(rel <= 4.0 * f64::EPSILON, "N={n} rel={rel}");
                }
            }
        }
    }

    #[test]
    fn fold_near_exact_large_n() {
        // For N = 15..20 the reconstruction is exact to f64 resolution:
        // the s2 truncation error (~2^-85 relative) is far below the final
        // rounding at ~2^-53.
        for n in [15usize, 18, 20] {
            let c = constants(n);
            let mut seed = 42u64;
            for _ in 0..100 {
                let us: Vec<u8> = (0..n)
                    .map(|s| {
                        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(7);
                        ((seed >> 33) % c.p[s]) as u8
                    })
                    .collect();
                let got = fold_single_element(c, &us, FoldPrecision::Double);
                let want = oracle(c, &us);
                if want != 0.0 {
                    let rel = ((got - want) / want).abs();
                    assert!(
                        rel <= 8.0 * f64::EPSILON,
                        "N={n} rel={rel} got={got} want={want}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_precision_fold_absolute_error_bound() {
        // The single-weight fold rounds each s1·u term: the absolute error
        // is bounded by N·255·ulp(max w) — the float-GEMM error model
        // (absolute error scales with Σ|terms|, not with the result).
        let c = constants(8);
        let lw_max = c.weights.iter().map(|w| w.bits()).max().unwrap() as i32;
        let bound = 8.0 * 255.0 * 2f64.powi(lw_max - 52);
        let mut seed = 77u64;
        for _ in 0..100 {
            let us: Vec<u8> = (0..8)
                .map(|s| {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(3);
                    ((seed >> 33) % c.p[s]) as u8
                })
                .collect();
            let got = fold_single_element(c, &us, FoldPrecision::Single);
            let want = oracle(c, &us);
            assert!(
                (got - want).abs() <= bound,
                "err={} bound={bound}",
                (got - want).abs()
            );
        }
    }

    #[test]
    fn fold_span_dispatched_bit_identical_to_scalar() {
        // Odd plane counts, tile-edge span lengths, offset spans, and
        // residues including the 255 maximum — the dispatched kernel must
        // equal the scalar oracle bit for bit, both precisions.
        for nmod in [2usize, 3, 5, 7, 15, 19, 20] {
            let c = constants(nmod);
            for len in [1usize, 3, 4, 7, 8, 9, 16, 33, 64] {
                for idx0 in [0usize, 1, 5] {
                    let plane = idx0 + len + 3;
                    let mut seed = (nmod * 1000 + len * 10 + idx0) as u64 | 1;
                    let u: Vec<u8> = (0..nmod * plane)
                        .map(|i| {
                            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(97);
                            let s = i / plane;
                            if i % 7 == 0 {
                                (c.p[s] - 1) as u8 // max residue
                            } else {
                                ((seed >> 33) % c.p[s]) as u8
                            }
                        })
                        .collect();
                    for single in [false, true] {
                        if single && nmod > crate::moduli::N_MAX_SGEMM {
                            continue;
                        }
                        let (s1, s2): (&[f64], Option<&[f64]>) = if single {
                            (&c.s1_single, None)
                        } else {
                            (&c.s1, Some(&c.s2))
                        };
                        let mut got = vec![0f64; len];
                        let mut want = vec![0f64; len];
                        fold_span(&u, plane, idx0, s1, s2, c.p1, c.p2, c.p_inv, &mut got);
                        fold_span_scalar(&u, plane, idx0, s1, s2, c.p1, c.p2, c.p_inv, &mut want);
                        assert_eq!(
                            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                            "kernel={} N={nmod} len={len} idx0={idx0} single={single}",
                            fold_kernel_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_scaling_applied() {
        let c = constants(4);
        // Layout: planes are plane-major; with m = n = 1 and N = 4, `u`
        // holds one element per plane.
        let u = vec![3u8, 3, 3, 3];
        let mut out = [0.0f64];
        fold_planes(&u, 1, 1, c, FoldPrecision::Double, &[2], &[3], &mut out);
        // All residues equal 3 => reconstructed integer is 3; scales 2^-5.
        assert_eq!(out[0], 3.0 / 32.0);
    }

    #[test]
    fn inverse_scaling_opposite_extreme_exponents_stay_exact() {
        // Regression: e_a ~ +1100 (tiny A row) with e_b ~ -1100 (huge B
        // column) has a benign combined inverse exponent of 0, but the
        // chained per-side multiplies would transiently flush 3·2^-1100
        // to zero (and the mirrored case to Inf). The range-guarded
        // fallback must keep these bit-exact.
        let c = constants(4);
        let u = vec![3u8, 3, 3, 3]; // folds to the integer 3
        for (ea, eb, want) in [
            (1100i32, -1100i32, 3.0f64),           // transient underflow
            (-1100, 1100, 3.0),                    // transient overflow
            (1100, -1090, 3.0 * 2f64.powi(-10)),   // near-cancelling
            (-40, 30, scale_by_pow2(3.0, 10)),     // plain in-range
            (540, 540, scale_by_pow2(3.0, -1080)), // genuinely subnormal
            (-30, -30, scale_by_pow2(3.0, 60)),    // in-range growth
        ] {
            let mut out = [0.0f64];
            fold_planes(&u, 1, 1, c, FoldPrecision::Double, &[ea], &[eb], &mut out);
            assert_eq!(
                out[0].to_bits(),
                want.to_bits(),
                "ea={ea} eb={eb}: got {} want {want}",
                out[0]
            );
        }
    }

    #[test]
    fn zero_planes_give_zero() {
        let c = constants(5);
        let u = vec![0u8; 5 * 6];
        let mut out = [0.0f64; 6];
        fold_planes(
            &u,
            2,
            3,
            c,
            FoldPrecision::Double,
            &[0, 0],
            &[0, 0, 0],
            &mut out,
        );
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn negative_values_reconstruct() {
        // Residues of x = -7 must fold back to -7.
        let c = constants(6);
        let us: Vec<u8> =
            c.p.iter()
                .map(|&p| ((-7i64).rem_euclid(p as i64)) as u8)
                .collect();
        let got = fold_single_element(c, &us, FoldPrecision::Double);
        assert_eq!(got, -7.0);
    }
}
