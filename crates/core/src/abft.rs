//! ABFT fault tolerance for the residue pipeline: checksum construction,
//! per-plane verification, and the recovery state machine.
//!
//! The scheme's inner loop is **exact integer arithmetic mod `p`**, so
//! Huang–Abraham checksums hold *bitwise*: for every residue plane
//! `U_s = (A'_s · B'_s) mod p_s`,
//!
//! ```text
//! rowsum_i(U_s) ≡ (A'_s · chk_b)_i   (mod p_s)      chk_b[h] = Σ_j B'_s[h,j]
//! colsum_j(U_s) ≡ (chk_a · B'_s)_j   (mod p_s)      chk_a[h] = Σ_i A'_s[i,h]
//! ```
//!
//! with **zero tolerance** — a mismatch is a genuine fault (flipped panel
//! byte, corrupted accumulator, bad residue write), never rounding. The
//! checksum vectors are reduced to the same symmetric residue
//! representatives (`|x| ≤ 128`) the regular panels use, so every term
//! of the reference products is bounded by `2^14` and the host-side
//! widening dot products that compute them are exact at any depth.
//!
//! Fault axes localize the failure class:
//!
//! * accumulator / residue corruption at `(i, j)` → row `i` **and**
//!   column `j` mismatch → re-run only the NR-aligned column stripe;
//! * a corrupted `A` panel shifts `U` and the row references computed
//!   *from the same corrupt panel* consistently → only the **column**
//!   axis (whose reference predates the corruption) trips → the stripe
//!   re-run would recompute from the same bad panel, so recovery repacks
//!   the panels from the source operand and re-runs the whole plane;
//! * symmetric for a corrupted `B` panel (row axis trips);
//! * a residue byte rewritten to `u + p` (same class, out-of-range
//!   representative) is caught by the `u < p` range check.
//!
//! A flip the checksums *cannot* see is mathematically inert: it left
//! every residue class unchanged, so the folded output is bit-identical
//! anyway. The detection contract is therefore "the output differs from
//! the fault-free run ⟹ the fault was detected".
//!
//! Recovery runs with injection suppressed and on the calling thread
//! (`parallel = false`), escalating stripe re-run → full repack + plane
//! re-run → scalar-kernel re-run ([`FaultPolicy::RetryThenScalar`]); the
//! scalar kernels are the bit-exact oracle the SIMD paths are tested
//! against, so a successful recovery reproduces the fault-free result
//! bit-identically.

use crate::consts::Constants;
use crate::convert::{trunc_convert_pack_panels, TruncSource};
use crate::modred::finalize_block_residues;
use crate::pipeline::PhaseTimes;
use gemm_engine::faultinject::{self, FaultSite};
use gemm_engine::{padded_a_rows, padded_b_cols, padded_depth, ResidueBackend, NR};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Policy and report types
// ---------------------------------------------------------------------------

/// What the pipeline does about silent data corruption.
///
/// The default for every [`crate::Ozaki2`] comes from the
/// `OZAKI_FAULT_POLICY` environment variable (`off` | `detect` |
/// `retry[:N]` | `retry-then-scalar[:N]`, unset → `Off`); override per
/// emulator with [`crate::Ozaki2::with_fault_policy`] or per call with
/// [`crate::GemmArgs::fault_policy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// No checksums are built, no verification runs: bit-identical to the
    /// pre-ABFT pipeline with zero overhead.
    #[default]
    Off,
    /// Verify every residue plane and record mismatches in the
    /// [`FaultReport`], but leave the (corrupt) result as computed.
    Detect,
    /// Verify and re-execute on mismatch: first the affected NR-aligned
    /// column stripe, then (for persistent or panel-level faults) a full
    /// repack + plane re-run, up to `max_retries` times per plane.
    Retry {
        /// Re-execution attempts per residue plane before giving up
        /// ([`FaultReport::unrecovered`] counts the give-ups).
        max_retries: u8,
    },
    /// [`FaultPolicy::Retry`], then one final full re-run on the scalar
    /// kernel path (the bit-exact oracle) after `max_retries` SIMD
    /// attempts — graceful degradation instead of a corrupt answer.
    RetryThenScalar {
        /// SIMD re-execution attempts before the scalar fallback.
        max_retries: u8,
    },
}

impl FaultPolicy {
    /// Whether this policy builds checksums and verifies at all.
    pub fn is_active(self) -> bool {
        !matches!(self, FaultPolicy::Off)
    }

    /// The process-wide default: parsed once from `OZAKI_FAULT_POLICY`
    /// (`off` | `detect` | `retry[:N]` | `retry-then-scalar[:N]`,
    /// case-insensitive; unset or unparsable → [`FaultPolicy::Off`]).
    /// This is how CI runs the entire suite under an active policy
    /// without touching a single call site.
    pub fn default_from_env() -> Self {
        static DEFAULT: OnceLock<FaultPolicy> = OnceLock::new();
        *DEFAULT.get_or_init(|| {
            let Ok(raw) = std::env::var("OZAKI_FAULT_POLICY") else {
                return FaultPolicy::Off;
            };
            let raw = raw.to_ascii_lowercase();
            let (name, retries) = match raw.split_once(':') {
                Some((n, r)) => (n, r.parse::<u8>().ok()),
                None => (raw.as_str(), None),
            };
            match name {
                "detect" => FaultPolicy::Detect,
                "retry" => FaultPolicy::Retry {
                    max_retries: retries.unwrap_or(2),
                },
                "retry-then-scalar" => FaultPolicy::RetryThenScalar {
                    max_retries: retries.unwrap_or(2),
                },
                _ => FaultPolicy::Off,
            }
        })
    }
}

/// What recovery did about one detected mismatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Recorded only ([`FaultPolicy::Detect`]).
    Detected,
    /// Re-ran the affected NR-aligned column stripe.
    StripeRetry,
    /// Repacked the repackable operand panels from the source views,
    /// rebuilt the plane's checksums, and re-ran the whole plane.
    FullRepair,
    /// Full repair on the scalar kernel path after exhausting the SIMD
    /// retry budget.
    ScalarFallback,
    /// The plane still failed verification after every permitted
    /// recovery step.
    Unrecovered,
}

/// One detected fault and the recovery step taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Residue-plane index `s` (the modulus `p_s`).
    pub plane: usize,
    /// Mismatching column range `[lo, hi]` (inclusive) when the column
    /// axis localized the fault; `None` when only the row axis tripped.
    pub columns: Option<(usize, usize)>,
    /// What was done about it.
    pub action: RecoveryAction,
}

/// ABFT outcome of one emulated GEMM, surfaced through
/// [`crate::EmulationReport::fault`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Failed plane verifications (every verification pass that found a
    /// mismatch, including re-checks after an unsuccessful recovery
    /// step).
    pub detected: usize,
    /// SIMD re-executions performed (stripe re-runs + full repairs).
    pub retries: usize,
    /// Scalar-oracle fallbacks performed.
    pub scalar_fallbacks: usize,
    /// Planes whose verification still failed after the last permitted
    /// recovery step (the output may be corrupt).
    pub unrecovered: usize,
    /// Checksum GEMMs issued for the side channel (kept out of
    /// [`crate::EmulationReport::int8_gemm_calls`] so that count stays
    /// deterministic under fault injection).
    pub checksum_gemms: usize,
    /// Per-fault log in detection order.
    pub events: Vec<FaultEvent>,
}

impl FaultReport {
    /// No fault was detected (and therefore nothing recovered).
    pub fn clean(&self) -> bool {
        self.detected == 0
    }
}

// ---------------------------------------------------------------------------
// Panel sources for recovery
// ---------------------------------------------------------------------------

/// How recovery can reconstruct one side's packed residue panels.
pub(crate) enum PanelsRef<'a> {
    /// Immutable panels (a cached [`crate::prepared::PreparedOperand`]):
    /// never injected into and never repacked — prepared panels are the
    /// trusted source recovery recomputes *from*.
    Fixed(&'a [i16]),
    /// Per-call panels packed into the workspace, with the deterministic
    /// recipe (source view + scale exponents) to repack them from
    /// scratch when a panel-level fault is suspected.
    Repackable {
        panels: &'a mut [i16],
        src: TruncSource<'a>,
        vecs: usize,
        vecs_pad: usize,
    },
}

impl PanelsRef<'_> {
    pub(crate) fn panels(&self) -> &[i16] {
        match self {
            PanelsRef::Fixed(p) => p,
            PanelsRef::Repackable { panels, .. } => panels,
        }
    }

    /// Deterministically rebuild the panels from the source operand
    /// (no-op for [`PanelsRef::Fixed`]). The sweep is bit-reproducible,
    /// so untouched planes come back identical and previously built
    /// checksums stay valid.
    fn repack(&mut self, k: usize, kp: usize, consts: &Constants, b64: bool) {
        if let PanelsRef::Repackable {
            panels,
            src,
            vecs,
            vecs_pad,
        } = self
        {
            trunc_convert_pack_panels(
                *src, *vecs, *vecs_pad, k, kp, consts, b64, false, panels, None,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD-widened inner sweeps
// ---------------------------------------------------------------------------
// The checksum capture, reference dot products, and verification sweep
// are plain integer reduction loops; compiled for the baseline x86-64
// target they autovectorize at SSE2 width only, which is wide enough to
// show the side channel in the wall clock. Multiversioning the loop
// bodies behind the same runtime dispatch the engine kernels use lets
// LLVM re-autovectorize them at AVX2 / AVX-512 width — no hand-written
// intrinsics, and bit-identical results at every width (integer
// arithmetic only).

#[derive(Clone, Copy)]
enum Simd {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

fn simd() -> Simd {
    static LEVEL: OnceLock<Simd> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
                return Simd::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Simd::Avx2;
            }
        }
        Simd::Scalar
    })
}

/// Stamp out AVX-512 / AVX2 / scalar versions of an `#[inline(always)]`
/// loop body plus the dispatching front-end. The `unsafe` is only the
/// `#[target_feature]` calling convention; the bodies are safe code.
macro_rules! simd_dispatch {
    ($dispatch:ident, $body:ident, $avx512:ident, $avx2:ident,
     fn($($arg:ident: $ty:ty),*) -> $ret:ty) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512bw")]
        unsafe fn $avx512($($arg: $ty),*) -> $ret {
            $body($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        unsafe fn $avx2($($arg: $ty),*) -> $ret {
            $body($($arg),*)
        }

        fn $dispatch($($arg: $ty),*) -> $ret {
            match simd() {
                #[cfg(target_arch = "x86_64")]
                Simd::Avx512 => unsafe { $avx512($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                Simd::Avx2 => unsafe { $avx2($($arg),*) },
                Simd::Scalar => $body($($arg),*),
            }
        }
    };
}

/// Depth-wise accumulation of packed vectors `v0..v1` into `scratch`
/// (the checksum-capture inner loop).
#[inline(always)]
fn accum_vecs_body(plane: &[i16], kp: usize, v0: usize, v1: usize, scratch: &mut [i32]) {
    for v in v0..v1 {
        for (acc, &x) in scratch.iter_mut().zip(&plane[v * kp..(v + 1) * kp]) {
            *acc += x as i32;
        }
    }
}
simd_dispatch!(
    accum_vecs,
    accum_vecs_body,
    accum_vecs_avx512,
    accum_vecs_avx2,
    fn(plane: &[i16], kp: usize, v0: usize, v1: usize, scratch: &mut [i32]) -> ()
);

/// Widening i16 dot product of one (≤ `2^16`-element) chunk.
#[inline(always)]
fn dot_chunk_body(x: &[i16], y: &[i16]) -> i32 {
    let mut acc = 0i32;
    for (&a, &b) in x.iter().zip(y) {
        acc += a as i32 * b as i32;
    }
    acc
}
simd_dispatch!(
    dot_chunk,
    dot_chunk_body,
    dot_chunk_avx512,
    dot_chunk_avx2,
    fn(x: &[i16], y: &[i16]) -> i32
);

/// One verification column: column sum, row-sum accumulation, and the
/// column maximum for the `u < p` range check.
#[inline(always)]
fn col_sweep_body(col: &[u8], rowsum: &mut [u32]) -> (u32, u8) {
    let mut cs = 0u32;
    let mut mx = 0u8;
    for (&x, rs) in col.iter().zip(rowsum.iter_mut()) {
        cs += x as u32;
        *rs += x as u32;
        mx = mx.max(x);
    }
    (cs, mx)
}
simd_dispatch!(
    col_sweep,
    col_sweep_body,
    col_sweep_avx512,
    col_sweep_avx2,
    fn(col: &[u8], rowsum: &mut [u32]) -> (u32, u8)
);

// ---------------------------------------------------------------------------
// Checksum construction and verification
// ---------------------------------------------------------------------------

/// Build one plane's checksum vector: sum the plane's `vecs` packed
/// vectors depth-wise, reduce mod `p`, and store the symmetric
/// representative (`|x| ≤ 128`, matching the regular panels' bound) in
/// the `kp`-element `out`. Accumulation is i32 — `|x| ≤ 128` keeps
/// `2^16` vectors overflow-free, and the running sums are re-reduced
/// mod `p` between chunks for larger `vecs` — so the inner loop
/// vectorizes at twice the width an i64 accumulator would allow.
fn build_checksum_plane(
    plane: &[i16],
    vecs: usize,
    kp: usize,
    p: u64,
    out: &mut [i16],
    scratch: &mut [i32],
) {
    const CHUNK: usize = 1 << 16;
    let scratch = &mut scratch[..kp];
    scratch.fill(0);
    let p = p as i32;
    let mut v0 = 0usize;
    while v0 < vecs {
        let v1 = vecs.min(v0 + CHUNK);
        accum_vecs(plane, kp, v0, v1, scratch);
        v0 = v1;
        if v0 < vecs {
            for acc in scratch.iter_mut() {
                *acc = acc.rem_euclid(p);
            }
        }
    }
    let half = (p - 1) / 2;
    for (o, &s) in out[..kp].iter_mut().zip(scratch.iter()) {
        let r = s.rem_euclid(p);
        *o = (if r <= half { r } else { r - p }) as i16;
    }
}

/// Exact dot product of two `kp`-element packed vectors, reduced to the
/// canonical `[0, p)` residue — the representative the engine's Barrett
/// epilogue emits, so verification compares bitwise. Terms are bounded
/// by `2^14` (`|x| ≤ 128` on both sides), so `2^16`-element chunks
/// accumulate i32-safely (vectorizing at full width) and spill to an
/// i64 total, exact at any depth.
fn dot_mod(x: &[i16], y: &[i16], p: u64) -> u8 {
    const CHUNK: usize = 1 << 16;
    let mut total = 0i64;
    for (cx, cy) in x.chunks(CHUNK).zip(y.chunks(CHUNK)) {
        total += dot_chunk(cx, cy) as i64;
    }
    total.rem_euclid(p as i64) as u8
}

/// Verification outcome for one plane: inclusive index ranges of the
/// mismatching rows / columns (`None` = that axis is consistent).
#[derive(Clone, Copy, Debug)]
struct VerifyOutcome {
    rows: Option<(usize, usize)>,
    cols: Option<(usize, usize)>,
}

impl VerifyOutcome {
    fn clean(&self) -> bool {
        self.rows.is_none() && self.cols.is_none()
    }

    /// Both axes tripped: the fault is in the residue plane itself (not
    /// a panel), so a column-stripe re-run can repair it.
    fn localized(&self) -> bool {
        self.rows.is_some() && self.cols.is_some()
    }
}

fn note(slot: &mut Option<(usize, usize)>, i: usize) {
    *slot = Some(match *slot {
        None => (i, i),
        Some((lo, hi)) => (lo.min(i), hi.max(i)),
    });
}

/// One pass over the plane: row sums, column sums, and the `u < p` range
/// check, compared mod `p` against the checksum references.
fn verify_plane(
    u_plane: &[u8],
    chk_rows: &[u8],
    chk_cols: &[u8],
    m: usize,
    n: usize,
    p: u32,
    rowsum: &mut [u32],
) -> VerifyOutcome {
    let rowsum = &mut rowsum[..m];
    rowsum.fill(0);
    let mut out = VerifyOutcome {
        rows: None,
        cols: None,
    };
    for j in 0..n {
        let col = &u_plane[j * m..(j + 1) * m];
        // Branch-free accumulation (the vectorizable hot path); the range
        // check only tracks the column maximum here and drops to a locate
        // pass in the rare (already-faulted) case.
        let (cs, mx) = col_sweep(col, rowsum);
        if mx as u32 >= p {
            // Out-of-range representative: same residue class is
            // possible (`u + p`), so the sums alone could miss it.
            for (i, &x) in col.iter().enumerate() {
                if x as u32 >= p {
                    note(&mut out.rows, i);
                    note(&mut out.cols, j);
                }
            }
        }
        if cs % p != chk_cols[j] as u32 {
            note(&mut out.cols, j);
        }
    }
    for (i, &rs) in rowsum.iter().enumerate() {
        if rs % p != chk_rows[i] as u32 {
            note(&mut out.rows, i);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// GEMM helpers
// ---------------------------------------------------------------------------

/// One residue-plane GEMM (or column-stripe thereof) with fused mod-`p`
/// reduction on `engine`, k-blocking transparently applied at the
/// pool-derived `k_block` depth. `a_panels` / `b_panels` start at the
/// operand's (sub)panel origin; `u_out` is the `m * n` destination.
/// Returns the number of engine calls issued.
#[allow(clippy::too_many_arguments)]
fn plane_gemm(
    engine: &dyn ResidueBackend,
    k_block: usize,
    m: usize,
    n: usize,
    k: usize,
    kp: usize,
    p: u64,
    pinv: u32,
    a_panels: &[i16],
    b_panels: &[i16],
    c32: &mut [i32],
    racc: &mut [i32],
    u_out: &mut [u8],
    parallel: bool,
    mod_nanos: Option<&AtomicU64>,
) -> usize {
    let c32 = &mut c32[..m * n];
    if k <= k_block {
        engine.gemm_reduce(
            m, n, k, a_panels, b_panels, kp, 0, c32, u_out, p, pinv, mod_nanos, parallel,
        );
        1
    } else {
        let racc = &mut racc[..m * n];
        racc.fill(0);
        let mut calls = 0usize;
        let mut h0 = 0usize;
        while h0 < k {
            let kb = k_block.min(k - h0);
            engine.gemm_accumulate(
                m, n, kb, a_panels, b_panels, kp, h0, c32, racc, p, pinv, mod_nanos, parallel,
            );
            calls += 1;
            h0 += kb;
        }
        finalize_block_residues(racc, p, pinv, u_out);
        calls
    }
}

// ---------------------------------------------------------------------------
// The fault-tolerant executor
// ---------------------------------------------------------------------------

/// Scratch bundle for [`execute_panels_ft`] (the non-panel slices of
/// [`crate::pipeline::WsBuffers`]).
pub(crate) struct FtScratch<'w> {
    pub u: &'w mut [u8],
    pub c32: &'w mut [i32],
    pub racc: &'w mut [i32],
    pub chk_a16: &'w mut [i16],
    pub chk_b16: &'w mut [i16],
    pub uchk: &'w mut [u8],
    pub chk_sum: &'w mut [i32],
    pub vsum: &'w mut [u32],
}

/// Algorithm 1 lines 6–12 under an active [`FaultPolicy`]: the
/// fault-tolerant sibling of [`crate::pipeline::execute_panels`]. Per
/// plane: captures the checksum vectors and both reference products
/// (`A'_s · chk_b` for the row axis, `chk_a · B'_s` for the column
/// axis) from the pristine panels, runs the plane's GEMM, verifies, and
/// recovers per the policy; then folds. Returns
/// `(int8_gemm_calls, FaultReport)` — recovery re-runs and checksum
/// products are counted in the report, not in the main call count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_panels_ft(
    m: usize,
    n: usize,
    k: usize,
    consts: &Constants,
    b64: bool,
    engine: &dyn ResidueBackend,
    mut a: PanelsRef<'_>,
    mut b: PanelsRef<'_>,
    exps_a: &[i32],
    exps_b: &[i32],
    scratch: FtScratch<'_>,
    parallel: bool,
    policy: FaultPolicy,
    out: &mut [f64],
    phases: &mut PhaseTimes,
) -> (usize, FaultReport) {
    let nmod = consts.n;
    let plane = m * n;
    let kp = padded_depth(k);
    let m_pad = padded_a_rows(m);
    let n_pad = padded_b_cols(n);
    let k_block = engine.k_block_max(consts.p[0]);
    let mut gemm_calls = 0usize;
    let mut report = FaultReport::default();

    // Env-rate fault injection only fires inside this protected region:
    // raw engine calls elsewhere (kernel parity tests, benches) have no
    // ABFT to catch a flip, so they stay clean even when CI runs the
    // whole suite with OZAKI_FAULT_INJECT set.
    let _region = faultinject::region();

    let FtScratch {
        u,
        c32,
        racc,
        chk_a16,
        chk_b16,
        uchk,
        chk_sum,
        vsum,
    } = scratch;
    let u = &mut u[..nmod * plane];

    // ---- Per-plane: capture, seams, GEMM, verify, recover ----------------
    let mod_nanos = AtomicU64::new(0);
    for s in 0..nmod {
        let p = consts.p[s];
        let pinv = consts.p_inv_u32[s];
        let a_lo = s * m_pad * kp;
        let b_lo = s * n_pad * kp;

        // Checksum capture + references, from the pristine panels, right
        // before this plane's GEMM: the reference sweeps stream the
        // plane's panels into cache, which the GEMM then reads warm — so
        // the side channel largely pays for its own memory traffic.
        let tv = Instant::now();
        report.checksum_gemms += checksum_refs(
            &a.panels()[a_lo..a_lo + m_pad * kp],
            &b.panels()[b_lo..b_lo + n_pad * kp],
            m,
            n,
            kp,
            p,
            &mut chk_a16[s * kp..(s + 1) * kp],
            &mut chk_b16[s * kp..(s + 1) * kp],
            chk_sum,
            &mut uchk[s * (m + n)..(s + 1) * (m + n)],
        );
        phases.verify += tv.elapsed();

        // Panel fault seams: after this plane's checksum capture, so a
        // flipped panel byte shows up as a checksum mismatch downstream.
        // Prepared (Fixed) panels are deliberately not a seam — they are
        // the trusted source recovery recomputes from.
        if let PanelsRef::Repackable { panels, .. } = &mut a {
            faultinject::corrupt_panel(FaultSite::PanelA, &mut panels[a_lo..a_lo + m_pad * kp]);
        }
        if let PanelsRef::Repackable { panels, .. } = &mut b {
            faultinject::corrupt_panel(FaultSite::PanelB, &mut panels[b_lo..b_lo + n_pad * kp]);
        }

        // Main plane GEMM (timed as the regular int8/mod phases).
        let t0 = Instant::now();
        gemm_calls += plane_gemm(
            engine,
            k_block,
            m,
            n,
            k,
            kp,
            p,
            pinv,
            &a.panels()[s * m_pad * kp..(s + 1) * m_pad * kp],
            &b.panels()[s * n_pad * kp..(s + 1) * n_pad * kp],
            c32,
            racc,
            &mut u[s * plane..(s + 1) * plane],
            parallel,
            Some(&mod_nanos),
        );
        let total = t0.elapsed();
        let modd = Duration::from_nanos(mod_nanos.swap(0, Ordering::Relaxed));
        phases.mod_reduce += modd;
        phases.int8_gemm += total.saturating_sub(modd);

        // Residue-plane fault seam (post-GEMM, pre-verification).
        faultinject::corrupt_residue(&mut u[s * plane..(s + 1) * plane]);

        // Side channel: verification + recovery.
        let tv = Instant::now();
        let mut attempt = 0u8;
        let mut scalar_done = false;
        loop {
            let ver = verify_plane(
                &u[s * plane..(s + 1) * plane],
                &uchk[s * (m + n)..s * (m + n) + m],
                &uchk[s * (m + n) + m..(s + 1) * (m + n)],
                m,
                n,
                p as u32,
                vsum,
            );
            if ver.clean() {
                break;
            }
            report.detected += 1;
            match policy {
                FaultPolicy::Off => unreachable!("ft executor only runs under an active policy"),
                FaultPolicy::Detect => {
                    report.events.push(FaultEvent {
                        plane: s,
                        columns: ver.cols,
                        action: RecoveryAction::Detected,
                    });
                    break;
                }
                FaultPolicy::Retry { max_retries }
                | FaultPolicy::RetryThenScalar { max_retries } => {
                    let scalar_next = matches!(policy, FaultPolicy::RetryThenScalar { .. })
                        && attempt >= max_retries;
                    if attempt >= max_retries && !scalar_next || scalar_done {
                        report.unrecovered += 1;
                        report.events.push(FaultEvent {
                            plane: s,
                            columns: ver.cols,
                            action: RecoveryAction::Unrecovered,
                        });
                        break;
                    }
                    // All recovery runs with injection suppressed and on
                    // the calling thread, so the thread-local guards hold.
                    let _quiet = faultinject::suppress();
                    if scalar_next {
                        let _scalar = faultinject::scalar_scope();
                        full_repair(
                            engine,
                            k_block,
                            s,
                            m,
                            n,
                            k,
                            kp,
                            consts,
                            b64,
                            &mut a,
                            &mut b,
                            chk_a16,
                            chk_b16,
                            m_pad,
                            n_pad,
                            u,
                            c32,
                            racc,
                            chk_sum,
                            uchk,
                            &mut report,
                        );
                        report.scalar_fallbacks += 1;
                        report.events.push(FaultEvent {
                            plane: s,
                            columns: ver.cols,
                            action: RecoveryAction::ScalarFallback,
                        });
                        scalar_done = true;
                    } else if attempt == 0 && ver.localized() {
                        // Fault is in the residue plane itself: re-run
                        // just the NR-aligned stripe covering the
                        // mismatching columns, from the (good) panels.
                        let (jlo, jhi) = ver.cols.expect("localized implies cols");
                        let c0 = (jlo / NR) * NR;
                        let c1 = n.min((jhi / NR + 1) * NR);
                        plane_gemm(
                            engine,
                            k_block,
                            m,
                            c1 - c0,
                            k,
                            kp,
                            p,
                            pinv,
                            &a.panels()[s * m_pad * kp..(s + 1) * m_pad * kp],
                            &b.panels()[s * n_pad * kp + c0 * kp..(s + 1) * n_pad * kp],
                            c32,
                            racc,
                            &mut u[s * plane + c0 * m..s * plane + c1 * m],
                            false,
                            None,
                        );
                        report.retries += 1;
                        report.events.push(FaultEvent {
                            plane: s,
                            columns: Some((c0, c1 - 1)),
                            action: RecoveryAction::StripeRetry,
                        });
                        attempt += 1;
                    } else {
                        full_repair(
                            engine,
                            k_block,
                            s,
                            m,
                            n,
                            k,
                            kp,
                            consts,
                            b64,
                            &mut a,
                            &mut b,
                            chk_a16,
                            chk_b16,
                            m_pad,
                            n_pad,
                            u,
                            c32,
                            racc,
                            chk_sum,
                            uchk,
                            &mut report,
                        );
                        report.retries += 1;
                        report.events.push(FaultEvent {
                            plane: s,
                            columns: ver.cols,
                            action: RecoveryAction::FullRepair,
                        });
                        attempt += 1;
                    }
                }
            }
        }
        phases.verify += tv.elapsed();
    }

    // ---- Lines 8–12: fold (identical to the Off path) --------------------
    let t0 = Instant::now();
    let precision = if b64 {
        crate::accumulate::FoldPrecision::Double
    } else {
        crate::accumulate::FoldPrecision::Single
    };
    crate::accumulate::fold_planes(u, m, n, consts, precision, exps_a, exps_b, out);
    phases.fold = t0.elapsed();
    (gemm_calls, report)
}

/// The two side-channel reference products for plane `s`, computed as
/// exact host-side widening dot products rather than engine GEMMs (an
/// `(m, 1, k)` / `(1, n, k)` engine call would spend `NR`-tile padding
/// and epilogue work on a single output vector): row references
/// `A'_s · chk_b` into `uchk_pl[..m]` and column references
/// `chk_a · B'_s` into `uchk_pl[m..]`. Returns the number of checksum
/// products (2) for [`FaultReport::checksum_gemms`].
#[allow(clippy::too_many_arguments)]
fn checksum_refs(
    a_plane: &[i16],
    b_plane: &[i16],
    m: usize,
    n: usize,
    kp: usize,
    p: u64,
    chk_a: &mut [i16],
    chk_b: &mut [i16],
    chk_sum: &mut [i32],
    uchk_pl: &mut [u8],
) -> usize {
    build_checksum_plane(b_plane, n, kp, p, chk_b, chk_sum);
    build_checksum_plane(a_plane, m, kp, p, chk_a, chk_sum);
    let (rows, cols) = uchk_pl.split_at_mut(m);
    for (i, r) in rows.iter_mut().enumerate() {
        *r = dot_mod(&a_plane[i * kp..(i + 1) * kp], chk_b, p);
    }
    for (j, c) in cols.iter_mut().enumerate() {
        *c = dot_mod(chk_a, &b_plane[j * kp..(j + 1) * kp], p);
    }
    2
}

/// Heavy recovery: repack the repackable sides from their source
/// operands (deterministic, so untouched planes and their checksums are
/// unchanged), rebuild plane `s`'s checksum vectors and references, and
/// re-run the plane's GEMM. Caller holds the suppress (and possibly
/// scalar-scope) guard.
#[allow(clippy::too_many_arguments)]
fn full_repair(
    engine: &dyn ResidueBackend,
    k_block: usize,
    s: usize,
    m: usize,
    n: usize,
    k: usize,
    kp: usize,
    consts: &Constants,
    b64: bool,
    a: &mut PanelsRef<'_>,
    b: &mut PanelsRef<'_>,
    chk_a16: &mut [i16],
    chk_b16: &mut [i16],
    m_pad: usize,
    n_pad: usize,
    u: &mut [u8],
    c32: &mut [i32],
    racc: &mut [i32],
    chk_sum: &mut [i32],
    uchk: &mut [u8],
    report: &mut FaultReport,
) {
    let p = consts.p[s];
    let pinv = consts.p_inv_u32[s];
    let plane = m * n;
    a.repack(k, kp, consts, b64);
    b.repack(k, kp, consts, b64);
    report.checksum_gemms += checksum_refs(
        &a.panels()[s * m_pad * kp..(s + 1) * m_pad * kp],
        &b.panels()[s * n_pad * kp..(s + 1) * n_pad * kp],
        m,
        n,
        kp,
        p,
        &mut chk_a16[s * kp..(s + 1) * kp],
        &mut chk_b16[s * kp..(s + 1) * kp],
        chk_sum,
        &mut uchk[s * (m + n)..(s + 1) * (m + n)],
    );
    plane_gemm(
        engine,
        k_block,
        m,
        n,
        k,
        kp,
        p,
        pinv,
        &a.panels()[s * m_pad * kp..(s + 1) * m_pad * kp],
        &b.panels()[s * n_pad * kp..(s + 1) * n_pad * kp],
        c32,
        racc,
        &mut u[s * plane..(s + 1) * plane],
        false,
        None,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_default_and_parse_shapes() {
        // The OnceLock caches whatever the environment said at first
        // call; both answers are legal depending on the CI job, but the
        // parse must be a valid policy either way.
        let p = FaultPolicy::default_from_env();
        assert_eq!(p, FaultPolicy::default_from_env());
        assert!(matches!(
            p,
            FaultPolicy::Off
                | FaultPolicy::Detect
                | FaultPolicy::Retry { .. }
                | FaultPolicy::RetryThenScalar { .. }
        ));
        assert!(!FaultPolicy::Off.is_active());
        assert!(FaultPolicy::Detect.is_active());
        assert!(FaultPolicy::Retry { max_retries: 1 }.is_active());
    }

    #[test]
    fn checksum_plane_symmetric_representatives() {
        // kp = 32, 3 vectors; the representative must stay within ±128
        // and be congruent to the plain sum mod p.
        let kp = 32usize;
        let mut plane = vec![0i16; 4 * kp];
        for (i, x) in plane.iter_mut().enumerate() {
            *x = ((i as i64 * 37 % 257) - 128) as i16;
        }
        for p in [256u64, 255, 251, 193, 131] {
            let mut out = vec![7i16; kp];
            let mut scratch = vec![0i32; kp];
            build_checksum_plane(&plane, 3, kp, p, &mut out, &mut scratch);
            for h in 0..kp {
                let want: i64 = (0..3).map(|v| plane[v * kp + h] as i64).sum();
                let got = out[h] as i64;
                assert_eq!(
                    got.rem_euclid(p as i64),
                    want.rem_euclid(p as i64),
                    "p={p} h={h}"
                );
                assert!(got.abs() <= 128, "p={p} h={h} rep={got}");
            }
        }
    }

    #[test]
    fn dot_mod_matches_wide_reference() {
        let kp = 96usize;
        let x: Vec<i16> = (0..kp)
            .map(|i| ((i as i64 * 53 % 257) - 128) as i16)
            .collect();
        let y: Vec<i16> = (0..kp)
            .map(|i| ((i as i64 * 91 % 257) - 128) as i16)
            .collect();
        for p in [256u64, 255, 251, 193, 131] {
            let want: i64 = x.iter().zip(&y).map(|(&a, &b)| a as i64 * b as i64).sum();
            assert_eq!(
                dot_mod(&x, &y, p) as i64,
                want.rem_euclid(p as i64),
                "p={p}"
            );
            assert!(
                (dot_mod(&x, &y, p) as u64) < p,
                "p={p}: canonical representative"
            );
        }
    }

    #[test]
    fn verify_plane_flags_row_and_column() {
        // 3x4 plane mod 131, consistent references, then corrupt (1, 2).
        let (m, n) = (3usize, 4usize);
        let p = 131u32;
        let mut u: Vec<u8> = (0..m * n).map(|i| (i * 29 % 131) as u8).collect();
        let mut chk_rows = vec![0u8; m];
        let mut chk_cols = vec![0u8; n];
        for i in 0..m {
            let s: u32 = (0..n).map(|j| u[j * m + i] as u32).sum();
            chk_rows[i] = (s % p) as u8;
        }
        for j in 0..n {
            let s: u32 = (0..m).map(|i| u[j * m + i] as u32).sum();
            chk_cols[j] = (s % p) as u8;
        }
        let mut rowsum = vec![0u32; m];
        let ok = verify_plane(&u, &chk_rows, &chk_cols, m, n, p, &mut rowsum);
        assert!(ok.clean());

        u[2 * m + 1] ^= 0x10; // (i=1, j=2)
        let bad = verify_plane(&u, &chk_rows, &chk_cols, m, n, p, &mut rowsum);
        assert!(!bad.clean());
        assert!(bad.localized());
        assert_eq!(bad.rows, Some((1, 1)));
        assert_eq!(bad.cols, Some((2, 2)));

        // Same residue class, out-of-range representative: range check.
        u[2 * m + 1] ^= 0x10;
        let orig = u[0];
        u[0] = orig + p as u8; // u + p < 256 for this data
        let range = verify_plane(&u, &chk_rows, &chk_cols, m, n, p, &mut rowsum);
        assert!(!range.clean(), "u+p must be caught by the range check");
        assert_eq!(range.rows, Some((0, 0)));
        assert_eq!(range.cols, Some((0, 0)));
    }
}
