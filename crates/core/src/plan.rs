//! Reusable execution plans.
//!
//! A single emulated GEMM allocates ~`(2N + 18)·mk` bytes of scratch
//! (integer matrices, residue planes, the INT32 product buffer). Iterative
//! consumers — LU panel updates, purification iterations, repeated solves —
//! call GEMM many times with one shape; [`GemmPlan`] keeps the scratch
//! alive across calls so the steady-state does no allocation at all.
//! Results are bit-identical to [`crate::Ozaki2::dgemm`].

use crate::accumulate::{fold_planes, FoldPrecision};
use crate::consts::{constants, Constants};
use crate::convert::residue_planes;
use crate::modred::reduce_plane;
use crate::pipeline::{Mode, Ozaki2, K_BLOCK_MAX};
use crate::scale::{
    accurate_scale, fast_scale_cols, fast_scale_rows, scale_trunc_a_rowmajor,
    scale_trunc_b_colmajor,
};
use gemm_dense::{MatF64, Matrix};
use gemm_engine::int8_gemm_rm_cm;

/// Pre-allocated workspace for repeated emulated DGEMMs of a fixed shape.
pub struct GemmPlan {
    emu: Ozaki2,
    shape: (usize, usize, usize),
    consts: &'static Constants,
    aprime: Vec<f64>,
    bprime: Vec<f64>,
    a8: Vec<i8>,
    b8: Vec<i8>,
    u: Vec<u8>,
    c32: Vec<i32>,
}

impl GemmPlan {
    /// Build a plan for `m x k · k x n` products with the given emulator.
    ///
    /// # Panics
    /// If `k > 2^17` (use [`Ozaki2::dgemm`], which blocks over `k`).
    pub fn new(emu: Ozaki2, m: usize, n: usize, k: usize) -> Self {
        assert!(k <= K_BLOCK_MAX, "GemmPlan does not implement k-blocking");
        let consts = constants(emu.n_moduli());
        let nmod = consts.n;
        Self {
            emu,
            shape: (m, n, k),
            consts,
            aprime: vec![0.0; m * k],
            bprime: vec![0.0; k * n],
            a8: vec![0; nmod * m * k],
            b8: vec![0; nmod * k * n],
            u: vec![0; nmod * m * n],
            c32: vec![0; m * n],
        }
    }

    /// The plan's `(m, n, k)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Approximate workspace footprint in bytes.
    pub fn workspace_bytes(&self) -> usize {
        self.aprime.len() * 8
            + self.bprime.len() * 8
            + self.a8.len()
            + self.b8.len()
            + self.u.len()
            + self.c32.len() * 4
    }

    /// Run one product, reusing the workspace. Bit-identical to
    /// [`Ozaki2::dgemm`] on the same inputs.
    ///
    /// # Panics
    /// On shape mismatch or non-finite input.
    pub fn execute(&mut self, a: &MatF64, b: &MatF64) -> MatF64 {
        let (m, n, k) = self.shape;
        assert_eq!(a.shape(), (m, k), "A shape mismatch");
        assert_eq!(b.shape(), (k, n), "B shape mismatch");
        assert!(
            a.iter().all(|x| x.is_finite()) && b.iter().all(|x| x.is_finite()),
            "inputs must be finite"
        );
        let consts = self.consts;
        let nmod = consts.n;
        let plane = m * n;
        let mut out = Matrix::<f64>::zeros(m, n);
        if plane == 0 || k == 0 {
            return out;
        }

        let (exps_a, exps_b) = match self.emu.mode() {
            Mode::Fast => (
                fast_scale_rows(a, consts.p_fast),
                fast_scale_cols(b, consts.p_fast),
            ),
            Mode::Accurate => accurate_scale(a, b, consts.p_accu),
        };
        scale_trunc_a_rowmajor(a, &exps_a, &mut self.aprime);
        scale_trunc_b_colmajor(b, &exps_b, &mut self.bprime);
        residue_planes(&self.aprime, consts, true, &mut self.a8);
        residue_planes(&self.bprime, consts, true, &mut self.b8);
        for s in 0..nmod {
            int8_gemm_rm_cm(
                m,
                n,
                k,
                &self.a8[s * m * k..(s + 1) * m * k],
                &self.b8[s * k * n..(s + 1) * k * n],
                &mut self.c32,
            );
            reduce_plane(
                &self.c32,
                consts.p[s],
                consts.p_inv_u32[s],
                &mut self.u[s * plane..(s + 1) * plane],
            );
        }
        fold_planes(
            &self.u,
            m,
            n,
            consts,
            FoldPrecision::Double,
            &exps_a,
            &exps_b,
            out.as_mut_slice(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::workload::phi_matrix_f64;

    #[test]
    fn plan_matches_one_shot_bitwise() {
        let (m, n, k) = (24usize, 20, 36);
        let emu = Ozaki2::new(13, Mode::Fast);
        let mut plan = GemmPlan::new(emu, m, n, k);
        for seed in 0..4u64 {
            let a = phi_matrix_f64(m, k, 0.7, seed, 0);
            let b = phi_matrix_f64(k, n, 0.7, seed, 1);
            assert_eq!(plan.execute(&a, &b), emu.dgemm(&a, &b), "seed={seed}");
        }
    }

    #[test]
    fn plan_matches_accurate_mode() {
        let (m, n, k) = (16usize, 16, 24);
        let emu = Ozaki2::new(10, Mode::Accurate);
        let mut plan = GemmPlan::new(emu, m, n, k);
        let a = phi_matrix_f64(m, k, 2.0, 9, 0);
        let b = phi_matrix_f64(k, n, 2.0, 9, 1);
        assert_eq!(plan.execute(&a, &b), emu.dgemm(&a, &b));
    }

    #[test]
    fn workspace_footprint_reported() {
        let plan = GemmPlan::new(Ozaki2::new(15, Mode::Fast), 64, 64, 64);
        // 2 * 8 * 64*64 (f64) + 2 * 15 * 64*64 (i8) + 15*64*64 (u8) + 4*64*64
        let want = 2 * 8 * 4096 + 2 * 15 * 4096 + 15 * 4096 + 4 * 4096;
        assert_eq!(plan.workspace_bytes(), want);
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn plan_rejects_wrong_shape() {
        let mut plan = GemmPlan::new(Ozaki2::new(8, Mode::Fast), 8, 8, 8);
        let a = MatF64::zeros(9, 8);
        let b = MatF64::zeros(8, 8);
        let _ = plan.execute(&a, &b);
    }
}
