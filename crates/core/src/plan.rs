//! Reusable execution plans.
//!
//! A single emulated GEMM needs ~`(5N + 4)·mn` bytes of scratch for a
//! square product (the packed i16 residue panels the fused trunc+convert
//! emits, residue planes, the INT32 product buffer, plus a block-residue
//! accumulator when `k > 2^17` — the integer matrices of the unfused
//! pipeline no longer exist).
//! Iterative consumers — LU panel updates, purification
//! iterations, repeated solves — call GEMM many times with one shape;
//! [`GemmPlan`] keeps a [`Workspace`] alive across calls so the
//! steady-state does no allocation at all (beyond the output matrix).
//! Results are bit-identical to [`crate::Ozaki2::dgemm`]: the plan runs the
//! very same Algorithm-1 body, only with retained scratch.

use crate::pipeline::{emulate_into, EmulationError, EmulationReport, Ozaki2, Workspace};
use gemm_dense::{MatF64, MatView, MatViewMut, Matrix};

/// Estimated arithmetic intensity of the emulated product's engine phase:
/// INT8 multiply-add operations per byte of memory traffic (packed i16
/// panels streamed per GEMM, INT32 product and UINT8 residue planes
/// written, the folded f64 output).
///
/// High intensity means one product saturates the engine's compute with
/// intra-GEMM stripe parallelism; low intensity means a single item is
/// memory/latency-bound and a batched runtime is better off running whole
/// items concurrently (inter-GEMM parallelism) — the crossover the
/// `gemm_batch` scheduler picks from, and the same classifier
/// `gemm_serve::Server` applies at admission to decide whether a request
/// waits in the coalesce buffer or dispatches solo.
pub fn arithmetic_intensity(m: usize, n: usize, k: usize, n_moduli: usize) -> f64 {
    if m == 0 || n == 0 || k == 0 {
        return 0.0;
    }
    let nmod = n_moduli as f64;
    let (mf, nf, kf) = (m as f64, n as f64, k as f64);
    let ops = 2.0 * nmod * mf * nf * kf;
    let bytes = 2.0 * nmod * (mf * kf + kf * nf) // i16 panels, read once per GEMM
        + nmod * (4.0 + 1.0) * mf * nf // c32 write + u8 residue plane
        + 8.0 * mf * nf; // folded f64 output
    ops / bytes
}

/// Pre-allocated workspace for repeated emulated DGEMMs of a fixed shape.
pub struct GemmPlan {
    emu: Ozaki2,
    shape: (usize, usize, usize),
    ws: Workspace,
}

impl GemmPlan {
    /// Build a plan for `m x k · k x n` products with the given emulator.
    /// Any `k` is supported; `k > 2^17` products run PK-aligned depth
    /// windows over the prepacked residue panels (no repacking per block).
    pub fn new(emu: Ozaki2, m: usize, n: usize, k: usize) -> Self {
        Self {
            emu,
            shape: (m, n, k),
            ws: Workspace::new(),
        }
    }

    /// The plan's `(m, n, k)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.shape
    }

    /// Current workspace footprint in bytes (grows to its high-water mark
    /// on first execution, then stays flat).
    pub fn workspace_bytes(&self) -> usize {
        self.ws.bytes()
    }

    /// Run one product, reusing the workspace. Bit-identical to
    /// [`Ozaki2::dgemm`] on the same inputs.
    ///
    /// # Panics
    /// On shape mismatch or non-finite input.
    pub fn execute(&mut self, a: &MatF64, b: &MatF64) -> MatF64 {
        let (m, n, _) = self.shape;
        let mut out = Matrix::<f64>::zeros(m, n);
        self.execute_into(a, b, &mut out);
        out
    }

    /// Run one product into a caller-owned output matrix (fully
    /// overwritten): with the workspace retained and the output reused,
    /// the steady state performs **zero** heap allocations per call. Used
    /// by the batched runtime's per-item execution. Bit-identical to
    /// [`GemmPlan::execute`] / [`Ozaki2::dgemm`].
    ///
    /// # Panics
    /// On shape mismatch (including `c`) or non-finite input.
    pub fn execute_into(&mut self, a: &MatF64, b: &MatF64, c: &mut MatF64) {
        let (m, n, k) = self.shape;
        assert_eq!(a.shape(), (m, k), "A shape mismatch");
        assert_eq!(b.shape(), (k, n), "B shape mismatch");
        assert_eq!(c.shape(), (m, n), "C shape mismatch");
        assert!(
            a.iter().all(|x| x.is_finite()) && b.iter().all(|x| x.is_finite()),
            "inputs must be finite"
        );
        emulate_into(
            a,
            b,
            self.emu.n_moduli(),
            self.emu.mode(),
            self.emu.backend(),
            self.emu.fault_policy(),
            &mut self.ws,
            true,
            c.as_mut_slice(),
        );
    }

    /// Run one product over borrowed strided views (any layout / leading
    /// dimension / transpose), writing into a column-major output view —
    /// the zero-copy, zero-alloc steady state for windowed consumers
    /// (LU panels, blocked solvers slicing one parent allocation).
    /// Bit-identical to [`GemmPlan::execute`] on equal elements.
    pub fn execute_views_into(
        &mut self,
        a: MatView<'_, f64>,
        b: MatView<'_, f64>,
        c: MatViewMut<'_, f64>,
    ) -> Result<EmulationReport, EmulationError> {
        let (m, n, k) = self.shape;
        if a.shape() != (m, k) || b.shape() != (k, n) || c.shape() != (m, n) {
            return Err(EmulationError::ShapeMismatch);
        }
        crate::facade::emulate_view_into(
            a,
            b,
            self.emu.n_moduli(),
            self.emu.mode(),
            self.emu.backend(),
            &mut self.ws,
            true,
            1.0,
            0.0,
            c,
            true,
            true,
            self.emu.fault_policy(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Mode;
    use gemm_dense::workload::phi_matrix_f64;

    #[test]
    fn plan_matches_one_shot_bitwise() {
        let (m, n, k) = (24usize, 20, 36);
        let emu = Ozaki2::new(13, Mode::Fast);
        let mut plan = GemmPlan::new(emu, m, n, k);
        for seed in 0..4u64 {
            let a = phi_matrix_f64(m, k, 0.7, seed, 0);
            let b = phi_matrix_f64(k, n, 0.7, seed, 1);
            assert_eq!(plan.execute(&a, &b), emu.dgemm(&a, &b), "seed={seed}");
        }
    }

    #[test]
    fn plan_matches_accurate_mode() {
        let (m, n, k) = (16usize, 16, 24);
        let emu = Ozaki2::new(10, Mode::Accurate);
        let mut plan = GemmPlan::new(emu, m, n, k);
        let a = phi_matrix_f64(m, k, 2.0, 9, 0);
        let b = phi_matrix_f64(k, n, 2.0, 9, 1);
        assert_eq!(plan.execute(&a, &b), emu.dgemm(&a, &b));
    }

    #[test]
    fn workspace_reaches_steady_state() {
        let (m, n, k) = (32usize, 24, 40);
        let nmod = 15usize;
        let mut plan = GemmPlan::new(Ozaki2::new(nmod, Mode::Fast), m, n, k);
        let a = phi_matrix_f64(m, k, 0.5, 3, 0);
        let b = phi_matrix_f64(k, n, 0.5, 3, 1);
        let _ = plan.execute(&a, &b);
        let after_first = plan.workspace_bytes();
        // At least the dominant buffers must be resident: the packed i16
        // panel sets (one per modulus, padded), U planes (u8) and C32.
        let floor = nmod * 2 * (m * k + k * n) + nmod * m * n + 4 * m * n;
        assert!(
            after_first >= floor,
            "workspace too small: {after_first} < {floor}"
        );
        for _ in 0..3 {
            let _ = plan.execute(&a, &b);
            assert_eq!(
                plan.workspace_bytes(),
                after_first,
                "steady state must not allocate"
            );
        }
    }

    #[test]
    fn execute_into_bit_identical_and_alloc_free() {
        let (m, n, k) = (20usize, 16, 28);
        let emu = Ozaki2::new(12, Mode::Fast);
        let mut plan = GemmPlan::new(emu, m, n, k);
        let mut out = MatF64::zeros(m, n);
        let a = phi_matrix_f64(m, k, 0.6, 1, 0);
        let b = phi_matrix_f64(k, n, 0.6, 1, 1);
        plan.execute_into(&a, &b, &mut out);
        assert_eq!(out, emu.dgemm(&a, &b));
        let steady = plan.workspace_bytes();
        for seed in 2..5u64 {
            let a = phi_matrix_f64(m, k, 0.6, seed, 0);
            let b = phi_matrix_f64(k, n, 0.6, seed, 1);
            plan.execute_into(&a, &b, &mut out);
            assert_eq!(out, emu.dgemm(&a, &b), "seed={seed}");
            assert_eq!(
                plan.workspace_bytes(),
                steady,
                "steady state must not allocate"
            );
        }
    }

    #[test]
    #[should_panic(expected = "C shape mismatch")]
    fn execute_into_rejects_wrong_output_shape() {
        let mut plan = GemmPlan::new(Ozaki2::new(8, Mode::Fast), 8, 8, 8);
        let a = MatF64::zeros(8, 8);
        let b = MatF64::zeros(8, 8);
        let mut c = MatF64::zeros(8, 7);
        plan.execute_into(&a, &b, &mut c);
    }

    #[test]
    fn intensity_orders_small_below_large() {
        // The scheduler's crossover signal: small service-sized items sit
        // well below large compute-bound ones.
        let small = arithmetic_intensity(64, 64, 64, 15);
        let large = arithmetic_intensity(1024, 1024, 1024, 15);
        assert!(small > 0.0 && large > 10.0 * small, "{small} vs {large}");
        assert_eq!(arithmetic_intensity(0, 4, 4, 15), 0.0);
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn plan_rejects_wrong_shape() {
        let mut plan = GemmPlan::new(Ozaki2::new(8, Mode::Fast), 8, 8, 8);
        let a = MatF64::zeros(9, 8);
        let b = MatF64::zeros(8, 8);
        let _ = plan.execute(&a, &b);
    }
}
