//! A-priori accuracy model and automatic moduli-count selection.
//!
//! The accuracy of Ozaki Scheme II is set by the per-side scale budget
//! `p_fast = (log2(P-1) - 1.5)/2` minus what the dot-product length eats
//! (`~0.5·log2 k` per side, condition (3)): each operand keeps about
//! `p_fast - 0.5·log2 k` significant bits after truncation. This module
//! turns that into a usable API: predict the normwise relative error for
//! `(N, k)` and pick the smallest `N` meeting a target — e.g. "DGEMM-level
//! at k = 1024" resolves to `N = 15`, exactly the paper's §5.1 sweet spot.

use crate::consts::constants_for;
use crate::moduli::backend_n_max;
use crate::pipeline::{EmulationError, Mode};
use gemm_engine::BackendKind;

/// Empirical offset calibrated against the Fig. 3 measurements (see the
/// `prediction_tracks_measurement` test): the constant-factor gap between
/// the budget bound and the observed normwise error.
const CALIBRATION_BITS: f64 = 0.8;

/// Predicted normwise relative error of `OS II-fast-N` for inner dimension
/// `k` (phi-independent; componentwise errors on cancelling entries can be
/// arbitrarily larger, as with any floating-point GEMM).
pub fn predicted_error(n_moduli: usize, k: usize) -> f64 {
    predicted_error_for(BackendKind::Int8, n_moduli, k)
}

/// [`predicted_error`] over the moduli pool of an explicit backend. The
/// model is pool-generic — `p_fast` already encodes `log2 P` of whichever
/// pool built the constants — so only the constants lookup differs.
pub fn predicted_error_for(kind: BackendKind, n_moduli: usize, k: usize) -> f64 {
    let c = constants_for(kind, n_moduli);
    let bits = c.p_fast - 0.5 * (k.max(2) as f64).log2() - CALIBRATION_BITS;
    2f64.powf(-bits)
}

/// The smallest `N` whose predicted error is at or below `target`, within
/// the supported range for the given pipeline.
///
/// Returns `None` when even the largest supported `N` cannot reach the
/// target (e.g. asking for 1e-30 from the f64 pipeline).
pub fn choose_n(target: f64, k: usize, for_sgemm: bool) -> Option<usize> {
    choose_n_for(BackendKind::Int8, target, k, for_sgemm)
}

/// [`choose_n`] over the moduli pool of an explicit backend. Each pool has
/// its own `N` ceiling ([`backend_n_max`]): the bf16-FMA pool tops out at
/// ~83 bits of `P`, so DGEMM-level targets are unreachable there and this
/// correctly returns `None`.
pub fn choose_n_for(kind: BackendKind, target: f64, k: usize, for_sgemm: bool) -> Option<usize> {
    assert!(target > 0.0, "target must be positive");
    let max = backend_n_max(kind, for_sgemm);
    (2..=max).find(|&n| predicted_error_for(kind, n, k) <= target)
}

/// [`choose_n`] with a **typed** failure: when even the largest supported
/// `N` misses the target, returns
/// [`EmulationError::AccuracyUnreachable`] carrying the best achievable
/// point (`best_n` and its predicted error) instead of a silent `None` —
/// what [`crate::facade::Ozaki2Builder`] surfaces.
pub fn choose_n_checked(target: f64, k: usize, for_sgemm: bool) -> Result<usize, EmulationError> {
    choose_n_checked_for(BackendKind::Int8, target, k, for_sgemm)
}

/// [`choose_n_checked`] over the moduli pool of an explicit backend.
pub fn choose_n_checked_for(
    kind: BackendKind,
    target: f64,
    k: usize,
    for_sgemm: bool,
) -> Result<usize, EmulationError> {
    let best_n = backend_n_max(kind, for_sgemm);
    choose_n_for(kind, target, k, for_sgemm).ok_or(EmulationError::AccuracyUnreachable {
        target,
        best_n,
        predicted: predicted_error_for(kind, best_n, k),
    })
}

/// Convenience: `N` for DGEMM-level accuracy (2^-52) at inner dimension `k`.
pub fn n_for_dgemm_level(k: usize) -> usize {
    choose_n(2f64.powi(-52), k, false).expect("DGEMM level is reachable for supported k")
}

/// Convenience: `N` for SGEMM-level accuracy (2^-23) at inner dimension `k`.
pub fn n_for_sgemm_level(k: usize) -> usize {
    choose_n(2f64.powi(-23), k, true).expect("SGEMM level is reachable for supported k")
}

/// An emulator configured automatically from an accuracy target.
pub fn auto_emulator(target: f64, k: usize, mode: Mode) -> Option<crate::Ozaki2> {
    choose_n(target, k, false).map(|n| crate::Ozaki2::new(n, mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moduli::{N_MAX, N_MAX_SGEMM};
    use crate::Ozaki2;
    use gemm_dense::norms::normwise_relative_error;
    use gemm_dense::workload::phi_matrix_f64;

    #[test]
    fn paper_sweet_spots() {
        // §5.1: "HPL can employ emulation with 14 or 15 moduli" (k = 1024).
        let n = n_for_dgemm_level(1024);
        assert!(
            (14..=16).contains(&n),
            "DGEMM level at k=1024 should need ~15 moduli, got {n}"
        );
        // SGEMM-level at N in {7, 8}.
        let n = n_for_sgemm_level(1024);
        assert!((7..=9).contains(&n), "SGEMM level at k=1024: got {n}");
    }

    #[test]
    fn larger_k_needs_more_moduli() {
        assert!(n_for_dgemm_level(16384) >= n_for_dgemm_level(1024));
        // Fig. 3's k = 16384 dashes sit slightly above the k = 1024 solids.
        assert!(predicted_error(15, 16384) > predicted_error(15, 1024));
    }

    #[test]
    fn prediction_tracks_measurement() {
        // The predictor must stay within ~3 orders of magnitude of the
        // measured normwise error across the usable N range (it is a
        // budget bound, not a statistical estimate).
        let (m, n, k) = (64usize, 64, 256);
        let a = phi_matrix_f64(m, k, 0.5, 17, 0);
        let b = phi_matrix_f64(k, n, 0.5, 17, 1);
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
        for nmod in [8usize, 10, 12] {
            let got = Ozaki2::new(nmod, Mode::Fast).dgemm(&a, &b);
            let measured = normwise_relative_error(&got, &exact).max(1e-16);
            let predicted = predicted_error(nmod, k);
            let ratio = (predicted / measured).log10().abs();
            assert!(
                ratio < 3.0,
                "N={nmod}: predicted {predicted:e} vs measured {measured:e}"
            );
            assert!(
                predicted >= measured / 4.0,
                "prediction should rarely be optimistic: N={nmod} {predicted:e} < {measured:e}"
            );
        }
    }

    #[test]
    fn choose_n_checked_reports_best_achievable() {
        match choose_n_checked(1e-40, 1024, true).unwrap_err() {
            EmulationError::AccuracyUnreachable {
                target,
                best_n,
                predicted,
            } => {
                assert_eq!(target, 1e-40);
                assert_eq!(best_n, N_MAX_SGEMM);
                assert_eq!(predicted, predicted_error(N_MAX_SGEMM, 1024));
            }
            e => panic!("expected AccuracyUnreachable, got {e:?}"),
        }
        // Reachable targets agree with the Option form.
        assert_eq!(
            choose_n_checked(1e-8, 512, false).unwrap(),
            choose_n(1e-8, 512, false).unwrap()
        );
    }

    #[test]
    fn choose_n_respects_pipeline_caps() {
        // Unreachable target from the SGEMM pipeline cap.
        assert_eq!(choose_n(1e-40, 1024, true), None);
        // Easy target needs few moduli.
        let n = choose_n(1e-2, 256, true).unwrap();
        assert!(n <= 8, "1e-2 should need few moduli: {n}");
    }

    #[test]
    fn auto_emulator_delivers_requested_accuracy() {
        let (m, n, k) = (48usize, 48, 128);
        let a = phi_matrix_f64(m, k, 0.5, 23, 0);
        let b = phi_matrix_f64(k, n, 0.5, 23, 1);
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
        let target = 1e-8;
        let emu = auto_emulator(target, k, Mode::Fast).unwrap();
        let got = emu.dgemm(&a, &b);
        let err = normwise_relative_error(&got, &exact);
        assert!(
            err <= target * 10.0,
            "requested {target:e}, measured {err:e} with N={}",
            emu.n_moduli()
        );
    }

    #[test]
    fn fma_pool_selection_band() {
        use crate::moduli::N_MAX_FMA;
        // SGEMM-level accuracy is reachable on the FMA pool (more planes
        // than the INT8 pool needs, since each carries fewer bits)...
        let n_fma = choose_n_for(BackendKind::FmaBf16, 2f64.powi(-23), 1024, true).unwrap();
        let n_int8 = n_for_sgemm_level(1024);
        assert!(
            n_fma > n_int8,
            "FMA pool should need more planes: {n_fma} vs {n_int8}"
        );
        // ...but DGEMM-level is not: the full pool carries only ~83 bits
        // of P, and the checked form reports the best achievable point.
        match choose_n_checked_for(BackendKind::FmaBf16, 2f64.powi(-52), 1024, false).unwrap_err() {
            EmulationError::AccuracyUnreachable {
                best_n, predicted, ..
            } => {
                assert_eq!(best_n, N_MAX_FMA);
                assert_eq!(
                    predicted,
                    predicted_error_for(BackendKind::FmaBf16, N_MAX_FMA, 1024)
                );
            }
            e => panic!("expected AccuracyUnreachable, got {e:?}"),
        }
        // Int8 delegation is exact.
        assert_eq!(
            choose_n_for(BackendKind::Int8, 1e-8, 512, false),
            choose_n(1e-8, 512, false)
        );
    }

    #[test]
    fn predictions_monotone_in_n() {
        for k in [256usize, 4096] {
            for n in 2..N_MAX {
                assert!(predicted_error(n + 1, k) < predicted_error(n, k));
            }
        }
    }
}
