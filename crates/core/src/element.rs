//! The sealed element trait behind the element-generic GEMM facade.
//!
//! Ozaki Scheme II natively emulates over exact integer products, so both
//! supported precisions run the *same* f64 pipeline: f32 operands are
//! widened **exactly** on gather (inside the fused trunc+convert staging
//! tile — no widened copy of the operand ever exists) and the fold output
//! is narrowed once at the end. [`Element`] captures the handful of
//! precision-specific facts — the conversion-threshold flag `b = 64/32`,
//! the supported moduli range, and the exact widen/narrow hops — and is
//! sealed to `f64` and `f32`: the set of precisions is a property of the
//! scheme (§4), not an extension point.

use crate::convert::ElemSlice;
use crate::moduli::{N_MAX, N_MAX_SGEMM};

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A GEMM element type (`f64` or `f32`; sealed — see the module docs).
pub trait Element:
    Copy
    + Default
    + PartialEq
    + Send
    + Sync
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + sealed::Sealed
    + 'static
{
    /// Whether the DGEMM (`b = 64`) conversion thresholds apply (`false`
    /// selects the SGEMM `b = 32` thresholds).
    const IS_F64: bool;
    /// Largest supported moduli count for this precision's pipeline.
    const N_MAX: usize;
    /// The multiplicative identity (BLAS `alpha` default).
    const ONE: Self;
    /// The additive identity (BLAS `beta` default).
    const ZERO: Self;

    /// Exact widening into the f64 pipeline domain.
    fn to_f64(self) -> f64;
    /// Narrowing from the f64 fold output (identity for f64, RNE for f32).
    fn from_f64(x: f64) -> Self;
    /// Finite (neither NaN nor infinite)?
    fn is_finite_elem(self) -> bool;
    /// Tag a slice for the fused trunc+convert sweep (which widens f32
    /// lanes exactly while gathering).
    fn elem_slice(s: &[Self]) -> ElemSlice<'_>;
    /// `Some` iff the element type *is* f64 — the zero-copy escape hatch
    /// that lets the generic facade fold directly into an f64 output
    /// buffer without a staging pass.
    fn as_f64_slice_mut(s: &mut [Self]) -> Option<&mut [f64]>;
}

impl Element for f64 {
    const IS_F64: bool = true;
    const N_MAX: usize = N_MAX;
    const ONE: f64 = 1.0;
    const ZERO: f64 = 0.0;

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }
    #[inline]
    fn is_finite_elem(self) -> bool {
        self.is_finite()
    }
    #[inline]
    fn elem_slice(s: &[f64]) -> ElemSlice<'_> {
        ElemSlice::F64(s)
    }
    #[inline]
    fn as_f64_slice_mut(s: &mut [f64]) -> Option<&mut [f64]> {
        Some(s)
    }
}

impl Element for f32 {
    const IS_F64: bool = false;
    const N_MAX: usize = N_MAX_SGEMM;
    const ONE: f32 = 1.0;
    const ZERO: f32 = 0.0;

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }
    #[inline]
    fn is_finite_elem(self) -> bool {
        self.is_finite()
    }
    #[inline]
    fn elem_slice(s: &[f32]) -> ElemSlice<'_> {
        ElemSlice::F32(s)
    }
    #[inline]
    fn as_f64_slice_mut(_: &mut [f32]) -> Option<&mut [f64]> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_is_exact_and_narrowing_rounds() {
        assert_eq!(<f32 as Element>::to_f64(0.1f32), 0.1f32 as f64);
        assert_eq!(<f32 as Element>::from_f64(0.1), 0.1f32);
        assert_eq!(<f64 as Element>::from_f64(0.1), 0.1);
        let flags = [<f64 as Element>::IS_F64, <f32 as Element>::IS_F64];
        assert_eq!(flags, [true, false]);
        assert_eq!(<f32 as Element>::N_MAX, N_MAX_SGEMM);
    }

    #[test]
    fn f64_slices_pass_through() {
        let mut d = [1.0f64, 2.0];
        assert!(<f64 as Element>::as_f64_slice_mut(&mut d).is_some());
        let mut s = [1.0f32, 2.0];
        assert!(<f32 as Element>::as_f64_slice_mut(&mut s).is_none());
    }
}
