//! Lines 4–5 of Algorithm 1: `A'_i = rmod(A', p_i)`, `B'_i = rmod(B', p_i)`
//! as INT8 residues, via the fast FMA-based `rmod` of §4.2.
//!
//! The built-in `fmod` is slow, so the paper reduces with
//! `y ← fma(round(x·p_inv), -p, x)` followed by up to two single-precision
//! correction steps, gated on `N` (the larger `N`, the larger the scaled
//! integers `|a'| ≤ 2^{P'_budget}`, and the larger the first-step residual):
//! `(N1, N2) = (13, 19)` for `b = 64` and `(5, 11)` for `b = 32`.
//!
//! Two deliberate deviations (documented in `docs/ARCHITECTURE.md`):
//!
//! * when three steps are required (`N ≥ N2`) the second step runs in f64
//!   before the narrowing to f32. For `N ∈ {19, 20}` the exact first-step
//!   residual can reach ~2^25, which does not round-trip through f32;
//!   keeping one more step in f64 preserves exactness of the residue.
//!   Below `N2` the kernel is literally the paper's.
//! * `round` is round-to-nearest **ties-to-even** (`roundscale` /
//!   `round_ties_even`), not ties-away. Any nearest rounding keeps the
//!   residual bound `|y| ≤ p/2 + ε`, and RNE is the mode the vector units
//!   implement natively — using it everywhere is what lets the SIMD paths
//!   below stay bit-identical to the scalar kernel, lane for lane.
//!
//! # The fused trunc+convert phase
//!
//! Converting a full operand is the memory-bound half of the pipeline, so
//! [`trunc_convert_pack_panels`] fuses Algorithm 1 lines 2–5 with the
//! INT8 engine's operand packing: each operand tile is gathered from the
//! *original* matrix (transposing for `A`), scaled by its power-of-two
//! exponent and truncated into a cache-resident staging tile
//! ([`crate::scale::strunc_row`]), reduced against *all* `N` moduli while
//! L1-resident, and the i8 residues are sign-extended and written straight
//! into the engine's `i16` panel layout
//! ([`gemm_engine::pack_panels_i16`]). The integer matrices `A'`/`B'` and
//! the plane-major i8 buffers of the unfused pipeline — and the engine's
//! own packing sweep — disappear entirely. [`convert_pack_panels`] is the
//! lines-4–5-only form for pretruncated input.
//!
//! The inner scale+trunc and `rmod` row kernels are independently
//! runtime-dispatched (AVX-512 → AVX2+FMA → scalar; forced to scalar by
//! `OZAKI_FORCE_SCALAR=1`). The scalar kernels ([`rmod_row_scalar`],
//! [`crate::scale::strunc_row_scalar`]) are the property-test oracles:
//! every SIMD path must produce bit-identical residues for every lane,
//! every step count, and every thread count.

use crate::consts::Constants;
use crate::scale::{pow2_split, strunc_row, strunc_row_inplace};
use gemm_obs::TimeShare;
use rayon::prelude::*;
use std::time::Instant;

/// Correction-step thresholds for the DGEMM (`b = 64`) kernel.
pub const N1_F64: usize = 13;
/// Second threshold for `b = 64`.
pub const N2_F64: usize = 19;
/// Correction-step thresholds for the SGEMM (`b = 32`) kernel.
pub const N1_F32: usize = 5;
/// Second threshold for `b = 32`.
pub const N2_F32: usize = 11;

/// Depth block of the fused convert: `2048` f64s (16 KiB) stay L1-resident
/// while all `N` moduli reduce them.
pub const CONVERT_DEPTH_BLOCK: usize = 2048;

/// Number of reduction steps for a given N and input width.
#[inline]
pub fn steps_for(n: usize, b64: bool) -> u8 {
    let (n1, n2) = if b64 {
        (N1_F64, N2_F64)
    } else {
        (N1_F32, N2_F32)
    };
    1 + (n >= n1) as u8 + (n >= n2) as u8
}

/// `rmod(x, p)` for an integer-valued f64 `x`, wrapped into INT8.
///
/// The result is the symmetric residue in `[-p/2, p/2]`; the single corner
/// case `+128` (p = 256) wraps to `-128`, which is congruent mod 256.
/// Rounding is ties-to-even throughout (see the module docs) so this scalar
/// kernel is the exact lane oracle for the SIMD paths.
#[inline]
pub fn rmod_to_i8(x: f64, p: f64, p32: f32, pinv64: f64, pinv32: f32, steps: u8) -> i8 {
    // Step 1 (always): one f64 FMA reduction.
    let t = (x * pinv64).round_ties_even();
    let y64 = t.mul_add(-p, x);
    let mut y: f32;
    if steps >= 3 {
        // Wide-range second step in f64, then narrow.
        let t2 = (y64 * pinv64).round_ties_even();
        y = t2.mul_add(-p, y64) as f32;
        let t3 = (y * pinv32).round_ties_even();
        y = t3.mul_add(-p32, y);
    } else {
        y = y64 as f32;
        if steps >= 2 {
            let t2 = (y * pinv32).round_ties_even();
            y = t2.mul_add(-p32, y);
        }
    }
    // Wrapping cast (Rust's `as i8` from float saturates; the paper relies
    // on the wrap of 128 -> -128, so go through i32 -> u8).
    (y as i32) as u8 as i8
}

// ---------------------------------------------------------------------------
// Vectorized rmod row kernels (runtime-dispatched)
// ---------------------------------------------------------------------------

/// Which `rmod` row kernel the running CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConvKernel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

fn detect_conv_kernel() -> ConvKernel {
    if gemm_engine::force_scalar() {
        return ConvKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx2")
            && is_x86_feature_detected!("fma")
        {
            return ConvKernel::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return ConvKernel::Avx2;
        }
    }
    ConvKernel::Scalar
}

fn conv_kernel() -> ConvKernel {
    static KERNEL: std::sync::OnceLock<ConvKernel> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(detect_conv_kernel)
}

/// Human-readable name of the `rmod` kernel the running CPU dispatches to.
pub fn convert_kernel_name() -> &'static str {
    match conv_kernel() {
        #[cfg(target_arch = "x86_64")]
        ConvKernel::Avx512 => "avx512",
        #[cfg(target_arch = "x86_64")]
        ConvKernel::Avx2 => "avx2-fma",
        ConvKernel::Scalar => "scalar",
    }
}

/// Scalar `rmod` row kernel: `dst[i] = rmod(xs[i], p)` sign-extended to
/// i16 (the engine's packed element type). This is the reference the SIMD
/// paths are property-tested against, lane for lane.
pub fn rmod_row_scalar(
    xs: &[f64],
    dst: &mut [i16],
    p: f64,
    p32: f32,
    pinv64: f64,
    pinv32: f32,
    steps: u8,
) {
    for (d, &x) in dst.iter_mut().zip(xs) {
        *d = rmod_to_i8(x, p, p32, pinv64, pinv32, steps) as i16;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX-512 / AVX2 `rmod` row kernels. Every operation mirrors the
    //! scalar kernel exactly: multiply, round-to-nearest-even
    //! (`roundscale` / `roundpd`), fused multiply-add, f64→f32 narrowing
    //! (RNE), and a final wrap of the integral residue into the i8 range
    //! before sign-extension to i16 — so the output is bit-identical to
    //! [`super::rmod_row_scalar`] for every lane.

    use std::arch::x86_64::*;

    /// `_MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC`.
    const RNE: i32 = 0x08;

    /// # Safety
    /// Caller must ensure AVX-512F, AVX2 and FMA are available and that
    /// `dst.len() >= xs.len()`.
    #[target_feature(enable = "avx512f,avx2,fma")]
    pub unsafe fn rmod_row_avx512(
        xs: &[f64],
        dst: &mut [i16],
        p: f64,
        p32: f32,
        pinv64: f64,
        pinv32: f32,
        steps: u8,
    ) {
        debug_assert!(dst.len() >= xs.len());
        let n8 = xs.len() / 8 * 8;
        let npv = _mm512_set1_pd(-p);
        let piv = _mm512_set1_pd(pinv64);
        let np32v = _mm256_set1_ps(-p32);
        let piv32 = _mm256_set1_ps(pinv32);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(xs.as_ptr().add(i));
            let t = _mm512_roundscale_pd::<RNE>(_mm512_mul_pd(x, piv));
            let y64 = _mm512_fmadd_pd(t, npv, x);
            let y32: __m256 = if steps >= 3 {
                let t2 = _mm512_roundscale_pd::<RNE>(_mm512_mul_pd(y64, piv));
                let y64b = _mm512_fmadd_pd(t2, npv, y64);
                let yf = _mm512_cvtpd_ps(y64b);
                let t3 = _mm256_round_ps::<RNE>(_mm256_mul_ps(yf, piv32));
                _mm256_fmadd_ps(t3, np32v, yf)
            } else {
                let yf = _mm512_cvtpd_ps(y64);
                if steps >= 2 {
                    let t2 = _mm256_round_ps::<RNE>(_mm256_mul_ps(yf, piv32));
                    _mm256_fmadd_ps(t2, np32v, yf)
                } else {
                    yf
                }
            };
            // Integral residue -> i32 lanes (exact), wrap into i8, widen to
            // i16 (packs never saturate: values are in [-128, 127] after
            // the shift pair).
            let vi = _mm256_cvtps_epi32(y32);
            let w = _mm256_srai_epi32::<24>(_mm256_slli_epi32::<24>(vi));
            let packed =
                _mm_packs_epi32(_mm256_castsi256_si128(w), _mm256_extracti128_si256::<1>(w));
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, packed);
            i += 8;
        }
        super::rmod_row_scalar(&xs[n8..], &mut dst[n8..], p, p32, pinv64, pinv32, steps);
    }

    /// # Safety
    /// Caller must ensure AVX2 and FMA are available and that
    /// `dst.len() >= xs.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn rmod_row_avx2(
        xs: &[f64],
        dst: &mut [i16],
        p: f64,
        p32: f32,
        pinv64: f64,
        pinv32: f32,
        steps: u8,
    ) {
        debug_assert!(dst.len() >= xs.len());
        let n4 = xs.len() / 4 * 4;
        let npv = _mm256_set1_pd(-p);
        let piv = _mm256_set1_pd(pinv64);
        let np32v = _mm_set1_ps(-p32);
        let piv32 = _mm_set1_ps(pinv32);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(xs.as_ptr().add(i));
            let t = _mm256_round_pd::<RNE>(_mm256_mul_pd(x, piv));
            let y64 = _mm256_fmadd_pd(t, npv, x);
            let y32: __m128 = if steps >= 3 {
                let t2 = _mm256_round_pd::<RNE>(_mm256_mul_pd(y64, piv));
                let y64b = _mm256_fmadd_pd(t2, npv, y64);
                let yf = _mm256_cvtpd_ps(y64b);
                let t3 = _mm_round_ps::<RNE>(_mm_mul_ps(yf, piv32));
                _mm_fmadd_ps(t3, np32v, yf)
            } else {
                let yf = _mm256_cvtpd_ps(y64);
                if steps >= 2 {
                    let t2 = _mm_round_ps::<RNE>(_mm_mul_ps(yf, piv32));
                    _mm_fmadd_ps(t2, np32v, yf)
                } else {
                    yf
                }
            };
            let vi = _mm_cvtps_epi32(y32);
            let w = _mm_srai_epi32::<24>(_mm_slli_epi32::<24>(vi));
            let packed = _mm_packs_epi32(w, w);
            _mm_storel_epi64(dst.as_mut_ptr().add(i) as *mut __m128i, packed);
            i += 4;
        }
        super::rmod_row_scalar(&xs[n4..], &mut dst[n4..], p, p32, pinv64, pinv32, steps);
    }
}

/// Vectorized `rmod` over a row of integer-valued f64s, writing residues
/// sign-extended to i16 (the engine's packed element type). Dispatches to
/// the best kernel the CPU supports; bit-identical to [`rmod_row_scalar`]
/// on every path.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn rmod_row(
    xs: &[f64],
    dst: &mut [i16],
    p: f64,
    p32: f32,
    pinv64: f64,
    pinv32: f32,
    steps: u8,
) {
    assert!(dst.len() >= xs.len(), "destination row too short");
    match conv_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: variant selected only after runtime feature detection;
        // the length contract is asserted above.
        ConvKernel::Avx512 => unsafe {
            x86::rmod_row_avx512(xs, dst, p, p32, pinv64, pinv32, steps)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        ConvKernel::Avx2 => unsafe { x86::rmod_row_avx2(xs, dst, p, p32, pinv64, pinv32, steps) },
        ConvKernel::Scalar => rmod_row_scalar(xs, dst, p, p32, pinv64, pinv32, steps),
    }
}

// ---------------------------------------------------------------------------
// Fused trunc+convert -> packed-panel emission
// ---------------------------------------------------------------------------

/// Strided element data for the fused sweep: native f64, or f32 widened
/// **exactly** while gathered into the staging tile (so an f32 operand is
/// never materialised at f64 width — the element-generic facade's
/// zero-copy guarantee extends to SGEMM).
#[derive(Clone, Copy)]
pub enum ElemSlice<'a> {
    /// f64 elements.
    F64(&'a [f64]),
    /// f32 elements (widened per lane on gather; widening is exact, so
    /// the residues are bit-identical to a pre-widened f64 pass).
    F32(&'a [f32]),
}

impl ElemSlice<'_> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            ElemSlice::F64(d) => d.len(),
            ElemSlice::F32(d) => d.len(),
        }
    }

    /// Whether the slice holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gather `tmp.len()` elements starting at `start` with element
    /// stride `stride`, widening f32 lanes exactly.
    #[inline]
    fn gather_strided(&self, tmp: &mut [f64], start: usize, stride: usize) {
        match self {
            ElemSlice::F64(d) => {
                for (t, idx) in tmp.iter_mut().zip((start..).step_by(stride.max(1))) {
                    *t = d[idx];
                }
            }
            ElemSlice::F32(d) => {
                for (t, idx) in tmp.iter_mut().zip((start..).step_by(stride.max(1))) {
                    *t = d[idx] as f64;
                }
            }
        }
    }
}

/// Where the fused trunc+convert sweep reads its `k`-vectors from.
///
/// The `Gathered` / `Contiguous` variants fuse Algorithm 1 lines 2–3 (the
/// diagonal scale + truncation) into the convert sweep: each operand tile
/// is read from DRAM exactly once for scale + reduce + pack, and the
/// intermediate integer matrices `A'`, `B'` never exist in memory. Both
/// take a leading dimension, so any strided [`gemm_dense::MatView`] — any
/// layout, any transpose, any submatrix — feeds the sweep with **zero
/// copies**: rows-of-`A` from a column-major view and columns-of-`B` from
/// a row-major view are `Gathered`; the two opposite pairings are
/// `Contiguous`.
#[derive(Clone, Copy)]
pub enum TruncSource<'a> {
    /// Already scaled+truncated integer-valued vectors, vector `v` at
    /// `v * k` (the layout [`crate::scale::scale_trunc_a_rowmajor`] /
    /// [`crate::scale::scale_trunc_b_colmajor`] emit).
    Pretruncated(&'a [f64]),
    /// Strided gather: vector `v` element `h` at `data[h * ld + v]`
    /// (rows of a column-major operand, or columns of a row-major one),
    /// scaled by `2^{exps[v]}` and truncated on the fly — the fused
    /// transpose gather.
    Gathered {
        /// Strided element data (`(k-1) * ld + vecs` elements at least).
        data: ElemSlice<'a>,
        /// Leading dimension: the element stride between consecutive `h`.
        ld: usize,
        /// Per-vector scale exponents (`vecs` entries).
        exps: &'a [i32],
    },
    /// Contiguous vectors: vector `v` element `h` at `data[v * ld + h]`
    /// (columns of a column-major operand, or rows of a row-major one),
    /// scaled by `2^{exps[v]}` and truncated on the fly.
    Contiguous {
        /// Strided element data (`(vecs-1) * ld + k` elements at least).
        data: ElemSlice<'a>,
        /// Leading dimension: the element stride between vectors.
        ld: usize,
        /// Per-vector scale exponents (`vecs` entries).
        exps: &'a [i32],
    },
}

/// One parallel unit of the fused convert: vectors `[v0, v0 + nv)` of every
/// residue panel.
struct ConvertJob<'a> {
    v0: usize,
    nv: usize,
    /// This job's slice of each modulus' panel set (`nv * kp` each).
    planes: Vec<&'a mut [i16]>,
}

/// The fused convert phase (Algorithm 1 lines 4–5 + engine packing).
///
/// `src` holds `vecs` integer-valued f64 k-vectors — rows of `A'` laid out
/// row-major or columns of `B'` laid out column-major, vector `v` at
/// `v * k` — exactly what the Step 2–3 truncation emits. For each modulus
/// `s`, the residues are written to the panel set
/// `out[s * vecs_pad * kp ..][.. vecs_pad * kp]` in the INT8 engine's
/// packed i16 layout ([`gemm_engine::pack_panels_i16`]): vector `v` at
/// `v * kp`, sign-extended residues, depth zero-padded from `k` to `kp`,
/// vector count zero-padded to `vecs_pad`.
///
/// The sweep is cache-blocked ([`CONVERT_DEPTH_BLOCK`] f64s are reduced
/// against all `N` moduli while L1-resident, so `src` streams from DRAM
/// once instead of `N` times) and split over `vecs` for rayon when
/// `parallel` is set. The output is bit-identical for every kernel, thread
/// count and split: workers own disjoint vector ranges and the row kernels
/// are lane-exact against [`rmod_row_scalar`].
///
/// # Panics
/// If `out` is not exactly `N * vecs_pad * kp` elements, `src` is shorter
/// than `vecs * k`, `vecs_pad < vecs`, or `kp < k`.
#[allow(clippy::too_many_arguments)]
pub fn convert_pack_panels(
    src: &[f64],
    vecs: usize,
    vecs_pad: usize,
    k: usize,
    kp: usize,
    consts: &Constants,
    b64: bool,
    parallel: bool,
    out: &mut [i16],
) {
    trunc_convert_pack_panels(
        TruncSource::Pretruncated(src),
        vecs,
        vecs_pad,
        k,
        kp,
        consts,
        b64,
        parallel,
        out,
        None,
    );
}

/// The fused trunc+convert phase (Algorithm 1 lines 2–5 + engine packing).
///
/// Generalizes [`convert_pack_panels`] to read directly from the *unscaled*
/// operand matrices ([`TruncSource::Gathered`] /
/// [`TruncSource::Contiguous`], leading-dimension strided, f64 or exactly
/// widened f32): each cache-resident operand tile is gathered (transposing
/// where the layout demands it), scaled by its power-of-two exponent,
/// truncated, reduced against all `N` moduli and written as packed i16
/// panels in one DRAM pass — the intermediate integer matrices of the
/// unfused pipeline never exist, and neither does any layout-normalised
/// copy of a strided operand view.
///
/// The scale+trunc inner kernels ([`crate::scale::strunc_row`]) and the
/// `rmod` row kernels are independently runtime-dispatched and each
/// bit-identical to its scalar oracle, so the fused output equals the
/// unfused composition `scale_trunc_* → convert_pack_panels` bitwise for
/// every kernel, thread count and split.
///
/// `timing`, when given, accumulates per-job trunc vs total CPU
/// nanoseconds for phase attribution (a [`TimeShare`] from `gemm_obs`:
/// the caller splits its wall-clock measurement by `fraction()` — exact
/// on one worker, a faithful CPU-share attribution on many). Each job
/// additionally emits a `convert_job` span when observability is enabled.
///
/// # Panics
/// As [`convert_pack_panels`]; additionally if a fused source's `exps`
/// length does not cover `vecs`.
#[allow(clippy::too_many_arguments)]
pub fn trunc_convert_pack_panels(
    src: TruncSource<'_>,
    vecs: usize,
    vecs_pad: usize,
    k: usize,
    kp: usize,
    consts: &Constants,
    b64: bool,
    parallel: bool,
    out: &mut [i16],
    timing: Option<&TimeShare>,
) {
    let nmod = consts.n;
    assert!(vecs_pad >= vecs, "vector padding below count");
    assert!(kp >= k, "depth padding below depth");
    match src {
        TruncSource::Pretruncated(data) => {
            assert!(data.len() >= vecs * k, "source buffer too short");
        }
        TruncSource::Gathered { data, ld, exps } => {
            assert!(ld >= vecs, "leading dimension below vector count");
            if vecs > 0 && k > 0 {
                assert!(data.len() >= (k - 1) * ld + vecs, "source buffer too short");
            }
            assert!(exps.len() >= vecs, "exponent vector too short");
        }
        TruncSource::Contiguous { data, ld, exps } => {
            assert!(ld >= k, "leading dimension below depth");
            if vecs > 0 && k > 0 {
                assert!(data.len() >= (vecs - 1) * ld + k, "source buffer too short");
            }
            assert!(exps.len() >= vecs, "exponent vector too short");
        }
    }
    assert_eq!(out.len(), nmod * vecs_pad * kp, "panel buffer mismatch");
    if vecs_pad == 0 || kp == 0 {
        return;
    }
    let steps = steps_for(nmod, b64);

    // Coarse vector blocks: enough tasks to balance, few enough that each
    // worker streams long contiguous panel runs.
    let workers = if parallel {
        rayon::current_num_threads()
    } else {
        1
    };
    let tasks = (workers * 4).clamp(1, vecs_pad);
    let vb = vecs_pad.div_ceil(tasks);

    let mut plane_rests: Vec<&mut [i16]> = out.chunks_mut(vecs_pad * kp).collect();
    let mut jobs: Vec<ConvertJob<'_>> = Vec::with_capacity(tasks);
    let mut v0 = 0;
    while v0 < vecs_pad {
        let nv = vb.min(vecs_pad - v0);
        let planes: Vec<&mut [i16]> = plane_rests
            .iter_mut()
            .map(|rest| {
                let (head, tail) = std::mem::take(rest).split_at_mut(nv * kp);
                *rest = tail;
                head
            })
            .collect();
        jobs.push(ConvertJob { v0, nv, planes });
        v0 += nv;
    }

    let run = |job: ConvertJob<'_>| convert_job(src, vecs, k, kp, consts, steps, timing, job);
    if !parallel || jobs.len() == 1 {
        jobs.into_iter().for_each(run);
    } else {
        jobs.into_par_iter().for_each(run);
    }
}

/// Convert one job's vector range across all moduli (cache-blocked depth).
#[allow(clippy::too_many_arguments)]
fn convert_job(
    src: TruncSource<'_>,
    vecs: usize,
    k: usize,
    kp: usize,
    consts: &Constants,
    steps: u8,
    timing: Option<&TimeShare>,
    job: ConvertJob<'_>,
) {
    let ConvertJob { v0, nv, mut planes } = job;
    let job_t0 = timing.map(|_| Instant::now());
    let mut trunc_ns = 0u64;
    // Scale+trunc staging tile: stays L1-resident while all N moduli
    // reduce it, so the fused sources stream each operand tile from DRAM
    // exactly once.
    let mut tmp = [0.0f64; CONVERT_DEPTH_BLOCK];
    for vl in 0..nv {
        let v = v0 + vl;
        let base = vl * kp;
        if v >= vecs {
            // Padding vector: all-zero in every panel.
            for plane in planes.iter_mut() {
                plane[base..base + kp].fill(0);
            }
            continue;
        }
        let mut off = 0;
        while off < k {
            let len = CONVERT_DEPTH_BLOCK.min(k - off);
            let xs: &[f64] = match src {
                TruncSource::Pretruncated(data) => &data[v * k + off..v * k + off + len],
                TruncSource::Gathered { data, ld, exps } => {
                    let t0 = timing.map(|_| Instant::now());
                    let (s1, s2) = pow2_split(exps[v]);
                    // Fused transpose gather: strided source, contiguous
                    // tile (f32 lanes widen exactly here). Consecutive
                    // vectors of this job re-hit the same source cache
                    // lines while they are still resident.
                    data.gather_strided(&mut tmp[..len], off * ld + v, ld);
                    strunc_row_inplace(&mut tmp[..len], s1, s2);
                    if let Some(t0) = t0 {
                        trunc_ns += t0.elapsed().as_nanos() as u64;
                    }
                    &tmp[..len]
                }
                TruncSource::Contiguous { data, ld, exps } => {
                    let t0 = timing.map(|_| Instant::now());
                    let (s1, s2) = pow2_split(exps[v]);
                    match data {
                        ElemSlice::F64(d) => strunc_row(
                            &d[v * ld + off..v * ld + off + len],
                            &mut tmp[..len],
                            s1,
                            s2,
                        ),
                        ElemSlice::F32(_) => {
                            data.gather_strided(&mut tmp[..len], v * ld + off, 1);
                            strunc_row_inplace(&mut tmp[..len], s1, s2);
                        }
                    }
                    if let Some(t0) = t0 {
                        trunc_ns += t0.elapsed().as_nanos() as u64;
                    }
                    &tmp[..len]
                }
            };
            for (s, plane) in planes.iter_mut().enumerate() {
                rmod_row(
                    xs,
                    &mut plane[base + off..base + off + len],
                    consts.p_f64[s],
                    consts.p_f32[s],
                    consts.p_inv_f64[s],
                    consts.p_inv_f32[s],
                    steps,
                );
            }
            off += len;
        }
        for plane in planes.iter_mut() {
            plane[base + k..base + kp].fill(0);
        }
    }
    if let (Some(t), Some(t0)) = (timing, job_t0) {
        let job_ns = t0.elapsed().as_nanos() as u64;
        t.add(trunc_ns, job_ns);
        // One span per job (not per tile): end-anchored on the obs clock
        // using the already-measured duration, so the disabled path never
        // reads the clock.
        let end = gemm_obs::now_ns();
        if end != 0 {
            gemm_obs::record_span("convert_job", "convert", end.saturating_sub(job_ns), end);
        }
    }
}

// ---------------------------------------------------------------------------
// Reference (unfused) conversion
// ---------------------------------------------------------------------------

/// Convert one integer-valued buffer (row-major `A'` or column-major `B'`)
/// into `N` INT8 residue planes stored plane-major in `out`
/// (`out[s * len + idx] = rmod(src[idx], p_s)`).
///
/// This is the *unfused* PR 1 convert kernel — one full sweep over `src`
/// per modulus, emitting plane-major i8. The hot pipeline now uses
/// [`convert_pack_panels`] instead; this stays as the structurally
/// independent reference the fused path is property-tested against (both
/// build on [`rmod_to_i8`], so they agree bit-for-bit), and as the
/// convenient form for consumers that want plain residue planes.
///
/// # Examples
/// ```
/// use ozaki2::consts::constants;
/// use ozaki2::convert::{residue_planes, rmod_reference};
///
/// let c = constants(3);
/// let src = [100.0, -300.0]; // integer-valued, as Step 2 truncation emits
/// let mut planes = vec![0i8; 3 * src.len()];
/// residue_planes(&src, c, true, &mut planes);
/// for s in 0..3 {
///     for (i, &x) in src.iter().enumerate() {
///         let got = planes[s * src.len() + i] as i64;
///         let want = rmod_reference(x, c.p[s]) as i64;
///         assert_eq!(got.rem_euclid(c.p[s] as i64), want.rem_euclid(c.p[s] as i64));
///     }
/// }
/// ```
pub fn residue_planes(src: &[f64], consts: &Constants, b64: bool, out: &mut [i8]) {
    let len = src.len();
    let n = consts.n;
    assert_eq!(out.len(), n * len, "plane buffer mismatch");
    let steps = steps_for(n, b64);
    out.chunks_exact_mut(len)
        .enumerate()
        .for_each(|(s, plane)| {
            let p = consts.p_f64[s];
            let p32 = consts.p_f32[s];
            let pinv64 = consts.p_inv_f64[s];
            let pinv32 = consts.p_inv_f32[s];
            plane
                .par_chunks_mut(16 * 1024)
                .zip(src.par_chunks(16 * 1024))
                .for_each(|(dst, xs)| {
                    for (d, &x) in dst.iter_mut().zip(xs) {
                        *d = rmod_to_i8(x, p, p32, pinv64, pinv32, steps);
                    }
                });
        });
}

/// Reference `rmod` via exact integer arithmetic (tests only).
pub fn rmod_reference(x: f64, p: u64) -> i8 {
    debug_assert_eq!(x.fract(), 0.0);
    let xi = gemm_exact::I256::from_f64_exact(x);
    let r = xi.rem_euclid_u64(p); // in [0, p)
    let half = p / 2;
    let signed = if p.is_multiple_of(2) {
        // Symmetric with the +p/2 boundary kept positive then wrapped:
        // round-half-away on x/p maps |rem| = p/2 to the sign of x.
        if r > half || (r == half && x < 0.0) {
            r as i64 - p as i64
        } else {
            r as i64
        }
    } else if r > half {
        r as i64 - p as i64
    } else {
        r as i64
    };
    (signed as i32) as u8 as i8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::constants;

    fn check_residue(x: f64, s: usize, c: &Constants, steps: u8) {
        let got = rmod_to_i8(
            x,
            c.p_f64[s],
            c.p_f32[s],
            c.p_inv_f64[s],
            c.p_inv_f32[s],
            steps,
        );
        let p = c.p[s];
        // Residues must agree mod p (the i8 may legitimately differ by p
        // only through the documented ±p/2 tie, which is still congruent).
        let want = gemm_exact::I256::from_f64_exact(x).rem_euclid_u64(p);
        let got_mod = (got as i64).rem_euclid(p as i64) as u64;
        assert_eq!(got_mod, want, "x={x} p={p} got={got}");
    }

    #[test]
    fn rmod_small_exhaustive() {
        let c = constants(4);
        let steps = steps_for(4, true);
        for s in 0..4 {
            for x in -2000i64..=2000 {
                check_residue(x as f64, s, c, steps);
            }
        }
    }

    #[test]
    fn rmod_large_values_dgemm_n15() {
        let c = constants(15);
        let steps = steps_for(15, true);
        // Values up to the fast-mode magnitude bound 2^p_fast ≈ 2^58.
        let bound = 2f64.powf(c.p_fast);
        let mut x = 1.0f64;
        while x < bound {
            for s in 0..15 {
                check_residue(x.trunc(), s, c, steps);
                check_residue(-x.trunc(), s, c, steps);
                check_residue((x * 0.7360328).trunc(), s, c, steps);
            }
            x *= 1.9173;
        }
    }

    #[test]
    fn rmod_extreme_n20() {
        let c = constants(20);
        let steps = steps_for(20, true);
        assert_eq!(steps, 3);
        let bound = 2f64.powf(c.p_fast); // ~2^76.9
        let mut x = 1.0f64;
        while x < bound {
            for s in 0..20 {
                check_residue(x.trunc(), s, c, steps);
                check_residue((-x * 0.9418).trunc(), s, c, steps);
            }
            x *= 2.3719;
        }
    }

    #[test]
    fn plus_half_p_wraps_for_256() {
        let c = constants(2);
        // x = ±128: the quotient tie ±0.5 rounds to even (0), so the
        // residue stays ±128; the +128 case must wrap to -128 on the INT8
        // cast.
        let r = rmod_to_i8(-128.0, 256.0, 256.0, c.p_inv_f64[0], c.p_inv_f32[0], 1);
        assert_eq!(r, -128);
        let r2 = rmod_to_i8(128.0, 256.0, 256.0, c.p_inv_f64[0], c.p_inv_f32[0], 1);
        assert_eq!(r2, -128);
    }

    #[test]
    fn steps_thresholds_match_paper() {
        assert_eq!(steps_for(2, true), 1);
        assert_eq!(steps_for(12, true), 1);
        assert_eq!(steps_for(13, true), 2);
        assert_eq!(steps_for(18, true), 2);
        assert_eq!(steps_for(19, true), 3);
        assert_eq!(steps_for(4, false), 1);
        assert_eq!(steps_for(5, false), 2);
        assert_eq!(steps_for(10, false), 2);
        assert_eq!(steps_for(11, false), 3);
    }

    #[test]
    fn residue_planes_layout() {
        let c = constants(3);
        let src = [100.0f64, -100.0, 300.0, -300.0];
        let mut out = vec![0i8; 3 * 4];
        residue_planes(&src, c, true, &mut out);
        for s in 0..3 {
            for (idx, &x) in src.iter().enumerate() {
                let want = rmod_reference(x, c.p[s]);
                let got = out[s * 4 + idx];
                assert_eq!(
                    (got as i64).rem_euclid(c.p[s] as i64),
                    (want as i64).rem_euclid(c.p[s] as i64),
                    "s={s} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn reference_rmod_symmetric() {
        for p in [251u64, 256] {
            for x in -600i64..=600 {
                let r = rmod_reference(x as f64, p) as i64;
                assert_eq!((x - r).rem_euclid(p as i64), 0, "x={x} p={p}");
                assert!(r.abs() <= (p / 2) as i64, "x={x} p={p} r={r}");
            }
        }
    }

    /// Exercise rows through every step regime with awkward lengths (SIMD
    /// body + scalar tail) and wrap-prone values (multiples of p, ±p/2).
    fn parity_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for len in [1usize, 3, 7, 8, 9, 16, 31, 64, 100] {
            let mut row = Vec::with_capacity(len);
            for i in 0..len {
                let v = match i % 5 {
                    0 => (i as f64) * 128.0 - 300.0,
                    1 => -(i as f64) * 12_345.0,
                    2 => (i as f64 + 1.0) * 256.0 * 128.0, // ±p/2 multiples for 256
                    3 => 2f64.powi(20 + (i % 30) as i32).trunc(),
                    _ => -(2f64.powi(15 + (i % 40) as i32) * 0.73).trunc(),
                };
                row.push(v);
            }
            rows.push(row);
        }
        rows
    }

    #[test]
    fn dispatched_rmod_row_bit_identical_to_scalar() {
        for nmod in [2usize, 13, 20] {
            let c = constants(nmod);
            for b64 in [true, false] {
                if !b64 && nmod > crate::moduli::N_MAX_SGEMM {
                    continue;
                }
                let steps = steps_for(nmod, b64);
                for row in parity_rows() {
                    // Keep values within the magnitude budget of this N.
                    let bound = 2f64.powf(c.p_fast);
                    let row: Vec<f64> = row
                        .iter()
                        .map(|&x| if x.abs() < bound { x } else { x % bound })
                        .map(|x| x.trunc())
                        .collect();
                    for s in 0..nmod {
                        let mut got = vec![0i16; row.len()];
                        let mut want = vec![0i16; row.len()];
                        rmod_row(
                            &row,
                            &mut got,
                            c.p_f64[s],
                            c.p_f32[s],
                            c.p_inv_f64[s],
                            c.p_inv_f32[s],
                            steps,
                        );
                        rmod_row_scalar(
                            &row,
                            &mut want,
                            c.p_f64[s],
                            c.p_f32[s],
                            c.p_inv_f64[s],
                            c.p_inv_f32[s],
                            steps,
                        );
                        assert_eq!(
                            got,
                            want,
                            "kernel={} N={nmod} s={s} steps={steps}",
                            convert_kernel_name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_panels_match_reference_planes() {
        // convert_pack_panels == residue_planes + pack_panels_i16, bitwise,
        // for ragged shapes and both parallel settings.
        use gemm_engine::{pack_panels_i16, padded_a_rows, padded_depth};
        for (vecs, k) in [(1usize, 1usize), (3, 5), (7, 33), (12, 100), (5, 2048 + 17)] {
            let nmod = 15;
            let c = constants(nmod);
            let src: Vec<f64> = (0..vecs * k)
                .map(|i| ((i as f64 * 97.0 + 13.0) * 1009.0 - 50_000.0).trunc())
                .collect();
            let vecs_pad = padded_a_rows(vecs);
            let kp = padded_depth(k);

            let mut planes8 = vec![0i8; nmod * vecs * k];
            residue_planes(&src, c, true, &mut planes8);
            let mut want = vec![0i16; nmod * vecs_pad * kp];
            for s in 0..nmod {
                let mut pack = Vec::new();
                pack_panels_i16(
                    &mut pack,
                    &planes8[s * vecs * k..(s + 1) * vecs * k],
                    k,
                    vecs,
                    vecs_pad,
                    k,
                    kp,
                );
                want[s * vecs_pad * kp..(s + 1) * vecs_pad * kp].copy_from_slice(&pack);
            }

            for parallel in [false, true] {
                let mut got = vec![-1i16; nmod * vecs_pad * kp];
                convert_pack_panels(&src, vecs, vecs_pad, k, kp, c, true, parallel, &mut got);
                assert_eq!(got, want, "vecs={vecs} k={k} parallel={parallel}");
            }
        }
    }

    #[test]
    fn fused_trunc_sources_match_unfused_composition() {
        // trunc_convert_pack_panels with a fused source must equal the
        // standalone scale_trunc_* pass followed by the pretruncated
        // convert, bitwise, for both operand layouts and both splits.
        use crate::scale::{
            fast_scale_cols, fast_scale_rows, scale_trunc_a_rowmajor, scale_trunc_b_colmajor,
        };
        use gemm_dense::workload::phi_matrix_f64;
        use gemm_engine::{padded_a_rows, padded_b_cols, padded_depth};
        let nmod = 13;
        let c = constants(nmod);
        for (vecs, k) in [(1usize, 1usize), (5, 37), (12, 100), (3, 2048 + 17)] {
            // Operand A: rows of a column-major vecs × k matrix.
            let a = phi_matrix_f64(vecs, k, 1.0, 3, 0);
            let exps_a = fast_scale_rows(&a, c.p_fast);
            let vecs_pad = padded_a_rows(vecs);
            let kp = padded_depth(k);
            let mut pretrunc = vec![0f64; vecs * k];
            scale_trunc_a_rowmajor(&a, &exps_a, &mut pretrunc);
            let mut want = vec![0i16; nmod * vecs_pad * kp];
            convert_pack_panels(&pretrunc, vecs, vecs_pad, k, kp, c, true, false, &mut want);
            for parallel in [false, true] {
                let mut got = vec![-1i16; nmod * vecs_pad * kp];
                let timing = TimeShare::new();
                trunc_convert_pack_panels(
                    TruncSource::Gathered {
                        data: ElemSlice::F64(a.as_slice()),
                        ld: vecs,
                        exps: &exps_a,
                    },
                    vecs,
                    vecs_pad,
                    k,
                    kp,
                    c,
                    true,
                    parallel,
                    &mut got,
                    Some(&timing),
                );
                assert_eq!(got, want, "A-source vecs={vecs} k={k} parallel={parallel}");
                assert!(timing.total_ns() > 0);
                assert!(timing.fraction() > 0.0 && timing.fraction() < 1.0);
            }

            // Operand B: columns of a column-major k × vecs matrix.
            let b = phi_matrix_f64(k, vecs, 1.0, 4, 1);
            let exps_b = fast_scale_cols(&b, c.p_fast);
            let vecs_pad_b = padded_b_cols(vecs);
            let mut pretrunc_b = vec![0f64; vecs * k];
            scale_trunc_b_colmajor(&b, &exps_b, &mut pretrunc_b);
            let mut want_b = vec![0i16; nmod * vecs_pad_b * kp];
            convert_pack_panels(
                &pretrunc_b,
                vecs,
                vecs_pad_b,
                k,
                kp,
                c,
                true,
                false,
                &mut want_b,
            );
            for parallel in [false, true] {
                let mut got = vec![-1i16; nmod * vecs_pad_b * kp];
                trunc_convert_pack_panels(
                    TruncSource::Contiguous {
                        data: ElemSlice::F64(b.as_slice()),
                        ld: k,
                        exps: &exps_b,
                    },
                    vecs,
                    vecs_pad_b,
                    k,
                    kp,
                    c,
                    true,
                    parallel,
                    &mut got,
                    None,
                );
                assert_eq!(
                    got, want_b,
                    "B-source vecs={vecs} k={k} parallel={parallel}"
                );
            }
        }
    }

    #[test]
    fn fused_panels_zero_padding() {
        // Padding rows and the depth tail must be zero even when the
        // buffer starts dirty.
        use gemm_engine::{padded_b_cols, padded_depth};
        let (vecs, k) = (5usize, 37usize);
        let nmod = 4;
        let c = constants(nmod);
        let vecs_pad = padded_b_cols(vecs); // 8
        let kp = padded_depth(k); // 64
        let src: Vec<f64> = (0..vecs * k).map(|i| (i as f64 * 7.0) - 50.0).collect();
        let mut out = vec![0x55i16; nmod * vecs_pad * kp];
        convert_pack_panels(&src, vecs, vecs_pad, k, kp, c, true, true, &mut out);
        for s in 0..nmod {
            let panel = &out[s * vecs_pad * kp..(s + 1) * vecs_pad * kp];
            for v in 0..vecs_pad {
                for h in 0..kp {
                    let e = panel[v * kp + h];
                    if v >= vecs || h >= k {
                        assert_eq!(e, 0, "s={s} v={v} h={h} must be padding");
                    } else {
                        assert!((-128..=127).contains(&e), "s={s} v={v} h={h}: {e}");
                    }
                }
            }
        }
    }
}
