//! Lines 4–5 of Algorithm 1: `A'_i = rmod(A', p_i)`, `B'_i = rmod(B', p_i)`
//! as INT8 planes, via the fast FMA-based `rmod` of §4.2.
//!
//! The built-in `fmod` is slow, so the paper reduces with
//! `y ← fma(round(x·p_inv), -p, x)` followed by up to two single-precision
//! correction steps, gated on `N` (the larger `N`, the larger the scaled
//! integers `|a'| ≤ 2^{P'_budget}`, and the larger the first-step residual):
//! `(N1, N2) = (13, 19)` for `b = 64` and `(5, 11)` for `b = 32`.
//!
//! One deliberate deviation (documented in DESIGN.md): when three steps are
//! required (`N ≥ N2`) the second step runs in f64 before the narrowing to
//! f32. For `N ∈ {19, 20}` the exact first-step residual can reach ~2^25,
//! which does not round-trip through f32; keeping one more step in f64
//! preserves exactness of the residue. Below `N2` the kernel is literally
//! the paper's.

use crate::consts::Constants;
use rayon::prelude::*;

/// Correction-step thresholds for the DGEMM (`b = 64`) kernel.
pub const N1_F64: usize = 13;
/// Second threshold for `b = 64`.
pub const N2_F64: usize = 19;
/// Correction-step thresholds for the SGEMM (`b = 32`) kernel.
pub const N1_F32: usize = 5;
/// Second threshold for `b = 32`.
pub const N2_F32: usize = 11;

/// Number of reduction steps for a given N and input width.
#[inline]
pub fn steps_for(n: usize, b64: bool) -> u8 {
    let (n1, n2) = if b64 {
        (N1_F64, N2_F64)
    } else {
        (N1_F32, N2_F32)
    };
    1 + (n >= n1) as u8 + (n >= n2) as u8
}

/// `rmod(x, p)` for an integer-valued f64 `x`, wrapped into INT8.
///
/// The result is the symmetric residue in `[-p/2, p/2]`; the single corner
/// case `+128` (p = 256) wraps to `-128`, which is congruent mod 256.
#[inline]
pub fn rmod_to_i8(x: f64, p: f64, p32: f32, pinv64: f64, pinv32: f32, steps: u8) -> i8 {
    // Step 1 (always): one f64 FMA reduction.
    let t = (x * pinv64).round();
    let y64 = t.mul_add(-p, x);
    let mut y: f32;
    if steps >= 3 {
        // Wide-range second step in f64, then narrow.
        let t2 = (y64 * pinv64).round();
        y = t2.mul_add(-p, y64) as f32;
        let t3 = (y * pinv32).round();
        y = t3.mul_add(-p32, y);
    } else {
        y = y64 as f32;
        if steps >= 2 {
            let t2 = (y * pinv32).round();
            y = t2.mul_add(-p32, y);
        }
    }
    // Wrapping cast (Rust's `as i8` from float saturates; the paper relies
    // on the wrap of 128 -> -128, so go through i32 -> u8).
    (y as i32) as u8 as i8
}

/// Convert one integer-valued buffer (row-major `A'` or column-major `B'`)
/// into `N` INT8 residue planes stored plane-major in `out`
/// (`out[s * len + idx] = rmod(src[idx], p_s)`).
pub fn residue_planes(src: &[f64], consts: &Constants, b64: bool, out: &mut [i8]) {
    let len = src.len();
    let n = consts.n;
    assert_eq!(out.len(), n * len, "plane buffer mismatch");
    let steps = steps_for(n, b64);
    out.chunks_exact_mut(len)
        .enumerate()
        .for_each(|(s, plane)| {
            let p = consts.p_f64[s];
            let p32 = consts.p_f32[s];
            let pinv64 = consts.p_inv_f64[s];
            let pinv32 = consts.p_inv_f32[s];
            plane
                .par_chunks_mut(16 * 1024)
                .zip(src.par_chunks(16 * 1024))
                .for_each(|(dst, xs)| {
                    for (d, &x) in dst.iter_mut().zip(xs) {
                        *d = rmod_to_i8(x, p, p32, pinv64, pinv32, steps);
                    }
                });
        });
}

/// Reference `rmod` via exact integer arithmetic (tests only).
pub fn rmod_reference(x: f64, p: u64) -> i8 {
    debug_assert_eq!(x.fract(), 0.0);
    let xi = gemm_exact::I256::from_f64_exact(x);
    let r = xi.rem_euclid_u64(p); // in [0, p)
    let half = p / 2;
    let signed = if p.is_multiple_of(2) {
        // Symmetric with the +p/2 boundary kept positive then wrapped:
        // round-half-away on x/p maps |rem| = p/2 to the sign of x.
        if r > half || (r == half && x < 0.0) {
            r as i64 - p as i64
        } else {
            r as i64
        }
    } else if r > half {
        r as i64 - p as i64
    } else {
        r as i64
    };
    (signed as i32) as u8 as i8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::constants;

    fn check_residue(x: f64, s: usize, c: &Constants, steps: u8) {
        let got = rmod_to_i8(
            x,
            c.p_f64[s],
            c.p_f32[s],
            c.p_inv_f64[s],
            c.p_inv_f32[s],
            steps,
        );
        let p = c.p[s];
        // Residues must agree mod p (the i8 may legitimately differ by p
        // only through the documented ±p/2 tie, which is still congruent).
        let want = gemm_exact::I256::from_f64_exact(x).rem_euclid_u64(p);
        let got_mod = (got as i64).rem_euclid(p as i64) as u64;
        assert_eq!(got_mod, want, "x={x} p={p} got={got}");
    }

    #[test]
    fn rmod_small_exhaustive() {
        let c = constants(4);
        let steps = steps_for(4, true);
        for s in 0..4 {
            for x in -2000i64..=2000 {
                check_residue(x as f64, s, c, steps);
            }
        }
    }

    #[test]
    fn rmod_large_values_dgemm_n15() {
        let c = constants(15);
        let steps = steps_for(15, true);
        // Values up to the fast-mode magnitude bound 2^p_fast ≈ 2^58.
        let bound = 2f64.powf(c.p_fast);
        let mut x = 1.0f64;
        while x < bound {
            for s in 0..15 {
                check_residue(x.trunc(), s, c, steps);
                check_residue(-x.trunc(), s, c, steps);
                check_residue((x * 0.7360328).trunc(), s, c, steps);
            }
            x *= 1.9173;
        }
    }

    #[test]
    fn rmod_extreme_n20() {
        let c = constants(20);
        let steps = steps_for(20, true);
        assert_eq!(steps, 3);
        let bound = 2f64.powf(c.p_fast); // ~2^76.9
        let mut x = 1.0f64;
        while x < bound {
            for s in 0..20 {
                check_residue(x.trunc(), s, c, steps);
                check_residue((-x * 0.9418).trunc(), s, c, steps);
            }
            x *= 2.3719;
        }
    }

    #[test]
    fn plus_half_p_wraps_for_256() {
        let c = constants(2);
        // x = -128: round(-0.5) = -1 (ties away) -> y = -128 + 256 = +128,
        // which must wrap to -128 on the INT8 cast.
        let r = rmod_to_i8(-128.0, 256.0, 256.0, c.p_inv_f64[0], c.p_inv_f32[0], 1);
        assert_eq!(r, -128);
        let r2 = rmod_to_i8(128.0, 256.0, 256.0, c.p_inv_f64[0], c.p_inv_f32[0], 1);
        assert_eq!(r2, -128);
    }

    #[test]
    fn steps_thresholds_match_paper() {
        assert_eq!(steps_for(2, true), 1);
        assert_eq!(steps_for(12, true), 1);
        assert_eq!(steps_for(13, true), 2);
        assert_eq!(steps_for(18, true), 2);
        assert_eq!(steps_for(19, true), 3);
        assert_eq!(steps_for(4, false), 1);
        assert_eq!(steps_for(5, false), 2);
        assert_eq!(steps_for(10, false), 2);
        assert_eq!(steps_for(11, false), 3);
    }

    #[test]
    fn residue_planes_layout() {
        let c = constants(3);
        let src = [100.0f64, -100.0, 300.0, -300.0];
        let mut out = vec![0i8; 3 * 4];
        residue_planes(&src, c, true, &mut out);
        for s in 0..3 {
            for (idx, &x) in src.iter().enumerate() {
                let want = rmod_reference(x, c.p[s]);
                let got = out[s * 4 + idx];
                assert_eq!(
                    (got as i64).rem_euclid(c.p[s] as i64),
                    (want as i64).rem_euclid(c.p[s] as i64),
                    "s={s} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn reference_rmod_symmetric() {
        for p in [251u64, 256] {
            for x in -600i64..=600 {
                let r = rmod_reference(x as f64, p) as i64;
                assert_eq!((x - r).rem_euclid(p as i64), 0, "x={x} p={p}");
                assert!(r.abs() <= (p / 2) as i64, "x={x} p={p} r={r}");
            }
        }
    }
}
