//! §6 extensions: "Ozaki scheme II … can also be extended to matrix
//! multiplication using arbitrary combinations of floating-point formats,
//! including both homogeneous (e.g., double-double) and heterogeneous
//! (e.g., FP16 and FP32) types."
//!
//! * [`dgemm_dd`] — **double-double output**: the CRT fold is evaluated in
//!   DD arithmetic instead of the FMA chain of line 11, so the
//!   reconstruction keeps ~`β + 53` bits of each weight. The result is
//!   accurate beyond FP64: the limit becomes the Step-2 truncation
//!   (~`2·p_fast - log2 k` bits), e.g. ~68 bits at `N = 20`.
//! * [`gemm_f64xf32`] — **heterogeneous inputs**: an FP64 × FP32 product
//!   through the same integer pipeline (the f32 operand is widened
//!   exactly; its scale budget is identical).

use crate::consts::constants;
use crate::convert::residue_planes;
use crate::modred::reduce_plane;
use crate::pipeline::{Mode, K_BLOCK_MAX};
use crate::scale::{
    accurate_scale, fast_scale_cols, fast_scale_rows, scale_by_pow2, scale_trunc_a_rowmajor,
    scale_trunc_b_colmajor,
};
use gemm_dense::{MatF32, MatF64, Matrix};
use gemm_engine::int8_gemm_rm_cm;
use gemm_exact::Dd;
use rayon::prelude::*;

/// Emulated product with a double-double result: `C ≈ A·B` to ~`2·p_fast`
/// bits (beyond FP64 for large `N`).
///
/// # Panics
/// On shape mismatch, non-finite input, or `k > 2^17` (the extension does
/// not implement blocking; use [`crate::Ozaki2`] for huge `k`).
pub fn dgemm_dd(a: &MatF64, b: &MatF64, n_moduli: usize, mode: Mode) -> Matrix<Dd> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    assert!(k <= K_BLOCK_MAX, "k > 2^17 unsupported in the DD extension");
    assert!(
        a.iter().all(|x| x.is_finite()) && b.iter().all(|x| x.is_finite()),
        "inputs must be finite"
    );
    let consts = constants(n_moduli);
    let nmod = consts.n;
    let plane = m * n;
    let mut out = Matrix::<Dd>::zeros(m, n);
    if plane == 0 || k == 0 {
        return out;
    }

    let (exps_a, exps_b) = match mode {
        Mode::Fast => (
            fast_scale_rows(a, consts.p_fast),
            fast_scale_cols(b, consts.p_fast),
        ),
        Mode::Accurate => accurate_scale(a, b, consts.p_accu),
    };
    let mut aprime = vec![0f64; m * k];
    scale_trunc_a_rowmajor(a, &exps_a, &mut aprime);
    let mut bprime = vec![0f64; k * n];
    scale_trunc_b_colmajor(b, &exps_b, &mut bprime);

    let mut a8 = vec![0i8; nmod * m * k];
    residue_planes(&aprime, consts, true, &mut a8);
    let mut b8 = vec![0i8; nmod * k * n];
    residue_planes(&bprime, consts, true, &mut b8);

    let mut u = vec![0u8; nmod * plane];
    let mut c32 = vec![0i32; plane];
    for s in 0..nmod {
        int8_gemm_rm_cm(
            m,
            n,
            k,
            &a8[s * m * k..(s + 1) * m * k],
            &b8[s * k * n..(s + 1) * k * n],
            &mut c32,
        );
        reduce_plane(
            &c32,
            consts.p[s],
            consts.p_inv_u32[s],
            &mut u[s * plane..(s + 1) * plane],
        );
    }

    // DD fold: c = Σ (s1 + s2)·u - P·Q, everything in double-double.
    let p_dd = Dd::renorm(consts.p1, consts.p2);
    out.as_mut_slice()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(j, out_col)| {
            let col_off = j * m;
            for (i, o) in out_col.iter_mut().enumerate() {
                let idx = col_off + i;
                let mut c1 = 0.0f64; // exact by the β construction
                let mut c2 = Dd::ZERO;
                for s in 0..nmod {
                    let us = u[s * plane + idx] as f64;
                    c1 += consts.s1[s] * us;
                    c2 = c2.fma_acc(consts.s2[s], us);
                }
                let q = (consts.p_inv * c1).round();
                let cpp = c2.add_f64(c1).sub(p_dd.mul_f64(q));
                let e = -(exps_a[i] + exps_b[j]);
                // Exact power-of-two scaling of both components.
                *o = Dd {
                    hi: scale_by_pow2(cpp.hi, e),
                    lo: scale_by_pow2(cpp.lo, e),
                };
            }
        });
    out
}

/// Heterogeneous emulated product: `C ≈ A_f64 · B_f32` (widening the f32
/// operand is exact, so the pipeline is the DGEMM one; the result honours
/// the narrower operand's information content).
pub fn gemm_f64xf32(a: &MatF64, b: &MatF32, n_moduli: usize, mode: Mode) -> MatF64 {
    let b64 = b.map(|x| x as f64);
    crate::Ozaki2::new(n_moduli, mode).dgemm(a, &b64)
}

/// Heterogeneous emulated product: `C ≈ A_f32 · B_f64`.
pub fn gemm_f32xf64(a: &MatF32, b: &MatF64, n_moduli: usize, mode: Mode) -> MatF64 {
    let a64 = a.map(|x| x as f64);
    crate::Ozaki2::new(n_moduli, mode).dgemm(&a64, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
    use gemm_exact::dd_gemm;

    fn dd_rel_err(got: &Matrix<Dd>, want: &Matrix<Dd>) -> f64 {
        got.iter()
            .zip(want.iter())
            .map(|(g, w)| {
                let denom = w.to_f64().abs().max(1e-300);
                g.sub(*w).to_f64().abs() / denom
            })
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn dd_output_beats_f64_output() {
        let (m, n, k) = (24, 24, 48);
        let a = phi_matrix_f64(m, k, 0.5, 123, 0);
        let b = phi_matrix_f64(k, n, 0.5, 123, 1);
        let oracle = dd_gemm(&a, &b);
        let dd = dgemm_dd(&a, &b, 20, Mode::Fast);
        let plain = crate::Ozaki2::new(20, Mode::Fast).dgemm(&a, &b);
        let e_dd = dd_rel_err(&dd, &oracle);
        let e_plain = gemm_exact::max_rel_error_vs_dd(&plain, &oracle);
        assert!(
            e_dd < 1e-17,
            "DD output should be beyond double precision: {e_dd:e}"
        );
        assert!(
            e_dd < e_plain,
            "DD fold ({e_dd:e}) must beat the f64 fold ({e_plain:e})"
        );
    }

    #[test]
    fn dd_output_converges_with_n() {
        let (m, n, k) = (12, 12, 24);
        let a = phi_matrix_f64(m, k, 0.5, 5, 0);
        let b = phi_matrix_f64(k, n, 0.5, 5, 1);
        let oracle = dd_gemm(&a, &b);
        let mut last = f64::INFINITY;
        for nmod in [10usize, 14, 18, 20] {
            let e = dd_rel_err(&dgemm_dd(&a, &b, nmod, Mode::Fast), &oracle).max(1e-25);
            assert!(e < last * 4.0, "N={nmod}: {e:e} vs {last:e}");
            last = e;
        }
    }

    #[test]
    fn heterogeneous_products_work() {
        let (m, n, k) = (16, 16, 32);
        let a = phi_matrix_f64(m, k, 0.5, 9, 0);
        let b32 = phi_matrix_f32(k, n, 0.5, 9, 1);
        let c = gemm_f64xf32(&a, &b32, 14, Mode::Fast);
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b32.map(|x| x as f64));
        let err = gemm_dense::norms::max_relative_error(&c, &exact);
        assert!(err < 1e-9, "err={err:e}");

        let c2 = gemm_f32xf64(&b32.transpose(), &a.transpose(), 14, Mode::Fast);
        assert_eq!(c2.shape(), (n, m));
    }

    #[test]
    fn dd_integer_products_have_zero_lo() {
        // Small integer products are exactly representable: the DD result
        // must be (value, 0).
        let a = Matrix::from_fn(4, 6, |i, j| (i as f64) - (j as f64));
        let b = Matrix::from_fn(6, 4, |i, j| (2 * i) as f64 - j as f64);
        let dd = dgemm_dd(&a, &b, 8, Mode::Fast);
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
        for (g, w) in dd.iter().zip(exact.iter()) {
            assert_eq!(g.hi, *w);
            assert_eq!(g.lo, 0.0);
        }
    }
}
