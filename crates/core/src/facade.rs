//! The unified view-based GEMM facade: one element-generic entry point
//! over borrowed strided operands, plus accuracy-driven construction.
//!
//! This module is the public face of the redesigned API:
//!
//! * [`Ozaki2::gemm`] / [`Ozaki2::gemm_into`] — **one** canonical entry
//!   per output policy, generic over the sealed [`Element`] precisions
//!   (`f64`, `f32`). Operands are [`MatView`]s: any layout, leading
//!   dimension, or transpose feeds the fused trunc+convert sweep with
//!   **zero copies** — the historical `dgemm`/`sgemm`/`*_blas` entries
//!   are thin wrappers over this body and stay bit-identical.
//! * [`GemmArgs`] — the argument bundle (`trans`/`alpha`/`beta`, optional
//!   reusable [`Workspace`], optional [`EmulationReport`] sink), built
//!   fluently.
//! * [`Ozaki2::builder`] / [`Accuracy`] — construct an emulator from an
//!   accuracy *target* instead of a raw moduli count, resolving `N`
//!   through the a-priori model in [`crate::nselect`] (with a typed
//!   [`EmulationError::AccuracyUnreachable`] when no supported `N`
//!   reaches the target).

use crate::abft::{execute_panels_ft, FaultPolicy, FaultReport, FtScratch, PanelsRef};
use crate::blas::GemmOp;
use crate::consts::{constants_for, Constants};
use crate::convert::{trunc_convert_pack_panels, TruncSource};
use crate::element::Element;
use crate::moduli::backend_n_max;
use crate::nselect;
use crate::pipeline::{
    execute_panels, EmulationError, EmulationReport, Mode, Ozaki2, PhaseTimes, Workspace, WsBuffers,
};
use crate::prepared::OperandSide;
use crate::scale::{accurate_scale_view, fast_scale_a_view, fast_scale_b_view};
use gemm_dense::{Layout, MatView, MatViewMut, Matrix};
use gemm_engine::{padded_a_rows, padded_b_cols, padded_depth, BackendKind};
use gemm_obs::TimeShare;
use std::time::Instant;

// ---------------------------------------------------------------------------
// GemmArgs / GemmOut
// ---------------------------------------------------------------------------

/// Argument bundle for the unified GEMM facade:
/// `C ← alpha · op(A) · op(B) [+ beta · C]`.
///
/// Built fluently from two operand views; everything else defaults to the
/// plain product (`op = N`, `alpha = 1`, `beta = 0`, fresh workspace, no
/// report sink).
///
/// # Examples
/// ```
/// use ozaki2::{GemmArgs, Mode, Ozaki2};
/// use gemm_dense::workload::phi_matrix_f64;
///
/// let a = phi_matrix_f64(16, 24, 0.5, 1, 0);
/// let b = phi_matrix_f64(24, 12, 0.5, 1, 1);
/// let emu = Ozaki2::new(15, Mode::Fast);
/// let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
/// // The named wrapper is a thin delegate of the same body:
/// assert_eq!(out.c, emu.dgemm(&a, &b));
/// ```
pub struct GemmArgs<'a, T: Element> {
    pub(crate) a: MatView<'a, T>,
    pub(crate) b: MatView<'a, T>,
    pub(crate) trans_a: GemmOp,
    pub(crate) trans_b: GemmOp,
    pub(crate) alpha: T,
    pub(crate) beta: T,
    pub(crate) workspace: Option<&'a mut Workspace>,
    pub(crate) report: Option<&'a mut Option<EmulationReport>>,
    pub(crate) fault_policy: Option<FaultPolicy>,
    pub(crate) backend: Option<BackendKind>,
    pub(crate) assume_finite: bool,
}

impl<'a, T: Element> GemmArgs<'a, T> {
    /// Arguments for the plain product `A · B` (accepts `&Matrix<T>` or
    /// any [`MatView`] — including strided / transposed ones).
    pub fn new(a: impl Into<MatView<'a, T>>, b: impl Into<MatView<'a, T>>) -> Self {
        Self {
            a: a.into(),
            b: b.into(),
            trans_a: GemmOp::N,
            trans_b: GemmOp::N,
            alpha: T::ONE,
            beta: T::ZERO,
            workspace: None,
            report: None,
            fault_policy: None,
            backend: None,
            assume_finite: false,
        }
    }

    /// Transpose option for `A` (zero-copy: flips the view, moves no
    /// element).
    pub fn trans_a(mut self, op: GemmOp) -> Self {
        self.trans_a = op;
        self
    }

    /// Transpose option for `B` (zero-copy).
    pub fn trans_b(mut self, op: GemmOp) -> Self {
        self.trans_b = op;
        self
    }

    /// Scalar multiplier on the product (BLAS `alpha`; default `1`).
    pub fn alpha(mut self, alpha: T) -> Self {
        self.alpha = alpha;
        self
    }

    /// Scalar multiplier on the existing output (BLAS `beta`; default `0`.
    /// Only meaningful for [`Ozaki2::gemm_into`] — the allocating
    /// [`Ozaki2::gemm`] starts from a zero output).
    pub fn beta(mut self, beta: T) -> Self {
        self.beta = beta;
        self
    }

    /// Reuse a caller-owned [`Workspace`]: steady-state repeated calls
    /// allocate nothing but the output (nothing at all with
    /// [`Ozaki2::gemm_into`]).
    pub fn workspace(mut self, ws: &'a mut Workspace) -> Self {
        self.workspace = Some(ws);
        self
    }

    /// Capture the per-phase [`EmulationReport`] into `sink` (also
    /// returned by [`Ozaki2::gemm_into`]; the sink serves callers that
    /// route the output elsewhere).
    pub fn report(mut self, sink: &'a mut Option<EmulationReport>) -> Self {
        self.report = Some(sink);
        self
    }

    /// Override the emulator's ABFT [`FaultPolicy`] for this call only
    /// (default: whatever [`Ozaki2::fault_policy`] says). The ABFT
    /// outcome lands in [`EmulationReport::fault`].
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Override the emulator's residue backend for this call only
    /// (default: [`Ozaki2::backend`]). Switching the backend switches the
    /// moduli pool too, so the emulator's `N` must fit the override's
    /// pool — an out-of-range combination is rejected with
    /// [`EmulationError::UnsupportedN`]. Which backend actually executed
    /// is recorded in [`EmulationReport::backend`].
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Skip the finiteness validation of both operands. Non-finite
    /// entries silently produce garbage residues — only opt out when the
    /// caller has already validated (e.g. a batch runtime that checked
    /// the operands once and replays them many times). Shape checks
    /// still run; see [`EmulationError::NonFiniteInput`].
    pub fn assume_finite(mut self) -> Self {
        self.assume_finite = true;
        self
    }

    /// Effective operand views after the transpose options (zero-copy).
    fn effective(&self) -> (MatView<'a, T>, MatView<'a, T>) {
        let a = match self.trans_a {
            GemmOp::N => self.a,
            GemmOp::T => self.a.t(),
        };
        let b = match self.trans_b {
            GemmOp::N => self.b,
            GemmOp::T => self.b.t(),
        };
        (a, b)
    }
}

/// Result of the allocating facade entry: the product and its per-phase
/// report.
#[derive(Clone, Debug)]
pub struct GemmOut<T: Element> {
    /// The computed product `alpha · op(A) · op(B)`.
    pub c: Matrix<T>,
    /// Per-phase wall-clock breakdown and INT8 GEMM count.
    pub report: EmulationReport,
}

// ---------------------------------------------------------------------------
// The facade entries
// ---------------------------------------------------------------------------

impl Ozaki2 {
    /// The unified, element-generic, view-based GEMM:
    /// `C = alpha · op(A) · op(B)` for `T ∈ {f64, f32}`, allocating the
    /// output. Strided, transposed, and row-major operand views all run
    /// with zero operand materialization; results are bit-identical to
    /// the equivalent owned-matrix path.
    ///
    /// See [`GemmArgs`] for the argument bundle and [`Ozaki2::gemm_into`]
    /// for the allocation-free form.
    ///
    /// # Input validation
    /// Operands are scanned for NaN/infinity up front and rejected with
    /// [`EmulationError::NonFiniteInput`] naming the offending side and
    /// storage index — the residue arithmetic has no representation for
    /// non-finite values, so letting them through would silently produce
    /// garbage. Callers that pre-validate can skip the scan with
    /// [`GemmArgs::assume_finite`].
    ///
    /// # Fault tolerance
    /// The executing emulator's [`FaultPolicy`] (or a per-call override
    /// via [`GemmArgs::fault_policy`]) arms ABFT checksum verification of
    /// every INT8 residue product; detections and recoveries are reported
    /// in [`EmulationReport::fault`].
    pub fn gemm<T: Element>(&self, args: GemmArgs<'_, T>) -> Result<GemmOut<T>, EmulationError> {
        let (a, b) = args.effective();
        let mut c = Matrix::<T>::zeros(a.rows(), b.cols());
        let report = self.gemm_into(args, c.view_mut())?;
        Ok(GemmOut { c, report })
    }

    /// [`Ozaki2::gemm`] into a caller-owned output view (column-major,
    /// any leading dimension): `C ← alpha · op(A) · op(B) + beta · C`.
    /// With a reused [`GemmArgs::workspace`] this is the fully
    /// allocation-free steady state.
    pub fn gemm_into<T: Element>(
        &self,
        args: GemmArgs<'_, T>,
        out: MatViewMut<'_, T>,
    ) -> Result<EmulationReport, EmulationError> {
        let (a, b) = args.effective();
        let GemmArgs {
            alpha,
            beta,
            workspace,
            report,
            fault_policy,
            backend,
            assume_finite,
            ..
        } = args;
        let mut local;
        let ws: &mut Workspace = match workspace {
            Some(w) => w,
            None => {
                local = Workspace::new();
                &mut local
            }
        };
        let rep = emulate_view_into(
            a,
            b,
            self.n_moduli(),
            self.mode(),
            backend.unwrap_or(self.backend()),
            ws,
            true,
            alpha,
            beta,
            out,
            true,
            !assume_finite,
            fault_policy.unwrap_or(self.fault_policy()),
        )?;
        if let Some(sink) = report {
            *sink = Some(rep.clone());
        }
        Ok(rep)
    }
}

// ---------------------------------------------------------------------------
// The shared view-based Algorithm-1 body
// ---------------------------------------------------------------------------

/// Map an effective operand view to its fused-sweep source: rows of `A`
/// (`vectors_are_rows`) or columns of `B`, each either contiguous or a
/// strided gather depending on the view's layout — never a copy.
pub(crate) fn vectors_source<'s, T: Element>(
    v: &MatView<'s, T>,
    vectors_are_rows: bool,
    exps: &'s [i32],
) -> TruncSource<'s> {
    let data = T::elem_slice(v.data());
    let contiguous = matches!(
        (vectors_are_rows, v.layout()),
        (true, Layout::RowMajor) | (false, Layout::ColMajor)
    );
    if contiguous {
        TruncSource::Contiguous {
            data,
            ld: v.ld(),
            exps,
        }
    } else {
        TruncSource::Gathered {
            data,
            ld: v.ld(),
            exps,
        }
    }
}

/// Finiteness check over a view (contiguous fast path either layout).
/// The error reports the operand `side` and the storage index of the
/// first offending entry in the view's backing slice.
pub(crate) fn validate_view<T: Element>(
    v: &MatView<'_, T>,
    side: OperandSide,
) -> Result<(), EmulationError> {
    let contiguous = v
        .as_col_major_slice()
        .or_else(|| v.t().as_col_major_slice());
    if let Some(s) = contiguous {
        // Either way the slice is the backing storage in order, so the
        // iteration position is the storage index.
        return match s.iter().position(|x| !x.is_finite_elem()) {
            None => Ok(()),
            Some(index) => Err(EmulationError::NonFiniteInput { side, index }),
        };
    }
    for j in 0..v.cols() {
        for i in 0..v.rows() {
            if !v.get(i, j).is_finite_elem() {
                let index = match v.layout() {
                    Layout::ColMajor => i + j * v.ld(),
                    Layout::RowMajor => j + i * v.ld(),
                };
                return Err(EmulationError::NonFiniteInput { side, index });
            }
        }
    }
    Ok(())
}

/// The canonical Algorithm-1 body over borrowed strided views — **every**
/// public GEMM entry (named wrappers, BLAS surface, plans, the batched
/// runtime's raw sides) funnels here or into the same
/// [`execute_panels`] back half, which is what keeps the whole surface
/// bit-identical.
///
/// `checked` gates the moduli-range check and `validate` the finiteness
/// validation; wrappers that validated already pass `false`. Shape
/// consistency is always enforced. The fold writes straight into `out`
/// on the plain contiguous f64 path; otherwise it lands in the workspace
/// staging buffer and the `alpha`/`beta` epilogue (or the exact f32
/// narrowing) runs per column. An active `policy` routes the back half
/// through the ABFT executor ([`execute_panels_ft`]);
/// [`FaultPolicy::Off`] runs the historical path byte-for-byte.
#[allow(clippy::too_many_arguments)]
pub(crate) fn emulate_view_into<T: Element>(
    a: MatView<'_, T>,
    b: MatView<'_, T>,
    n_moduli: usize,
    mode: Mode,
    backend: BackendKind,
    ws: &mut Workspace,
    parallel: bool,
    alpha: T,
    beta: T,
    mut out: MatViewMut<'_, T>,
    checked: bool,
    validate: bool,
    policy: FaultPolicy,
) -> Result<EmulationReport, EmulationError> {
    let n_max = backend_n_max(backend, !T::IS_F64);
    if checked && n_moduli > n_max {
        return Err(EmulationError::UnsupportedN {
            n: n_moduli,
            max: n_max,
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    if b.rows() != k || out.shape() != (m, n) {
        return Err(EmulationError::ShapeMismatch);
    }
    if validate {
        validate_view(&a, OperandSide::A)?;
        validate_view(&b, OperandSide::B)?;
    }
    // The pool-resolution seam: `backend` picks the moduli pool (accuracy
    // semantics); `OZAKI_FORCE_BACKEND` may swap only the executing
    // engine, which computes the same exact integers over either pool.
    let consts: &Constants = constants_for(backend, n_moduli);
    let engine_kind = backend.engine();
    let engine = engine_kind.backend();
    let predicted_error = nselect::predicted_error_for(backend, n_moduli, k);
    let nmod = consts.n;
    let plain = alpha == T::ONE && beta == T::ZERO;
    let mut phases = PhaseTimes::default();
    let mut gemm_calls = 0usize;

    if m == 0 || n == 0 || k == 0 {
        for j in 0..n {
            for c in out.col_mut(j) {
                *c = if plain {
                    T::ZERO
                } else {
                    alpha * T::ZERO + beta * *c
                };
            }
        }
        return Ok(EmulationReport {
            shape: (m, n, k),
            n_moduli: nmod,
            mode,
            backend: engine_kind,
            predicted_error,
            phases,
            int8_gemm_calls: 0,
            fault: policy.is_active().then(FaultReport::default),
        });
    }

    // ---- Line 1: scale vectors ------------------------------------------
    let obs_start = gemm_obs::now_ns();
    let t0 = Instant::now();
    let (exps_a, exps_b) = match mode {
        Mode::Fast => (
            fast_scale_a_view(&a, consts.p_fast),
            fast_scale_b_view(&b, consts.p_fast),
        ),
        Mode::Accurate => {
            gemm_calls += 1; // the Ā·B̄ estimation GEMM
            accurate_scale_view(&a, &b, consts.p_accu)
        }
    };
    phases.scale = t0.elapsed();

    // ---- Lines 2–5: fused trunc+convert straight from the views ---------
    let t0 = Instant::now();
    ws.reserve(m, n, k, nmod);
    let direct_fold = plain && out.is_contiguous_col_major() && T::IS_F64;
    if !direct_fold {
        ws.reserve_stage(m * n);
    }
    if policy.is_active() {
        ws.reserve_abft(m, n, k, nmod);
    }
    let WsBuffers {
        a16,
        b16,
        u,
        c32,
        racc,
        cstage,
        chk_a16,
        chk_b16,
        uchk,
        chk_sum,
        vsum,
    } = ws.buffers();
    let kp = padded_depth(k);
    let m_pad = padded_a_rows(m);
    let n_pad = padded_b_cols(n);
    let timing = TimeShare::new();
    let a16 = &mut a16[..nmod * m_pad * kp];
    trunc_convert_pack_panels(
        vectors_source(&a, true, &exps_a),
        m,
        m_pad,
        k,
        kp,
        consts,
        T::IS_F64,
        parallel,
        a16,
        Some(&timing),
    );
    let b16 = &mut b16[..nmod * n_pad * kp];
    trunc_convert_pack_panels(
        vectors_source(&b, false, &exps_b),
        n,
        n_pad,
        k,
        kp,
        consts,
        T::IS_F64,
        parallel,
        b16,
        Some(&timing),
    );
    let sweep = t0.elapsed();
    phases.trunc = sweep.mul_f64(timing.fraction());
    phases.convert = sweep.saturating_sub(phases.trunc);

    // ---- Lines 6–12 over the packed panels -------------------------------
    let dst_direct = if direct_fold {
        out.as_col_major_slice_mut().and_then(T::as_f64_slice_mut)
    } else {
        None
    };
    let staged = dst_direct.is_none();
    let dst: &mut [f64] = match dst_direct {
        Some(slice) => &mut slice[..m * n],
        None => &mut cstage[..m * n],
    };
    let mut fault: Option<FaultReport> = None;
    if policy.is_active() {
        let (calls, frep) = execute_panels_ft(
            m,
            n,
            k,
            consts,
            T::IS_F64,
            engine,
            PanelsRef::Repackable {
                panels: a16,
                src: vectors_source(&a, true, &exps_a),
                vecs: m,
                vecs_pad: m_pad,
            },
            PanelsRef::Repackable {
                panels: b16,
                src: vectors_source(&b, false, &exps_b),
                vecs: n,
                vecs_pad: n_pad,
            },
            &exps_a,
            &exps_b,
            FtScratch {
                u,
                c32,
                racc,
                chk_a16,
                chk_b16,
                uchk,
                chk_sum,
                vsum,
            },
            parallel,
            policy,
            dst,
            &mut phases,
        );
        gemm_calls += calls;
        fault = Some(frep);
    } else {
        gemm_calls += execute_panels(
            m,
            n,
            k,
            consts,
            T::IS_F64,
            engine,
            a16,
            b16,
            &exps_a,
            &exps_b,
            u,
            c32,
            racc,
            parallel,
            dst,
            &mut phases,
        );
    }
    if staged {
        // Narrow / scale / scatter into the output view. Counted as fold:
        // it is the tail of lines 8–12 for these output shapes.
        let t0 = Instant::now();
        let stage = &cstage[..m * n];
        for j in 0..n {
            let col = out.col_mut(j);
            let stage_col = &stage[j * m..(j + 1) * m];
            if plain {
                for (c, &p) in col.iter_mut().zip(stage_col) {
                    *c = T::from_f64(p);
                }
            } else {
                for (c, &p) in col.iter_mut().zip(stage_col) {
                    *c = alpha * T::from_f64(p) + beta * *c;
                }
            }
        }
        phases.fold += t0.elapsed();
    }

    let report = EmulationReport {
        shape: (m, n, k),
        n_moduli: nmod,
        mode,
        backend: engine_kind,
        predicted_error,
        phases,
        int8_gemm_calls: gemm_calls,
        fault,
    };
    crate::pipeline::obs_record_report(obs_start, &report);
    Ok(report)
}

// ---------------------------------------------------------------------------
// Accuracy-driven construction
// ---------------------------------------------------------------------------

/// What the emulator should achieve, resolved to a moduli count `N` at
/// build time (see [`Ozaki2Builder`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Accuracy {
    /// An explicit moduli count (the historical `Ozaki2::new` knob).
    FixedN(usize),
    /// A normwise relative error target, resolved against the inner
    /// dimension `k` through the a-priori model
    /// ([`crate::nselect::choose_n_checked`]).
    TargetError(f64),
    /// DGEMM-level accuracy (`2^-52`) — resolves to `N = 15` at the
    /// paper's §5.1 `k = 1024` operating point.
    Fp64Equivalent,
    /// SGEMM-level accuracy (`2^-23`), capped to the SGEMM pipeline's
    /// supported moduli range.
    Fp32Equivalent,
    /// Low-moduli "fast inference" mode: a loose `2^-10` normwise target
    /// — roughly bf16-level — that resolves to very few residue planes
    /// (`N ≈ 5` on the INT8 pool at `k = 1024`), trading accuracy for
    /// throughput in inference-style workloads. The realized bound is
    /// reported per call in [`EmulationReport::predicted_error`].
    FastInference,
}

/// Builder for [`Ozaki2`]: accuracy target + [`Mode`] (+ the inner
/// dimension `k` when the target is `k`-dependent).
///
/// # Examples
/// ```
/// use ozaki2::{Accuracy, Mode, Ozaki2};
///
/// // The paper's §5.1 sweet spot: DGEMM-level at k = 1024 → N = 15.
/// let emu = Ozaki2::builder()
///     .accuracy(Accuracy::TargetError(2f64.powi(-52)))
///     .mode(Mode::Fast)
///     .k(1024)
///     .build()
///     .unwrap();
/// assert_eq!(emu.n_moduli(), 15);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ozaki2Builder {
    accuracy: Accuracy,
    mode: Mode,
    k: Option<usize>,
    fault: Option<FaultPolicy>,
    workers: Option<usize>,
    backend: BackendKind,
}

impl Default for Ozaki2Builder {
    fn default() -> Self {
        Self {
            accuracy: Accuracy::Fp64Equivalent,
            mode: Mode::Fast,
            k: None,
            fault: None,
            workers: None,
            backend: BackendKind::Int8,
        }
    }
}

impl Ozaki2 {
    /// Accuracy-driven construction: pick the moduli count from a target
    /// instead of hardcoding it. Defaults to
    /// [`Accuracy::Fp64Equivalent`] in [`Mode::Fast`].
    pub fn builder() -> Ozaki2Builder {
        Ozaki2Builder::default()
    }
}

impl Ozaki2Builder {
    /// Set the accuracy request.
    pub fn accuracy(mut self, accuracy: Accuracy) -> Self {
        self.accuracy = accuracy;
        self
    }

    /// Set the scaling mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the inner dimension the `k`-dependent targets resolve against
    /// (each operand loses ~`0.5·log2 k` bits to the dot-length budget).
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Set the emulator-wide fault-tolerance policy (see
    /// [`FaultPolicy`]). Unset, the built emulator inherits the
    /// `OZAKI_FAULT_POLICY` environment default, like [`Ozaki2::new`].
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault = Some(policy);
        self
    }

    /// Set the worker-pool size used by parallel regions (stripe sweeps,
    /// convert jobs). **Process-global**: the pool is shared by every
    /// emulator in the process, so the last build wins. Unset, the pool
    /// resolves `OZAKI_WORKERS`, then `available_parallelism()`. Results
    /// are bit-identical for any worker count; this knob only trades
    /// throughput.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Set the residue backend the emulator runs on (default
    /// [`BackendKind::Int8`]). The backend picks the moduli pool, so
    /// accuracy targets resolve against it: the bf16-FMA pool carries
    /// fewer bits per plane, needs more planes for the same target, and
    /// cannot reach DGEMM-level accuracy at all
    /// ([`EmulationError::AccuracyUnreachable`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Resolve the accuracy request to a moduli count and build.
    ///
    /// # Errors
    /// * [`EmulationError::UnsupportedN`] for an out-of-range
    ///   [`Accuracy::FixedN`];
    /// * [`EmulationError::AccuracyNeedsK`] for a `k`-dependent target
    ///   with no `k` set;
    /// * [`EmulationError::AccuracyUnreachable`] when even the largest
    ///   supported `N` misses the target.
    pub fn build(self) -> Result<Ozaki2, EmulationError> {
        let n = match self.accuracy {
            Accuracy::FixedN(n) => {
                let max = backend_n_max(self.backend, false);
                if !(2..=max).contains(&n) {
                    return Err(EmulationError::UnsupportedN { n, max });
                }
                n
            }
            Accuracy::TargetError(target) => self.resolve(target, false)?,
            Accuracy::Fp64Equivalent => self.resolve(2f64.powi(-52), false)?,
            Accuracy::Fp32Equivalent => self.resolve(2f64.powi(-23), true)?,
            Accuracy::FastInference => self.resolve(2f64.powi(-10), false)?,
        };
        if let Some(workers) = self.workers {
            rayon::set_num_threads(workers);
        }
        let emu = Ozaki2::new(n, self.mode).with_backend(self.backend);
        Ok(match self.fault {
            Some(policy) => emu.with_fault_policy(policy),
            None => emu,
        })
    }

    /// [`Ozaki2Builder::build`] with the inner dimension supplied at call
    /// time — the plan/call-time resolution for callers that learn `k`
    /// late (e.g. right before a [`crate::plan::GemmPlan`] is laid out).
    pub fn build_for_k(self, k: usize) -> Result<Ozaki2, EmulationError> {
        self.k(k).build()
    }

    fn resolve(&self, target: f64, for_sgemm: bool) -> Result<usize, EmulationError> {
        let k = self.k.ok_or(EmulationError::AccuracyNeedsK)?;
        nselect::choose_n_checked_for(self.backend, target, k, for_sgemm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moduli::N_MAX;
    use gemm_dense::norms::max_relative_error;
    use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
    use gemm_dense::{MatF64, MatView};

    #[test]
    fn facade_matches_dgemm_bitwise() {
        let a = phi_matrix_f64(24, 40, 0.7, 3, 0);
        let b = phi_matrix_f64(40, 18, 0.7, 3, 1);
        for nmod in [4usize, 13, 15] {
            for mode in [Mode::Fast, Mode::Accurate] {
                let emu = Ozaki2::new(nmod, mode);
                let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
                assert_eq!(out.c, emu.dgemm(&a, &b), "N={nmod} {mode:?}");
                assert_eq!(out.report.shape, (24, 18, 40));
            }
        }
    }

    #[test]
    fn facade_matches_sgemm_bitwise() {
        let a = phi_matrix_f32(12, 20, 0.5, 5, 0);
        let b = phi_matrix_f32(20, 10, 0.5, 5, 1);
        for mode in [Mode::Fast, Mode::Accurate] {
            let emu = Ozaki2::new(8, mode);
            let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
            assert_eq!(out.c, emu.sgemm(&a, &b), "{mode:?}");
        }
    }

    #[test]
    fn transposed_views_are_zero_copy_and_bit_identical() {
        // Feed Aᵀ and Bᵀ through the trans options: no materialization
        // (the views alias the original buffers) and bit-identical output.
        let a = phi_matrix_f64(9, 17, 0.5, 2, 0);
        let b = phi_matrix_f64(17, 7, 0.5, 2, 1);
        let at = a.transpose();
        let bt = b.transpose();
        let emu = Ozaki2::new(12, Mode::Fast);
        let want = emu.dgemm(&a, &b);
        let got = emu
            .gemm(
                GemmArgs::new(&at, &bt)
                    .trans_a(GemmOp::T)
                    .trans_b(GemmOp::T),
            )
            .unwrap();
        assert_eq!(got.c, want);
        // And directly via pre-transposed views, no GemmOp involved.
        let got2 = emu
            .gemm(GemmArgs::<f64>::new(at.view().t(), bt.view().t()))
            .unwrap();
        assert_eq!(got2.c, want);
    }

    #[test]
    fn strided_submatrix_views_match_owned_copy() {
        // A 10x12 window of a 32x32 parent at offset (3, 5), times an
        // 12x8 window at (7, 2): strided ld = 32 views vs owned copies.
        let pa = phi_matrix_f64(32, 32, 0.6, 11, 0);
        let pb = phi_matrix_f64(32, 32, 0.6, 11, 1);
        let va = MatView::new(
            &pa.as_slice()[3 + 5 * 32..],
            10,
            12,
            32,
            gemm_dense::Layout::ColMajor,
        );
        let vb = MatView::new(
            &pb.as_slice()[7 + 2 * 32..],
            12,
            8,
            32,
            gemm_dense::Layout::ColMajor,
        );
        let emu = Ozaki2::new(15, Mode::Fast);
        let got = emu.gemm(GemmArgs::new(va, vb)).unwrap();
        assert_eq!(got.c, emu.dgemm(&va.to_matrix(), &vb.to_matrix()));
    }

    #[test]
    fn gemm_into_alpha_beta_epilogue() {
        let a = phi_matrix_f64(6, 6, 0.5, 2, 0);
        let b = phi_matrix_f64(6, 6, 0.5, 2, 1);
        let emu = Ozaki2::new(12, Mode::Fast);
        let prod = emu.dgemm(&a, &b);
        let mut c = MatF64::from_fn(6, 6, |i, j| (i == j) as u8 as f64);
        let c0 = c.clone();
        emu.gemm_into(GemmArgs::new(&a, &b).alpha(2.0).beta(3.0), c.view_mut())
            .unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(c[(i, j)], 2.0 * prod[(i, j)] + 3.0 * c0[(i, j)]);
            }
        }
    }

    #[test]
    fn gemm_into_strided_output() {
        // C with ld > rows: the fold stages and scatters; gap rows stay.
        let (m, n, k) = (5usize, 4, 9);
        let a = phi_matrix_f64(m, k, 0.5, 3, 0);
        let b = phi_matrix_f64(k, n, 0.5, 3, 1);
        let emu = Ozaki2::new(10, Mode::Fast);
        let want = emu.dgemm(&a, &b);
        let ld = m + 3;
        let mut buf = vec![-7.0f64; ld * n];
        emu.gemm_into(
            GemmArgs::new(&a, &b),
            gemm_dense::MatViewMut::new(&mut buf, m, n, ld),
        )
        .unwrap();
        for j in 0..n {
            for i in 0..m {
                assert_eq!(buf[i + j * ld], want[(i, j)]);
            }
            for i in m..ld {
                assert_eq!(buf[i + j * ld], -7.0, "gap rows must stay untouched");
            }
        }
    }

    #[test]
    fn workspace_and_report_plumbing() {
        let a = phi_matrix_f64(16, 16, 0.5, 4, 0);
        let b = phi_matrix_f64(16, 16, 0.5, 4, 1);
        let emu = Ozaki2::new(9, Mode::Fast);
        let mut ws = Workspace::new();
        let mut sink = None;
        let out = emu
            .gemm(GemmArgs::new(&a, &b).workspace(&mut ws).report(&mut sink))
            .unwrap();
        assert!(ws.bytes() > 0);
        let rep = sink.expect("report sink filled");
        assert_eq!(rep.int8_gemm_calls, out.report.int8_gemm_calls);
        let steady = ws.bytes();
        let out2 = emu.gemm(GemmArgs::new(&a, &b).workspace(&mut ws)).unwrap();
        assert_eq!(out2.c, out.c);
        assert_eq!(ws.bytes(), steady, "steady state must not allocate");
    }

    #[test]
    fn facade_rejects_bad_inputs() {
        let a = phi_matrix_f64(4, 5, 0.5, 1, 0);
        let b = phi_matrix_f64(4, 4, 0.5, 1, 1);
        let emu = Ozaki2::new(8, Mode::Fast);
        assert_eq!(
            emu.gemm(GemmArgs::new(&a, &b)).unwrap_err(),
            EmulationError::ShapeMismatch
        );
        let af = phi_matrix_f32(4, 4, 0.5, 1, 0);
        let bf = phi_matrix_f32(4, 4, 0.5, 1, 1);
        assert_eq!(
            Ozaki2::new(20, Mode::Fast)
                .gemm(GemmArgs::new(&af, &bf))
                .unwrap_err(),
            EmulationError::UnsupportedN { n: 20, max: 18 }
        );
        let mut nan = phi_matrix_f64(4, 4, 0.5, 1, 0);
        nan[(1, 1)] = f64::NAN;
        let b4 = phi_matrix_f64(4, 4, 0.5, 1, 1);
        assert_eq!(
            emu.gemm(GemmArgs::new(&nan, &b4)).unwrap_err(),
            EmulationError::NonFiniteInput {
                side: OperandSide::A,
                index: 5, // col-major storage offset of (1, 1) with m = 4
            }
        );
        // NaN hidden in a strided view (non-contiguous validation path):
        // same storage offset, now reported relative to the view's backing
        // slice through its leading dimension.
        let vnan = MatView::new(nan.as_slice(), 3, 3, 4, gemm_dense::Layout::ColMajor);
        let vb = MatView::new(b4.as_slice(), 3, 3, 4, gemm_dense::Layout::ColMajor);
        assert_eq!(
            emu.gemm(GemmArgs::new(vnan, vb)).unwrap_err(),
            EmulationError::NonFiniteInput {
                side: OperandSide::A,
                index: 5,
            }
        );
    }

    #[test]
    fn empty_shapes_fill_output() {
        let emu = Ozaki2::new(6, Mode::Fast);
        let a = MatF64::zeros(3, 0);
        let b = MatF64::zeros(0, 2);
        let mut c = MatF64::from_fn(3, 2, |_, _| 5.0);
        // k = 0, beta = 0.5: C ← 0 + 0.5 C.
        emu.gemm_into(GemmArgs::new(&a, &b).beta(0.5), c.view_mut())
            .unwrap();
        assert!(c.iter().all(|&x| x == 2.5));
        // Plain: zero fill.
        let out = emu.gemm(GemmArgs::new(&a, &b)).unwrap();
        assert!(out.c.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn facade_accuracy_sanity() {
        let a = phi_matrix_f64(20, 32, 0.5, 9, 0);
        let b = phi_matrix_f64(32, 20, 0.5, 9, 1);
        let out = Ozaki2::new(15, Mode::Fast)
            .gemm(GemmArgs::new(&a, &b))
            .unwrap();
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
        assert!(max_relative_error(&out.c, &exact) < 1e-12);
    }

    #[test]
    fn builder_resolves_paper_sweet_spot() {
        // §5.1: DGEMM-level accuracy at k = 1024 needs N = 15.
        let emu = Ozaki2::builder()
            .accuracy(Accuracy::TargetError(2f64.powi(-52)))
            .k(1024)
            .build()
            .unwrap();
        assert_eq!(emu.n_moduli(), 15);
        assert_eq!(emu.mode(), Mode::Fast);
        // The named equivalents agree with the explicit target.
        let e64 = Ozaki2::builder()
            .accuracy(Accuracy::Fp64Equivalent)
            .build_for_k(1024)
            .unwrap();
        assert_eq!(e64.n_moduli(), 15);
        let e32 = Ozaki2::builder()
            .accuracy(Accuracy::Fp32Equivalent)
            .build_for_k(1024)
            .unwrap();
        assert!((7..=9).contains(&e32.n_moduli()), "{}", e32.n_moduli());
    }

    #[test]
    fn builder_fixed_n_and_mode() {
        let emu = Ozaki2::builder()
            .accuracy(Accuracy::FixedN(11))
            .mode(Mode::Accurate)
            .build()
            .unwrap();
        assert_eq!(emu.n_moduli(), 11);
        assert_eq!(emu.mode(), Mode::Accurate);
        assert!(matches!(
            Ozaki2::builder()
                .accuracy(Accuracy::FixedN(99))
                .build()
                .unwrap_err(),
            EmulationError::UnsupportedN { n: 99, .. }
        ));
    }

    #[test]
    fn builder_typed_errors() {
        // k-dependent target without k.
        assert_eq!(
            Ozaki2::builder()
                .accuracy(Accuracy::TargetError(1e-10))
                .build()
                .unwrap_err(),
            EmulationError::AccuracyNeedsK
        );
        // Unreachable target: typed error with the best achievable point.
        match Ozaki2::builder()
            .accuracy(Accuracy::TargetError(1e-40))
            .k(1024)
            .build()
            .unwrap_err()
        {
            EmulationError::AccuracyUnreachable {
                target,
                best_n,
                predicted,
            } => {
                assert_eq!(target, 1e-40);
                assert_eq!(best_n, N_MAX);
                assert!(predicted > 1e-40);
            }
            e => panic!("expected AccuracyUnreachable, got {e:?}"),
        }
    }
}
