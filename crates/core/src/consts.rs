//! Precomputed constant tables (§4.1, Fig. 2).
//!
//! For each supported `N` the emulation needs, all derived exactly from the
//! moduli with 256-bit integer arithmetic at first use and cached:
//!
//! * `P = Π p_i` as a double-double (`P1`, `P2`) and its reciprocal `P_inv`;
//! * the CRT weights `w_i = (P/p_i)·q_i` split as `s_i1 + s_i2`, where
//!   `s_i1` keeps only the top `β_i` bits so that **all `s_i1` share one
//!   common ulp** — that alignment is what makes the hot accumulation
//!   `Σ s_i1 U_i` exact in f64 (§4.3);
//! * the scale budgets `P'_fast`, `P'_accu` (see docs/ARCHITECTURE.md on the per-side
//!   halving of the printed formulas);
//! * fast-division reciprocals `p_inv` in f64, f32 and the `⌊2^32/p⌋ - 1`
//!   integer form used by the `__mulhi` modulo kernel.

use crate::moduli::{fma_moduli, moduli, N_MAX, N_MAX_FMA};
use gemm_engine::BackendKind;
use gemm_exact::{CrtBasis, Dd, I256, U256};
use std::sync::OnceLock;

/// Ceiling of log2 for positive integers.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

/// Everything Algorithm 1 needs for a given number of moduli `N`.
#[derive(Clone, Debug)]
pub struct Constants {
    /// Number of moduli.
    pub n: usize,
    /// The moduli `p_1..p_N`.
    pub p: Vec<u64>,
    /// Exact product `P`.
    pub p_big: U256,
    /// Leading double of `P`.
    pub p1: f64,
    /// Trailing double: `P = P1 + P2` as a double-double.
    pub p2: f64,
    /// `double(1/P)`.
    pub p_inv: f64,
    /// Per-side fast-mode exponent budget (`(log2(P-1) - 1.5) / 2`).
    pub p_fast: f64,
    /// Per-side accurate-mode exponent budget (`(log2(P-1) - 1.0) / 2`).
    pub p_accu: f64,
    /// Bit budgets `β_i` for the `s_i1` truncation.
    pub beta: Vec<u32>,
    /// DGEMM weight splits: `s_i1` (top `β_i` bits of `w_i`, common ulp).
    pub s1: Vec<f64>,
    /// DGEMM weight splits: `s_i2` ≈ `w_i - s_i1` (53 bits).
    pub s2: Vec<f64>,
    /// SGEMM weights: `double(w_i)` (used with `s2 = 0`, `P2 = 0`).
    pub s1_single: Vec<f64>,
    /// `double(1/p_i)`.
    pub p_inv_f64: Vec<f64>,
    /// `single(1/p_i)`.
    pub p_inv_f32: Vec<f32>,
    /// `⌊2^32/p_i⌋ - 1` for the `__mulhi` integer modulo.
    pub p_inv_u32: Vec<u32>,
    /// Moduli as f64 (for the FMA kernels).
    pub p_f64: Vec<f64>,
    /// Moduli as f32.
    pub p_f32: Vec<f32>,
    /// Exact CRT weights (oracle / tests).
    pub weights: Vec<U256>,
}

impl Constants {
    fn build(n: usize) -> Constants {
        Self::build_from_pool(moduli(n).to_vec())
    }

    /// Derive every table from an explicit moduli prefix. The derivation
    /// is pool-generic: nothing below assumes the INT8 pool beyond the
    /// universal engine contract `p ≤ 256` (the `-8` residue-bit
    /// reservation in `β` — conservative for smaller pools, where `β`
    /// only grows safer).
    fn build_from_pool(p: Vec<u64>) -> Constants {
        let n = p.len();
        let basis = CrtBasis::new(&p);
        let p_big = basis.p_big();
        let weights: Vec<U256> = (0..n).map(|i| basis.weight(i)).collect();

        // P as a double-double: P1 = RNE(P), P2 = RNE(P - P1) computed
        // exactly in 256-bit arithmetic.
        let p1 = p_big.to_f64();
        let p2 = {
            let diff = I256::from_u256(p_big).sub(I256::from_f64_exact(p1));
            diff.to_f64()
        };
        // 1/P rounded via double-double division (error far below 0.5 ulp
        // of the double result for these magnitudes).
        let p_inv = Dd::from_f64(1.0).div(Dd::renorm(p1, p2)).to_f64();

        // log2(P - 1) (P >= 2^15 here, so the -1 is invisible at f64
        // precision; keep it for fidelity to the paper's formula).
        let log2_p_minus1 = {
            let pm1 = p_big.sub(U256::ONE);
            pm1.to_f64().log2()
        };
        let p_fast = 0.5 * (log2_p_minus1 - 1.5);
        let p_accu = 0.5 * (log2_p_minus1 - 1.0);

        // β_i = 53 - 8 - ⌈log2 N⌉ + ⌊log2 w_i⌋ - ⌊log2 max_j w_j⌋.
        let lw: Vec<u32> = weights.iter().map(|w| w.bits() - 1).collect();
        let lw_max = *lw.iter().max().expect("n >= 2");
        let cl2 = ceil_log2(n);
        let beta: Vec<u32> = lw
            .iter()
            .map(|&l| {
                let b = 53i64 - 8 - cl2 as i64 + l as i64 - lw_max as i64;
                assert!(b > 0, "β must stay positive");
                b as u32
            })
            .collect();

        let mut s1 = Vec::with_capacity(n);
        let mut s2 = Vec::with_capacity(n);
        for (w, &b) in weights.iter().zip(&beta) {
            let head = w.truncate_top_bits(b);
            let tail = w.sub(head);
            let s1v = head.to_f64();
            // head has <= β <= 53 significant bits: conversion is exact.
            debug_assert_eq!(U256::from_u64(0), {
                let back = I256::from_f64_exact(s1v);
                I256::from_u256(head).sub(back).abs_u256()
            });
            s1.push(s1v);
            s2.push(tail.to_f64());
        }
        let s1_single: Vec<f64> = weights.iter().map(|w| w.to_f64()).collect();

        let p_inv_f64: Vec<f64> = p.iter().map(|&pi| 1.0 / pi as f64).collect();
        let p_inv_f32: Vec<f32> = p.iter().map(|&pi| 1.0 / pi as f32).collect();
        let p_inv_u32: Vec<u32> = p.iter().map(|&pi| ((1u64 << 32) / pi - 1) as u32).collect();
        let p_f64: Vec<f64> = p.iter().map(|&pi| pi as f64).collect();
        let p_f32: Vec<f32> = p.iter().map(|&pi| pi as f32).collect();

        Constants {
            n,
            p,
            p_big,
            p1,
            p2,
            p_inv,
            p_fast,
            p_accu,
            beta,
            s1,
            s2,
            s1_single,
            p_inv_f64,
            p_inv_f32,
            p_inv_u32,
            p_f64,
            p_f32,
            weights,
        }
    }
}

/// Cached constants for `n ∈ 2..=20` (built on first use).
pub fn constants(n: usize) -> &'static Constants {
    static TABLES: OnceLock<Vec<Constants>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| (2..=N_MAX).map(Constants::build).collect());
    assert!((2..=N_MAX).contains(&n), "N must be in 2..=20, got {n}");
    &tables[n - 2]
}

/// Cached constants for the bf16-FMA pool, `n ∈ 2..=16`.
pub fn fma_constants(n: usize) -> &'static Constants {
    static TABLES: OnceLock<Vec<Constants>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        (2..=N_MAX_FMA)
            .map(|n| Constants::build_from_pool(fma_moduli(n).to_vec()))
            .collect()
    });
    assert!(
        (2..=N_MAX_FMA).contains(&n),
        "N must be in 2..=16 for the fma-bf16 pool, got {n}"
    );
    &tables[n - 2]
}

/// Cached constants for the first `n` moduli of `kind`'s pool — the
/// pool-resolution seam every pipeline entry point goes through.
pub fn constants_for(kind: BackendKind, n: usize) -> &'static Constants {
    match kind {
        BackendKind::Int8 => constants(n),
        BackendKind::FmaBf16 => fma_constants(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(20), 5);
    }

    #[test]
    fn p1_p2_reconstruct_p_to_dd_accuracy() {
        // P has up to ~156 bits; a double-double holds ~106, so P1 + P2
        // approximates P with relative error below 2^-104.
        for n in 2..=N_MAX {
            let c = constants(n);
            let back = I256::from_f64_exact(c.p1).add(I256::from_f64_exact(c.p2));
            let diff = back.sub(I256::from_u256(c.p_big)).abs_u256();
            let bound_bits = c.p_big.bits().saturating_sub(104);
            assert!(
                diff.bits() <= bound_bits.max(1),
                "N={n}: |P1+P2-P| has {} bits, P has {}",
                diff.bits(),
                c.p_big.bits()
            );
            // For small N the DD is exact.
            if c.p_big.bits() <= 106 {
                assert!(diff.is_zero(), "N={n} should be exact");
            }
        }
    }

    #[test]
    fn p_inv_is_accurate() {
        for n in 2..=N_MAX {
            let c = constants(n);
            let err = (c.p_inv * c.p_big.to_f64() - 1.0).abs();
            assert!(err < 1e-15, "N={n} err={err}");
        }
    }

    #[test]
    fn s1_plus_s2_approximates_weight() {
        for n in 2..=N_MAX {
            let c = constants(n);
            for i in 0..n {
                let w = c.weights[i].to_f64();
                let rel = ((c.s1[i] + c.s2[i]) - w).abs() / w;
                // s1 + s2 carries ~beta + 53 >= 85 bits of w.
                assert!(rel < 1e-24, "N={n} i={i} rel={rel}");
            }
        }
    }

    #[test]
    fn accumulation_sum_is_exact_in_f64() {
        // The design contract of β_i (Fig. 2): expressed over the common
        // ruler (the largest power of two dividing every s_i1), the total
        // Σ 255·s_i1 must fit in 53 bits, so Σ s_i1·U_i never rounds.
        for n in 2..=N_MAX {
            let c = constants(n);
            let ints: Vec<U256> =
                c.s1.iter()
                    .map(|&s| I256::from_f64_exact(s).abs_u256())
                    .collect();
            let ruler = ints.iter().map(|w| w.trailing_zeros()).min().unwrap();
            let mut total = U256::ZERO;
            for w in &ints {
                total = total.add(w.shr(ruler).mul_u64(255));
            }
            assert!(
                total.bits() <= 53,
                "N={n}: Σ 255·s1/ruler needs {} bits",
                total.bits()
            );
        }
    }

    #[test]
    fn s1_truncation_keeps_top_beta_bits() {
        // s_i1 must equal w_i with everything below the top β_i bits
        // cleared — and therefore be exactly representable in f64.
        for n in [2usize, 8, 15, 20] {
            let c = constants(n);
            for i in 0..n {
                let head = c.weights[i].truncate_top_bits(c.beta[i]);
                assert_eq!(
                    I256::from_f64_exact(c.s1[i]).abs_u256(),
                    head,
                    "N={n} i={i}"
                );
            }
        }
    }

    #[test]
    fn weights_match_crt_oracle() {
        let c = constants(5);
        for (i, &pi) in c.p.iter().enumerate() {
            assert_eq!(c.weights[i].rem_u64(pi), 1);
            for (j, &pj) in c.p.iter().enumerate() {
                if i != j {
                    assert_eq!(c.weights[i].rem_u64(pj), 0);
                }
            }
        }
    }

    #[test]
    fn budgets_are_consistent() {
        for n in 2..=N_MAX {
            let c = constants(n);
            assert!(c.p_fast < c.p_accu, "fast budget must be tighter");
            // 2^(2*p_fast + 1) < P must hold — it is the uniqueness bound.
            let log2p = c.p_big.to_f64().log2();
            assert!(2.0 * c.p_fast + 1.0 < log2p);
            assert!(2.0 * c.p_accu + 1.0 <= log2p + 1e-9);
        }
    }

    #[test]
    fn mulhi_reciprocals() {
        for n in [2, 10, 20] {
            let c = constants(n);
            for (i, &pi) in c.p.iter().enumerate() {
                assert_eq!(c.p_inv_u32[i] as u64, (1u64 << 32) / pi - 1);
            }
        }
    }
}
