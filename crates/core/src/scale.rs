//! Step 1–3 of Algorithm 1: diagonal scale determination and truncation
//! (§4.2 of the paper).
//!
//! Both modes pick power-of-two scales `μ_i`, `ν_j` so that the uniqueness
//! condition (3) `2 Σ_h |a'_ih||b'_hj| < P` holds:
//!
//! * **fast mode** bounds the sum with Cauchy–Schwarz using per-row /
//!   per-column 2-norms computed with a certified round-up surrogate;
//! * **accurate mode** bounds it with an actual INT8 product of 6-bit
//!   magnitude estimates `Ā·B̄`, which is tighter (less truncation, better
//!   accuracy) at the cost of one extra INT8 GEMM.
//!
//! Scales are represented by their exponents (`μ_i = 2^{e_i}`), so the
//! inverse scaling in Step 4 is exact.

use crate::consts::Constants;
use crate::element::Element;
use gemm_dense::{MatF64, MatView, Matrix};
use gemm_engine::int8_gemm;
use gemm_exact::roundup;

/// `⌊log2 |x|⌋` for finite nonzero `x`, exact (bit manipulation, handles
/// subnormals).
#[inline]
pub fn ilog2_abs(x: f64) -> i32 {
    debug_assert!(x != 0.0 && x.is_finite());
    let bits = x.abs().to_bits();
    let exp_field = (bits >> 52) as i32;
    if exp_field > 0 {
        exp_field - 1023
    } else {
        // Subnormal: value = mant * 2^-1074.
        let mant = bits & ((1u64 << 52) - 1);
        63 - mant.leading_zeros() as i32 - 1074
    }
}

/// `x * 2^e`, safe for exponents beyond the normal range (split into two
/// in-range multiplications; each power of two is exact).
///
/// # Examples
/// ```
/// use ozaki2::scale::scale_by_pow2;
/// assert_eq!(scale_by_pow2(3.0, 4), 48.0);
/// // A naive `x * 2f64.powi(1500)` would overflow to infinity:
/// assert_eq!(scale_by_pow2(2f64.powi(-1000), 1500), 2f64.powi(500));
/// ```
#[inline]
pub fn scale_by_pow2(x: f64, e: i32) -> f64 {
    if (-969..=970).contains(&e) {
        x * 2f64.powi(e)
    } else {
        let half = e / 2;
        x * 2f64.powi(half) * 2f64.powi(e - half)
    }
}

/// Per-row fast-mode scale exponents for `A` (`μ_i = 2^{e_i}`).
///
/// Implements `e_i = ⌊budget − max(1, 0.51·log2 Σ_h ã_ih²)⌋ − m_i` where
/// `m_i = ⌊log2 max_h |a_ih|⌋` and `ã` is the row pre-normalised by `2^-m_i`
/// (the normalisation keeps the sum of squares in `[1, 4k]`, immune to
/// overflow, exactly as the paper's formula is structured).
pub fn fast_scale_rows(a: &MatF64, budget: f64) -> Vec<i32> {
    let (m, k) = a.shape();
    fast_scale_rows_slice(a.as_slice(), m, k, budget)
}

/// [`fast_scale_rows`] over a raw column-major `m x k` slice (vector `h` of
/// the matrix at `data[h*m..(h+1)*m]`) — the borrowed-view entry the batched
/// runtime's strided batches use. Bit-identical to the matrix form.
pub fn fast_scale_rows_slice(data: &[f64], m: usize, k: usize, budget: f64) -> Vec<i32> {
    assert!(data.len() >= m * k, "operand slice too short");
    let mut row_max = vec![0.0f64; m];
    for h in 0..k {
        for (rm, &x) in row_max.iter_mut().zip(&data[h * m..(h + 1) * m]) {
            let ax = x.abs();
            if ax > *rm {
                *rm = ax;
            }
        }
    }
    let m_exp: Vec<i32> = row_max
        .iter()
        .map(|&r| if r == 0.0 { 0 } else { ilog2_abs(r) })
        .collect();
    let inv_scale: Vec<f64> = m_exp.iter().map(|&e| scale_by_pow2(1.0, -e)).collect();
    let mut norm_sq = vec![0.0f64; m];
    for h in 0..k {
        for ((ns, &s), &x) in norm_sq
            .iter_mut()
            .zip(&inv_scale)
            .zip(&data[h * m..(h + 1) * m])
        {
            let t = x * s;
            *ns += t * t;
        }
    }
    norm_sq
        .iter()
        .zip(&m_exp)
        .zip(&row_max)
        .map(|((&ns, &me), &rm)| {
            if rm == 0.0 {
                return 0;
            }
            let upper = roundup::inflate(ns, k);
            let t = (0.51 * upper.log2()).max(1.0);
            (budget - t).floor() as i32 - me
        })
        .collect()
}

/// Per-column fast-mode scale exponents for `B` (`ν_j = 2^{e_j}`).
pub fn fast_scale_cols(b: &MatF64, budget: f64) -> Vec<i32> {
    let (k, n) = b.shape();
    fast_scale_cols_slice(b.as_slice(), k, n, budget)
}

/// [`fast_scale_cols`] over a raw column-major `k x n` slice (column `j` at
/// `data[j*k..(j+1)*k]`) — the borrowed-view entry the batched runtime's
/// strided batches use. Bit-identical to the matrix form.
pub fn fast_scale_cols_slice(data: &[f64], k: usize, n: usize, budget: f64) -> Vec<i32> {
    assert!(data.len() >= k * n, "operand slice too short");
    (0..n)
        .map(|j| {
            let col = &data[j * k..(j + 1) * k];
            let cm = col.iter().fold(0.0f64, |acc, &x| acc.max(x.abs()));
            if cm == 0.0 {
                return 0;
            }
            let me = ilog2_abs(cm);
            let s = scale_by_pow2(1.0, -me);
            let upper = roundup::sum_sq_upper(col.iter().map(|&x| x * s));
            let t = (0.51 * upper.log2()).max(1.0);
            (budget - t).floor() as i32 - me
        })
        .collect()
}

/// [`fast_scale_rows`] over a borrowed strided operand view (any layout,
/// leading dimension, or transpose; f64 or exactly widened f32): per-row
/// scale exponents for the view's **logical** elements, with zero
/// materialization. Bit-identical to [`fast_scale_rows_slice`] on a
/// column-major copy — every row's maxima and norm accumulation run in
/// the same ascending-`h` order, and f32 widening is exact.
pub fn fast_scale_a_view<T: Element>(a: &MatView<'_, T>, budget: f64) -> Vec<i32> {
    let (m, k) = a.shape();
    let mut row_max = vec![0.0f64; m];
    for h in 0..k {
        for (i, rm) in row_max.iter_mut().enumerate() {
            let ax = a.get(i, h).to_f64().abs();
            if ax > *rm {
                *rm = ax;
            }
        }
    }
    let m_exp: Vec<i32> = row_max
        .iter()
        .map(|&r| if r == 0.0 { 0 } else { ilog2_abs(r) })
        .collect();
    let inv_scale: Vec<f64> = m_exp.iter().map(|&e| scale_by_pow2(1.0, -e)).collect();
    let mut norm_sq = vec![0.0f64; m];
    for h in 0..k {
        for (i, (ns, &s)) in norm_sq.iter_mut().zip(&inv_scale).enumerate() {
            let t = a.get(i, h).to_f64() * s;
            *ns += t * t;
        }
    }
    norm_sq
        .iter()
        .zip(&m_exp)
        .zip(&row_max)
        .map(|((&ns, &me), &rm)| {
            if rm == 0.0 {
                return 0;
            }
            let upper = roundup::inflate(ns, k);
            let t = (0.51 * upper.log2()).max(1.0);
            (budget - t).floor() as i32 - me
        })
        .collect()
}

/// [`fast_scale_cols`] over a borrowed strided operand view — the
/// column-side counterpart of [`fast_scale_a_view`], bit-identical to
/// [`fast_scale_cols_slice`] on a column-major copy.
pub fn fast_scale_b_view<T: Element>(b: &MatView<'_, T>, budget: f64) -> Vec<i32> {
    let (k, n) = b.shape();
    (0..n)
        .map(|j| {
            let cm = (0..k).fold(0.0f64, |acc, h| acc.max(b.get(h, j).to_f64().abs()));
            if cm == 0.0 {
                return 0;
            }
            let me = ilog2_abs(cm);
            let s = scale_by_pow2(1.0, -me);
            let upper = roundup::sum_sq_upper((0..k).map(|h| b.get(h, j).to_f64() * s));
            let t = (0.51 * upper.log2()).max(1.0);
            (budget - t).floor() as i32 - me
        })
        .collect()
}

/// Accurate-mode scale exponents for both operands (§4.2).
///
/// Returns `(e_a, e_b)` and performs one INT8 GEMM of the 6-bit magnitude
/// estimates internally.
pub fn accurate_scale(a: &MatF64, b: &MatF64, budget: f64) -> (Vec<i32>, Vec<i32>) {
    accurate_scale_view(&a.view(), &b.view(), budget)
}

/// [`accurate_scale`] over borrowed strided operand views (f64 or exactly
/// widened f32). The 6-bit magnitude estimates `Ā`, `B̄` are built straight
/// from the strided elements — the operands themselves are never copied —
/// and the resulting exponents are bit-identical to the owned form.
pub fn accurate_scale_view<T: Element>(
    a: &MatView<'_, T>,
    b: &MatView<'_, T>,
    budget: f64,
) -> (Vec<i32>, Vec<i32>) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);

    // μ'_i = 2^{5 - ⌊log2 max_h |a_ih|⌋}: scales the row max into [32, 64).
    let mut row_max = vec![0.0f64; m];
    for h in 0..k {
        for (i, rm) in row_max.iter_mut().enumerate() {
            let ax = a.get(i, h).to_f64().abs();
            if ax > *rm {
                *rm = ax;
            }
        }
    }
    let mu_prime: Vec<i32> = row_max
        .iter()
        .map(|&r| if r == 0.0 { 0 } else { 5 - ilog2_abs(r) })
        .collect();
    let col_max: Vec<f64> = (0..n)
        .map(|j| (0..k).fold(0.0f64, |acc, h| acc.max(b.get(h, j).to_f64().abs())))
        .collect();
    let nu_prime: Vec<i32> = col_max
        .iter()
        .map(|&c| if c == 0.0 { 0 } else { 5 - ilog2_abs(c) })
        .collect();

    // Ā = ⌈μ' |A|⌉, B̄ = ⌈|B| ν'⌉ — 6-bit magnitudes (≤ 64), INT8-safe.
    let a_bar = Matrix::from_fn(m, k, |i, j| {
        let v = (scale_by_pow2(a.get(i, j).to_f64().abs(), mu_prime[i])).ceil();
        debug_assert!(v <= 64.0);
        v as i8
    });
    let b_bar = Matrix::from_fn(k, n, |i, j| {
        let v = (scale_by_pow2(b.get(i, j).to_f64().abs(), nu_prime[j])).ceil();
        debug_assert!(v <= 64.0);
        v as i8
    });

    // C̄ = Ā·B̄ estimates Σ|a||b| per (row, col) pair. Products are ≤ 4096,
    // so the i32 accumulator is exact for k ≤ 2^19; block above that.
    const K_EST_BLOCK: usize = 1 << 19;
    let c_bar: Matrix<i64> = if k <= K_EST_BLOCK {
        int8_gemm(&a_bar, &b_bar).map(|x| x as i64)
    } else {
        let mut acc = Matrix::<i64>::zeros(m, n);
        let mut h0 = 0;
        while h0 < k {
            let kb = K_EST_BLOCK.min(k - h0);
            let a_blk = Matrix::from_fn(m, kb, |i, j| a_bar[(i, h0 + j)]);
            let b_blk = Matrix::from_fn(kb, n, |i, j| b_bar[(h0 + i, j)]);
            let c_blk = int8_gemm(&a_blk, &b_blk);
            for (av, &cv) in acc.as_mut_slice().iter_mut().zip(c_blk.iter()) {
                *av += cv as i64;
            }
            h0 += kb;
        }
        acc
    };

    // Row / column maxima of C̄ (clamped to >= 1: a zero row estimate means
    // the product row is exactly zero, any scale works).
    let mut row_cmax = vec![1i64; m];
    let mut col_cmax = vec![1i64; n];
    for (j, cmax_j) in col_cmax.iter_mut().enumerate() {
        for (i, &c) in c_bar.col(j).iter().enumerate() {
            if c > row_cmax[i] {
                row_cmax[i] = c;
            }
            if c > *cmax_j {
                *cmax_j = c;
            }
        }
    }

    let e_a: Vec<i32> = mu_prime
        .iter()
        .zip(&row_cmax)
        .map(|(&mp, &cm)| mp + (budget - 0.51 * (cm as f64).log2()).floor() as i32)
        .collect();
    let e_b: Vec<i32> = nu_prime
        .iter()
        .zip(&col_cmax)
        .map(|(&np, &cm)| np + (budget - 0.51 * (cm as f64).log2()).floor() as i32)
        .collect();
    (e_a, e_b)
}

/// `2^e` as one or two exact f64 factors `(s1, s2)`: multiplying by both
/// in order reproduces [`scale_by_pow2`] bit for bit (the in-range case
/// has `s2 = 1.0`, and multiplying by `1.0` is the IEEE identity). This is
/// what lets the trunc kernels hoist the power-of-two computation out of
/// the per-element loop: one split per vector, two multiplies per element.
#[inline]
pub fn pow2_split(e: i32) -> (f64, f64) {
    if (-969..=970).contains(&e) {
        (2f64.powi(e), 1.0)
    } else {
        let half = e / 2;
        (2f64.powi(half), 2f64.powi(e - half))
    }
}

// ---------------------------------------------------------------------------
// Vectorized scale+trunc row kernels (runtime-dispatched)
// ---------------------------------------------------------------------------

/// Which scale+trunc row kernel the running CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TruncKernel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

fn detect_trunc_kernel() -> TruncKernel {
    if gemm_engine::force_scalar() {
        return TruncKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return TruncKernel::Avx512;
        }
        if is_x86_feature_detected!("avx") {
            return TruncKernel::Avx2;
        }
    }
    TruncKernel::Scalar
}

fn trunc_kernel() -> TruncKernel {
    static KERNEL: std::sync::OnceLock<TruncKernel> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(detect_trunc_kernel)
}

/// Human-readable name of the scale+trunc kernel the CPU dispatches to.
pub fn trunc_kernel_name() -> &'static str {
    match trunc_kernel() {
        #[cfg(target_arch = "x86_64")]
        TruncKernel::Avx512 => "avx512",
        #[cfg(target_arch = "x86_64")]
        TruncKernel::Avx2 => "avx",
        TruncKernel::Scalar => "scalar",
    }
}

/// Scalar scale+trunc row kernel: `dst[i] = trunc(xs[i] * s1 * s2)` with
/// `(s1, s2) = pow2_split(e)`. This is the lane oracle the SIMD paths are
/// property-tested against, bit for bit.
pub fn strunc_row_scalar(xs: &[f64], dst: &mut [f64], s1: f64, s2: f64) {
    for (d, &x) in dst.iter_mut().zip(xs) {
        *d = (x * s1 * s2).trunc();
    }
}

/// Pointer form of the scalar kernel: lane `i` reads `src[i]` and writes
/// `dst[i]` only, so `src == dst` (the in-place staging tile) is fine.
///
/// # Safety
/// `src` and `dst` must each be valid for `len` elements; if they overlap
/// they must be identical.
unsafe fn strunc_ptr_scalar(src: *const f64, dst: *mut f64, len: usize, s1: f64, s2: f64) {
    for i in 0..len {
        *dst.add(i) = (*src.add(i) * s1 * s2).trunc();
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX-512 / AVX scale+trunc row kernels. Two IEEE multiplies and a
    //! round-toward-zero (`roundscale` / `roundpd` with imm 0x0B) — the
    //! exact operation sequence of [`super::strunc_row_scalar`], so lanes
    //! cannot diverge from the scalar oracle. Pointer-based so the same
    //! body serves the out-of-place and in-place (src == dst) entries.

    use std::arch::x86_64::*;

    /// `_MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC` — truncation.
    const RZ: i32 = 0x0B;

    /// # Safety
    /// AVX-512F must be available; `src`/`dst` valid for `len` elements,
    /// identical if overlapping (each lane reads then writes its own slot).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn strunc_ptr_avx512(src: *const f64, dst: *mut f64, len: usize, s1: f64, s2: f64) {
        let n8 = len / 8 * 8;
        let s1v = _mm512_set1_pd(s1);
        let s2v = _mm512_set1_pd(s2);
        let mut i = 0;
        while i < n8 {
            let x = _mm512_loadu_pd(src.add(i));
            let y = _mm512_mul_pd(_mm512_mul_pd(x, s1v), s2v);
            _mm512_storeu_pd(dst.add(i), _mm512_roundscale_pd::<RZ>(y));
            i += 8;
        }
        super::strunc_ptr_scalar(src.add(n8), dst.add(n8), len - n8, s1, s2);
    }

    /// # Safety
    /// AVX must be available; same pointer contract as `strunc_ptr_avx512`.
    #[target_feature(enable = "avx")]
    pub unsafe fn strunc_ptr_avx(src: *const f64, dst: *mut f64, len: usize, s1: f64, s2: f64) {
        let n4 = len / 4 * 4;
        let s1v = _mm256_set1_pd(s1);
        let s2v = _mm256_set1_pd(s2);
        let mut i = 0;
        while i < n4 {
            let x = _mm256_loadu_pd(src.add(i));
            let y = _mm256_mul_pd(_mm256_mul_pd(x, s1v), s2v);
            _mm256_storeu_pd(dst.add(i), _mm256_round_pd::<RZ>(y));
            i += 4;
        }
        super::strunc_ptr_scalar(src.add(n4), dst.add(n4), len - n4, s1, s2);
    }
}

/// Dispatch the pointer kernel (shared by the row and in-place entries).
///
/// # Safety
/// `src`/`dst` valid for `len` elements; identical if overlapping.
#[inline]
unsafe fn strunc_ptr(src: *const f64, dst: *mut f64, len: usize, s1: f64, s2: f64) {
    match trunc_kernel() {
        #[cfg(target_arch = "x86_64")]
        TruncKernel::Avx512 => x86::strunc_ptr_avx512(src, dst, len, s1, s2),
        #[cfg(target_arch = "x86_64")]
        TruncKernel::Avx2 => x86::strunc_ptr_avx(src, dst, len, s1, s2),
        TruncKernel::Scalar => strunc_ptr_scalar(src, dst, len, s1, s2),
    }
}

/// Vectorized scale+trunc over a row: `dst[i] = trunc(xs[i] * s1 * s2)`
/// with `(s1, s2)` from [`pow2_split`]. Dispatches to the best kernel the
/// CPU supports; bit-identical to [`strunc_row_scalar`] on every path.
#[inline]
pub fn strunc_row(xs: &[f64], dst: &mut [f64], s1: f64, s2: f64) {
    assert!(dst.len() >= xs.len(), "destination row too short");
    // SAFETY: disjoint slices, lengths asserted, kernel feature-detected.
    unsafe { strunc_ptr(xs.as_ptr(), dst.as_mut_ptr(), xs.len(), s1, s2) }
}

/// In-place vectorized scale+trunc: `buf[i] = trunc(buf[i] * s1 * s2)`.
/// Same dispatched kernel as [`strunc_row`] (each lane reads then writes
/// only its own slot, so aliasing is benign); used on the fused convert's
/// staging tile after the transpose gather.
#[inline]
pub fn strunc_row_inplace(buf: &mut [f64], s1: f64, s2: f64) {
    // SAFETY: src == dst is the documented in-place case of strunc_ptr.
    unsafe { strunc_ptr(buf.as_ptr(), buf.as_mut_ptr(), buf.len(), s1, s2) }
}

/// Depth tile of the standalone transposing trunc: 256 source cache lines
/// (16 KiB) stay L1-resident while consecutive rows gather from them.
const TRUNC_DEPTH_TILE: usize = 256;

/// Step 2 fused with the row-major repack: `A'^T` laid out row-major,
/// `out[i*k + h] = trunc(2^{e_i} · a_ih)`, via cache-blocked transpose.
///
/// The hot pipeline no longer calls this (the truncation is fused into the
/// convert sweep, [`crate::convert::trunc_convert_pack_panels`]); it stays
/// as the standalone form for consumers that want the integer matrices
/// (`mixed.rs`, diagnostics, the structural-independence property tests).
pub fn scale_trunc_a_rowmajor(a: &MatF64, exps: &[i32], out: &mut [f64]) {
    let (m, k) = a.shape();
    assert_eq!(exps.len(), m);
    assert_eq!(out.len(), m * k);
    let a_data = a.as_slice();
    let mut tmp = [0.0f64; TRUNC_DEPTH_TILE];
    for j0 in (0..k).step_by(TRUNC_DEPTH_TILE) {
        let len = TRUNC_DEPTH_TILE.min(k - j0);
        for i in 0..m {
            let (s1, s2) = pow2_split(exps[i]);
            for (t, jj) in tmp[..len].iter_mut().zip(0..) {
                *t = a_data[(j0 + jj) * m + i];
            }
            strunc_row(&tmp[..len], &mut out[i * k + j0..i * k + j0 + len], s1, s2);
        }
    }
}

/// Step 3: `B'` stays column-major; `out[h + j*k] = trunc(2^{e_j} · b_hj)`.
/// Columns are contiguous, so the vectorized [`strunc_row`] kernel runs
/// directly over the source (same standalone role as
/// [`scale_trunc_a_rowmajor`]).
pub fn scale_trunc_b_colmajor(b: &MatF64, exps: &[i32], out: &mut [f64]) {
    let (k, n) = b.shape();
    assert_eq!(exps.len(), n);
    assert_eq!(out.len(), k * n);
    for j in 0..n {
        let (s1, s2) = pow2_split(exps[j]);
        strunc_row(b.col(j), &mut out[j * k..(j + 1) * k], s1, s2);
    }
}

/// Check the uniqueness condition (3) directly (test/diagnostic use):
/// `2 max_ij Σ_h |a'_ih||b'_hj| < P`, evaluated with certified upper-bound
/// arithmetic on a sample of (i, j) pairs or exhaustively for small shapes.
pub fn condition3_holds(
    aprime_rm: &[f64],
    bprime_cm: &[f64],
    m: usize,
    n: usize,
    k: usize,
    consts: &Constants,
) -> bool {
    let p_log2 = consts.p_big.to_f64().log2();
    for i in 0..m {
        let a_row = &aprime_rm[i * k..(i + 1) * k];
        for j in 0..n {
            let b_col = &bprime_cm[j * k..(j + 1) * k];
            let dot = roundup::dot_abs_upper(a_row.iter().zip(b_col.iter()));
            if dot > 0.0 && (2.0 * dot).log2() >= p_log2 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::workload::phi_matrix_f64;

    #[test]
    fn ilog2_matches_log2_floor() {
        for &x in &[1.0, 1.5, 2.0, 3.9, 0.5, 0.49, 1e300, 1e-300, 7.25e-310] {
            assert_eq!(ilog2_abs(x), x.abs().log2().floor() as i32, "x={x}");
            assert_eq!(ilog2_abs(-x), ilog2_abs(x));
        }
    }

    #[test]
    fn scale_by_pow2_extremes() {
        assert_eq!(scale_by_pow2(1.0, 10), 1024.0);
        assert_eq!(scale_by_pow2(1.0, -10), 1.0 / 1024.0);
        // Beyond the single-multiply range: 2^-1000 * 2^1500 = 2^500, which
        // a naive `x * 2f64.powi(1500)` would turn into infinity.
        let x = scale_by_pow2(2f64.powi(-1000), 1500);
        assert_eq!(x, 2f64.powi(500));
        let y = scale_by_pow2(2f64.powi(1000), -1500);
        assert_eq!(y, 2f64.powi(-500));
    }

    #[test]
    fn fast_scale_respects_budget() {
        let budget = 30.0;
        let a = phi_matrix_f64(16, 64, 1.0, 7, 0);
        let exps = fast_scale_rows(&a, budget);
        for i in 0..16 {
            // 2-norm of the scaled, truncated row must stay under 2^budget.
            let nrm: f64 = (0..64)
                .map(|h| {
                    let v = scale_by_pow2(a[(i, h)], exps[i]).trunc();
                    v * v
                })
                .sum::<f64>()
                .sqrt();
            assert!(
                nrm.log2() <= budget + 1e-9,
                "row {i}: |a'| = 2^{}",
                nrm.log2()
            );
            // And not wastefully small (within ~3 bits of the budget for a
            // well-conditioned random row).
            assert!(
                nrm.log2() > budget - 4.0,
                "row {i}: |a'| = 2^{}",
                nrm.log2()
            );
        }
    }

    #[test]
    fn fast_scale_cols_matches_rows_of_transpose() {
        let b = phi_matrix_f64(32, 8, 0.5, 3, 1);
        let cols = fast_scale_cols(&b, 25.0);
        let rows = fast_scale_rows(&b.transpose(), 25.0);
        assert_eq!(cols, rows);
    }

    #[test]
    fn zero_rows_get_neutral_scale() {
        let mut a = phi_matrix_f64(4, 8, 0.5, 1, 0);
        for h in 0..8 {
            a[(2, h)] = 0.0;
        }
        let exps = fast_scale_rows(&a, 30.0);
        assert_eq!(exps[2], 0);
    }

    #[test]
    fn trunc_outputs_are_integers() {
        let a = phi_matrix_f64(8, 8, 2.0, 11, 0);
        let exps = fast_scale_rows(&a, 20.0);
        let mut out = vec![0f64; 64];
        scale_trunc_a_rowmajor(&a, &exps, &mut out);
        assert!(out.iter().all(|x| x.fract() == 0.0));
    }

    #[test]
    fn b_trunc_column_layout() {
        let b = phi_matrix_f64(6, 3, 0.5, 13, 1);
        let exps = fast_scale_cols(&b, 20.0);
        let mut out = vec![0f64; 18];
        scale_trunc_b_colmajor(&b, &exps, &mut out);
        for j in 0..3 {
            for h in 0..6 {
                let want = scale_by_pow2(b[(h, j)], exps[j]).trunc();
                assert_eq!(out[h + j * 6], want);
            }
        }
    }

    #[test]
    fn pow2_split_reproduces_scale_by_pow2() {
        for e in [
            -1940, -1500, -1074, -970, -969, -500, -1, 0, 1, 513, 970, 971, 1500, 1940,
        ] {
            let (s1, s2) = pow2_split(e);
            for &x in &[1.0f64, -3.7, 0.125, 12345.678, -2f64.powi(40)] {
                assert_eq!(
                    (x * s1 * s2).to_bits(),
                    scale_by_pow2(x, e).to_bits(),
                    "e={e} x={x}"
                );
            }
        }
    }

    #[test]
    fn strunc_row_bit_identical_to_scalar_and_reference() {
        // Ragged lengths (SIMD body + tail), extreme exponents (both
        // pow2_split regimes), negative zero producers.
        for len in [1usize, 3, 4, 7, 8, 9, 16, 31, 64, 100] {
            let xs: Vec<f64> = (0..len)
                .map(|i| (i as f64 - 17.3) * 1.618f64.powi(i as i32 % 40 - 20))
                .collect();
            for e in [-1800i32, -975, -37, 0, 12, 975, 1800] {
                let (s1, s2) = pow2_split(e);
                let mut got = vec![0.0f64; len];
                let mut want = vec![0.0f64; len];
                strunc_row(&xs, &mut got, s1, s2);
                strunc_row_scalar(&xs, &mut want, s1, s2);
                for i in 0..len {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "kernel={} len={len} e={e} lane={i}",
                        trunc_kernel_name()
                    );
                    assert_eq!(
                        want[i].to_bits(),
                        scale_by_pow2(xs[i], e).trunc().to_bits(),
                        "oracle deviates from scale_by_pow2: len={len} e={e} lane={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn strunc_inplace_matches_out_of_place() {
        let xs: Vec<f64> = (0..53).map(|i| (i as f64) * 0.7331 - 19.0).collect();
        for e in [-40i32, 0, 7, 1100] {
            let (s1, s2) = pow2_split(e);
            let mut want = vec![0.0f64; xs.len()];
            strunc_row(&xs, &mut want, s1, s2);
            let mut buf = xs.clone();
            strunc_row_inplace(&mut buf, s1, s2);
            assert_eq!(
                buf.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "e={e}"
            );
        }
    }

    #[test]
    fn accurate_scale_tighter_than_fast() {
        // Accurate mode should grant at least as many bits as fast mode on
        // a generic random instance (it bounds the true sum, not the
        // Cauchy–Schwarz overestimate).
        let a = phi_matrix_f64(24, 48, 1.0, 5, 0);
        let b = phi_matrix_f64(48, 24, 1.0, 5, 1);
        let budget = 25.0;
        let fast = fast_scale_rows(&a, budget);
        let (accu, _) = accurate_scale(&a, &b, budget + 0.25);
        let better: i32 = fast
            .iter()
            .zip(&accu)
            .map(|(&f, &acc)| (acc - f).signum())
            .sum();
        assert!(
            better > 0,
            "accurate mode should usually keep more bits: fast={fast:?} accu={accu:?}"
        );
    }
}
