//! The fixed moduli table (§4.1).
//!
//! Pairwise-coprime integers `p_i ≤ 256`, descending, chosen greedily so
//! every prefix product `P(N) = Π_{i<N} p_i` is maximal — larger `P` means
//! less truncation in Step 2 and therefore better accuracy per modulus.
//! Each `rmod(·, p_i)` lands in `[-p_i/2, p_i/2] ⊆ [-128, 128]`; the single
//! boundary value `+128` (only possible for `p_1 = 256`) wraps to `-128` on
//! the INT8 cast, which is harmless because `128 ≡ -128 (mod 256)`.

/// Maximum number of moduli supported (the paper caps its tables at 20).
pub const N_MAX: usize = 20;

/// Maximum moduli for the SGEMM (`b = 32`) conversion kernel (§4.2).
pub const N_MAX_SGEMM: usize = 18;

/// The moduli pool: `256 = 2^8`, then the greedy maximal pairwise-coprime
/// descent. Factorisations are disjoint by construction:
/// 2^8 | 3·5·17 | 11·23 | 251 | 13·19 | 241 | 239 | 233 | 229 | 227 |
/// 223 | 7·31 | 211 | 199 | 197 | 193 | 191 | 181 | 179 | 173.
pub const MODULI: [u64; N_MAX] = [
    256, 255, 253, 251, 247, 241, 239, 233, 229, 227, 223, 217, 211, 199, 197, 193, 191, 181, 179,
    173,
];

/// The first `n` moduli.
///
/// # Examples
/// ```
/// // N = 2 keeps the two largest pairwise-coprime moduli.
/// assert_eq!(ozaki2::moduli(2), &[256, 255]);
/// ```
pub fn moduli(n: usize) -> &'static [u64] {
    assert!((2..=N_MAX).contains(&n), "N must be in 2..=20, got {n}");
    &MODULI[..n]
}

/// `log2 Π p_i` for the first `n` moduli (used in docs/reports; the exact
/// product lives in the constant tables).
pub fn log2_p(n: usize) -> f64 {
    moduli(n).iter().map(|&p| (p as f64).log2()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_exact::gcd_u64;

    #[test]
    fn pairwise_coprime() {
        for (i, &pi) in MODULI.iter().enumerate() {
            for &pj in &MODULI[i + 1..] {
                assert_eq!(gcd_u64(pi, pj), 1, "{pi} and {pj} share a factor");
            }
        }
    }

    #[test]
    fn strictly_descending_and_in_range() {
        for w in MODULI.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(MODULI.iter().all(|&p| (2..=256).contains(&p)));
    }

    #[test]
    fn rmod_fits_int8() {
        // For every modulus, the symmetric residue range fits INT8 (the
        // +128 corner for p = 256 wraps, see module docs).
        for &p in &MODULI {
            let half = (p / 2) as i64;
            assert!(half <= 128);
            assert!(-half >= -128);
        }
    }

    #[test]
    fn accuracy_sweet_spots_match_paper() {
        // §5.1: N = 14 slightly below DGEMM (needs ~53+10+1 bits of P for
        // k = 1024), N = 15 on par. Our prefix products bracket those sizes.
        let bits14 = log2_p(14);
        let bits15 = log2_p(15);
        assert!(bits14 > 105.0 && bits14 < 115.0, "log2 P(14) = {bits14}");
        assert!(bits15 > 115.0 && bits15 < 122.0, "log2 P(15) = {bits15}");
        // SGEMM-level at N = 7..8 (needs ~24*2+10+1 = 59 bits).
        assert!(log2_p(7) > 52.0 && log2_p(8) > 60.0);
    }

    #[test]
    #[should_panic(expected = "N must be in 2..=20")]
    fn rejects_out_of_range_n() {
        moduli(21);
    }
}
