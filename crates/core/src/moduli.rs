//! The fixed moduli tables (§4.1) — one pool per residue backend.
//!
//! The INT8 pool: pairwise-coprime integers `p_i ≤ 256`, descending,
//! chosen greedily so every prefix product `P(N) = Π_{i<N} p_i` is maximal
//! — larger `P` means less truncation in Step 2 and therefore better
//! accuracy per modulus. Each `rmod(·, p_i)` lands in
//! `[-p_i/2, p_i/2] ⊆ [-128, 128]`; the single boundary value `+128` (only
//! possible for `p_1 = 256`) wraps to `-128` on the INT8 cast, which is
//! harmless because `128 ≡ -128 (mod 256)`.
//!
//! The bf16-FMA pool ([`FMA_MODULI`]) applies the same greedy maximal
//! construction under that backend's *native* exactness envelope
//! `p ≤ 64` (see `gemm_engine::backend`): a hardware bf16-FMA unit
//! accumulating a whole k-block in one f32 chain keeps `k·(p/2)² ≤ 2^24`
//! exact up to `k = 2^14` only for these small moduli. Fewer bits per
//! modulus (~5.2 vs ~7.8) means more planes for the same accuracy — the
//! throughput/accuracy trade the backend advisor weighs.

use gemm_engine::BackendKind;

/// Maximum number of moduli supported (the paper caps its tables at 20).
pub const N_MAX: usize = 20;

/// Maximum moduli for the SGEMM (`b = 32`) conversion kernel (§4.2).
pub const N_MAX_SGEMM: usize = 18;

/// Maximum number of moduli in the bf16-FMA pool (the pool is exhausted
/// at 16: the next coprime candidate below 64 would add too few bits to
/// justify another plane).
pub const N_MAX_FMA: usize = 16;

/// The moduli pool: `256 = 2^8`, then the greedy maximal pairwise-coprime
/// descent. Factorisations are disjoint by construction:
/// 2^8 | 3·5·17 | 11·23 | 251 | 13·19 | 241 | 239 | 233 | 229 | 227 |
/// 223 | 7·31 | 211 | 199 | 197 | 193 | 191 | 181 | 179 | 173.
pub const MODULI: [u64; N_MAX] = [
    256, 255, 253, 251, 247, 241, 239, 233, 229, 227, 223, 217, 211, 199, 197, 193, 191, 181, 179,
    173,
];

/// The first `n` moduli.
///
/// # Examples
/// ```
/// // N = 2 keeps the two largest pairwise-coprime moduli.
/// assert_eq!(ozaki2::moduli(2), &[256, 255]);
/// ```
pub fn moduli(n: usize) -> &'static [u64] {
    assert!((2..=N_MAX).contains(&n), "N must be in 2..=20, got {n}");
    &MODULI[..n]
}

/// The bf16-FMA pool: `64 = 2^6`, then the greedy maximal pairwise-coprime
/// descent below it. Factorisations are disjoint by construction:
/// 2^6 | 3²·7 | 61 | 59 | 5·11 | 53 | 47 | 43 | 41 | 37 | 31 | 29 | 23 |
/// 19 | 17 | 13.
pub const FMA_MODULI: [u64; N_MAX_FMA] = [
    64, 63, 61, 59, 55, 53, 47, 43, 41, 37, 31, 29, 23, 19, 17, 13,
];

/// The first `n` moduli of the bf16-FMA pool.
pub fn fma_moduli(n: usize) -> &'static [u64] {
    assert!(
        (2..=N_MAX_FMA).contains(&n),
        "N must be in 2..=16 for the fma-bf16 pool, got {n}"
    );
    &FMA_MODULI[..n]
}

/// The full moduli pool a backend's moduli selection draws from.
pub fn backend_pool(kind: BackendKind) -> &'static [u64] {
    match kind {
        BackendKind::Int8 => &MODULI,
        BackendKind::FmaBf16 => &FMA_MODULI,
    }
}

/// The first `n` moduli of `kind`'s pool.
pub fn backend_moduli(kind: BackendKind, n: usize) -> &'static [u64] {
    match kind {
        BackendKind::Int8 => moduli(n),
        BackendKind::FmaBf16 => fma_moduli(n),
    }
}

/// Largest supported `N` for `kind`'s pool and the given output
/// precision. The INT8 pool caps SGEMM at [`N_MAX_SGEMM`] (the `b = 32`
/// conversion budget, §4.2); the FMA pool carries fewer bits per modulus,
/// so the same step thresholds hold and only the pool length caps it.
pub fn backend_n_max(kind: BackendKind, for_sgemm: bool) -> usize {
    match kind {
        BackendKind::Int8 => {
            if for_sgemm {
                N_MAX_SGEMM
            } else {
                N_MAX
            }
        }
        BackendKind::FmaBf16 => N_MAX_FMA,
    }
}

/// `log2 Π p_i` for the first `n` moduli (used in docs/reports; the exact
/// product lives in the constant tables).
pub fn log2_p(n: usize) -> f64 {
    moduli(n).iter().map(|&p| (p as f64).log2()).sum()
}

/// `log2 Π p_i` for the first `n` moduli of `kind`'s pool.
pub fn backend_log2_p(kind: BackendKind, n: usize) -> f64 {
    backend_moduli(kind, n)
        .iter()
        .map(|&p| (p as f64).log2())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_exact::gcd_u64;

    #[test]
    fn pairwise_coprime() {
        for (i, &pi) in MODULI.iter().enumerate() {
            for &pj in &MODULI[i + 1..] {
                assert_eq!(gcd_u64(pi, pj), 1, "{pi} and {pj} share a factor");
            }
        }
    }

    #[test]
    fn strictly_descending_and_in_range() {
        for w in MODULI.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(MODULI.iter().all(|&p| (2..=256).contains(&p)));
    }

    #[test]
    fn rmod_fits_int8() {
        // For every modulus, the symmetric residue range fits INT8 (the
        // +128 corner for p = 256 wraps, see module docs).
        for &p in &MODULI {
            let half = (p / 2) as i64;
            assert!(half <= 128);
            assert!(-half >= -128);
        }
    }

    #[test]
    fn accuracy_sweet_spots_match_paper() {
        // §5.1: N = 14 slightly below DGEMM (needs ~53+10+1 bits of P for
        // k = 1024), N = 15 on par. Our prefix products bracket those sizes.
        let bits14 = log2_p(14);
        let bits15 = log2_p(15);
        assert!(bits14 > 105.0 && bits14 < 115.0, "log2 P(14) = {bits14}");
        assert!(bits15 > 115.0 && bits15 < 122.0, "log2 P(15) = {bits15}");
        // SGEMM-level at N = 7..8 (needs ~24*2+10+1 = 59 bits).
        assert!(log2_p(7) > 52.0 && log2_p(8) > 60.0);
    }

    #[test]
    #[should_panic(expected = "N must be in 2..=20")]
    fn rejects_out_of_range_n() {
        moduli(21);
    }

    #[test]
    fn fma_pool_pairwise_coprime_and_in_envelope() {
        for (i, &pi) in FMA_MODULI.iter().enumerate() {
            for &pj in &FMA_MODULI[i + 1..] {
                assert_eq!(gcd_u64(pi, pj), 1, "{pi} and {pj} share a factor");
            }
        }
        for w in FMA_MODULI.windows(2) {
            assert!(w[0] > w[1]);
        }
        // Native exactness envelope of the bf16-FMA backend.
        use gemm_engine::ResidueBackend as _;
        let caps = gemm_engine::FmaBf16Backend.caps();
        assert!(FMA_MODULI
            .iter()
            .all(|&p| (2..=caps.native_max_modulus).contains(&p)));
    }

    #[test]
    fn fma_pool_accuracy_band() {
        // The full FMA pool carries ~83 bits of P: comfortably past
        // SGEMM-level (needs ~59) but short of DGEMM-level (~117) — the
        // pool's intended accuracy band.
        let bits = backend_log2_p(BackendKind::FmaBf16, N_MAX_FMA);
        assert!((78.0..90.0).contains(&bits), "log2 P_fma(16) = {bits}");
    }

    #[test]
    fn backend_pool_accessors_agree() {
        assert_eq!(backend_pool(BackendKind::Int8), &MODULI);
        assert_eq!(backend_pool(BackendKind::FmaBf16), &FMA_MODULI);
        assert_eq!(backend_moduli(BackendKind::Int8, 5), moduli(5));
        assert_eq!(backend_moduli(BackendKind::FmaBf16, 4), &[64, 63, 61, 59]);
        assert_eq!(backend_n_max(BackendKind::Int8, false), N_MAX);
        assert_eq!(backend_n_max(BackendKind::Int8, true), N_MAX_SGEMM);
        assert_eq!(backend_n_max(BackendKind::FmaBf16, false), N_MAX_FMA);
        assert_eq!(backend_n_max(BackendKind::FmaBf16, true), N_MAX_FMA);
    }

    #[test]
    #[should_panic(expected = "N must be in 2..=16")]
    fn fma_pool_rejects_out_of_range_n() {
        fma_moduli(17);
    }
}
