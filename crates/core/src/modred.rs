//! Line 7 of Algorithm 1: `U_i = mod(C'_i, p_i)` as UINT8 planes.
//!
//! The integer `%` operator is slow on GPUs (and not vectorised well on
//! CPUs), so the paper replaces it with a `__mulhi`-based Barrett-style
//! reduction using the precomputed reciprocal `p_inv' = ⌊2^32/p⌋ - 1`,
//! followed by two conditional fix-ups. `mod` (truncation semantics) is
//! used instead of `rmod` because integer arithmetic truncates; the CRT
//! weights absorb the representative choice.

use crate::consts::Constants;
use rayon::prelude::*;

/// `x mod p ∈ [0, p)` for any `i32 x`, via high-multiply estimate plus two
/// conditional corrections (`q` can be off by at most one in each
/// direction across the full i32 range — see the exhaustive boundary test).
///
/// The actual arithmetic lives in [`gemm_engine::barrett_mod_u8`] so the
/// engine's fused GEMM epilogues and this standalone kernel cannot drift
/// apart.
#[inline]
pub fn mod_i32_to_u8(x: i32, p: i32, pinv: u32) -> u8 {
    gemm_engine::barrett_mod_u8(x, p, pinv)
}

/// Reduce one INT32 product plane into a UINT8 residue plane.
pub fn reduce_plane(c32: &[i32], p: u64, pinv: u32, out: &mut [u8]) {
    assert_eq!(c32.len(), out.len());
    let p = p as i32;
    out.par_chunks_mut(16 * 1024)
        .zip(c32.par_chunks(16 * 1024))
        .for_each(|(dst, src)| {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d = mod_i32_to_u8(x, p, pinv);
            }
        });
}

/// Accumulate residue planes across `k`-blocks (used when `k > 2^17`):
/// `acc += mod(C'_blk, p)` stays far below i32 overflow as long as the
/// number of blocks is < 2^23.
pub fn accumulate_block_residues(c32: &[i32], p: u64, pinv: u32, acc: &mut [i32]) {
    assert_eq!(c32.len(), acc.len());
    let p = p as i32;
    acc.par_chunks_mut(16 * 1024)
        .zip(c32.par_chunks(16 * 1024))
        .for_each(|(dst, src)| {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d += mod_i32_to_u8(x, p, pinv) as i32;
            }
        });
}

/// Final reduction of accumulated block residues into UINT8.
pub fn finalize_block_residues(acc: &[i32], p: u64, pinv: u32, out: &mut [u8]) {
    reduce_plane(acc, p, pinv, out);
}

/// Reduce all `N` planes `C'_i -> U_i` (the single-block fast path).
pub fn reduce_all_planes(c32: &[i32], consts: &Constants, plane_len: usize, out: &mut [u8]) {
    let n = consts.n;
    assert_eq!(c32.len(), n * plane_len);
    assert_eq!(out.len(), n * plane_len);
    for s in 0..n {
        reduce_plane(
            &c32[s * plane_len..(s + 1) * plane_len],
            consts.p[s],
            consts.p_inv_u32[s],
            &mut out[s * plane_len..(s + 1) * plane_len],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moduli::MODULI;

    fn pinv(p: u64) -> u32 {
        ((1u64 << 32) / p - 1) as u32
    }

    #[test]
    fn matches_rem_euclid_sampled() {
        for &p in &MODULI {
            let pi = pinv(p);
            let mut x = i32::MIN as i64;
            while x <= i32::MAX as i64 {
                let v = x as i32;
                assert_eq!(
                    mod_i32_to_u8(v, p as i32, pi) as i64,
                    (v as i64).rem_euclid(p as i64),
                    "x={v} p={p}"
                );
                x += 104_729; // large prime stride: ~41k samples per modulus
            }
        }
    }

    #[test]
    fn matches_rem_euclid_boundaries() {
        for &p in &MODULI {
            let pi = pinv(p);
            for &v in &[
                i32::MIN,
                i32::MIN + 1,
                -(p as i32) * 7,
                -(p as i32) - 1,
                -(p as i32),
                -1,
                0,
                1,
                p as i32 - 1,
                p as i32,
                p as i32 + 1,
                i32::MAX - 1,
                i32::MAX,
            ] {
                assert_eq!(
                    mod_i32_to_u8(v, p as i32, pi) as i64,
                    (v as i64).rem_euclid(p as i64),
                    "x={v} p={p}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_small_window_every_modulus() {
        for &p in &MODULI {
            let pi = pinv(p);
            for v in -100_000i32..100_000 {
                assert_eq!(
                    mod_i32_to_u8(v, p as i32, pi) as i64,
                    (v as i64).rem_euclid(p as i64),
                    "x={v} p={p}"
                );
            }
        }
    }

    #[test]
    fn block_accumulation_matches_direct() {
        let p = 251u64;
        let pi = pinv(p);
        // Two "blocks" of products; their residue sums reduce to the same
        // residue as the (unwrapped) total.
        let blk1 = [1000i32, -500, 123456, i32::MAX / 2];
        let blk2 = [2000i32, -700, -123456, i32::MAX / 2];
        let mut acc = vec![0i32; 4];
        accumulate_block_residues(&blk1, p, pi, &mut acc);
        accumulate_block_residues(&blk2, p, pi, &mut acc);
        let mut out = vec![0u8; 4];
        finalize_block_residues(&acc, p, pi, &mut out);
        for i in 0..4 {
            let total = blk1[i] as i64 + blk2[i] as i64;
            assert_eq!(out[i] as i64, total.rem_euclid(p as i64), "i={i}");
        }
    }
}
