//! # ozaki2 — the paper's contribution
//!
//! DGEMM and SGEMM emulation via **Ozaki Scheme II** on INT8 matrix engines
//! (Uchino, Ozaki, Imamura — SC'25). Instead of splitting significands like
//! Ozaki Scheme I / cuMpSGEMM / BF16x9, the input product is mapped to an
//! exact integer product recovered through the Chinese Remainder Theorem:
//!
//! 1. diagonal power-of-two scaling + truncation turns `A`, `B` into
//!    integer matrices `A'`, `B'` with `2·Σ_h |a'_ih||b'_hj| < P` (§4.2);
//! 2. residues `rmod(A', p_i)`, `rmod(B', p_i)` fit INT8 for the fixed
//!    pairwise-coprime moduli `p_i ≤ 256` (§4.1);
//! 3. the `N` products run on the INT8 engine with INT32 accumulation and
//!    are reduced to UINT8 residues `U_i` (§4.3);
//! 4. a single FP64 pass reconstructs `A'B' = rmod(Σ (P/p_i)q_i U_i, P)`
//!    with a weight split engineered so the hot sum is exact in f64, then
//!    applies the exact inverse scaling.
//!
//! Entry point: [`Ozaki2`] (see the crate examples and `examples/` at the
//! workspace root).
//!
//! ```
//! use ozaki2::{Mode, Ozaki2};
//! use gemm_dense::workload::phi_matrix_f64;
//!
//! let a = phi_matrix_f64(32, 32, 0.5, 42, 0);
//! let b = phi_matrix_f64(32, 32, 0.5, 42, 1);
//! let c = Ozaki2::new(15, Mode::Fast).dgemm(&a, &b);
//! assert_eq!(c.shape(), (32, 32));
//! ```

#![warn(missing_docs)]

pub mod abft;
pub mod accumulate;
pub mod blas;
pub mod consts;
pub mod convert;
pub mod element;
pub mod facade;
pub mod mixed;
pub mod modred;
pub mod moduli;
pub mod nselect;
pub mod pipeline;
pub mod plan;
pub mod prepared;
pub mod scale;

pub use abft::{FaultEvent, FaultPolicy, FaultReport, RecoveryAction};
pub use accumulate::{fold_kernel_name, fold_planes, fold_span, fold_span_scalar, FoldPrecision};
pub use blas::{dgemm_emulated, GemmOp};
pub use consts::{constants, constants_for, fma_constants, Constants};
pub use convert::{
    convert_kernel_name, convert_pack_panels, residue_planes, trunc_convert_pack_panels, ElemSlice,
    TruncSource,
};
pub use element::Element;
pub use facade::{Accuracy, GemmArgs, GemmOut, Ozaki2Builder};
pub use gemm_engine::BackendKind;
pub use gemm_obs::TimeShare;
pub use mixed::{dgemm_dd, gemm_f32xf64, gemm_f64xf32};
pub use moduli::{
    backend_log2_p, backend_moduli, backend_n_max, backend_pool, fma_moduli, moduli, FMA_MODULI,
    MODULI, N_MAX, N_MAX_FMA, N_MAX_SGEMM,
};
pub use nselect::{
    auto_emulator, choose_n, choose_n_checked, choose_n_checked_for, choose_n_for,
    n_for_dgemm_level, n_for_sgemm_level, predicted_error, predicted_error_for,
};
pub use pipeline::{
    EmulationError, EmulationReport, Mode, Ozaki2, PhaseTimes, Workspace, K_BLOCK_MAX,
};
pub use plan::{arithmetic_intensity, GemmPlan};
pub use prepared::{OperandInput, OperandSide, PreparedOperand};
pub use scale::{
    fast_scale_a_view, fast_scale_b_view, fast_scale_cols_slice, fast_scale_rows_slice, pow2_split,
    strunc_row, strunc_row_scalar, trunc_kernel_name,
};
