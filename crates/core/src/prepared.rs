//! The prepare/execute split of Algorithm 1: reusable one-sided operand
//! preparations.
//!
//! Lines 1–5 of Algorithm 1 (scale-vector determination, the fused
//! trunc+convert sweep, and the engine packing) depend on only **one**
//! operand in [`Mode::Fast`] — row scales for `A`, column scales for `B`.
//! A workload that reuses an operand across many products (weight-stationary
//! inference, the shared component products of CRT complex multiplication,
//! LU panels multiplied against a stream of blocks) therefore recomputes
//! the whole front end redundantly when it goes through
//! [`Ozaki2::dgemm`] per call.
//!
//! [`PreparedOperand`] captures that front end once: the scale exponents
//! plus the `N` packed i16 residue panels, in exactly the layout the INT8
//! engine's zero-repack entry ([`gemm_engine::int8_gemm_prepacked_fused`])
//! consumes. [`Ozaki2::execute_prepared`] then runs only lines 6–12 (the
//! `N` INT8 GEMMs with fused modular reduction and the CRT fold). Both
//! halves run the very same kernels as the monolithic pipeline, so the
//! result is **bit-identical** to [`Ozaki2::dgemm`] on the same inputs —
//! the property the batched runtime (`gemm_batch`) builds its caching on.
//!
//! [`Mode::Accurate`] scales `A` and `B` jointly (one estimation GEMM over
//! both magnitudes), so a one-sided preparation cannot exist; the prepare
//! entry points return [`EmulationError::PreparationUnsupported`] for it
//! and accurate-mode batches fall back to the monolithic per-item path.

use crate::abft::{execute_panels_ft, FtScratch, PanelsRef};
use crate::consts::{constants_for, Constants};
use crate::convert::trunc_convert_pack_panels;
use crate::element::Element;
use crate::facade::{validate_view, vectors_source};
use crate::moduli::backend_n_max;
use crate::nselect;
use crate::pipeline::{
    execute_panels, EmulationError, EmulationReport, Mode, Ozaki2, PhaseTimes, Workspace, WsBuffers,
};
use crate::scale::{fast_scale_a_view, fast_scale_b_view};
use gemm_dense::{MatF32, MatF64, MatView, Matrix};
use gemm_engine::{padded_a_rows, padded_b_cols, padded_depth, BackendKind};
use gemm_obs::TimeShare;
use std::time::Instant;

/// Which side of the product an operand was prepared for. The sides pack
/// differently (`A` is transpose-gathered into row panels, `B` into column
/// panels), so a preparation is only valid on its own side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperandSide {
    /// Left operand (`m x k`, row panels, per-row scales).
    A,
    /// Right operand (`k x n`, column panels, per-column scales).
    B,
}

/// A cached Algorithm-1 front end (lines 1–5) for one operand: scale
/// exponents plus the `N` packed i16 residue panels, ready for
/// zero-repack INT8 GEMMs.
///
/// Produced by [`Ozaki2::prepare_a`] / [`Ozaki2::prepare_b`] (and their
/// `try_`/slice/f32 variants), consumed by [`Ozaki2::execute_prepared`].
/// Reusing a preparation across products amortizes the entire convert
/// front end — see the crate-level example below and
/// `examples/batched_inference.rs`.
///
/// # Examples
/// ```
/// use ozaki2::{Mode, Ozaki2};
/// use gemm_dense::workload::phi_matrix_f64;
///
/// let emu = Ozaki2::new(12, Mode::Fast);
/// let b = phi_matrix_f64(48, 32, 0.5, 7, 1);
/// // Prepare the shared (weight-like) operand once...
/// let pb = emu.prepare_b(&b);
/// for seed in 0..3 {
///     let a = phi_matrix_f64(24, 48, 0.5, seed, 0);
///     let pa = emu.prepare_a(&a);
///     // ...and every product over it skips B's scale/trunc/convert.
///     let c = emu.execute_prepared(&pa, &pb);
///     assert_eq!(c, emu.dgemm(&a, &b)); // bit-identical
/// }
/// ```
pub struct PreparedOperand {
    side: OperandSide,
    /// Number of logical vectors: `m` for side A, `n` for side B.
    vecs: usize,
    k: usize,
    n_moduli: usize,
    mode: Mode,
    backend: BackendKind,
    b64: bool,
    exps: Vec<i32>,
    panels: Vec<i16>,
    prepare_phases: PhaseTimes,
}

impl std::fmt::Debug for PreparedOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedOperand")
            .field("side", &self.side)
            .field("shape", &self.shape())
            .field("n_moduli", &self.n_moduli)
            .field("mode", &self.mode)
            .field("backend", &self.backend)
            .field("b64", &self.b64)
            .field("bytes", &self.bytes())
            .finish()
    }
}

impl PreparedOperand {
    /// Which side this preparation is for.
    pub fn side(&self) -> OperandSide {
        self.side
    }

    /// Logical operand shape: `(m, k)` for side A, `(k, n)` for side B.
    pub fn shape(&self) -> (usize, usize) {
        match self.side {
            OperandSide::A => (self.vecs, self.k),
            OperandSide::B => (self.k, self.vecs),
        }
    }

    /// Moduli count the panels were reduced against.
    pub fn n_moduli(&self) -> usize {
        self.n_moduli
    }

    /// Scaling mode (always [`Mode::Fast`]; accurate mode cannot prepare).
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Residue backend whose moduli pool reduced the panels. A
    /// preparation is only valid on an emulator configured for the same
    /// backend: the pools share no layout, so the panels are
    /// meaningless — not merely slower — under another backend's moduli.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// `true` when prepared with the DGEMM (`b = 64`) conversion
    /// thresholds, `false` for the SGEMM (`b = 32`) ones.
    pub fn is_f64(&self) -> bool {
        self.b64
    }

    /// Heap footprint in bytes (panels + exponents) — what a cache charges
    /// for keeping this preparation alive.
    pub fn bytes(&self) -> usize {
        self.panels.capacity() * 2 + self.exps.capacity() * 4
    }

    /// Wall-clock the preparation spent in the front-end phases (line 1
    /// in `scale`, lines 2–5 split across `trunc`/`convert`). Consumers
    /// report amortized front-end share with this.
    pub fn prepare_phases(&self) -> PhaseTimes {
        self.prepare_phases
    }

    /// Total preparation wall-clock in seconds.
    pub fn prepare_seconds(&self) -> f64 {
        self.prepare_phases.total().as_secs_f64()
    }
}

/// One side of a mixed execution ([`Ozaki2::try_execute_into_ws`]): either
/// a raw operand whose front end (lines 1–5) is computed into the
/// caller's [`Workspace`] panel buffers — the zero-allocation streaming
/// path — or an already-prepared operand whose cached panels are borrowed.
#[derive(Clone, Copy)]
pub enum OperandInput<'a> {
    /// Raw contiguous column-major data: `m x k` on side A, `k x n` on
    /// side B. Converted into the workspace's reusable panel buffers, so
    /// repeated calls allocate nothing.
    Raw(&'a [f64]),
    /// A raw borrowed strided view (any layout / leading dimension /
    /// transpose) — converted like [`OperandInput::Raw`], still with zero
    /// copies: the fused sweep gathers straight from the strided source.
    RawView(MatView<'a, f64>),
    /// A cached preparation (panels borrowed, front end skipped).
    Prepared(&'a PreparedOperand),
}

/// Shared body of every prepare entry point: Algorithm 1 lines 1–5 over
/// one borrowed strided operand view (f64 or exactly widened f32), with
/// zero operand materialization.
fn prepare_view<T: Element>(
    emu: &Ozaki2,
    view: &MatView<'_, T>,
    side: OperandSide,
) -> Result<PreparedOperand, EmulationError> {
    if emu.mode() != Mode::Fast {
        return Err(EmulationError::PreparationUnsupported { mode: emu.mode() });
    }
    let n_max = backend_n_max(emu.backend(), !T::IS_F64);
    if emu.n_moduli() > n_max {
        return Err(EmulationError::UnsupportedN {
            n: emu.n_moduli(),
            max: n_max,
        });
    }
    validate_view(view, side)?;
    let (vecs, k) = match side {
        OperandSide::A => (view.rows(), view.cols()),
        OperandSide::B => (view.cols(), view.rows()),
    };
    let consts: &Constants = constants_for(emu.backend(), emu.n_moduli());
    let nmod = consts.n;
    let mut phases = PhaseTimes::default();

    // Line 1 (one-sided): row scales for A, column scales for B. These are
    // exactly the fast-mode exponents the monolithic pipeline computes.
    let obs_start = gemm_obs::now_ns();
    let t0 = Instant::now();
    let exps = match side {
        OperandSide::A => fast_scale_a_view(view, consts.p_fast),
        OperandSide::B => fast_scale_b_view(view, consts.p_fast),
    };
    phases.scale = t0.elapsed();

    // Lines 2–5: the fused trunc+convert sweep straight into the engine's
    // packed i16 panel layout (identical call to the monolithic pipeline's,
    // so the panels are bit-identical too).
    let t0 = Instant::now();
    let kp = padded_depth(k);
    let vecs_pad = match side {
        OperandSide::A => padded_a_rows(vecs),
        OperandSide::B => padded_b_cols(vecs),
    };
    let mut panels = vec![0i16; nmod * vecs_pad * kp];
    let timing = TimeShare::new();
    trunc_convert_pack_panels(
        vectors_source(view, side == OperandSide::A, &exps),
        vecs,
        vecs_pad,
        k,
        kp,
        consts,
        T::IS_F64,
        true,
        &mut panels,
        Some(&timing),
    );
    let sweep = t0.elapsed();
    phases.trunc = sweep.mul_f64(timing.fraction());
    phases.convert = sweep.saturating_sub(phases.trunc);
    crate::pipeline::obs_record_phases(obs_start, &phases);
    gemm_obs::catalog::PREPARED_OPERANDS.inc();

    Ok(PreparedOperand {
        side,
        vecs,
        k,
        n_moduli: nmod,
        mode: emu.mode(),
        backend: emu.backend(),
        b64: T::IS_F64,
        exps,
        panels,
        prepare_phases: phases,
    })
}

impl Ozaki2 {
    /// Prepare the left operand of a DGEMM for reuse: Algorithm 1 lines
    /// 1–5 over `A` only. See [`PreparedOperand`] for the full story.
    ///
    /// # Panics
    /// On non-finite input or [`Mode::Accurate`] (which scales jointly;
    /// use [`Ozaki2::try_prepare_a`] for a checked version).
    pub fn prepare_a(&self, a: &MatF64) -> PreparedOperand {
        self.try_prepare_a(a)
            .unwrap_or_else(|e| panic!("prepare_a: {e}"))
    }

    /// Checked form of [`Ozaki2::prepare_a`].
    pub fn try_prepare_a(&self, a: &MatF64) -> Result<PreparedOperand, EmulationError> {
        self.try_prepare_a_view(&a.view())
    }

    /// [`Ozaki2::try_prepare_a`] over a borrowed strided view (any
    /// layout, leading dimension, transpose; f64 or f32): the canonical
    /// zero-copy prepare entry.
    pub fn try_prepare_a_view<T: Element>(
        &self,
        a: &MatView<'_, T>,
    ) -> Result<PreparedOperand, EmulationError> {
        prepare_view(self, a, OperandSide::A)
    }

    /// [`Ozaki2::try_prepare_a`] over a raw column-major `m x k` slice.
    pub fn try_prepare_a_slice(
        &self,
        data: &[f64],
        m: usize,
        k: usize,
    ) -> Result<PreparedOperand, EmulationError> {
        self.try_prepare_a_view(&MatView::col_major(&data[..m * k], m, k))
    }

    /// Prepare the right operand of a DGEMM for reuse (lines 1–5 over `B`
    /// only).
    ///
    /// # Panics
    /// As [`Ozaki2::prepare_a`].
    pub fn prepare_b(&self, b: &MatF64) -> PreparedOperand {
        self.try_prepare_b(b)
            .unwrap_or_else(|e| panic!("prepare_b: {e}"))
    }

    /// Checked form of [`Ozaki2::prepare_b`].
    pub fn try_prepare_b(&self, b: &MatF64) -> Result<PreparedOperand, EmulationError> {
        self.try_prepare_b_view(&b.view())
    }

    /// [`Ozaki2::try_prepare_b`] over a borrowed strided view — the
    /// B-side counterpart of [`Ozaki2::try_prepare_a_view`].
    pub fn try_prepare_b_view<T: Element>(
        &self,
        b: &MatView<'_, T>,
    ) -> Result<PreparedOperand, EmulationError> {
        prepare_view(self, b, OperandSide::B)
    }

    /// [`Ozaki2::try_prepare_b`] over a raw column-major `k x n` slice.
    pub fn try_prepare_b_slice(
        &self,
        data: &[f64],
        k: usize,
        n: usize,
    ) -> Result<PreparedOperand, EmulationError> {
        self.try_prepare_b_view(&MatView::col_major(&data[..k * n], k, n))
    }

    /// Prepare the left operand of an SGEMM (widened exactly inside the
    /// fused sweep, `b = 32` conversion thresholds — no widened copy is
    /// ever made).
    pub fn try_prepare_a_f32(&self, a: &MatF32) -> Result<PreparedOperand, EmulationError> {
        self.try_prepare_a_view(&a.view())
    }

    /// [`Ozaki2::try_prepare_a_f32`] over a raw column-major slice.
    pub fn try_prepare_a_slice_f32(
        &self,
        data: &[f32],
        m: usize,
        k: usize,
    ) -> Result<PreparedOperand, EmulationError> {
        assert!(data.len() >= m * k, "operand slice too short");
        self.try_prepare_a_view(&MatView::col_major(&data[..m * k], m, k))
    }

    /// Prepare the right operand of an SGEMM.
    pub fn try_prepare_b_f32(&self, b: &MatF32) -> Result<PreparedOperand, EmulationError> {
        self.try_prepare_b_view(&b.view())
    }

    /// [`Ozaki2::try_prepare_b_f32`] over a raw column-major slice.
    pub fn try_prepare_b_slice_f32(
        &self,
        data: &[f32],
        k: usize,
        n: usize,
    ) -> Result<PreparedOperand, EmulationError> {
        assert!(data.len() >= k * n, "operand slice too short");
        self.try_prepare_b_view(&MatView::col_major(&data[..k * n], k, n))
    }

    /// Run Algorithm 1 lines 6–12 over two prepared operands, allocating
    /// the output. Bit-identical to [`Ozaki2::dgemm`] on the matrices the
    /// operands were prepared from.
    ///
    /// # Panics
    /// On mismatched preparations (sides, inner dimension, `N`, mode,
    /// precision) — see [`Ozaki2::try_execute_prepared`].
    pub fn execute_prepared(&self, pa: &PreparedOperand, pb: &PreparedOperand) -> MatF64 {
        self.try_execute_prepared(pa, pb)
            .unwrap_or_else(|e| panic!("execute_prepared: {e}"))
    }

    /// Checked form of [`Ozaki2::execute_prepared`].
    pub fn try_execute_prepared(
        &self,
        pa: &PreparedOperand,
        pb: &PreparedOperand,
    ) -> Result<MatF64, EmulationError> {
        let (m, _) = pa.shape();
        let (_, n) = pb.shape();
        let mut out = Matrix::<f64>::zeros(m, n);
        self.try_execute_prepared_into_ws(pa, pb, &mut Workspace::new(), true, out.as_mut_slice())?;
        Ok(out)
    }

    /// The full-control execute over prepared operands: caller-owned
    /// [`Workspace`] (only the execute-half buffers are used), caller-owned
    /// column-major `m x n` output slice (fully overwritten), and an
    /// explicit `parallel` gate for the engine stripes so an inter-GEMM
    /// scheduler can run many single-threaded items concurrently. The
    /// result is bit-identical for either `parallel` setting.
    pub fn try_execute_prepared_into_ws(
        &self,
        pa: &PreparedOperand,
        pb: &PreparedOperand,
        ws: &mut Workspace,
        parallel: bool,
        out: &mut [f64],
    ) -> Result<EmulationReport, EmulationError> {
        if pa.side != OperandSide::A || pb.side != OperandSide::B {
            return Err(EmulationError::PreparedMismatch {
                reason: "operand sides (expected an A-side and a B-side preparation)",
            });
        }
        self.try_execute_into_ws(
            OperandInput::Prepared(pa),
            OperandInput::Prepared(pb),
            pa.vecs,
            pa.k,
            pb.vecs,
            ws,
            parallel,
            out,
        )
    }

    /// The most general execution entry: each side is either a cached
    /// [`PreparedOperand`] or a **raw** column-major slice whose front end
    /// (lines 1–5) is computed into the caller's [`Workspace`] panel
    /// buffers on the spot. The weight-stationary serving loop runs here —
    /// prepared `B`, raw streaming `A` — with zero allocation per call
    /// beyond the grow-once workspace, and stays bit-identical to
    /// [`Ozaki2::dgemm`].
    ///
    /// `m`, `k`, `n` give the product shape; prepared sides are validated
    /// against it. With a prepared side of SGEMM precision, raw sides must
    /// carry exactly-widened f32 data (the raw conversion then uses the
    /// `b = 32` thresholds too). Only [`Mode::Fast`] emulators can execute
    /// here (accurate mode scales jointly).
    ///
    /// # Panics
    /// If `out.len() != m * n` or a raw slice is shorter than its shape.
    #[allow(clippy::too_many_arguments)]
    pub fn try_execute_into_ws(
        &self,
        a: OperandInput<'_>,
        b: OperandInput<'_>,
        m: usize,
        k: usize,
        n: usize,
        ws: &mut Workspace,
        parallel: bool,
        out: &mut [f64],
    ) -> Result<EmulationReport, EmulationError> {
        if self.mode() != Mode::Fast {
            return Err(EmulationError::PreparationUnsupported { mode: self.mode() });
        }
        // Normalise raw slices to views: one conversion path below.
        let a = match a {
            OperandInput::Raw(data) => {
                assert!(data.len() >= m * k, "A slice too short");
                OperandInput::RawView(MatView::col_major(&data[..m * k], m, k))
            }
            other => other,
        };
        let b = match b {
            OperandInput::Raw(data) => {
                assert!(data.len() >= k * n, "B slice too short");
                OperandInput::RawView(MatView::col_major(&data[..k * n], k, n))
            }
            other => other,
        };
        // Precision: prepared sides dictate; raw-only executions are DGEMM.
        let b64 = match (&a, &b) {
            (OperandInput::Prepared(p), _) => p.b64,
            (_, OperandInput::Prepared(p)) => p.b64,
            _ => true,
        };
        let check_prepared = |p: &PreparedOperand,
                              side: OperandSide,
                              shape: (usize, usize)|
         -> Result<(), EmulationError> {
            if p.side != side {
                return Err(EmulationError::PreparedMismatch {
                    reason: "operand prepared for the other side",
                });
            }
            if p.shape() != shape {
                return Err(EmulationError::ShapeMismatch);
            }
            if p.n_moduli != self.n_moduli() {
                return Err(EmulationError::PreparedMismatch {
                    reason: "moduli count differs from the executing emulator",
                });
            }
            if p.mode != self.mode() {
                return Err(EmulationError::PreparedMismatch {
                    reason: "scaling mode differs from the executing emulator",
                });
            }
            if p.backend != self.backend() {
                return Err(EmulationError::PreparedMismatch {
                    reason: "residue backend differs from the executing emulator",
                });
            }
            if p.b64 != b64 {
                return Err(EmulationError::PreparedMismatch {
                    reason: "precision (one operand prepared for DGEMM, the other for SGEMM)",
                });
            }
            Ok(())
        };
        match &a {
            OperandInput::Prepared(p) => check_prepared(p, OperandSide::A, (m, k))?,
            OperandInput::RawView(v) => {
                if v.shape() != (m, k) {
                    return Err(EmulationError::ShapeMismatch);
                }
                validate_view(v, OperandSide::A)?;
            }
            OperandInput::Raw(_) => unreachable!("normalised above"),
        }
        match &b {
            OperandInput::Prepared(p) => check_prepared(p, OperandSide::B, (k, n))?,
            OperandInput::RawView(v) => {
                if v.shape() != (k, n) {
                    return Err(EmulationError::ShapeMismatch);
                }
                validate_view(v, OperandSide::B)?;
            }
            OperandInput::Raw(_) => unreachable!("normalised above"),
        }
        assert_eq!(out.len(), m * n, "output buffer mismatch");

        let consts: &Constants = constants_for(self.backend(), self.n_moduli());
        let engine_kind = self.backend().engine();
        let engine = engine_kind.backend();
        let predicted_error = nselect::predicted_error_for(self.backend(), self.n_moduli(), k);
        let nmod = consts.n;
        let policy = self.fault_policy();
        let mut phases = PhaseTimes::default();
        if m == 0 || n == 0 || k == 0 {
            out.fill(0.0);
            return Ok(EmulationReport {
                shape: (m, n, k),
                n_moduli: nmod,
                mode: self.mode(),
                backend: engine_kind,
                predicted_error,
                phases,
                int8_gemm_calls: 0,
                fault: policy.is_active().then(crate::abft::FaultReport::default),
            });
        }

        let obs_start = gemm_obs::now_ns();
        if matches!(a, OperandInput::RawView(_)) {
            ws.reserve_a(m, k, nmod);
        }
        if matches!(b, OperandInput::RawView(_)) {
            ws.reserve_b(n, k, nmod);
        }
        ws.reserve_exec(m, n, k, nmod);
        if policy.is_active() {
            ws.reserve_abft(m, n, k, nmod);
        }
        let WsBuffers {
            a16: a16ws,
            b16: b16ws,
            u,
            c32,
            racc,
            chk_a16,
            chk_b16,
            uchk,
            chk_sum,
            vsum,
            ..
        } = ws.buffers();
        let kp = padded_depth(k);
        let m_pad = padded_a_rows(m);
        let n_pad = padded_b_cols(n);

        // Front end for the raw sides only — exactly the monolithic
        // pipeline's line-1 scales and fused lines-2–5 sweep, into the
        // workspace's reusable panel buffers (gathered straight from the
        // strided view: no layout-normalised copy).
        let exps_a_own: Vec<i32>;
        let exps_b_own: Vec<i32>;
        let (a_ref, exps_a): (PanelsRef<'_>, &[i32]) = match &a {
            OperandInput::Prepared(p) => (PanelsRef::Fixed(&p.panels), &p.exps),
            OperandInput::RawView(v) => {
                let timing = TimeShare::new();
                let t0 = Instant::now();
                exps_a_own = fast_scale_a_view(v, consts.p_fast);
                phases.scale += t0.elapsed();
                let t0 = Instant::now();
                let a16 = &mut a16ws[..nmod * m_pad * kp];
                trunc_convert_pack_panels(
                    vectors_source(v, true, &exps_a_own),
                    m,
                    m_pad,
                    k,
                    kp,
                    consts,
                    b64,
                    parallel,
                    a16,
                    Some(&timing),
                );
                let sweep = t0.elapsed();
                let trunc = sweep.mul_f64(timing.fraction());
                phases.trunc += trunc;
                phases.convert += sweep.saturating_sub(trunc);
                (
                    PanelsRef::Repackable {
                        panels: a16,
                        src: vectors_source(v, true, &exps_a_own),
                        vecs: m,
                        vecs_pad: m_pad,
                    },
                    &exps_a_own[..],
                )
            }
            OperandInput::Raw(_) => unreachable!("normalised above"),
        };
        let (b_ref, exps_b): (PanelsRef<'_>, &[i32]) = match &b {
            OperandInput::Prepared(p) => (PanelsRef::Fixed(&p.panels), &p.exps),
            OperandInput::RawView(v) => {
                let timing = TimeShare::new();
                let t0 = Instant::now();
                exps_b_own = fast_scale_b_view(v, consts.p_fast);
                phases.scale += t0.elapsed();
                let t0 = Instant::now();
                let b16 = &mut b16ws[..nmod * n_pad * kp];
                trunc_convert_pack_panels(
                    vectors_source(v, false, &exps_b_own),
                    n,
                    n_pad,
                    k,
                    kp,
                    consts,
                    b64,
                    parallel,
                    b16,
                    Some(&timing),
                );
                let sweep = t0.elapsed();
                let trunc = sweep.mul_f64(timing.fraction());
                phases.trunc += trunc;
                phases.convert += sweep.saturating_sub(trunc);
                (
                    PanelsRef::Repackable {
                        panels: b16,
                        src: vectors_source(v, false, &exps_b_own),
                        vecs: n,
                        vecs_pad: n_pad,
                    },
                    &exps_b_own[..],
                )
            }
            OperandInput::Raw(_) => unreachable!("normalised above"),
        };

        let (gemm_calls, fault) = if policy.is_active() {
            let (calls, frep) = execute_panels_ft(
                m,
                n,
                k,
                consts,
                b64,
                engine,
                a_ref,
                b_ref,
                exps_a,
                exps_b,
                FtScratch {
                    u,
                    c32,
                    racc,
                    chk_a16,
                    chk_b16,
                    uchk,
                    chk_sum,
                    vsum,
                },
                parallel,
                policy,
                out,
                &mut phases,
            );
            (calls, Some(frep))
        } else {
            let calls = execute_panels(
                m,
                n,
                k,
                consts,
                b64,
                engine,
                a_ref.panels(),
                b_ref.panels(),
                exps_a,
                exps_b,
                u,
                c32,
                racc,
                parallel,
                out,
                &mut phases,
            );
            (calls, None)
        };
        let report = EmulationReport {
            shape: (m, n, k),
            n_moduli: nmod,
            mode: self.mode(),
            backend: engine_kind,
            predicted_error,
            phases,
            int8_gemm_calls: gemm_calls,
            fault,
        };
        crate::pipeline::obs_record_report(obs_start, &report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_dense::norms::max_relative_error;
    use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};
    use std::time::Duration;

    #[test]
    fn prepared_matches_dgemm_bitwise() {
        for (m, n, k) in [
            (1usize, 1usize, 1usize),
            (7, 5, 9),
            (24, 18, 40),
            (33, 47, 65),
        ] {
            let a = phi_matrix_f64(m, k, 0.7, 11, 0);
            let b = phi_matrix_f64(k, n, 0.7, 11, 1);
            for nmod in [4usize, 13, 15] {
                let emu = Ozaki2::new(nmod, Mode::Fast);
                let pa = emu.prepare_a(&a);
                let pb = emu.prepare_b(&b);
                let got = emu.execute_prepared(&pa, &pb);
                assert_eq!(got, emu.dgemm(&a, &b), "m={m} n={n} k={k} N={nmod}");
            }
        }
    }

    #[test]
    fn prepared_reuse_across_partners() {
        // One prepared B against a stream of As — every product must match
        // the monolithic pipeline exactly.
        let (m, n, k) = (16usize, 12, 28);
        let emu = Ozaki2::new(15, Mode::Fast);
        let b = phi_matrix_f64(k, n, 0.5, 3, 1);
        let pb = emu.prepare_b(&b);
        let mut ws = Workspace::new();
        for seed in 0..5u64 {
            let a = phi_matrix_f64(m, k, 0.5, seed, 0);
            let pa = emu.prepare_a(&a);
            for parallel in [false, true] {
                let mut out = vec![f64::NAN; m * n];
                emu.try_execute_prepared_into_ws(&pa, &pb, &mut ws, parallel, &mut out)
                    .unwrap();
                assert_eq!(out, emu.dgemm(&a, &b).into_vec(), "seed={seed}");
            }
        }
    }

    #[test]
    fn prepared_slice_equals_matrix_form() {
        let (m, n, k) = (9usize, 14, 21);
        let a = phi_matrix_f64(m, k, 1.2, 5, 0);
        let b = phi_matrix_f64(k, n, 1.2, 5, 1);
        let emu = Ozaki2::new(10, Mode::Fast);
        let pa = emu.try_prepare_a_slice(a.as_slice(), m, k).unwrap();
        let pb = emu.try_prepare_b_slice(b.as_slice(), k, n).unwrap();
        assert_eq!(emu.execute_prepared(&pa, &pb), emu.dgemm(&a, &b));
    }

    #[test]
    fn prepared_f32_matches_sgemm() {
        let (m, n, k) = (12usize, 10, 20);
        let a = phi_matrix_f32(m, k, 0.5, 2, 0);
        let b = phi_matrix_f32(k, n, 0.5, 2, 1);
        let emu = Ozaki2::new(8, Mode::Fast);
        let pa = emu.try_prepare_a_f32(&a).unwrap();
        let pb = emu.try_prepare_b_f32(&b).unwrap();
        let mut out = vec![0f64; m * n];
        emu.try_execute_prepared_into_ws(&pa, &pb, &mut Workspace::new(), true, &mut out)
            .unwrap();
        let got: Vec<f32> = out.iter().map(|&x| x as f32).collect();
        assert_eq!(got, emu.sgemm(&a, &b).into_vec());
    }

    #[test]
    fn mixed_raw_a_prepared_b_matches_dgemm_alloc_free() {
        // The weight-stationary serving path: prepared B, streaming raw A
        // converted into the reusable workspace. Bit-identical, and the
        // workspace stops growing after the first item.
        let (m, n, k) = (24usize, 20, 36);
        let emu = Ozaki2::new(15, Mode::Fast);
        let b = phi_matrix_f64(k, n, 0.5, 7, 1);
        let pb = emu.prepare_b(&b);
        let mut ws = Workspace::new();
        let mut out = vec![0f64; m * n];
        let mut steady = 0usize;
        for seed in 0..5u64 {
            let a = phi_matrix_f64(m, k, 0.5, seed, 0);
            emu.try_execute_into_ws(
                OperandInput::Raw(a.as_slice()),
                OperandInput::Prepared(&pb),
                m,
                k,
                n,
                &mut ws,
                true,
                &mut out,
            )
            .unwrap();
            assert_eq!(out, emu.dgemm(&a, &b).into_vec(), "seed={seed}");
            if seed == 0 {
                steady = ws.bytes();
            } else {
                assert_eq!(ws.bytes(), steady, "steady state must not allocate");
            }
        }
    }

    #[test]
    fn mixed_both_raw_matches_dgemm() {
        let (m, n, k) = (11usize, 13, 17);
        let emu = Ozaki2::new(10, Mode::Fast);
        let a = phi_matrix_f64(m, k, 0.9, 2, 0);
        let b = phi_matrix_f64(k, n, 0.9, 2, 1);
        let mut out = vec![0f64; m * n];
        for parallel in [false, true] {
            emu.try_execute_into_ws(
                OperandInput::Raw(a.as_slice()),
                OperandInput::Raw(b.as_slice()),
                m,
                k,
                n,
                &mut Workspace::new(),
                parallel,
                &mut out,
            )
            .unwrap();
            assert_eq!(out, emu.dgemm(&a, &b).into_vec(), "parallel={parallel}");
        }
    }

    #[test]
    fn accurate_mode_cannot_prepare() {
        let a = phi_matrix_f64(4, 4, 0.5, 1, 0);
        let emu = Ozaki2::new(8, Mode::Accurate);
        assert_eq!(
            emu.try_prepare_a(&a).unwrap_err(),
            EmulationError::PreparationUnsupported {
                mode: Mode::Accurate
            }
        );
    }

    #[test]
    fn mismatches_are_rejected() {
        let emu = Ozaki2::new(8, Mode::Fast);
        let a = phi_matrix_f64(4, 6, 0.5, 1, 0);
        let b = phi_matrix_f64(6, 5, 0.5, 1, 1);
        let pa = emu.prepare_a(&a);
        let pb = emu.prepare_b(&b);
        // Sides swapped.
        assert!(matches!(
            emu.try_execute_prepared(&pb, &pa),
            Err(EmulationError::PreparedMismatch { .. })
        ));
        // Inner dimension mismatch.
        let b_bad = phi_matrix_f64(7, 5, 0.5, 1, 1);
        let pb_bad = emu.prepare_b(&b_bad);
        assert_eq!(
            emu.try_execute_prepared(&pa, &pb_bad).unwrap_err(),
            EmulationError::ShapeMismatch
        );
        // Moduli mismatch with the executing emulator.
        let other = Ozaki2::new(9, Mode::Fast);
        assert!(matches!(
            other.try_execute_prepared(&pa, &pb),
            Err(EmulationError::PreparedMismatch { .. })
        ));
        // Precision mismatch.
        let bf = phi_matrix_f32(6, 5, 0.5, 1, 1);
        let pb_f32 = emu.try_prepare_b_f32(&bf).unwrap();
        assert!(matches!(
            emu.try_execute_prepared(&pa, &pb_f32),
            Err(EmulationError::PreparedMismatch { .. })
        ));
    }

    #[test]
    fn prepared_empty_shapes() {
        let emu = Ozaki2::new(4, Mode::Fast);
        let a = MatF64::zeros(0, 5);
        let b = MatF64::zeros(5, 3);
        let pa = emu.prepare_a(&a);
        let pb = emu.prepare_b(&b);
        let c = emu.execute_prepared(&pa, &pb);
        assert_eq!(c.shape(), (0, 3));
        // k = 0: product is all zeros.
        let a0 = MatF64::zeros(2, 0);
        let b0 = MatF64::zeros(0, 3);
        let c0 = emu.execute_prepared(&emu.prepare_a(&a0), &emu.prepare_b(&b0));
        assert!(c0.iter().all(|&x| x == 0.0));
        assert_eq!(c0.shape(), (2, 3));
    }

    #[test]
    fn prepare_records_front_end_phases() {
        let a = phi_matrix_f64(64, 96, 0.5, 9, 0);
        let emu = Ozaki2::new(15, Mode::Fast);
        let pa = emu.prepare_a(&a);
        let ph = pa.prepare_phases();
        assert!(ph.scale.as_nanos() > 0);
        assert!(ph.trunc + ph.convert > Duration::from_nanos(0));
        assert!(pa.prepare_seconds() > 0.0);
        assert!(pa.bytes() >= 15 * 64 * 96 * 2);
    }

    #[test]
    fn prepared_accuracy_sanity() {
        // Not just bit-identity to the pipeline — the result is also right.
        let (m, n, k) = (20usize, 20, 32);
        let a = phi_matrix_f64(m, k, 0.5, 4, 0);
        let b = phi_matrix_f64(k, n, 0.5, 4, 1);
        let emu = Ozaki2::new(15, Mode::Fast);
        let c = emu.execute_prepared(&emu.prepare_a(&a), &emu.prepare_b(&b));
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
        assert!(max_relative_error(&c, &exact) < 1e-12);
    }
}
