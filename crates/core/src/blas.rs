//! BLAS-compatible surface: `C ← α·op(A)·op(B) + β·C` with transpose
//! options, mirroring the `cublasGemmEx` signature GEMMul8 slots into.
//!
//! Untransposed operands are borrowed as-is (no copy); a transposed
//! operand is materialised once (cache-blocked copy) and fed to the
//! standard pipeline — the emulation itself is layout-agnostic, so this
//! keeps the kernel surface small at the cost of one extra pass over the
//! transposed operand, which is already far below the conversion traffic.

use crate::pipeline::Ozaki2;
use gemm_dense::{MatF32, MatF64, Matrix};
use std::borrow::Cow;

/// Operand transpose option (BLAS `trans` parameter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmOp {
    /// Use the operand as stored.
    N,
    /// Use the operand transposed.
    T,
}

fn apply_op_f64(a: &MatF64, op: GemmOp) -> Cow<'_, MatF64> {
    match op {
        GemmOp::N => Cow::Borrowed(a),
        GemmOp::T => Cow::Owned(a.transpose()),
    }
}

fn apply_op_f32(a: &MatF32, op: GemmOp) -> Cow<'_, MatF32> {
    match op {
        GemmOp::N => Cow::Borrowed(a),
        GemmOp::T => Cow::Owned(a.transpose()),
    }
}

impl Ozaki2 {
    /// Full BLAS semantics for DGEMM:
    /// `C ← alpha · op(A) · op(B) + beta · C`.
    ///
    /// # Panics
    /// If shapes are inconsistent after applying the transpose options.
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm_blas(
        &self,
        trans_a: GemmOp,
        trans_b: GemmOp,
        alpha: f64,
        a: &MatF64,
        b: &MatF64,
        beta: f64,
        c: &mut MatF64,
    ) {
        let a_eff = apply_op_f64(a, trans_a);
        let b_eff = apply_op_f64(b, trans_b);
        assert_eq!(
            (a_eff.rows(), b_eff.cols()),
            c.shape(),
            "output shape mismatch"
        );
        if alpha == 0.0 {
            for x in c.as_mut_slice() {
                *x *= beta;
            }
            return;
        }
        let prod = self.dgemm(&a_eff, &b_eff);
        for (out, &p) in c.as_mut_slice().iter_mut().zip(prod.as_slice()) {
            *out = alpha * p + beta * *out;
        }
    }

    /// Full BLAS semantics for SGEMM:
    /// `C ← alpha · op(A) · op(B) + beta · C`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm_blas(
        &self,
        trans_a: GemmOp,
        trans_b: GemmOp,
        alpha: f32,
        a: &MatF32,
        b: &MatF32,
        beta: f32,
        c: &mut MatF32,
    ) {
        let a_eff = apply_op_f32(a, trans_a);
        let b_eff = apply_op_f32(b, trans_b);
        assert_eq!(
            (a_eff.rows(), b_eff.cols()),
            c.shape(),
            "output shape mismatch"
        );
        if alpha == 0.0 {
            for x in c.as_mut_slice() {
                *x *= beta;
            }
            return;
        }
        let prod = self.sgemm(&a_eff, &b_eff);
        for (out, &p) in c.as_mut_slice().iter_mut().zip(prod.as_slice()) {
            *out = alpha * p + beta * *out;
        }
    }
}

/// Convenience free function mirroring `cblas_dgemm`'s argument order.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_emulated(
    n_moduli: usize,
    mode: crate::Mode,
    trans_a: GemmOp,
    trans_b: GemmOp,
    alpha: f64,
    a: &MatF64,
    b: &MatF64,
    beta: f64,
    c: &mut MatF64,
) {
    Ozaki2::new(n_moduli, mode).dgemm_blas(trans_a, trans_b, alpha, a, b, beta, c);
}

/// Identity matrix helper used in tests and examples.
pub fn identity(n: usize) -> MatF64 {
    Matrix::from_fn(n, n, |i, j| (i == j) as u8 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};

    #[test]
    fn transpose_options_consistent() {
        let a = phi_matrix_f64(8, 12, 0.5, 1, 0);
        let b = phi_matrix_f64(12, 6, 0.5, 1, 1);
        let emu = Ozaki2::new(15, Mode::Fast);
        // (A B) computed four ways must agree bitwise: the pipeline sees
        // identical effective operands.
        let mut c_nn = MatF64::zeros(8, 6);
        emu.dgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c_nn);
        let mut c_tt = MatF64::zeros(8, 6);
        emu.dgemm_blas(
            GemmOp::T,
            GemmOp::T,
            1.0,
            &a.transpose(),
            &b.transpose(),
            0.0,
            &mut c_tt,
        );
        assert_eq!(c_nn, c_tt);
    }

    #[test]
    fn untransposed_operands_are_borrowed() {
        let a = phi_matrix_f64(4, 5, 0.5, 1, 0);
        let b = phi_matrix_f64(5, 3, 0.5, 1, 1);
        match apply_op_f64(&a, GemmOp::N) {
            std::borrow::Cow::Borrowed(r) => {
                assert!(std::ptr::eq(r, &a), "N must borrow the original")
            }
            std::borrow::Cow::Owned(_) => panic!("GemmOp::N must not copy the operand"),
        }
        assert!(matches!(
            apply_op_f64(&b, GemmOp::T),
            std::borrow::Cow::Owned(_)
        ));
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = phi_matrix_f64(6, 6, 0.5, 2, 0);
        let b = phi_matrix_f64(6, 6, 0.5, 2, 1);
        let emu = Ozaki2::new(12, Mode::Fast);
        let mut c = identity(6);
        let c0 = c.clone();
        emu.dgemm_blas(GemmOp::N, GemmOp::N, 2.0, &a, &b, 3.0, &mut c);
        let prod = emu.dgemm(&a, &b);
        for i in 0..6 {
            for j in 0..6 {
                let want = 2.0 * prod[(i, j)] + 3.0 * c0[(i, j)];
                assert_eq!(c[(i, j)], want);
            }
        }
    }

    #[test]
    fn alpha_zero_skips_product() {
        let a = MatF64::zeros(4, 4); // would even be degenerate input
        let b = MatF64::zeros(4, 4);
        let mut c = identity(4);
        Ozaki2::new(8, Mode::Fast).dgemm_blas(GemmOp::N, GemmOp::N, 0.0, &a, &b, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 0.5);
        assert_eq!(c[(1, 0)], 0.0);
    }

    #[test]
    fn sgemm_blas_round_trip() {
        let a = phi_matrix_f32(5, 7, 0.5, 3, 0);
        let b = phi_matrix_f32(7, 4, 0.5, 3, 1);
        let emu = Ozaki2::new(8, Mode::Fast);
        let mut c = Matrix::<f32>::zeros(5, 4);
        emu.sgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, emu.sgemm(&a, &b));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn shape_check() {
        let a = MatF64::zeros(3, 4);
        let b = MatF64::zeros(4, 5);
        let mut c = MatF64::zeros(3, 4);
        Ozaki2::new(8, Mode::Fast).dgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c);
    }
}
