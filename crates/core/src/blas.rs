//! BLAS-compatible surface: `C ← α·op(A)·op(B) + β·C` with transpose
//! options, mirroring the `cublasGemmEx` signature GEMMul8 slots into.
//!
//! A thin delegate of the unified view facade ([`crate::facade`]): the
//! transpose options become **zero-copy** view flips, so no operand is
//! ever cloned or materialised — transposed or not — and the `α`/`β`
//! epilogue runs inside the facade's fold tail.

use crate::element::Element;
use crate::facade::GemmArgs;
use crate::pipeline::Ozaki2;
use gemm_dense::{MatF32, MatF64, Matrix};

/// Operand transpose option (BLAS `trans` parameter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmOp {
    /// Use the operand as stored.
    N,
    /// Use the operand transposed.
    T,
}

impl GemmOp {
    /// `(rows, cols)` of `op(X)` for an `r x c` operand.
    fn shape(self, r: usize, c: usize) -> (usize, usize) {
        match self {
            GemmOp::N => (r, c),
            GemmOp::T => (c, r),
        }
    }
}

/// Shared element-generic BLAS body (both precisions delegate here).
#[allow(clippy::too_many_arguments)]
fn gemm_blas_generic<T: Element>(
    emu: &Ozaki2,
    trans_a: GemmOp,
    trans_b: GemmOp,
    alpha: T,
    a: &Matrix<T>,
    b: &Matrix<T>,
    beta: T,
    c: &mut Matrix<T>,
) {
    let (ma, _) = trans_a.shape(a.rows(), a.cols());
    let (_, nb) = trans_b.shape(b.rows(), b.cols());
    assert_eq!((ma, nb), c.shape(), "output shape mismatch");
    if alpha == T::ZERO {
        // BLAS semantics: skip the product entirely (the operands may
        // even be degenerate).
        for x in c.as_mut_slice() {
            *x = beta * *x;
        }
        return;
    }
    emu.gemm_into(
        GemmArgs::new(a, b)
            .trans_a(trans_a)
            .trans_b(trans_b)
            .alpha(alpha)
            .beta(beta),
        c.view_mut(),
    )
    .unwrap_or_else(|e| panic!("gemm_blas: {e}"));
}

impl Ozaki2 {
    /// Full BLAS semantics for DGEMM:
    /// `C ← alpha · op(A) · op(B) + beta · C`.
    ///
    /// # Panics
    /// If shapes are inconsistent after applying the transpose options,
    /// or on non-finite input.
    #[allow(clippy::too_many_arguments)]
    pub fn dgemm_blas(
        &self,
        trans_a: GemmOp,
        trans_b: GemmOp,
        alpha: f64,
        a: &MatF64,
        b: &MatF64,
        beta: f64,
        c: &mut MatF64,
    ) {
        gemm_blas_generic(self, trans_a, trans_b, alpha, a, b, beta, c);
    }

    /// Full BLAS semantics for SGEMM:
    /// `C ← alpha · op(A) · op(B) + beta · C`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm_blas(
        &self,
        trans_a: GemmOp,
        trans_b: GemmOp,
        alpha: f32,
        a: &MatF32,
        b: &MatF32,
        beta: f32,
        c: &mut MatF32,
    ) {
        gemm_blas_generic(self, trans_a, trans_b, alpha, a, b, beta, c);
    }
}

/// Convenience free function mirroring `cblas_dgemm`'s argument order.
#[allow(clippy::too_many_arguments)]
pub fn dgemm_emulated(
    n_moduli: usize,
    mode: crate::Mode,
    trans_a: GemmOp,
    trans_b: GemmOp,
    alpha: f64,
    a: &MatF64,
    b: &MatF64,
    beta: f64,
    c: &mut MatF64,
) {
    Ozaki2::new(n_moduli, mode).dgemm_blas(trans_a, trans_b, alpha, a, b, beta, c);
}

/// Identity matrix helper used in tests and examples.
pub fn identity(n: usize) -> MatF64 {
    Matrix::from_fn(n, n, |i, j| (i == j) as u8 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use gemm_dense::workload::{phi_matrix_f32, phi_matrix_f64};

    #[test]
    fn transpose_options_consistent() {
        let a = phi_matrix_f64(8, 12, 0.5, 1, 0);
        let b = phi_matrix_f64(12, 6, 0.5, 1, 1);
        let emu = Ozaki2::new(15, Mode::Fast);
        // (A B) computed four ways must agree bitwise: the pipeline sees
        // identical effective operands.
        let mut c_nn = MatF64::zeros(8, 6);
        emu.dgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c_nn);
        let mut c_tt = MatF64::zeros(8, 6);
        emu.dgemm_blas(
            GemmOp::T,
            GemmOp::T,
            1.0,
            &a.transpose(),
            &b.transpose(),
            0.0,
            &mut c_tt,
        );
        assert_eq!(c_nn, c_tt);
    }

    #[test]
    fn blas_equals_facade_on_all_transpose_options() {
        // The BLAS surface is a thin delegate of the facade: every
        // (trans_a, trans_b) combination must equal the plain pipeline on
        // the effective operands, bitwise — with no materialization on
        // any path (the facade flips views instead of copying).
        let a = phi_matrix_f64(7, 9, 0.5, 4, 0);
        let b = phi_matrix_f64(9, 5, 0.5, 4, 1);
        let emu = Ozaki2::new(13, Mode::Fast);
        let want = emu.dgemm(&a, &b);
        for (ta, tb, al, bl) in [
            (GemmOp::N, GemmOp::N, &a, &b),
            (GemmOp::T, GemmOp::N, &a.transpose(), &b),
            (GemmOp::N, GemmOp::T, &a, &b.transpose()),
            (GemmOp::T, GemmOp::T, &a.transpose(), &b.transpose()),
        ] {
            let mut c = MatF64::zeros(7, 5);
            emu.dgemm_blas(ta, tb, 1.0, al, bl, 0.0, &mut c);
            assert_eq!(c, want, "{ta:?} {tb:?}");
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let a = phi_matrix_f64(6, 6, 0.5, 2, 0);
        let b = phi_matrix_f64(6, 6, 0.5, 2, 1);
        let emu = Ozaki2::new(12, Mode::Fast);
        let mut c = identity(6);
        let c0 = c.clone();
        emu.dgemm_blas(GemmOp::N, GemmOp::N, 2.0, &a, &b, 3.0, &mut c);
        let prod = emu.dgemm(&a, &b);
        for i in 0..6 {
            for j in 0..6 {
                let want = 2.0 * prod[(i, j)] + 3.0 * c0[(i, j)];
                assert_eq!(c[(i, j)], want);
            }
        }
    }

    #[test]
    fn alpha_zero_skips_product() {
        let a = MatF64::zeros(4, 4); // would even be degenerate input
        let b = MatF64::zeros(4, 4);
        let mut c = identity(4);
        Ozaki2::new(8, Mode::Fast).dgemm_blas(GemmOp::N, GemmOp::N, 0.0, &a, &b, 0.5, &mut c);
        assert_eq!(c[(0, 0)], 0.5);
        assert_eq!(c[(1, 0)], 0.0);
    }

    #[test]
    fn sgemm_blas_round_trip() {
        let a = phi_matrix_f32(5, 7, 0.5, 3, 0);
        let b = phi_matrix_f32(7, 4, 0.5, 3, 1);
        let emu = Ozaki2::new(8, Mode::Fast);
        let mut c = Matrix::<f32>::zeros(5, 4);
        emu.sgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c, emu.sgemm(&a, &b));
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn shape_check() {
        let a = MatF64::zeros(3, 4);
        let b = MatF64::zeros(4, 5);
        let mut c = MatF64::zeros(3, 4);
        Ozaki2::new(8, Mode::Fast).dgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c);
    }
}
