//! Property-based tests for the Ozaki Scheme II core: kernel exactness,
//! the uniqueness condition (3), and end-to-end reconstruction.

use gemm_dense::Matrix;
use ozaki2::accumulate::{fold_planes, fold_span, fold_span_scalar, FoldPrecision};
use ozaki2::consts::constants;
use ozaki2::convert::{
    convert_pack_panels, residue_planes, rmod_reference, rmod_row, rmod_row_scalar, rmod_to_i8,
    steps_for, trunc_convert_pack_panels, ElemSlice, TruncSource,
};
use ozaki2::modred::mod_i32_to_u8;
use ozaki2::scale::{
    condition3_holds, fast_scale_cols, fast_scale_rows, pow2_split, scale_by_pow2,
    scale_trunc_a_rowmajor, scale_trunc_b_colmajor, strunc_row, strunc_row_scalar,
};
use ozaki2::TimeShare;
use ozaki2::{Mode, Ozaki2};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mulhi_mod_matches_rem_euclid(x in any::<i32>(), pidx in 0usize..20) {
        let c = constants(20);
        let p = c.p[pidx];
        prop_assert_eq!(
            mod_i32_to_u8(x, p as i32, c.p_inv_u32[pidx]) as i64,
            (x as i64).rem_euclid(p as i64)
        );
    }

    #[test]
    fn rmod_congruent_over_pipeline_domain(
        mant in -(1i64 << 53)..(1i64 << 53),
        shift in 0u32..18,
        nmod in 2usize..=20,
        pidx_seed in any::<u32>(),
    ) {
        // Values of the form (53-bit integer) << shift cover the integer
        // f64s the truncation step can produce up to 2^71.
        let c = constants(nmod);
        let pidx = (pidx_seed as usize) % nmod;
        let x = (mant as f64) * 2f64.powi(shift as i32);
        let steps = steps_for(nmod, true);
        // Restrict to the fast-mode magnitude budget for this N.
        prop_assume!(x.abs() <= 2f64.powf(c.p_fast));
        let r = rmod_to_i8(
            x,
            c.p_f64[pidx],
            c.p_f32[pidx],
            c.p_inv_f64[pidx],
            c.p_inv_f32[pidx],
            steps,
        );
        let want = gemm_exact::I256::from_f64_exact(x).rem_euclid_u64(c.p[pidx]);
        prop_assert_eq!(
            (r as i64).rem_euclid(c.p[pidx] as i64) as u64,
            want,
            "x={} p={}", x, c.p[pidx]
        );
    }

    #[test]
    fn vectorized_rmod_lane_exact_and_congruent(
        nmod in 2usize..=20,
        b64 in any::<bool>(),
        len in 1usize..80,
        seed in any::<u64>(),
        pidx_seed in any::<u32>(),
    ) {
        // The dispatched SIMD row kernel must equal the scalar oracle bit
        // for bit on every lane (body lanes AND the scalar tail), for
        // every step count — and every lane must be congruent to the
        // exact-integer rmod. Rows mix random in-budget integers with the
        // ±p/2 wrap edge cases (multiples of p/2, including ±128 for
        // p = 256).
        prop_assume!(b64 || nmod <= 18);
        let c = constants(nmod);
        let steps = steps_for(nmod, b64);
        let pidx = (pidx_seed as usize) % nmod;
        let p = c.p[pidx];
        let bound = 2f64.powf(c.p_fast);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s
        };
        let row: Vec<f64> = (0..len)
            .map(|i| match i % 4 {
                // ±(p/2)·odd: the wrap-prone boundary multiples.
                0 => {
                    let mult = (next() % 64) as f64 * 2.0 + 1.0;
                    let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                    sign * (p as f64 / 2.0).trunc() * mult
                }
                // Large in-budget magnitudes (exercise steps 2-3).
                1 => {
                    let e = (next() % 52) as i32;
                    let sign = if next() % 2 == 0 { 1.0 } else { -1.0 };
                    (sign * 2f64.powi(e) * 1.337).trunc() % bound
                }
                // Small integers around zero.
                2 => (next() % 4096) as f64 - 2048.0,
                // Uniform 48-bit integers.
                _ => ((next() >> 16) as f64 - 2f64.powi(47)) % bound,
            })
            .map(|x| (x % bound).trunc())
            .collect();
        let args = (c.p_f64[pidx], c.p_f32[pidx], c.p_inv_f64[pidx], c.p_inv_f32[pidx]);
        let mut got = vec![0i16; len];
        let mut want = vec![0i16; len];
        rmod_row(&row, &mut got, args.0, args.1, args.2, args.3, steps);
        rmod_row_scalar(&row, &mut want, args.0, args.1, args.2, args.3, steps);
        prop_assert_eq!(&got, &want, "lane mismatch: N={} steps={}", nmod, steps);
        for (i, (&g, &x)) in got.iter().zip(&row).enumerate() {
            let exact = gemm_exact::I256::from_f64_exact(x).rem_euclid_u64(p);
            prop_assert_eq!(
                (g as i64).rem_euclid(p as i64) as u64, exact,
                "lane {} not congruent: x={} p={}", i, x, p
            );
            let reference = rmod_reference(x, p) as i64;
            prop_assert_eq!(
                (g as i64).rem_euclid(p as i64), reference.rem_euclid(p as i64),
                "lane {} disagrees with rmod_reference: x={} p={}", i, x, p
            );
        }
    }

    #[test]
    fn strunc_row_lane_exact_any_exponent(
        len in 1usize..100,
        e in -1300i32..1300,
        seed in any::<u64>(),
    ) {
        // The dispatched scale+trunc kernel must equal the scalar oracle
        // bit for bit on every lane (SIMD body + tail), and the oracle
        // must equal scale_by_pow2(..).trunc() — including ±max-exponent
        // scales that overflow/underflow a single multiply (|e| > 970) and
        // subnormal products.
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s
        };
        let row: Vec<f64> = (0..len)
            .map(|_| {
                let m = ((next() >> 12) as f64) / 2f64.powi(40) - 2048.0;
                let ex = (next() % 600) as i32 - 300;
                m * 2f64.powi(ex)
            })
            .collect();
        let (s1, s2) = pow2_split(e);
        let mut got = vec![0f64; len];
        let mut want = vec![0f64; len];
        strunc_row(&row, &mut got, s1, s2);
        strunc_row_scalar(&row, &mut want, s1, s2);
        for i in 0..len {
            prop_assert_eq!(
                got[i].to_bits(), want[i].to_bits(),
                "lane {} diverges: x={} e={}", i, row[i], e
            );
            prop_assert_eq!(
                want[i].to_bits(), scale_by_pow2(row[i], e).trunc().to_bits(),
                "oracle deviates from scale_by_pow2: x={} e={}", row[i], e
            );
        }
    }

    #[test]
    fn fold_span_lane_exact_odd_planes(
        nmod in 2usize..=20,
        len in 1usize..70,
        idx0 in 0usize..9,
        single in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Lane-exact SIMD/scalar parity for the fold kernel across span
        // edges (body + tail), span offsets, odd plane counts and the full
        // residue range (including p-1 maxima).
        prop_assume!(!single || nmod <= ozaki2::N_MAX_SGEMM);
        let c = constants(nmod);
        let plane = idx0 + len + (seed % 5) as usize;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(97);
            s
        };
        let u: Vec<u8> = (0..nmod * plane)
            .map(|i| {
                let m = i / plane;
                match next() % 5 {
                    0 => (c.p[m] - 1) as u8,
                    1 => 0,
                    _ => ((next() >> 30) % c.p[m]) as u8,
                }
            })
            .collect();
        let (s1, s2): (&[f64], Option<&[f64]>) = if single {
            (&c.s1_single, None)
        } else {
            (&c.s1, Some(&c.s2))
        };
        let mut got = vec![0f64; len];
        let mut want = vec![0f64; len];
        fold_span(&u, plane, idx0, s1, s2, c.p1, c.p2, c.p_inv, &mut got);
        fold_span_scalar(&u, plane, idx0, s1, s2, c.p1, c.p2, c.p_inv, &mut want);
        for i in 0..len {
            prop_assert_eq!(
                got[i].to_bits(), want[i].to_bits(),
                "lane {} diverges: N={} len={} idx0={} single={}",
                i, nmod, len, idx0, single
            );
        }
    }

    #[test]
    fn fold_round_trip_vs_crt_oracle(
        nmod in 2usize..=20,
        seed in any::<u64>(),
    ) {
        // Random residue vectors must fold back to the exact CRT
        // reconstruction (symmetric range) within a few ulps — the
        // round-trip contract of the weight-split construction.
        let c = constants(nmod);
        let basis = gemm_exact::CrtBasis::new(&c.p);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            s
        };
        let us: Vec<u8> = (0..nmod).map(|m| ((next() >> 33) % c.p[m]) as u8).collect();
        let mut out = [0.0f64];
        fold_planes(&us, 1, 1, c, FoldPrecision::Double, &[0], &[0], &mut out);
        let mut acc = gemm_exact::U256::ZERO;
        for (i, &uv) in us.iter().enumerate() {
            acc = acc.add(basis.weight(i).mul_u64(uv as u64));
        }
        let (_, r) = acc.div_rem(basis.p_big());
        let half = basis.p_big().half();
        let want = if r > half {
            gemm_exact::I256::from_u256(basis.p_big().sub(r)).neg().to_f64()
        } else {
            gemm_exact::I256::from_u256(r).to_f64()
        };
        if want == 0.0 {
            prop_assert_eq!(out[0], 0.0);
        } else {
            let rel = ((out[0] - want) / want).abs();
            prop_assert!(rel <= 8.0 * f64::EPSILON, "N={} rel={} got={} want={}", nmod, rel, out[0], want);
        }
    }

    #[test]
    fn fused_trunc_convert_matches_unfused_any_split(
        vecs in 1usize..10,
        k in 1usize..80,
        nmod in 2usize..=20,
        b64 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // The fused trunc+convert (both operand layouts) must equal the
        // unfused composition scale_trunc_* -> convert_pack_panels bitwise
        // for every plane count and both parallel splits.
        prop_assume!(b64 || nmod <= 18);
        let c = constants(nmod);
        let a = gemm_dense::workload::phi_matrix_f64(vecs, k, 1.0, seed, 0);
        let exps_a = fast_scale_rows(&a, c.p_fast);
        let vecs_pad = gemm_engine::padded_a_rows(vecs);
        let kp = gemm_engine::padded_depth(k);
        let mut pre = vec![0f64; vecs * k];
        scale_trunc_a_rowmajor(&a, &exps_a, &mut pre);
        let mut want = vec![0i16; nmod * vecs_pad * kp];
        convert_pack_panels(&pre, vecs, vecs_pad, k, kp, c, b64, false, &mut want);
        for parallel in [false, true] {
            let mut got = vec![-1i16; nmod * vecs_pad * kp];
            let timing = TimeShare::new();
            trunc_convert_pack_panels(
                TruncSource::Gathered { data: ElemSlice::F64(a.as_slice()), ld: vecs, exps: &exps_a },
                vecs, vecs_pad, k, kp, c, b64, parallel, &mut got, Some(&timing),
            );
            prop_assert_eq!(
                &got, &want,
                "A-source N={} vecs={} k={} parallel={}", nmod, vecs, k, parallel
            );
        }

        let b = gemm_dense::workload::phi_matrix_f64(k, vecs, 1.0, seed ^ 0xabcd, 1);
        let exps_b = fast_scale_cols(&b, c.p_fast);
        let vecs_pad_b = gemm_engine::padded_b_cols(vecs);
        let mut pre_b = vec![0f64; vecs * k];
        scale_trunc_b_colmajor(&b, &exps_b, &mut pre_b);
        let mut want_b = vec![0i16; nmod * vecs_pad_b * kp];
        convert_pack_panels(&pre_b, vecs, vecs_pad_b, k, kp, c, b64, false, &mut want_b);
        for parallel in [false, true] {
            let mut got = vec![-1i16; nmod * vecs_pad_b * kp];
            trunc_convert_pack_panels(
                TruncSource::Contiguous { data: ElemSlice::F64(b.as_slice()), ld: k, exps: &exps_b },
                vecs, vecs_pad_b, k, kp, c, b64, parallel, &mut got, None,
            );
            prop_assert_eq!(
                &got, &want_b,
                "B-source N={} vecs={} k={} parallel={}", nmod, vecs, k, parallel
            );
        }
    }

    #[test]
    fn fused_convert_matches_reference_planes_any_split(
        vecs in 1usize..12,
        k in 1usize..96,
        nmod in 2usize..=20,
        b64 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // convert_pack_panels must equal residue_planes + pack_panels_i16
        // bitwise for every plane count, and be invariant to the
        // parallel/sequential split.
        prop_assume!(b64 || nmod <= 18);
        let c = constants(nmod);
        let bound = 2f64.powf(c.p_fast);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
            (((s >> 16) as f64) - 2f64.powi(47)) % bound
        };
        let src: Vec<f64> = (0..vecs * k).map(|_| next().trunc()).collect();
        let vecs_pad = gemm_engine::padded_a_rows(vecs);
        let kp = gemm_engine::padded_depth(k);
        let mut planes8 = vec![0i8; nmod * vecs * k];
        residue_planes(&src, c, b64, &mut planes8);
        let mut want = vec![0i16; nmod * vecs_pad * kp];
        for sidx in 0..nmod {
            let mut pack = Vec::new();
            gemm_engine::pack_panels_i16(
                &mut pack,
                &planes8[sidx * vecs * k..(sidx + 1) * vecs * k],
                k, vecs, vecs_pad, k, kp,
            );
            want[sidx * vecs_pad * kp..(sidx + 1) * vecs_pad * kp].copy_from_slice(&pack);
        }
        for parallel in [false, true] {
            let mut got = vec![-1i16; nmod * vecs_pad * kp];
            convert_pack_panels(&src, vecs, vecs_pad, k, kp, c, b64, parallel, &mut got);
            prop_assert_eq!(
                &got, &want,
                "N={} vecs={} k={} parallel={}", nmod, vecs, k, parallel
            );
        }
    }

    #[test]
    fn fused_epilogue_matches_reduce_plane(
        m in 1usize..16,
        k in 1usize..40,
        n in 1usize..16,
        pidx in 0usize..20,
        seed in any::<u64>(),
    ) {
        // The engine's fused GEMM epilogue must agree with the standalone
        // reduce_plane kernel on the same INT32 plane.
        let c20 = constants(20);
        let (p, pinv) = (c20.p[pidx], c20.p_inv_u32[pidx]);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(11);
            (s >> 33) as i64 as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next()).collect();
        let mut c32 = vec![0i32; m * n];
        let mut u_fused = vec![0u8; m * n];
        let mut ws = gemm_engine::Int8Workspace::new();
        let epi = gemm_engine::ReduceEpilogue::new(p, pinv, None);
        gemm_engine::int8_gemm_fused(
            m, n, k, &a, k, &b, k, &mut c32, &mut u_fused, &epi, &mut ws, true,
        );
        let mut u_separate = vec![0u8; m * n];
        ozaki2::modred::reduce_plane(&c32, p, pinv, &mut u_separate);
        prop_assert_eq!(u_fused, u_separate, "p={}", p);
    }

    #[test]
    fn condition3_holds_for_random_workloads(
        seed in any::<u64>(),
        nmod in 3usize..=18,
        phi in 0.0f64..3.0,
    ) {
        let (m, n, k) = (8usize, 8usize, 24usize);
        let a = gemm_dense::workload::phi_matrix_f64(m, k, phi, seed, 0);
        let b = gemm_dense::workload::phi_matrix_f64(k, n, phi, seed, 1);
        let c = constants(nmod);
        let ea = fast_scale_rows(&a, c.p_fast);
        let eb = fast_scale_cols(&b, c.p_fast);
        let mut ap = vec![0f64; m * k];
        scale_trunc_a_rowmajor(&a, &ea, &mut ap);
        let mut bp = vec![0f64; k * n];
        scale_trunc_b_colmajor(&b, &eb, &mut bp);
        prop_assert!(
            condition3_holds(&ap, &bp, m, n, k, c),
            "uniqueness condition violated: N={} phi={}", nmod, phi
        );
    }

    #[test]
    fn integer_inputs_reconstruct(
        seed in any::<u64>(),
        nmod in 4usize..=16,
        accurate in any::<bool>(),
    ) {
        // Small integer matrices. For N <= 10 the scaled product C'' fits
        // the fold's exact window (c1 and q·P1 share enough ulp headroom)
        // and the result is bit-exact; for larger N the final FMA chain of
        // line 11 rounds once at the C'' magnitude, so the contract is
        // "within 2 ulp of the true integer".
        let (m, n, k) = (6usize, 5usize, 9usize);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as i64 % 101) - 50
        };
        let a = Matrix::from_fn(m, k, |_, _| next() as f64);
        let b = Matrix::from_fn(k, n, |_, _| next() as f64);
        let mode = if accurate { Mode::Accurate } else { Mode::Fast };
        let got = Ozaki2::new(nmod, mode).dgemm(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for h in 0..k {
                    acc += (a[(i, h)] as i64) * (b[(h, j)] as i64);
                }
                let want = acc as f64;
                if nmod <= 10 {
                    prop_assert_eq!(got[(i, j)], want, "({},{}) N={}", i, j, nmod);
                } else {
                    let tol = 4.0 * f64::EPSILON * want.abs().max(1.0);
                    prop_assert!(
                        (got[(i, j)] - want).abs() <= tol,
                        "({},{}) N={}: got {} want {}", i, j, nmod, got[(i, j)], want
                    );
                }
            }
        }
    }

    #[test]
    fn emulated_error_bounded_by_budget(
        seed in any::<u64>(),
        nmod in 10usize..=16,
    ) {
        // For phi = 0.5 workloads the componentwise error must stay below
        // ~2^(-4(N-?) ...): use a generous analytic envelope: the per-
        // operand truncation keeps ~(p_fast - log2 k) bits, giving
        // relative error <= 2^-(p_fast - log2 k - 6) on entries without
        // cancellation; test the normwise error which is cancellation-free.
        let (m, n, k) = (16usize, 16usize, 32usize);
        let a = gemm_dense::workload::phi_matrix_f64(m, k, 0.5, seed, 0);
        let b = gemm_dense::workload::phi_matrix_f64(k, n, 0.5, seed, 1);
        let exact = gemm_dense::gemm::gemm_f64_naive(&a, &b);
        let got = Ozaki2::new(nmod, Mode::Fast).dgemm(&a, &b);
        let c = constants(nmod);
        let bound = 2f64.powf(-(c.p_fast - (k as f64).log2() - 8.0));
        let err = gemm_dense::norms::normwise_relative_error(&got, &exact);
        prop_assert!(err <= bound.max(1e-14), "N={} err={:e} bound={:e}", nmod, err, bound);
    }

    #[test]
    fn sgemm_dgemm_consistent_on_f32_inputs(seed in any::<u64>(), nmod in 6usize..=12) {
        // Running f32 data through sgemm must give (after widening) the
        // same result as widening first and running dgemm with the same
        // constants ... up to the output rounding to f32.
        let (m, n, k) = (8usize, 8usize, 12usize);
        let a32 = gemm_dense::workload::phi_matrix_f32(m, k, 0.5, seed, 0);
        let b32 = gemm_dense::workload::phi_matrix_f32(k, n, 0.5, seed, 1);
        let c32 = Ozaki2::new(nmod, Mode::Fast).sgemm(&a32, &b32);
        let exact = gemm_dense::gemm::gemm_f64_naive(
            &a32.map(|x| x as f64),
            &b32.map(|x| x as f64),
        );
        for i in 0..m {
            for j in 0..n {
                let rel = ((c32[(i, j)] as f64 - exact[(i, j)]) / exact[(i, j)].abs().max(1e-20)).abs();
                prop_assert!(rel < 1e-2, "({},{}) rel={}", i, j, rel);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// View facade: bit-identity across strides / layouts / transposes, and the
// named wrappers as thin delegates (also exercised by the forced-scalar CI
// job, which runs this whole suite with OZAKI_FORCE_SCALAR=1).
// ---------------------------------------------------------------------------

use gemm_dense::view::Layout;
use gemm_dense::MatView;
use ozaki2::{GemmArgs, GemmOp};

/// Scatter `mat` into a fresh NaN-poisoned column-major buffer with
/// leading dimension `rows + pad`; only the logical elements are written,
/// so any read of a gap element surfaces as a NaN-contaminated (or
/// validation-rejected) result.
fn poisoned_strided(mat: &Matrix<f64>, pad: usize) -> (Vec<f64>, usize) {
    let (rows, cols) = (mat.rows(), mat.cols());
    let ld = rows + pad;
    let len = if cols == 0 { 0 } else { (cols - 1) * ld + rows };
    let mut buf = vec![f64::NAN; len];
    for j in 0..cols {
        for i in 0..rows {
            buf[i + j * ld] = mat[(i, j)];
        }
    }
    (buf, ld)
}

fn poisoned_strided_f32(mat: &Matrix<f32>, pad: usize) -> (Vec<f32>, usize) {
    let (rows, cols) = (mat.rows(), mat.cols());
    let ld = rows + pad;
    let len = if cols == 0 { 0 } else { (cols - 1) * ld + rows };
    let mut buf = vec![f32::NAN; len];
    for j in 0..cols {
        for i in 0..rows {
            buf[i + j * ld] = mat[(i, j)];
        }
    }
    (buf, ld)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f64: the view facade over arbitrary strides, layouts and transpose
    /// options is bit-identical to the owned-matrix path, in both scaling
    /// modes, with NaN poison proving no gap element is ever touched.
    #[test]
    fn view_gemm_matches_owned_f64(
        m in 1usize..=12,
        n in 1usize..=10,
        k in 1usize..=16,
        nmod in 2usize..=20,
        lda_pad in 0usize..4,
        ldb_pad in 0usize..4,
        trans_a in any::<bool>(),
        trans_b in any::<bool>(),
        accurate in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mode = if accurate { Mode::Accurate } else { Mode::Fast };
        let a = gemm_dense::workload::phi_matrix_f64(m, k, 0.7, seed, 0);
        let b = gemm_dense::workload::phi_matrix_f64(k, n, 0.7, seed + 1, 1);
        let emu = Ozaki2::new(nmod, mode);
        let want = emu.dgemm(&a, &b);

        // Store op(A) (the transposed matrix when trans_a) strided, then
        // ask the facade to undo the transpose — a pure view flip.
        let stored_a = if trans_a { a.transpose() } else { a.clone() };
        let stored_b = if trans_b { b.transpose() } else { b.clone() };
        let (abuf, lda) = poisoned_strided(&stored_a, lda_pad);
        let (bbuf, ldb) = poisoned_strided(&stored_b, ldb_pad);
        let va = MatView::new(&abuf, stored_a.rows(), stored_a.cols(), lda, Layout::ColMajor);
        let vb = MatView::new(&bbuf, stored_b.rows(), stored_b.cols(), ldb, Layout::ColMajor);
        let got = emu.gemm(
            GemmArgs::new(va, vb)
                .trans_a(if trans_a { GemmOp::T } else { GemmOp::N })
                .trans_b(if trans_b { GemmOp::T } else { GemmOp::N }),
        ).unwrap();
        prop_assert_eq!(
            &got.c, &want,
            "N={} mode={:?} lda={} ldb={} ta={} tb={}", nmod, mode, lda, ldb, trans_a, trans_b
        );
    }

    /// f32: same bit-identity over strides/layouts/transposes — the fused
    /// sweep widens lanes exactly, so the strided f32 view path must equal
    /// the owned sgemm path bitwise.
    #[test]
    fn view_gemm_matches_owned_f32(
        m in 1usize..=12,
        n in 1usize..=10,
        k in 1usize..=16,
        nmod in 2usize..=18,
        lda_pad in 0usize..4,
        ldb_pad in 0usize..4,
        trans_a in any::<bool>(),
        trans_b in any::<bool>(),
        accurate in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mode = if accurate { Mode::Accurate } else { Mode::Fast };
        let a = gemm_dense::workload::phi_matrix_f32(m, k, 0.5, seed, 0);
        let b = gemm_dense::workload::phi_matrix_f32(k, n, 0.5, seed + 1, 1);
        let emu = Ozaki2::new(nmod, mode);
        let want = emu.sgemm(&a, &b);

        let stored_a = if trans_a { a.transpose() } else { a.clone() };
        let stored_b = if trans_b { b.transpose() } else { b.clone() };
        let (abuf, lda) = poisoned_strided_f32(&stored_a, lda_pad);
        let (bbuf, ldb) = poisoned_strided_f32(&stored_b, ldb_pad);
        let va = MatView::new(&abuf, stored_a.rows(), stored_a.cols(), lda, Layout::ColMajor);
        let vb = MatView::new(&bbuf, stored_b.rows(), stored_b.cols(), ldb, Layout::ColMajor);
        let got = emu.gemm(
            GemmArgs::new(va, vb)
                .trans_a(if trans_a { GemmOp::T } else { GemmOp::N })
                .trans_b(if trans_b { GemmOp::T } else { GemmOp::N }),
        ).unwrap();
        prop_assert_eq!(
            &got.c, &want,
            "N={} mode={:?} lda={} ldb={} ta={} tb={}", nmod, mode, lda, ldb, trans_a, trans_b
        );
    }

    /// Row-major views (the zero-copy transpose representation) feed the
    /// contiguous/gathered sweep paths swapped — results stay bitwise
    /// equal to the owned path.
    #[test]
    fn row_major_views_match_owned(
        m in 1usize..=10,
        n in 1usize..=10,
        k in 1usize..=14,
        nmod in 2usize..=16,
        seed in 0u64..1000,
    ) {
        let a = gemm_dense::workload::phi_matrix_f64(m, k, 0.6, seed, 0);
        let b = gemm_dense::workload::phi_matrix_f64(k, n, 0.6, seed + 1, 1);
        let emu = Ozaki2::new(nmod, Mode::Fast);
        let want = emu.dgemm(&a, &b);
        // Row-major storage of A and B themselves.
        let arm = a.to_row_major();
        let brm = b.to_row_major();
        let va = MatView::new(&arm, m, k, k, Layout::RowMajor);
        let vb = MatView::new(&brm, k, n, n, Layout::RowMajor);
        let got = emu.gemm(GemmArgs::new(va, vb)).unwrap();
        prop_assert_eq!(&got.c, &want, "N={}", nmod);
    }

    /// Every historical named entry is a thin wrapper of the facade:
    /// equal results, bit for bit.
    #[test]
    fn named_wrappers_equal_facade(
        m in 1usize..=10,
        n in 1usize..=10,
        k in 1usize..=14,
        nmod in 2usize..=15,
        accurate in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let mode = if accurate { Mode::Accurate } else { Mode::Fast };
        let a = gemm_dense::workload::phi_matrix_f64(m, k, 0.7, seed, 0);
        let b = gemm_dense::workload::phi_matrix_f64(k, n, 0.7, seed + 1, 1);
        let emu = Ozaki2::new(nmod, mode);
        let facade = emu.gemm(GemmArgs::new(&a, &b)).unwrap().c;

        prop_assert_eq!(&emu.dgemm(&a, &b), &facade);
        prop_assert_eq!(&emu.try_dgemm(&a, &b).unwrap(), &facade);
        prop_assert_eq!(&emu.dgemm_with_report(&a, &b).0, &facade);
        let mut ws = ozaki2::Workspace::new();
        prop_assert_eq!(&emu.dgemm_ws(&a, &b, &mut ws), &facade);
        let mut c = Matrix::<f64>::zeros(m, n);
        emu.dgemm_into_ws(&a, &b, &mut c, &mut ws);
        prop_assert_eq!(&c, &facade);
        let mut c_blas = Matrix::<f64>::zeros(m, n);
        emu.dgemm_blas(GemmOp::N, GemmOp::N, 1.0, &a, &b, 0.0, &mut c_blas);
        prop_assert_eq!(&c_blas, &facade);
        let mut plan = ozaki2::GemmPlan::new(emu, m, n, k);
        prop_assert_eq!(&plan.execute(&a, &b), &facade);
        let mut c_plan = Matrix::<f64>::zeros(m, n);
        plan.execute_views_into(a.view(), b.view(), c_plan.view_mut()).unwrap();
        prop_assert_eq!(&c_plan, &facade);

        // f32 family.
        let af = gemm_dense::workload::phi_matrix_f32(m, k, 0.5, seed, 0);
        let bf = gemm_dense::workload::phi_matrix_f32(k, n, 0.5, seed + 1, 1);
        let emu8 = Ozaki2::new(nmod.min(18), mode);
        let facade32 = emu8.gemm(GemmArgs::new(&af, &bf)).unwrap().c;
        prop_assert_eq!(&emu8.sgemm(&af, &bf), &facade32);
        let mut cf = Matrix::<f32>::zeros(m, n);
        emu8.sgemm_blas(GemmOp::N, GemmOp::N, 1.0f32, &af, &bf, 0.0f32, &mut cf);
        prop_assert_eq!(&cf, &facade32);
    }
}
