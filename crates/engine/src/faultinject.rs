//! Deterministic fault injection for the INT8 pipeline.
//!
//! The ABFT layer in `ozaki2` (checksum verification + retry/degrade
//! recovery) is only trustworthy if its detection and recovery paths are
//! *exercised*, not just claimed. This module plants bit flips at named
//! sites of the execution pipeline so CI can run the full test suite with
//! faults occurring at a nonzero rate and prove the stack detects and
//! recovers from them.
//!
//! Two triggering mechanisms, both off by default:
//!
//! * **Environment rate** (the CI mechanism, mirroring
//!   [`crate::force_scalar`]): `OZAKI_FAULT_INJECT=rate,seed,site` arms a
//!   deterministic per-hook-call Bernoulli draw (an LCG seeded by `seed`;
//!   `rate ∈ [0, 1]`; `site ∈ panel-a|panel-b|acc|residue|all`). Rate draws
//!   fire only inside a **protected region** (see [`region`]) — the
//!   `ozaki2` fault-tolerant execution path opens one around its GEMMs, so
//!   raw engine calls (benchmarks, kernel parity tests, paths with no ABFT
//!   defending them) stay clean under a suite-wide injection run.
//! * **[`arm_once`]** (the test mechanism): the next hook call matching the
//!   armed site flips bits exactly once, regardless of region — precise,
//!   deterministic single-fault placement for detection/recovery proptests.
//!
//! Both mechanisms respect the thread-local [`suppress`] guard, which the
//! recovery path holds while re-running work: recovery re-executions are
//! the hardened path and must not be re-faulted by the injector that broke
//! the original run (a real transient fault model, and what makes recovery
//! deterministically testable).
//!
//! Flipped bits are chosen so every injected fault is *materializable*:
//! panel flips stay inside the sign-extended-i8 value range (bits 0–6, so
//! the engine's exactness contract `|x| ≤ 128` still holds and the fault
//! propagates arithmetically instead of merely breaking a precondition),
//! accumulator and residue flips touch the low byte (bits 0–7, below every
//! supported modulus), so a flip either changes a residue class — and is
//! detected — or is congruent to zero mod `p` and provably cannot alter
//! the folded output.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// A named injection site in the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Packed i16 residue panels of operand `A` (after the fused
    /// trunc+convert sweep, before the INT8 GEMMs).
    PanelA,
    /// Packed i16 residue panels of operand `B`.
    PanelB,
    /// The INT32 accumulator stripe of a GEMM, after the tile sweep and
    /// before the fused mod-reduce epilogue.
    Acc,
    /// A UINT8 residue plane, after the GEMM + reduction produced it.
    Residue,
}

impl FaultSite {
    fn mask_bit(self) -> u8 {
        match self {
            FaultSite::PanelA => 1,
            FaultSite::PanelB => 2,
            FaultSite::Acc => 4,
            FaultSite::Residue => 8,
        }
    }
}

struct EnvCfg {
    rate_bits: u64,
    site_mask: u8,
}

fn env_cfg() -> Option<&'static EnvCfg> {
    static CFG: OnceLock<Option<EnvCfg>> = OnceLock::new();
    CFG.get_or_init(|| {
        let raw = std::env::var("OZAKI_FAULT_INJECT").ok()?;
        let mut parts = raw.splitn(3, ',');
        let rate: f64 = parts.next()?.trim().parse().ok()?;
        if rate.is_nan() || rate <= 0.0 {
            return None;
        }
        let seed: u64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0x5eed);
        let site_mask = match parts.next().map(str::trim).unwrap_or("all") {
            "panel-a" => FaultSite::PanelA.mask_bit(),
            "panel-b" => FaultSite::PanelB.mask_bit(),
            "panel" => FaultSite::PanelA.mask_bit() | FaultSite::PanelB.mask_bit(),
            "acc" => FaultSite::Acc.mask_bit(),
            "residue" => FaultSite::Residue.mask_bit(),
            _ => 0xF,
        };
        RNG.store(
            seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
            Ordering::Relaxed,
        );
        // The fire threshold as a 32-bit fixed-point fraction.
        let rate_bits = (rate.min(1.0) * (1u64 << 32) as f64) as u64;
        Some(EnvCfg {
            rate_bits,
            site_mask,
        })
    })
    .as_ref()
}

/// One-shot armed site (`site.mask_bit()`, 0 = none), consumed by the first
/// matching hook call.
static ARMED: AtomicU8 = AtomicU8::new(0);
/// Deterministic draw state shared by rate draws and flip placement.
static RNG: AtomicU64 = AtomicU64::new(0x9e3779b97f4a7c15);
/// Total bit-flip events injected since process start.
static INJECTED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Suppression depth: hooks on this thread no-op while > 0.
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
    /// Protected-region depth: env-rate draws fire only while > 0.
    static REGION: Cell<u32> = const { Cell::new(0) };
}

/// Whether any injection mechanism is live (one cached-`OnceLock` read and
/// one relaxed load — cheap enough for hot paths).
#[inline]
pub fn enabled() -> bool {
    env_cfg().is_some() || ARMED.load(Ordering::Relaxed) != 0
}

/// Total bit-flip events injected so far in this process.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Arm a one-shot fault: the next hook call at `site` (any thread, any
/// region, unless suppressed) flips bits exactly once. Tests serialize
/// around this — the armed state is process-global.
pub fn arm_once(site: FaultSite) {
    ARMED.store(site.mask_bit(), Ordering::SeqCst);
}

/// Disarm any pending one-shot fault (does not touch the env-rate config).
pub fn disarm() {
    ARMED.store(0, Ordering::SeqCst);
}

/// Whether a one-shot fault armed by [`arm_once`] is still pending (false
/// once a hook consumed it).
pub fn armed_pending() -> bool {
    ARMED.load(Ordering::SeqCst) != 0
}

/// RAII guard suppressing injection on the current thread (recovery runs
/// single-threaded under one of these).
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get() - 1));
    }
}

/// Suppress injection on this thread until the guard drops.
pub fn suppress() -> SuppressGuard {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressGuard(())
}

/// RAII guard marking the current thread as inside an ABFT-protected
/// execution; environment-rate faults fire only inside one.
pub struct RegionGuard(());

impl Drop for RegionGuard {
    fn drop(&mut self) {
        REGION.with(|r| r.set(r.get() - 1));
    }
}

/// Open a protected region on this thread (see [`RegionGuard`]).
pub fn region() -> RegionGuard {
    REGION.with(|r| r.set(r.get() + 1));
    RegionGuard(())
}

#[inline]
fn suppressed() -> bool {
    SUPPRESS.with(|s| s.get() > 0)
}

#[inline]
fn in_region() -> bool {
    REGION.with(|r| r.get() > 0)
}

/// Next deterministic draw (an LCG step; the whole word is the draw).
fn next_draw() -> u64 {
    let mut cur = RNG.load(Ordering::Relaxed);
    loop {
        let next = cur
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match RNG.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(now) => cur = now,
        }
    }
}

/// Decide whether a hook call at `site` should inject, consuming the armed
/// one-shot if it matches. Returns a draw for flip placement on yes.
fn should_fire(site: FaultSite) -> Option<u64> {
    if suppressed() {
        return None;
    }
    let bit = site.mask_bit();
    // One-shot armed faults fire first (and exactly once).
    if ARMED.load(Ordering::Relaxed) & bit != 0
        && ARMED
            .compare_exchange(bit, 0, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    {
        return Some(next_draw());
    }
    let cfg = env_cfg()?;
    if cfg.site_mask & bit == 0 || !in_region() {
        return None;
    }
    let draw = next_draw();
    if (draw >> 32) < cfg.rate_bits {
        Some(draw)
    } else {
        None
    }
}

/// Hook: maybe flip 1–3 bits among bits 0–6 of one element of a packed i16
/// residue panel (stays inside the sign-extended-i8 range, so the flip is a
/// live residue corruption rather than a broken precondition). Returns
/// whether a fault was injected.
pub fn corrupt_panel(site: FaultSite, panel: &mut [i16]) -> bool {
    if !enabled() || panel.is_empty() {
        return false;
    }
    debug_assert!(matches!(site, FaultSite::PanelA | FaultSite::PanelB));
    match should_fire(site) {
        Some(draw) => {
            let idx = (draw % panel.len() as u64) as usize;
            let extra = next_draw();
            let mut mask: i16 = 1 << (extra % 7);
            for shift in 0..(extra >> 8) % 3 {
                mask |= 1 << ((extra >> (16 + 8 * shift)) % 7);
            }
            panel[idx] ^= mask;
            INJECTED.fetch_add(1, Ordering::Relaxed);
            true
        }
        None => false,
    }
}

/// Hook: maybe flip one low-byte bit of one INT32 accumulator element
/// (called by the engine on each completed stripe before the fused
/// epilogue). Returns whether a fault was injected.
pub fn corrupt_acc(c: &mut [i32]) -> bool {
    if !enabled() || c.is_empty() {
        return false;
    }
    match should_fire(FaultSite::Acc) {
        Some(draw) => {
            let idx = (draw % c.len() as u64) as usize;
            c[idx] ^= 1 << (next_draw() % 8);
            INJECTED.fetch_add(1, Ordering::Relaxed);
            true
        }
        None => false,
    }
}

/// Hook: maybe flip one bit of one UINT8 residue-plane element. Returns
/// whether a fault was injected.
pub fn corrupt_residue(u: &mut [u8]) -> bool {
    if !enabled() || u.is_empty() {
        return false;
    }
    match should_fire(FaultSite::Residue) {
        Some(draw) => {
            let idx = (draw % u.len() as u64) as usize;
            u[idx] ^= 1 << (next_draw() % 8);
            INJECTED.fetch_add(1, Ordering::Relaxed);
            true
        }
        None => false,
    }
}

// ---------------------------------------------------------------------------
// Scalar-scope dispatch override (graceful degradation)
// ---------------------------------------------------------------------------

thread_local! {
    /// Scalar-fallback depth: while > 0, the engine's kernel dispatch on
    /// this thread uses the scalar oracle kernels regardless of detected
    /// CPU features.
    static SCALAR_SCOPE: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard forcing scalar kernel dispatch on the current thread — the
/// degraded-but-trusted execution mode the `RetryThenScalar` fault policy
/// falls back to. The scalar kernels are the bit-exact oracles every SIMD
/// path is tested against, so results are unchanged; only throughput drops.
pub struct ScalarScopeGuard(());

impl Drop for ScalarScopeGuard {
    fn drop(&mut self) {
        SCALAR_SCOPE.with(|s| s.set(s.get() - 1));
    }
}

/// Force scalar kernel dispatch on this thread until the guard drops.
pub fn scalar_scope() -> ScalarScopeGuard {
    SCALAR_SCOPE.with(|s| s.set(s.get() + 1));
    ScalarScopeGuard(())
}

/// Whether the current thread is inside a [`scalar_scope`] guard.
#[inline]
pub fn in_scalar_scope() -> bool {
    SCALAR_SCOPE.with(|s| s.get() > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global state: keep every test in one serialized block.
    #[test]
    fn armed_faults_fire_once_and_respect_suppression() {
        let mut panel = vec![0i16; 64];

        // Nothing armed: hooks are inert.
        assert!(!corrupt_panel(FaultSite::PanelA, &mut panel));
        assert!(panel.iter().all(|&x| x == 0));

        // Armed fault fires exactly once, at the armed site only.
        arm_once(FaultSite::PanelA);
        assert!(armed_pending());
        let mut other = vec![0u8; 16];
        assert!(!corrupt_residue(&mut other), "wrong site must not fire");
        assert!(corrupt_panel(FaultSite::PanelA, &mut panel));
        assert!(!armed_pending());
        let flipped: Vec<_> = panel.iter().filter(|&&x| x != 0).collect();
        assert_eq!(flipped.len(), 1, "exactly one element flipped");
        // Panel flips stay in the sign-extended-i8 range.
        assert!(panel.iter().all(|&x| (-128..=127).contains(&x)));
        assert!(!corrupt_panel(FaultSite::PanelA, &mut panel), "one-shot");

        // Suppression blocks an armed fault until the guard drops.
        arm_once(FaultSite::Acc);
        let mut acc = vec![0i32; 32];
        {
            let _g = suppress();
            assert!(!corrupt_acc(&mut acc));
            assert!(armed_pending(), "suppressed hook must not consume");
        }
        assert!(corrupt_acc(&mut acc));
        let delta: i32 = acc.iter().sum();
        assert!(delta.abs() < 256 && delta != 0, "low-byte flip: {delta}");

        // Residue flips touch exactly one element.
        arm_once(FaultSite::Residue);
        let mut u = vec![0u8; 40];
        assert!(corrupt_residue(&mut u));
        assert_eq!(u.iter().filter(|&&x| x != 0).count(), 1);

        assert!(injected() >= 3);
        disarm();
    }

    #[test]
    fn scalar_scope_nests() {
        assert!(!in_scalar_scope());
        {
            let _a = scalar_scope();
            assert!(in_scalar_scope());
            {
                let _b = scalar_scope();
                assert!(in_scalar_scope());
            }
            assert!(in_scalar_scope());
        }
        assert!(!in_scalar_scope());
    }
}
