//! Engine invocation counters.
//!
//! The device model and several tests need to know how many engine calls
//! and multiply-accumulate operations a pipeline issued (e.g. Ozaki Scheme
//! II issues exactly `N` INT8 GEMMs per product in fast mode, `N + 1` in
//! accurate mode). Counters are global atomics: cheap, thread-safe, and
//! reset-able per experiment.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global counters for the INT8 engine.
pub static INT8_STATS: EngineStats = EngineStats::new();
/// Global counters for the low-precision (FP16/BF16/TF32) engines.
pub static LOWFP_STATS: EngineStats = EngineStats::new();

/// Invocation and work counters for one engine class.
#[derive(Debug)]
pub struct EngineStats {
    calls: AtomicU64,
    macs: AtomicU64,
}

impl EngineStats {
    /// New zeroed counter set.
    pub const fn new() -> Self {
        Self {
            calls: AtomicU64::new(0),
            macs: AtomicU64::new(0),
        }
    }

    /// Record one GEMM call of the given shape.
    #[inline]
    pub fn record_gemm(&self, m: usize, n: usize, k: usize) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.macs
            .fetch_add((m * n) as u64 * k as u64, Ordering::Relaxed);
    }

    /// Number of GEMM calls since the last reset.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Number of multiply-accumulate operations since the last reset.
    pub fn macs(&self) -> u64 {
        self.macs.load(Ordering::Relaxed)
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.macs.store(0, Ordering::Relaxed);
    }
}

impl Default for EngineStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_resets() {
        let s = EngineStats::new();
        s.record_gemm(4, 5, 6);
        s.record_gemm(2, 2, 2);
        assert_eq!(s.calls(), 2);
        assert_eq!(s.macs(), 4 * 5 * 6 + 8);
        s.reset();
        assert_eq!(s.calls(), 0);
        assert_eq!(s.macs(), 0);
    }
}
