//! The simulated INT8 matrix engine.
//!
//! Semantics mirror the GPU unit the paper targets (`mma.s8.s32` /
//! cublasGemmEx with `CUDA_R_8I` inputs and `CUDA_R_32I` accumulation):
//!
//! * inputs are signed 8-bit integers;
//! * every product enters a 32-bit accumulator;
//! * accumulation **wraps** on overflow (two's complement) — the paper
//!   exploits exactly this at `k = 2^17`, where `(A'_1 B'_1)_ij` may reach
//!   `2^31` and wraps to `-2^31` without harming the mod-256 residue.
//!
//! The hot entry point takes a row-major packed `A` and column-major `B`
//! so the inner dot products run over contiguous memory.

use crate::stats::INT8_STATS;
use gemm_dense::{MatI32, MatI8, Matrix};
use rayon::prelude::*;

/// Columns of `C` per rayon task.
const COL_CHUNK: usize = 4;

/// Wrapping dot product of two i8 slices with i32 accumulation.
#[inline]
fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    // Pairwise products fit in i16 but are widened straight to i32; release
    // i32 addition wraps, which is exactly the unit's semantics (made
    // explicit with wrapping_add so debug builds agree).
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc = acc.wrapping_add(x as i32 * y as i32);
    }
    acc
}

/// Hot-path GEMM: `C = A * B` with `A` packed row-major (`m x k`),
/// `B` column-major (`k x n`), `C` column-major (`m x n`), all contiguous.
///
/// # Panics
/// If any buffer length disagrees with the shape.
pub fn int8_gemm_rm_cm(m: usize, n: usize, k: usize, a_rm: &[i8], b_cm: &[i8], c_cm: &mut [i32]) {
    assert_eq!(a_rm.len(), m * k, "A buffer mismatch");
    assert_eq!(b_cm.len(), k * n, "B buffer mismatch");
    assert_eq!(c_cm.len(), m * n, "C buffer mismatch");
    INT8_STATS.record_gemm(m, n, k);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c_cm.fill(0);
        return;
    }
    c_cm.par_chunks_mut(m * COL_CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, c_chunk)| {
            let j0 = chunk_idx * COL_CHUNK;
            for (dj, c_col) in c_chunk.chunks_exact_mut(m).enumerate() {
                let j = j0 + dj;
                let b_col = &b_cm[j * k..(j + 1) * k];
                for (i, ci) in c_col.iter_mut().enumerate() {
                    let a_row = &a_rm[i * k..(i + 1) * k];
                    *ci = dot_i8(a_row, b_col);
                }
            }
        });
}

/// Convenience GEMM over [`Matrix`] operands (packs `A` internally).
pub fn int8_gemm(a: &MatI8, b: &MatI8) -> MatI32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    let a_rm = a.to_row_major();
    let mut c = Matrix::<i32>::zeros(m, n);
    int8_gemm_rm_cm(m, n, k, &a_rm, b.as_slice(), c.as_mut_slice());
    c
}

/// Naive oracle with the same wrapping semantics (tests only).
pub fn int8_gemm_naive(a: &MatI8, b: &MatI8) -> MatI32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0i32;
        for h in 0..k {
            acc = acc.wrapping_add(a[(i, h)] as i32 * b[(h, j)] as i32);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_mat(rows: usize, cols: usize, salt: i32) -> MatI8 {
        Matrix::from_fn(rows, cols, |i, j| {
            (((i as i32 * 31 + j as i32 * 17 + salt) % 255) - 127) as i8
        })
    }

    #[test]
    fn matches_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 4, 5), (17, 33, 9), (32, 64, 48)] {
            let a = pattern_mat(m, k, 1);
            let b = pattern_mat(k, n, 2);
            assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn full_range_values() {
        // Include the extreme values -128 and 127.
        let a = Matrix::from_fn(2, 3, |i, j| if (i + j) % 2 == 0 { -128 } else { 127 });
        let b = Matrix::from_fn(3, 2, |i, j| if (i * j) % 2 == 0 { 127 } else { -128 });
        let c = int8_gemm(&a, &b);
        assert_eq!(c, int8_gemm_naive(&a, &b));
    }

    #[test]
    fn accumulator_wraps_at_2_pow_31() {
        // k = 2^17 products of (-128)*(-128) = 2^14 each: sum = 2^31,
        // which wraps to i32::MIN — the exact behaviour §4.3 relies on.
        let k = 1 << 17;
        let a = Matrix::from_fn(1, k, |_, _| -128i8);
        let b = Matrix::from_fn(k, 1, |_, _| -128i8);
        let c = int8_gemm(&a, &b);
        assert_eq!(c[(0, 0)], i32::MIN);
        // And the mod-256 residue is unharmed: -2^31 ≡ 0 ≡ 2^31 (mod 256).
        assert_eq!((c[(0, 0)] as i64).rem_euclid(256), 0);
    }

    #[test]
    fn zero_k_gives_zero_matrix() {
        let a = Matrix::<i8>::zeros(3, 0);
        let b = Matrix::<i8>::zeros(0, 2);
        let c = int8_gemm(&a, &b);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn records_stats() {
        INT8_STATS.reset();
        let a = pattern_mat(4, 8, 3);
        let b = pattern_mat(8, 2, 4);
        let _ = int8_gemm(&a, &b);
        assert_eq!(INT8_STATS.calls(), 1);
        assert_eq!(INT8_STATS.macs(), 4 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "A buffer mismatch")]
    fn buffer_length_checked() {
        let mut c = vec![0i32; 4];
        int8_gemm_rm_cm(2, 2, 2, &[0i8; 3], &[0i8; 4], &mut c);
    }
}
