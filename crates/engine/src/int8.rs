//! The simulated INT8 matrix engine: a blocked, register-tiled GEMM.
//!
//! Semantics mirror the GPU unit the paper targets (`mma.s8.s32` /
//! cublasGemmEx with `CUDA_R_8I` inputs and `CUDA_R_32I` accumulation):
//!
//! * inputs are signed 8-bit integers;
//! * every product enters a 32-bit accumulator;
//! * accumulation **wraps** on overflow (two's complement) — the paper
//!   exploits exactly this at `k = 2^17`, where `(A'_1 B'_1)_ij` may reach
//!   `2^31` and wraps to `-2^31` without harming the mod-256 residue.
//!
//! Because wrapping 32-bit addition is associative and commutative, *any*
//! summation order yields the bit-identical result — which is what lets the
//! blocked kernel below reorder the reduction freely while remaining an
//! exact drop-in for [`int8_gemm_naive`].
//!
//! # Kernel structure
//!
//! 1. **Packing.** `A` (row-major, row stride `lda`) and `B` (column-major,
//!    column stride `ldb`) are packed into `i16`-widened panels: row `i` of
//!    the A-pack is the `i`-th row of `A` sign-extended to i16, depth padded
//!    with zeros to a multiple of [`PK`], rows padded to a multiple of
//!    [`MR`]; the B-pack holds columns the same way ([`NR`] / `PK`). The
//!    widening moves the `i8 -> i16` conversion out of the inner loop so the
//!    microkernel runs on `vpmaddwd`-ready data. Producers that can emit
//!    this layout themselves (the `ozaki2` fused convert phase writes its
//!    residues straight into panels) skip packing entirely via
//!    [`int8_gemm_prepacked_fused`], which multiplies a [`PK`]-aligned depth
//!    window of caller-built panels — that window is how the `k`-blocked
//!    pipeline path reuses one panel set across blocks.
//! 2. **Register-tiled microkernel.** An [`MR`]`x`[`NR`] tile of `C` is
//!    computed as `MR * NR` SIMD dot products sharing operand loads, with
//!    one vector accumulator per `C` element (16 independent chains — enough
//!    to hide the multiply-add latency that limits a single autovectorized
//!    dot product). Products of i8 values fit in 15 bits, so the pairwise
//!    i16 multiply-add (`vpmaddwd` / `vpdpwssd`) is exact, and all i32
//!    accumulation wraps. The kernel is selected once per process by
//!    runtime feature detection: AVX-512 VNNI, AVX-512 BW, AVX2, or a
//!    portable scalar fallback (also the reference for parity tests).
//! 3. **Cache blocking.** Per stripe the tile sweep runs `ic` ([`MC`] rows,
//!    keeps the active A block L2-resident) over `pc` ([`KC`] depth, keeps
//!    one A-panel + one B-panel L1-resident) over the `jt`/`it` tile grid,
//!    accumulating partial tiles into `C` (wrapping adds commute, so the
//!    split over `pc` is exact).
//! 4. **Column stripes.** The `N` dimension is split into per-worker
//!    stripes of whole B-panels; rayon runs one task per stripe. Each
//!    stripe packs its own B columns into a workspace buffer; the A pack is
//!    shared read-only by every stripe.
//!
//! # Fused epilogue
//!
//! Ozaki Scheme II immediately reduces every INT32 product plane mod a
//! small prime (Algorithm 1 line 7). Doing that as a second pass over a
//! plane that has left the cache re-streams it from DRAM, so the engine
//! accepts an [`Epilogue`] applied to each completed `C` stripe while it is
//! still cache-resident: [`ReduceEpilogue`] writes `u8` residues,
//! [`AccumulateEpilogue`] adds residues into an i32 accumulator plane (the
//! `k`-blocked path). [`NoEpilogue`] compiles the hook away.
//!
//! # Workspace
//!
//! All packing buffers live in an [`Int8Workspace`], which grows on first
//! use and is reused across calls — repeated GEMMs of one shape (the `N`
//! residue planes of a single emulated product, LU panel updates, …)
//! allocate nothing in steady state.

use crate::stats::INT8_STATS;
use gemm_dense::{MatI32, MatI8, Matrix};
use rayon::prelude::*;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Microkernel tile rows (independent accumulator chains per column).
pub const MR: usize = 4;
/// Microkernel tile columns.
pub const NR: usize = 4;
/// Depth padding granularity: i16 lanes of one 512-bit vector.
pub const PK: usize = 32;
/// Depth (`k`) blocking: one `MR x KC` A-panel plus one `NR x KC` B-panel
/// in i16 is 16 KiB, comfortably L1-resident.
pub const KC: usize = 1024;
/// Row blocking: the active `MC x KC` A block (256 KiB as i16) stays
/// L2-resident while the stripe's B-panels stream past it.
pub const MC: usize = 128;

// ---------------------------------------------------------------------------
// Barrett reduction primitive (shared with the modular-reduction epilogues)
// ---------------------------------------------------------------------------

/// `x mod p ∈ [0, p)` for any i32 `x`, via a `__mulhi`-style Barrett
/// estimate with the precomputed reciprocal `pinv = ⌊2^32 / p⌋ - 1`,
/// followed by two conditional fix-ups (`q` is off by at most one in each
/// direction across the full i32 range).
#[inline]
pub fn barrett_mod_u8(x: i32, p: i32, pinv: u32) -> u8 {
    let q = ((x as i64 * pinv as i64) >> 32) as i32;
    let mut y = x.wrapping_sub(q.wrapping_mul(p));
    if y >= p {
        y -= p;
    }
    if y < 0 {
        y += p;
    }
    debug_assert!((0..p).contains(&y), "x={x} p={p} y={y}");
    y as u8
}

/// Scalar `mod p` row reduction into u8 residues — the lane-exact oracle
/// the SIMD paths of [`barrett_mod_row_u8`] are tested against.
pub fn barrett_mod_row_u8_scalar(c: &[i32], out: &mut [u8], p: i32, pinv: u32) {
    for (d, &x) in out.iter_mut().zip(c) {
        *d = barrett_mod_u8(x, p, pinv);
    }
}

/// Scalar `acc += mod p` row reduction — the oracle for
/// [`barrett_mod_row_acc`].
pub fn barrett_mod_row_acc_scalar(c: &[i32], out: &mut [i32], p: i32, pinv: u32) {
    for (d, &x) in out.iter_mut().zip(c) {
        *d += barrett_mod_u8(x, p, pinv) as i32;
    }
}

/// Which mod-reduce row kernel the running CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ModKernel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

fn detect_mod_kernel() -> ModKernel {
    if force_scalar() {
        return ModKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            return ModKernel::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return ModKernel::Avx2;
        }
    }
    ModKernel::Scalar
}

fn mod_kernel() -> ModKernel {
    static KERNEL: std::sync::OnceLock<ModKernel> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(detect_mod_kernel)
}

/// Human-readable name of the mod-reduce row kernel the running CPU
/// dispatches to.
pub fn mod_kernel_name() -> &'static str {
    match mod_kernel() {
        #[cfg(target_arch = "x86_64")]
        ModKernel::Avx512 => "avx512",
        #[cfg(target_arch = "x86_64")]
        ModKernel::Avx2 => "avx2",
        ModKernel::Scalar => "scalar",
    }
}

#[cfg(target_arch = "x86_64")]
mod modx86 {
    //! Vectorized Barrett `mod p` row kernels. The quotient estimate is
    //! the **high dword** of the signed 64-bit product `x · pinv` — every
    //! reciprocal `⌊2^32/p⌋ - 1` for `p ≥ 2` fits in a non-negative i32,
    //! so the widening signed multiply reproduces the scalar
    //! `(x as i64 * pinv as i64) >> 32` exactly, and the two conditional
    //! fix-ups become masked adds/subs. Bit-identical to
    //! [`super::barrett_mod_u8`] for every i32 input.

    use std::arch::x86_64::*;

    /// Dword shuffle pattern `[1, 1, 3, 3]` (per 128-bit lane): moves the
    /// odd dwords (or the high dwords of 64-bit products) into the even
    /// slots.
    const ODD_TO_EVEN: i32 = 0b11_11_01_01;

    /// 16-lane Barrett quotient-and-residue: returns `mod(x, p)` in each
    /// i32 lane, in `[0, p)`.
    ///
    /// # Safety
    /// AVX-512F required.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn residue16(x: __m512i, pv: __m512i, pinv64: __m512i) -> __m512i {
        // Signed widening products of the even / odd dword lanes; the
        // quotient of each lane is the high dword of its product.
        let pe = _mm512_mul_epi32(x, pinv64);
        let po = _mm512_mul_epi32(_mm512_shuffle_epi32::<{ ODD_TO_EVEN as _ }>(x), pinv64);
        let qe = _mm512_shuffle_epi32::<{ ODD_TO_EVEN as _ }>(pe);
        // Even lanes: high dwords of pe (moved into place); odd lanes:
        // the products of the odd inputs already hold their high dwords
        // at the odd positions.
        let q = _mm512_mask_blend_epi32(0xAAAA, qe, po);
        let y0 = _mm512_sub_epi32(x, _mm512_mullo_epi32(q, pv));
        let ge = _mm512_cmpge_epi32_mask(y0, pv);
        let y1 = _mm512_mask_sub_epi32(y0, ge, y0, pv);
        let lt = _mm512_cmplt_epi32_mask(y1, _mm512_setzero_si512());
        _mm512_mask_add_epi32(y1, lt, y1, pv)
    }

    /// # Safety
    /// AVX-512F + AVX-512BW required; `out.len() >= c.len()`.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn mod_row_u8_avx512(c: &[i32], out: &mut [u8], p: i32, pinv: u32) {
        debug_assert!(out.len() >= c.len());
        let pv = _mm512_set1_epi32(p);
        let pinv64 = _mm512_set1_epi64(pinv as i64);
        let n16 = c.len() / 16 * 16;
        let mut i = 0;
        while i < n16 {
            let x = _mm512_loadu_si512(c.as_ptr().add(i).cast());
            let y = residue16(x, pv, pinv64);
            // Residues are in [0, p) ⊆ [0, 255]: truncating narrow.
            _mm_storeu_si128(out.as_mut_ptr().add(i).cast(), _mm512_cvtepi32_epi8(y));
            i += 16;
        }
        super::barrett_mod_row_u8_scalar(&c[n16..], &mut out[n16..], p, pinv);
    }

    /// # Safety
    /// AVX-512F required; `out.len() >= c.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn mod_row_acc_avx512(c: &[i32], out: &mut [i32], p: i32, pinv: u32) {
        debug_assert!(out.len() >= c.len());
        let pv = _mm512_set1_epi32(p);
        let pinv64 = _mm512_set1_epi64(pinv as i64);
        let n16 = c.len() / 16 * 16;
        let mut i = 0;
        while i < n16 {
            let x = _mm512_loadu_si512(c.as_ptr().add(i).cast());
            let y = residue16(x, pv, pinv64);
            let acc = _mm512_loadu_si512(out.as_ptr().add(i).cast());
            _mm512_storeu_si512(out.as_mut_ptr().add(i).cast(), _mm512_add_epi32(acc, y));
            i += 16;
        }
        super::barrett_mod_row_acc_scalar(&c[n16..], &mut out[n16..], p, pinv);
    }

    /// 8-lane Barrett residue (see [`residue16`]).
    ///
    /// # Safety
    /// AVX2 required.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn residue8(x: __m256i, pv: __m256i, pinv64: __m256i) -> __m256i {
        let pe = _mm256_mul_epi32(x, pinv64);
        let po = _mm256_mul_epi32(_mm256_shuffle_epi32::<ODD_TO_EVEN>(x), pinv64);
        let qe = _mm256_shuffle_epi32::<ODD_TO_EVEN>(pe);
        let q = _mm256_blend_epi32::<0b10101010>(qe, po);
        let y0 = _mm256_sub_epi32(x, _mm256_mullo_epi32(q, pv));
        // y0 >= p  <=>  y0 > p - 1 (signed).
        let pm1 = _mm256_sub_epi32(pv, _mm256_set1_epi32(1));
        let ge = _mm256_cmpgt_epi32(y0, pm1);
        let y1 = _mm256_sub_epi32(y0, _mm256_and_si256(ge, pv));
        let lt = _mm256_cmpgt_epi32(_mm256_setzero_si256(), y1);
        _mm256_add_epi32(y1, _mm256_and_si256(lt, pv))
    }

    /// # Safety
    /// AVX2 required; `out.len() >= c.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mod_row_u8_avx2(c: &[i32], out: &mut [u8], p: i32, pinv: u32) {
        debug_assert!(out.len() >= c.len());
        let pv = _mm256_set1_epi32(p);
        let pinv64 = _mm256_set1_epi64x(pinv as i64);
        // Byte 0 of every dword, gathered into the low 4 bytes of each
        // 128-bit lane (residues are < 256, the other bytes are zero).
        let gather = _mm256_set_epi8(
            -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 12, 8, 4, 0, //
            -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, 12, 8, 4, 0,
        );
        let n8 = c.len() / 8 * 8;
        let mut i = 0;
        while i < n8 {
            let x = _mm256_loadu_si256(c.as_ptr().add(i).cast());
            let y = residue8(x, pv, pinv64);
            let packed = _mm256_shuffle_epi8(y, gather);
            let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(packed));
            let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256::<1>(packed));
            (out.as_mut_ptr().add(i) as *mut i32).write_unaligned(lo);
            (out.as_mut_ptr().add(i + 4) as *mut i32).write_unaligned(hi);
            i += 8;
        }
        super::barrett_mod_row_u8_scalar(&c[n8..], &mut out[n8..], p, pinv);
    }

    /// # Safety
    /// AVX2 required; `out.len() >= c.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mod_row_acc_avx2(c: &[i32], out: &mut [i32], p: i32, pinv: u32) {
        debug_assert!(out.len() >= c.len());
        let pv = _mm256_set1_epi32(p);
        let pinv64 = _mm256_set1_epi64x(pinv as i64);
        let n8 = c.len() / 8 * 8;
        let mut i = 0;
        while i < n8 {
            let x = _mm256_loadu_si256(c.as_ptr().add(i).cast());
            let y = residue8(x, pv, pinv64);
            let acc = _mm256_loadu_si256(out.as_ptr().add(i).cast());
            _mm256_storeu_si256(out.as_mut_ptr().add(i).cast(), _mm256_add_epi32(acc, y));
            i += 8;
        }
        super::barrett_mod_row_acc_scalar(&c[n8..], &mut out[n8..], p, pinv);
    }
}

/// Vectorized `out[i] = mod(c[i], p)` as u8 residues — the row kernel
/// behind [`ReduceEpilogue`] (Algorithm 1 line 7). Runtime-dispatched
/// (AVX-512 → AVX2 → scalar, forced scalar by `OZAKI_FORCE_SCALAR=1`);
/// bit-identical to [`barrett_mod_row_u8_scalar`] on every path.
pub fn barrett_mod_row_u8(c: &[i32], out: &mut [u8], p: i32, pinv: u32) {
    assert!(out.len() >= c.len(), "output row too short");
    if crate::faultinject::in_scalar_scope() {
        return barrett_mod_row_u8_scalar(c, out, p, pinv);
    }
    match mod_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: variant selected by runtime feature detection; length
        // contract asserted above.
        ModKernel::Avx512 => unsafe { modx86::mod_row_u8_avx512(c, out, p, pinv) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        ModKernel::Avx2 => unsafe { modx86::mod_row_u8_avx2(c, out, p, pinv) },
        ModKernel::Scalar => barrett_mod_row_u8_scalar(c, out, p, pinv),
    }
}

/// Vectorized `out[i] += mod(c[i], p)` residue accumulation — the row
/// kernel behind [`AccumulateEpilogue`] (the `k > 2^17` block path).
/// Bit-identical to [`barrett_mod_row_acc_scalar`] on every path.
pub fn barrett_mod_row_acc(c: &[i32], out: &mut [i32], p: i32, pinv: u32) {
    assert!(out.len() >= c.len(), "output row too short");
    if crate::faultinject::in_scalar_scope() {
        return barrett_mod_row_acc_scalar(c, out, p, pinv);
    }
    match mod_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: variant selected by runtime feature detection; length
        // contract asserted above.
        ModKernel::Avx512 => unsafe { modx86::mod_row_acc_avx512(c, out, p, pinv) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        ModKernel::Avx2 => unsafe { modx86::mod_row_acc_avx2(c, out, p, pinv) },
        ModKernel::Scalar => barrett_mod_row_acc_scalar(c, out, p, pinv),
    }
}

// ---------------------------------------------------------------------------
// Epilogues
// ---------------------------------------------------------------------------

/// A transformation fused into the GEMM call and applied to each completed
/// `C` stripe while it is still cache-resident, folding Algorithm 1 line 7
/// into line 6.
pub trait Epilogue: Sync {
    /// Element type of the epilogue's output plane.
    type Out: Send;
    /// Whether the epilogue does anything (lets [`NoEpilogue`] skip the
    /// output-plane plumbing entirely at compile time).
    const ACTIVE: bool;
    /// Transform the finished stripe `c` into `out` (same geometry:
    /// contiguous column-major columns of the same `m x n` plane).
    fn apply(&self, c: &[i32], out: &mut [Self::Out]);
}

/// No fused epilogue: the GEMM just writes `C`.
pub struct NoEpilogue;

impl Epilogue for NoEpilogue {
    type Out = u8;
    const ACTIVE: bool = false;
    #[inline]
    fn apply(&self, _c: &[i32], _out: &mut [u8]) {}
}

/// Run `f`, recording its elapsed nanoseconds into `nanos` (max across
/// callers: stripe epilogues run concurrently, so the wall-clock cost of
/// the fused reduction is the slowest worker's, not the sum).
#[inline]
fn timed_epilogue<F: FnOnce()>(nanos: Option<&AtomicU64>, f: F) {
    match nanos {
        Some(acc) => {
            let t0 = Instant::now();
            f();
            acc.fetch_max(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        None => f(),
    }
}

/// Fused `U = mod(C, p)` reduction into a `u8` residue plane
/// (the single-`k`-block pipeline path).
pub struct ReduceEpilogue<'t> {
    p: i32,
    pinv: u32,
    nanos: Option<&'t AtomicU64>,
}

impl<'t> ReduceEpilogue<'t> {
    /// Reduce mod `p` with reciprocal `pinv`; if `nanos` is given, the
    /// maximum per-stripe epilogue time is recorded there (nanoseconds) —
    /// stripes run concurrently, so that is the wall-clock contribution.
    pub fn new(p: u64, pinv: u32, nanos: Option<&'t AtomicU64>) -> Self {
        Self {
            p: p as i32,
            pinv,
            nanos,
        }
    }
}

impl Epilogue for ReduceEpilogue<'_> {
    type Out = u8;
    const ACTIVE: bool = true;
    #[inline]
    fn apply(&self, c: &[i32], out: &mut [u8]) {
        timed_epilogue(self.nanos, || {
            barrett_mod_row_u8(c, out, self.p, self.pinv);
        });
    }
}

/// Fused `acc += mod(C_blk, p)` residue accumulation into an i32 plane
/// (the `k > K_BLOCK_MAX` pipeline path; the caller reduces `acc` once at
/// the end).
pub struct AccumulateEpilogue<'t> {
    p: i32,
    pinv: u32,
    nanos: Option<&'t AtomicU64>,
}

impl<'t> AccumulateEpilogue<'t> {
    /// Accumulate residues mod `p` with reciprocal `pinv`; see
    /// [`ReduceEpilogue::new`] for `nanos`.
    pub fn new(p: u64, pinv: u32, nanos: Option<&'t AtomicU64>) -> Self {
        Self {
            p: p as i32,
            pinv,
            nanos,
        }
    }
}

impl Epilogue for AccumulateEpilogue<'_> {
    type Out = i32;
    const ACTIVE: bool = true;
    #[inline]
    fn apply(&self, c: &[i32], out: &mut [i32]) {
        timed_epilogue(self.nanos, || {
            barrett_mod_row_acc(c, out, self.p, self.pinv);
        });
    }
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

/// Reusable packing buffers for the blocked kernel. Grows on demand, never
/// shrinks; repeated calls with one shape allocate nothing.
#[derive(Default)]
pub struct Int8Workspace {
    apack: Vec<i16>,
    bpacks: Vec<Vec<i16>>,
}

impl Int8Workspace {
    /// Fresh, empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current footprint in bytes.
    pub fn bytes(&self) -> usize {
        2 * (self.apack.capacity() + self.bpacks.iter().map(|b| b.capacity()).sum::<usize>())
    }
}

thread_local! {
    /// Workspace backing the allocation-free-after-warmup compatibility
    /// entry points ([`int8_gemm_rm_cm`], [`int8_gemm`]).
    static TLS_WS: RefCell<Int8Workspace> = RefCell::new(Int8Workspace::new());
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Depth (`k`) of a packed panel, padded to a multiple of [`PK`].
pub const fn padded_depth(k: usize) -> usize {
    k.div_ceil(PK) * PK
}

/// Row count of a packed A-panel set, padded to a multiple of [`MR`].
pub const fn padded_a_rows(m: usize) -> usize {
    m.div_ceil(MR) * MR
}

/// Column count of a packed B-panel set, padded to a multiple of [`NR`].
pub const fn padded_b_cols(n: usize) -> usize {
    n.div_ceil(NR) * NR
}

/// Pack `vecs` i8 k-vectors (rows of `A` / columns of `B`, vector `v`
/// starting at `v * ld`) into the engine's `i16`-widened panel layout:
/// vector `v` occupies `pack[v * kp..(v + 1) * kp]`, sign-extended to i16,
/// depth zero-padded from `k` to `kp` (= [`padded_depth`]`(k)`), vector
/// count zero-padded to `vecs_pad` (= [`padded_a_rows`] / [`padded_b_cols`]).
///
/// This is the exact layout [`int8_gemm_prepacked_fused`] consumes, and the
/// layout the fused convert phase of the `ozaki2` pipeline emits directly
/// from f64 data — exposed so producers and tests can build panels without
/// going through an intermediate i8 plane.
pub fn pack_panels_i16(
    pack: &mut Vec<i16>,
    src: &[i8],
    ld: usize,
    vecs: usize,
    vecs_pad: usize,
    k: usize,
    kp: usize,
) {
    let needed = vecs_pad * kp;
    if pack.len() < needed {
        pack.resize(needed, 0);
    }
    for v in 0..vecs_pad {
        let dst = &mut pack[v * kp..(v + 1) * kp];
        if v < vecs {
            let row = &src[v * ld..v * ld + k];
            for (d, &x) in dst[..k].iter_mut().zip(row) {
                *d = x as i16;
            }
            dst[k..].fill(0);
        } else {
            dst.fill(0);
        }
    }
}

// ---------------------------------------------------------------------------
// Microkernel (runtime-dispatched)
// ---------------------------------------------------------------------------

/// Which tile kernel the running CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TileKernel {
    #[cfg(target_arch = "x86_64")]
    Avx512Vnni,
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    Scalar,
}

/// Whether SIMD dispatch is globally forced to the scalar kernels, via
/// either `OZAKI_FORCE_SCALAR` (any non-empty value other than `0` — the
/// legacy alias) or `OZAKI_FORCE_BACKEND=scalar`. Read once and cached;
/// the CI forced-backend matrix uses it to exercise every scalar oracle
/// kernel on AVX-capable runners. Applies to *every* engine's dispatch
/// (INT8 tile/mod kernels, the FMA dot kernel, trunc/convert/fold sweeps),
/// not just this module's.
pub fn force_scalar() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        let legacy = std::env::var("OZAKI_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let via_backend = std::env::var("OZAKI_FORCE_BACKEND")
            .map(|v| v.trim().eq_ignore_ascii_case("scalar"))
            .unwrap_or(false);
        legacy || via_backend
    })
}

fn detect_tile_kernel() -> TileKernel {
    if force_scalar() {
        return TileKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512bw") && is_x86_feature_detected!("avx512vnni") {
            return TileKernel::Avx512Vnni;
        }
        if is_x86_feature_detected!("avx512bw") {
            return TileKernel::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return TileKernel::Avx2;
        }
    }
    TileKernel::Scalar
}

fn tile_kernel() -> TileKernel {
    static KERNEL: std::sync::OnceLock<TileKernel> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(detect_tile_kernel)
}

/// Human-readable name of the microkernel the running CPU dispatches to.
pub fn microkernel_name() -> &'static str {
    match tile_kernel() {
        #[cfg(target_arch = "x86_64")]
        TileKernel::Avx512Vnni => "avx512-vnni",
        #[cfg(target_arch = "x86_64")]
        TileKernel::Avx512 => "avx512-bw",
        #[cfg(target_arch = "x86_64")]
        TileKernel::Avx2 => "avx2",
        TileKernel::Scalar => "scalar",
    }
}

/// Portable tile kernel: `out[c][r] = sum_p a[r*lda + p] * b[c*ldb + p]`
/// over `kc` (wrapping) — the tile is **column-major** so the driver can
/// copy whole columns into `C` contiguously. Also the reference
/// implementation the SIMD paths are tested against.
fn tile_scalar(kc: usize, lda: usize, ldb: usize, a: &[i16], b: &[i16], out: &mut [[i32; MR]; NR]) {
    for (c, ocol) in out.iter_mut().enumerate() {
        let bcol = &b[c * ldb..c * ldb + kc];
        for (r, o) in ocol.iter_mut().enumerate() {
            let arow = &a[r * lda..r * lda + kc];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(bcol) {
                acc = acc.wrapping_add(x as i32 * y as i32);
            }
            *o = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2 / AVX-512 tile kernels. All rely on `vpmaddwd`-family ops:
    //! each i32 lane receives `a[2l]*b[2l] + a[2l+1]*b[2l+1]`, exact for
    //! operands that came from i8 (|product sum| <= 2^15), with wrapping
    //! i32 lane accumulation — bit-compatible with the scalar kernel.

    use super::{MR, NR, PK};
    use std::arch::x86_64::*;

    /// Reduce four 16-lane accumulators to their four dot products in
    /// one xmm: halve each zmm, then a 3-`hadd` network. The same
    /// wrapping-i32 adds as four `reduce_add` calls, in a different
    /// (immaterial — wrapping addition commutes) order, at a fraction of
    /// the instruction count; grouped per output *column*, the xmm is a
    /// ready-to-store column segment of `C`. This is what keeps short-`k`
    /// microtiles — the batched small-GEMM regime — from being dominated
    /// by horizontal-reduction overhead.
    ///
    /// # Safety
    /// AVX-512F required (implies the AVX2 `hadd` used here).
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn reduce_quad(accs: &[__m512i; MR]) -> __m128i {
        let halve = |v: __m512i| -> __m256i {
            _mm256_add_epi32(_mm512_castsi512_si256(v), _mm512_extracti64x4_epi64::<1>(v))
        };
        let h01 = _mm256_hadd_epi32(halve(accs[0]), halve(accs[1]));
        let h23 = _mm256_hadd_epi32(halve(accs[2]), halve(accs[3]));
        let q = _mm256_hadd_epi32(h01, h23);
        // q lanes: [s0,s1,s2,s3] of the low halves | high halves.
        _mm_add_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256::<1>(q))
    }

    /// # Safety
    /// Caller must ensure AVX-512BW + AVX-512VNNI are available, `kc` is a
    /// multiple of [`PK`], and `a`/`b` cover `(MR-1)*lda + kc` /
    /// `(NR-1)*ldb + kc` elements.
    #[target_feature(enable = "avx512bw,avx512vnni")]
    #[allow(clippy::needless_range_loop)]
    pub unsafe fn tile_vnni(
        kc: usize,
        lda: usize,
        ldb: usize,
        a: &[i16],
        b: &[i16],
        out: &mut [[i32; MR]; NR],
    ) {
        debug_assert!(kc.is_multiple_of(PK));
        debug_assert!(a.len() >= (MR - 1) * lda + kc && b.len() >= (NR - 1) * ldb + kc);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = [[_mm512_setzero_si512(); NR]; MR];
        for s in 0..kc / PK {
            let off = s * PK;
            let mut av = [_mm512_setzero_si512(); MR];
            for (r, v) in av.iter_mut().enumerate() {
                *v = _mm512_loadu_si512(ap.add(r * lda + off) as *const _);
            }
            for c in 0..NR {
                let bv = _mm512_loadu_si512(bp.add(c * ldb + off) as *const _);
                for r in 0..MR {
                    acc[r][c] = _mm512_dpwssd_epi32(acc[r][c], av[r], bv);
                }
            }
        }
        for (c, ocol) in out.iter_mut().enumerate() {
            let col = [acc[0][c], acc[1][c], acc[2][c], acc[3][c]];
            _mm_storeu_si128(ocol.as_mut_ptr() as *mut __m128i, reduce_quad(&col));
        }
    }

    /// # Safety
    /// As [`tile_vnni`], but only AVX-512BW is required.
    #[target_feature(enable = "avx512bw")]
    #[allow(clippy::needless_range_loop)]
    pub unsafe fn tile_avx512(
        kc: usize,
        lda: usize,
        ldb: usize,
        a: &[i16],
        b: &[i16],
        out: &mut [[i32; MR]; NR],
    ) {
        debug_assert!(kc.is_multiple_of(PK));
        debug_assert!(a.len() >= (MR - 1) * lda + kc && b.len() >= (NR - 1) * ldb + kc);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = [[_mm512_setzero_si512(); NR]; MR];
        for s in 0..kc / PK {
            let off = s * PK;
            let mut av = [_mm512_setzero_si512(); MR];
            for (r, v) in av.iter_mut().enumerate() {
                *v = _mm512_loadu_si512(ap.add(r * lda + off) as *const _);
            }
            for c in 0..NR {
                let bv = _mm512_loadu_si512(bp.add(c * ldb + off) as *const _);
                for r in 0..MR {
                    acc[r][c] = _mm512_add_epi32(acc[r][c], _mm512_madd_epi16(av[r], bv));
                }
            }
        }
        for (c, ocol) in out.iter_mut().enumerate() {
            let col = [acc[0][c], acc[1][c], acc[2][c], acc[3][c]];
            _mm_storeu_si128(ocol.as_mut_ptr() as *mut __m128i, reduce_quad(&col));
        }
    }

    /// # Safety
    /// As [`tile_vnni`], but only AVX2 is required.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::needless_range_loop)]
    pub unsafe fn tile_avx2(
        kc: usize,
        lda: usize,
        ldb: usize,
        a: &[i16],
        b: &[i16],
        out: &mut [[i32; MR]; NR],
    ) {
        const L: usize = 16; // i16 lanes per 256-bit vector
        debug_assert!(kc.is_multiple_of(L));
        debug_assert!(a.len() >= (MR - 1) * lda + kc && b.len() >= (NR - 1) * ldb + kc);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = [[_mm256_setzero_si256(); NR]; MR];
        for s in 0..kc / L {
            let off = s * L;
            let mut av = [_mm256_setzero_si256(); MR];
            for (r, v) in av.iter_mut().enumerate() {
                *v = _mm256_loadu_si256(ap.add(r * lda + off) as *const _);
            }
            for c in 0..NR {
                let bv = _mm256_loadu_si256(bp.add(c * ldb + off) as *const _);
                for r in 0..MR {
                    acc[r][c] = _mm256_add_epi32(acc[r][c], _mm256_madd_epi16(av[r], bv));
                }
            }
        }
        for (c, ocol) in out.iter_mut().enumerate() {
            for (r, o) in ocol.iter_mut().enumerate() {
                let v = acc[r][c];
                let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
                let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
                let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
                *o = _mm_cvtsi128_si32(s);
            }
        }
    }
}

/// Run the selected tile kernel on `kc` depth (multiple of [`PK`] for the
/// SIMD paths; packing guarantees this).
#[inline]
fn run_tile(
    kernel: TileKernel,
    kc: usize,
    lda: usize,
    ldb: usize,
    a: &[i16],
    b: &[i16],
    out: &mut [[i32; MR]; NR],
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: variant selected only after runtime feature detection;
        // slice lengths are established by the packed-panel layout.
        TileKernel::Avx512Vnni => unsafe { x86::tile_vnni(kc, lda, ldb, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        TileKernel::Avx512 => unsafe { x86::tile_avx512(kc, lda, ldb, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        TileKernel::Avx2 => unsafe { x86::tile_avx2(kc, lda, ldb, a, b, out) },
        TileKernel::Scalar => tile_scalar(kc, lda, ldb, a, b, out),
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct StripeJob<'a, E: Epilogue> {
    /// First column of the stripe.
    j0: usize,
    /// Columns in the stripe.
    nc: usize,
    /// This stripe's columns of `C` (`m * nc`, column-major).
    c: &'a mut [i32],
    /// This stripe's columns of the epilogue output (empty when inactive).
    out: &'a mut [E::Out],
    /// This stripe's private B packing buffer.
    bpack: &'a mut Vec<i16>,
}

/// The cache-blocked tile sweep over one column stripe of already-packed
/// panels, followed by the fused epilogue on the still-resident stripe.
///
/// `apack` and `bpack` are panel bases already offset to the depth window:
/// row `i` of A at `i * lda`, stripe-local column `j` of B at `j * ldb`,
/// with `kp_eff` (a multiple of [`PK`]) depth elements to consume.
#[allow(clippy::too_many_arguments)]
fn stripe_compute<E: Epilogue>(
    m: usize,
    kp_eff: usize,
    lda: usize,
    ldb: usize,
    apack: &[i16],
    bpack: &[i16],
    nc: usize,
    c: &mut [i32],
    out: &mut [E::Out],
    epi: &E,
) {
    let kernel = if crate::faultinject::in_scalar_scope() {
        TileKernel::Scalar
    } else {
        tile_kernel()
    };
    if kp_eff == 0 {
        // No depth to consume: the product is all zeros (only reachable
        // through entry points that do not early-out on k == 0).
        c.fill(0);
    }
    let mut tile = [[0i32; MR]; NR];
    for ic in (0..m).step_by(MC) {
        let ilim = (ic + MC).min(m);
        let mut pc = 0;
        while pc < kp_eff {
            let kc = KC.min(kp_eff - pc);
            // The first depth chunk assigns C outright (every element of
            // the stripe belongs to some tile), later chunks accumulate —
            // which saves the separate zero-fill sweep over C.
            let first = pc == 0;
            for jt in (0..nc).step_by(NR) {
                let cols = NR.min(nc - jt);
                for it in (ic..ilim).step_by(MR) {
                    let rows = MR.min(m - it);
                    run_tile(
                        kernel,
                        kc,
                        lda,
                        ldb,
                        &apack[it * lda + pc..],
                        &bpack[jt * ldb + pc..],
                        &mut tile,
                    );
                    for (cc, tcol) in tile.iter().enumerate().take(cols) {
                        let col = &mut c[(jt + cc) * m + it..(jt + cc) * m + it + rows];
                        if first {
                            col.copy_from_slice(&tcol[..rows]);
                        } else {
                            for (dst, &t) in col.iter_mut().zip(tcol) {
                                *dst = dst.wrapping_add(t);
                            }
                        }
                    }
                }
            }
            pc += kc;
        }
    }
    // Fault-injection seam: the completed INT32 stripe, before the fused
    // epilogue consumes it (no-op unless the injector is armed).
    crate::faultinject::corrupt_acc(c);
    if E::ACTIVE {
        epi.apply(c, out);
    }
}

/// One worker of the i8-input path: pack the stripe's B columns, then run
/// the tile sweep.
#[allow(clippy::too_many_arguments)]
fn stripe_worker<E: Epilogue>(
    job: StripeJob<'_, E>,
    m: usize,
    k: usize,
    kp: usize,
    b: &[i8],
    ldb: usize,
    apack: &[i16],
    epi: &E,
) {
    let StripeJob {
        j0,
        nc,
        c,
        out,
        bpack,
    } = job;
    let nc_pad = nc.div_ceil(NR) * NR;
    pack_panels_i16(bpack, &b[j0 * ldb..], ldb, nc, nc_pad, k, kp);
    stripe_compute(m, kp, kp, kp, apack, bpack, nc, c, out, epi);
}

/// Column-stripe count for a parallel sweep over `n_panels` B-panels:
/// two stripes per pool worker (capped at the panel count) so the
/// work-stealing pool has slack to rebalance, one stripe when the pool is
/// a single worker (no parallelism to feed, so no reason to split).
/// Shared with the other residue backends (`crate::backend`) so every
/// engine decomposes a plane identically.
pub(crate) fn stripe_count(n_panels: usize) -> usize {
    let workers = rayon::current_num_threads();
    if workers <= 1 {
        1
    } else {
        (2 * workers).clamp(1, n_panels.max(1))
    }
}

/// The blocked INT8 GEMM with optional fused epilogue and strided inputs.
///
/// `C = A * B` where `A` is row-major `m x k` with row stride `lda >= k`,
/// `B` is column-major `k x n` with column stride `ldb >= k`, and `C` is
/// column-major `m x n`, contiguous, fully overwritten. If `E::ACTIVE`,
/// `out` must be an `m x n` plane (same layout as `C`) and receives `epi`
/// applied to every element; otherwise pass an empty slice.
///
/// Set `parallel = false` to force a single-threaded sweep (microkernel
/// benchmarking, nested-parallel contexts).
///
/// # Panics
/// If any buffer is too short for its shape/stride.
#[allow(clippy::too_many_arguments)]
pub fn int8_gemm_fused<E: Epilogue>(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    lda: usize,
    b: &[i8],
    ldb: usize,
    c: &mut [i32],
    out: &mut [E::Out],
    epi: &E,
    ws: &mut Int8Workspace,
    parallel: bool,
) {
    assert!(lda >= k && ldb >= k, "strides must cover the depth");
    if m > 0 {
        assert!(a.len() >= (m - 1) * lda + k, "A buffer mismatch");
    }
    if n > 0 {
        assert!(b.len() >= (n - 1) * ldb + k, "B buffer mismatch");
    }
    assert_eq!(c.len(), m * n, "C buffer mismatch");
    if E::ACTIVE {
        assert_eq!(out.len(), m * n, "epilogue plane mismatch");
    }
    INT8_STATS.record_gemm(m, n, k);
    gemm_obs::catalog::ENGINE_INT8_CALLS.inc();
    gemm_obs::catalog::ENGINE_INT8_MACS.add((m as u64) * (n as u64) * (k as u64));
    if m == 0 || n == 0 {
        return;
    }

    let kp = padded_depth(k);
    let m_pad = padded_a_rows(m);
    pack_panels_i16(&mut ws.apack, a, lda, m, m_pad, k, kp);
    let apack: &[i16] = &ws.apack;

    // Stripes of whole B-panels, oversubscribed 2x against the worker count
    // so the work-stealing pool can rebalance when stripes finish unevenly
    // (fewer when n is small). Stripe boundaries never change per-element
    // accumulation order, so the stripe count cannot affect results.
    let n_panels = n.div_ceil(NR);
    let stripes = if parallel { stripe_count(n_panels) } else { 1 };
    if ws.bpacks.len() < stripes {
        ws.bpacks.resize_with(stripes, Vec::new);
    }

    let mut jobs: Vec<StripeJob<'_, E>> = Vec::with_capacity(stripes);
    let mut c_rest = c;
    let mut out_rest = out;
    for (s, bpack) in ws.bpacks[..stripes].iter_mut().enumerate() {
        let p0 = s * n_panels / stripes;
        let p1 = (s + 1) * n_panels / stripes;
        let j0 = p0 * NR;
        let nc = n.min(p1 * NR) - j0;
        let (c_stripe, rest) = c_rest.split_at_mut(m * nc);
        c_rest = rest;
        let out_stripe = if E::ACTIVE {
            let (o, rest) = out_rest.split_at_mut(m * nc);
            out_rest = rest;
            o
        } else {
            &mut []
        };
        jobs.push(StripeJob {
            j0,
            nc,
            c: c_stripe,
            out: out_stripe,
            bpack,
        });
    }

    if jobs.len() == 1 {
        stripe_worker(
            jobs.pop().expect("one stripe"),
            m,
            k,
            kp,
            b,
            ldb,
            apack,
            epi,
        );
    } else {
        jobs.into_par_iter()
            .for_each(|job| stripe_worker(job, m, k, kp, b, ldb, apack, epi));
    }
}

/// The blocked INT8 GEMM over **pre-packed i16 panels** — the zero-repack
/// entry the fused convert phase of the `ozaki2` pipeline feeds.
///
/// `apack` holds [`padded_a_rows`]`(m)` row panels and `bpack`
/// [`padded_b_cols`]`(n)` column panels in the [`pack_panels_i16`] layout
/// with full padded depth `kp_stride`; the call multiplies the depth window
/// `[depth_off, depth_off + k)` (so a `k`-blocked caller passes the same
/// panels with advancing `depth_off`). Values must be sign-extended i8
/// (`-128..=127`) for the pairwise i16 multiply-add to stay exact. `C` is
/// column-major `m x n`, contiguous, fully overwritten; `out` is the fused
/// epilogue plane exactly as in [`int8_gemm_fused`].
///
/// The kernel consumes the window rounded up to [`PK`], so the tail
/// `[depth_off + k, depth_off + `[`padded_depth`]`(k))` must read zeros:
/// pass either a `k` that is a multiple of `PK`, or the *final* window of
/// the panels (whose rounded tail is the global zero padding). Block splits
/// at multiples of `PK` — like the pipeline's `2^17` — satisfy this for
/// every window.
///
/// Because no packing happens here, no workspace is needed and the call
/// performs no allocation at all.
///
/// # Panics
/// If `depth_off` is not a multiple of [`PK`], a window over-runs
/// `kp_stride`, or a buffer is too short for its panel geometry.
#[allow(clippy::too_many_arguments)]
pub fn int8_gemm_prepacked_fused<E: Epilogue>(
    m: usize,
    n: usize,
    k: usize,
    apack: &[i16],
    bpack: &[i16],
    kp_stride: usize,
    depth_off: usize,
    c: &mut [i32],
    out: &mut [E::Out],
    epi: &E,
    parallel: bool,
) {
    let kp_eff = padded_depth(k);
    assert!(
        depth_off.is_multiple_of(PK),
        "depth_off must be PK-aligned, got {depth_off}"
    );
    assert!(
        depth_off + kp_eff <= kp_stride,
        "depth window {depth_off}+{kp_eff} over-runs panel depth {kp_stride}"
    );
    assert!(
        apack.len() >= padded_a_rows(m) * kp_stride,
        "A panel buffer mismatch"
    );
    assert!(
        bpack.len() >= padded_b_cols(n) * kp_stride,
        "B panel buffer mismatch"
    );
    assert_eq!(c.len(), m * n, "C buffer mismatch");
    if E::ACTIVE {
        assert_eq!(out.len(), m * n, "epilogue plane mismatch");
    }
    INT8_STATS.record_gemm(m, n, k);
    gemm_obs::catalog::ENGINE_INT8_CALLS.inc();
    gemm_obs::catalog::ENGINE_INT8_MACS.add((m as u64) * (n as u64) * (k as u64));
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0);
        if E::ACTIVE {
            epi.apply(c, out);
        }
        return;
    }
    let a_base = &apack[depth_off..];

    let n_panels = n.div_ceil(NR);
    let stripes = if parallel { stripe_count(n_panels) } else { 1 };

    struct PrepackedJob<'a, E: Epilogue> {
        j0: usize,
        nc: usize,
        c: &'a mut [i32],
        out: &'a mut [E::Out],
    }
    let mut jobs: Vec<PrepackedJob<'_, E>> = Vec::with_capacity(stripes);
    let mut c_rest = c;
    let mut out_rest = out;
    for s in 0..stripes {
        let p0 = s * n_panels / stripes;
        let p1 = (s + 1) * n_panels / stripes;
        let j0 = p0 * NR;
        let nc = n.min(p1 * NR) - j0;
        let (c_stripe, rest) = c_rest.split_at_mut(m * nc);
        c_rest = rest;
        let out_stripe = if E::ACTIVE {
            let (o, rest) = out_rest.split_at_mut(m * nc);
            out_rest = rest;
            o
        } else {
            &mut []
        };
        jobs.push(PrepackedJob {
            j0,
            nc,
            c: c_stripe,
            out: out_stripe,
        });
    }

    let run = |job: PrepackedJob<'_, E>| {
        stripe_compute(
            m,
            kp_eff,
            kp_stride,
            kp_stride,
            a_base,
            &bpack[job.j0 * kp_stride + depth_off..],
            job.nc,
            job.c,
            job.out,
            epi,
        )
    };
    if jobs.len() == 1 {
        run(jobs.pop().expect("one stripe"));
    } else {
        jobs.into_par_iter().for_each(run);
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Blocked GEMM over contiguous packed operands with a caller-owned
/// workspace: `A` row-major `m x k`, `B` column-major `k x n`, `C`
/// column-major `m x n`.
pub fn int8_gemm_blocked(
    m: usize,
    n: usize,
    k: usize,
    a_rm: &[i8],
    b_cm: &[i8],
    c_cm: &mut [i32],
    ws: &mut Int8Workspace,
) {
    assert_eq!(a_rm.len(), m * k, "A buffer mismatch");
    assert_eq!(b_cm.len(), k * n, "B buffer mismatch");
    int8_gemm_fused(
        m,
        n,
        k,
        a_rm,
        k,
        b_cm,
        k,
        c_cm,
        &mut [],
        &NoEpilogue,
        ws,
        true,
    );
}

/// Single-threaded variant of [`int8_gemm_blocked`] (microkernel
/// benchmarking, nested-parallel contexts).
pub fn int8_gemm_blocked_seq(
    m: usize,
    n: usize,
    k: usize,
    a_rm: &[i8],
    b_cm: &[i8],
    c_cm: &mut [i32],
    ws: &mut Int8Workspace,
) {
    assert_eq!(a_rm.len(), m * k, "A buffer mismatch");
    assert_eq!(b_cm.len(), k * n, "B buffer mismatch");
    int8_gemm_fused(
        m,
        n,
        k,
        a_rm,
        k,
        b_cm,
        k,
        c_cm,
        &mut [],
        &NoEpilogue,
        ws,
        false,
    );
}

/// Hot-path GEMM: `C = A * B` with `A` packed row-major (`m x k`),
/// `B` column-major (`k x n`), `C` column-major (`m x n`), all contiguous.
///
/// Compatibility wrapper around [`int8_gemm_blocked`] using a thread-local
/// workspace (allocation-free after warmup). The workspace grows to the
/// high-water mark of the shapes seen on this thread and is retained for
/// the life of the thread (~`2(m + n)k` bytes); for very large one-shot
/// products, prefer [`int8_gemm_blocked`] with an explicit
/// [`Int8Workspace`] you can drop.
///
/// # Panics
/// If any buffer length disagrees with the shape.
pub fn int8_gemm_rm_cm(m: usize, n: usize, k: usize, a_rm: &[i8], b_cm: &[i8], c_cm: &mut [i32]) {
    TLS_WS.with(|ws| int8_gemm_blocked(m, n, k, a_rm, b_cm, c_cm, &mut ws.borrow_mut()));
}

/// Convenience GEMM over [`Matrix`] operands (packs `A` internally).
pub fn int8_gemm(a: &MatI8, b: &MatI8) -> MatI32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    let a_rm = a.to_row_major();
    let mut c = Matrix::<i32>::zeros(m, n);
    int8_gemm_rm_cm(m, n, k, &a_rm, b.as_slice(), c.as_mut_slice());
    c
}

/// The seed scalar kernel: per-element dot products, no tiling, no SIMD
/// dispatch. Kept as the speedup baseline for the `int8_microkernel` bench
/// and as a structurally independent correctness reference.
pub fn int8_gemm_rm_cm_scalar(
    m: usize,
    n: usize,
    k: usize,
    a_rm: &[i8],
    b_cm: &[i8],
    c_cm: &mut [i32],
) {
    assert_eq!(a_rm.len(), m * k, "A buffer mismatch");
    assert_eq!(b_cm.len(), k * n, "B buffer mismatch");
    assert_eq!(c_cm.len(), m * n, "C buffer mismatch");
    for (j, c_col) in c_cm.chunks_exact_mut(m).enumerate() {
        let b_col = &b_cm[j * k..(j + 1) * k];
        for (i, ci) in c_col.iter_mut().enumerate() {
            let a_row = &a_rm[i * k..(i + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in a_row.iter().zip(b_col.iter()) {
                acc = acc.wrapping_add(x as i32 * y as i32);
            }
            *ci = acc;
        }
    }
}

/// Naive oracle with the same wrapping semantics (tests only).
pub fn int8_gemm_naive(a: &MatI8, b: &MatI8) -> MatI32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    Matrix::from_fn(m, n, |i, j| {
        let mut acc = 0i32;
        for h in 0..k {
            acc = acc.wrapping_add(a[(i, h)] as i32 * b[(h, j)] as i32);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_mat(rows: usize, cols: usize, salt: i32) -> MatI8 {
        Matrix::from_fn(rows, cols, |i, j| {
            (((i as i32 * 31 + j as i32 * 17 + salt) % 255) - 127) as i8
        })
    }

    #[test]
    fn matches_naive() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 4, 5),
            (17, 33, 9),
            (32, 64, 48),
            (MR, PK, NR),
            (MR + 1, PK + 1, NR + 1),
            (2 * MR - 1, KC + 7, 3 * NR - 2),
            (MC + 3, 2 * KC + 31, 2 * NR + 1),
        ] {
            let a = pattern_mat(m, k, 1);
            let b = pattern_mat(k, n, 2);
            assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_tile_matches_scalar_tile() {
        // Drive run_tile directly over padded panels for every kernel the
        // host supports.
        let kc = 2 * PK;
        let lda = kc + PK;
        let a16: Vec<i16> = (0..MR * lda)
            .map(|i| ((i * 37 + 5) % 255) as i16 - 127)
            .collect();
        let b16: Vec<i16> = (0..NR * lda)
            .map(|i| ((i * 61 + 9) % 255) as i16 - 127)
            .collect();
        let mut want = [[0i32; NR]; MR];
        tile_scalar(kc, lda, lda, &a16, &b16, &mut want);
        let mut got = [[0i32; NR]; MR];
        run_tile(tile_kernel(), kc, lda, lda, &a16, &b16, &mut got);
        assert_eq!(got, want, "kernel={}", microkernel_name());
    }

    #[test]
    fn blocked_matches_scalar_seed_kernel() {
        let (m, k, n) = (23usize, 301, 19);
        let a = pattern_mat(m, k, 5).to_row_major();
        let b = pattern_mat(k, n, 6);
        let mut c_blocked = vec![0i32; m * n];
        let mut c_scalar = vec![0i32; m * n];
        int8_gemm_rm_cm(m, n, k, &a, b.as_slice(), &mut c_blocked);
        int8_gemm_rm_cm_scalar(m, n, k, &a, b.as_slice(), &mut c_scalar);
        assert_eq!(c_blocked, c_scalar);
    }

    #[test]
    fn strided_operands_match_contiguous() {
        // Sub-GEMM over the middle k-block of a larger plane, packed
        // directly from the strided source (the pipeline's k-blocked path).
        let (m, k_full, n, h0, kb) = (9usize, 64, 7, 13, 29);
        let a = pattern_mat(m, k_full, 3).to_row_major();
        let b = pattern_mat(k_full, n, 4);
        let mut want = vec![0i32; m * n];
        {
            // Reference: gather the block contiguously first.
            let a_blk: Vec<i8> = (0..m)
                .flat_map(|i| a[i * k_full + h0..i * k_full + h0 + kb].iter().copied())
                .collect();
            let b_blk: Vec<i8> = (0..n)
                .flat_map(|j| {
                    b.as_slice()[j * k_full + h0..j * k_full + h0 + kb]
                        .iter()
                        .copied()
                })
                .collect();
            int8_gemm_rm_cm_scalar(m, n, kb, &a_blk, &b_blk, &mut want);
        }
        let mut got = vec![0i32; m * n];
        let mut ws = Int8Workspace::new();
        int8_gemm_fused(
            m,
            n,
            kb,
            &a[h0..],
            k_full,
            &b.as_slice()[h0..],
            k_full,
            &mut got,
            &mut [],
            &NoEpilogue,
            &mut ws,
            true,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn fused_reduce_matches_separate() {
        let (m, k, n) = (31usize, 100, 21);
        let p = 251u64;
        let pinv = ((1u64 << 32) / p - 1) as u32;
        let a = pattern_mat(m, k, 7).to_row_major();
        let b = pattern_mat(k, n, 8);
        let mut c = vec![0i32; m * n];
        let mut u_fused = vec![0u8; m * n];
        let mut ws = Int8Workspace::new();
        let epi = ReduceEpilogue::new(p, pinv, None);
        int8_gemm_fused(
            m,
            n,
            k,
            &a,
            k,
            b.as_slice(),
            k,
            &mut c,
            &mut u_fused,
            &epi,
            &mut ws,
            true,
        );
        for (i, (&u, &x)) in u_fused.iter().zip(&c).enumerate() {
            assert_eq!(u as i64, (x as i64).rem_euclid(p as i64), "elem {i}");
        }
    }

    #[test]
    fn fused_accumulate_adds_residues() {
        let (m, k, n) = (6usize, 40, 5);
        let p = 239u64;
        let pinv = ((1u64 << 32) / p - 1) as u32;
        let a = pattern_mat(m, k, 9).to_row_major();
        let b = pattern_mat(k, n, 10);
        let mut c = vec![0i32; m * n];
        let mut acc = vec![7i32; m * n]; // pre-existing residue sums
        let mut ws = Int8Workspace::new();
        let epi = AccumulateEpilogue::new(p, pinv, None);
        int8_gemm_fused(
            m,
            n,
            k,
            &a,
            k,
            b.as_slice(),
            k,
            &mut c,
            &mut acc,
            &epi,
            &mut ws,
            true,
        );
        for (i, (&s, &x)) in acc.iter().zip(&c).enumerate() {
            assert_eq!(s as i64, 7 + (x as i64).rem_euclid(p as i64), "elem {i}");
        }
    }

    /// Pack a full operand set into prepacked panels (test helper).
    fn pack_full(src: &[i8], ld: usize, vecs: usize, vecs_pad: usize, k: usize) -> Vec<i16> {
        let kp = padded_depth(k);
        let mut pack = Vec::new();
        pack_panels_i16(&mut pack, src, ld, vecs, vecs_pad, k, kp);
        pack
    }

    #[test]
    fn prepacked_matches_packed_path() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 4, 5),
            (17, 100, 9),
            (MR + 1, PK + 1, NR + 1),
            (2 * MR - 1, KC + 7, 3 * NR - 2),
        ] {
            let a = pattern_mat(m, k, 11).to_row_major();
            let b = pattern_mat(k, n, 12);
            let kp = padded_depth(k);
            let apack = pack_full(&a, k, m, padded_a_rows(m), k);
            let bpack = pack_full(b.as_slice(), k, n, padded_b_cols(n), k);
            let mut want = vec![0i32; m * n];
            let mut ws = Int8Workspace::new();
            int8_gemm_fused(
                m,
                n,
                k,
                &a,
                k,
                b.as_slice(),
                k,
                &mut want,
                &mut [],
                &NoEpilogue,
                &mut ws,
                true,
            );
            let mut got = vec![0i32; m * n];
            int8_gemm_prepacked_fused(
                m,
                n,
                k,
                &apack,
                &bpack,
                kp,
                0,
                &mut got,
                &mut [],
                &NoEpilogue,
                true,
            );
            assert_eq!(got, want, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_depth_window_matches_gathered_block() {
        // A sub-product over the trailing k-window of larger panels — the
        // pipeline's k-blocked path — must agree with a contiguous gather.
        // The window is ragged (not a PK multiple), so its rounded-up tail
        // exercises the global zero padding.
        let (m, k_full, n) = (9usize, 4 * PK + 13, 7);
        let (h0, kb) = (2 * PK, 2 * PK + 13); // final window, ragged width
        let a = pattern_mat(m, k_full, 13).to_row_major();
        let b = pattern_mat(k_full, n, 14);
        let kp = padded_depth(k_full);
        let apack = pack_full(&a, k_full, m, padded_a_rows(m), k_full);
        let bpack = pack_full(b.as_slice(), k_full, n, padded_b_cols(n), k_full);
        let mut want = vec![0i32; m * n];
        {
            let a_blk: Vec<i8> = (0..m)
                .flat_map(|i| a[i * k_full + h0..i * k_full + h0 + kb].iter().copied())
                .collect();
            let b_blk: Vec<i8> = (0..n)
                .flat_map(|j| {
                    b.as_slice()[j * k_full + h0..j * k_full + h0 + kb]
                        .iter()
                        .copied()
                })
                .collect();
            int8_gemm_rm_cm_scalar(m, n, kb, &a_blk, &b_blk, &mut want);
        }
        let p = 251u64;
        let pinv = ((1u64 << 32) / p - 1) as u32;
        let mut got = vec![0i32; m * n];
        let mut u = vec![0u8; m * n];
        let epi = ReduceEpilogue::new(p, pinv, None);
        int8_gemm_prepacked_fused(
            m, n, kb, &apack, &bpack, kp, h0, &mut got, &mut u, &epi, true,
        );
        assert_eq!(got, want);
        for (i, (&r, &x)) in u.iter().zip(&want).enumerate() {
            assert_eq!(r as i64, (x as i64).rem_euclid(p as i64), "elem {i}");
        }
    }

    #[test]
    #[should_panic(expected = "depth_off must be PK-aligned")]
    fn prepacked_rejects_unaligned_offset() {
        let apack = vec![0i16; padded_a_rows(1) * PK];
        let bpack = vec![0i16; padded_b_cols(1) * PK];
        let mut c = vec![0i32; 1];
        int8_gemm_prepacked_fused(
            1,
            1,
            1,
            &apack,
            &bpack,
            PK,
            3,
            &mut c,
            &mut [],
            &NoEpilogue,
            true,
        );
    }

    #[test]
    fn full_range_values() {
        // Include the extreme values -128 and 127.
        let a = Matrix::from_fn(2, 3, |i, j| if (i + j) % 2 == 0 { -128 } else { 127 });
        let b = Matrix::from_fn(3, 2, |i, j| if (i * j) % 2 == 0 { 127 } else { -128 });
        let c = int8_gemm(&a, &b);
        assert_eq!(c, int8_gemm_naive(&a, &b));
    }

    #[test]
    fn accumulator_wraps_at_2_pow_31() {
        // k = 2^17 products of (-128)*(-128) = 2^14 each: sum = 2^31,
        // which wraps to i32::MIN — the exact behaviour §4.3 relies on.
        let k = 1 << 17;
        let a = Matrix::from_fn(1, k, |_, _| -128i8);
        let b = Matrix::from_fn(k, 1, |_, _| -128i8);
        let c = int8_gemm(&a, &b);
        assert_eq!(c[(0, 0)], i32::MIN);
        // And the mod-256 residue is unharmed: -2^31 ≡ 0 ≡ 2^31 (mod 256).
        assert_eq!((c[(0, 0)] as i64).rem_euclid(256), 0);
    }

    #[test]
    fn zero_k_gives_zero_matrix() {
        let a = Matrix::<i8>::zeros(3, 0);
        let b = Matrix::<i8>::zeros(0, 2);
        let c = int8_gemm(&a, &b);
        assert!(c.iter().all(|&x| x == 0));
    }

    #[test]
    fn workspace_reused_across_calls() {
        let mut ws = Int8Workspace::new();
        let a = pattern_mat(16, 48, 1).to_row_major();
        let b = pattern_mat(48, 12, 2);
        let mut c = vec![0i32; 16 * 12];
        int8_gemm_blocked(16, 12, 48, &a, b.as_slice(), &mut c, &mut ws);
        let after_first = ws.bytes();
        assert!(after_first > 0);
        for _ in 0..3 {
            int8_gemm_blocked(16, 12, 48, &a, b.as_slice(), &mut c, &mut ws);
            assert_eq!(ws.bytes(), after_first, "steady state must not allocate");
        }
    }

    #[test]
    fn records_stats() {
        INT8_STATS.reset();
        let a = pattern_mat(4, 8, 3);
        let b = pattern_mat(8, 2, 4);
        let _ = int8_gemm(&a, &b);
        assert_eq!(INT8_STATS.calls(), 1);
        assert_eq!(INT8_STATS.macs(), 4 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "A buffer mismatch")]
    fn buffer_length_checked() {
        let mut c = vec![0i32; 4];
        int8_gemm_rm_cm(2, 2, 2, &[0i8; 3], &[0i8; 4], &mut c);
    }

    #[test]
    fn barrett_mod_boundaries() {
        for &p in &[3u64, 251, 256, 127] {
            let pinv = ((1u64 << 32) / p - 1) as u32;
            for &v in &[i32::MIN, i32::MIN + 1, -1, 0, 1, i32::MAX - 1, i32::MAX] {
                assert_eq!(
                    barrett_mod_u8(v, p as i32, pinv) as i64,
                    (v as i64).rem_euclid(p as i64),
                    "x={v} p={p}"
                );
            }
        }
    }

    /// Rows exercising the SIMD body + scalar tail with wrap-prone values
    /// (extremes, ±p multiples, dense small values).
    fn mod_parity_rows() -> Vec<Vec<i32>> {
        let mut rows = Vec::new();
        for len in [1usize, 7, 8, 15, 16, 17, 33, 100] {
            let mut row = Vec::with_capacity(len);
            for i in 0..len {
                let v = match i % 7 {
                    0 => i32::MIN + i as i32,
                    1 => i32::MAX - i as i32,
                    2 => -(i as i32) * 257,
                    3 => (i as i32) * 256,
                    4 => -1 - i as i32,
                    5 => (i as i32).wrapping_mul(0x0123_4567),
                    _ => i as i32,
                };
                row.push(v);
            }
            rows.push(row);
        }
        rows
    }

    #[test]
    fn dispatched_mod_rows_bit_identical_to_scalar() {
        for &p in &[2u64, 3, 127, 251, 255, 256] {
            let pinv = ((1u64 << 32) / p - 1) as u32;
            for row in mod_parity_rows() {
                let mut got = vec![0u8; row.len()];
                let mut want = vec![0u8; row.len()];
                barrett_mod_row_u8(&row, &mut got, p as i32, pinv);
                barrett_mod_row_u8_scalar(&row, &mut want, p as i32, pinv);
                assert_eq!(got, want, "u8 kernel={} p={p}", mod_kernel_name());

                // Accumulate variant over a dirty accumulator.
                let mut got_acc: Vec<i32> = (0..row.len() as i32).collect();
                let mut want_acc = got_acc.clone();
                barrett_mod_row_acc(&row, &mut got_acc, p as i32, pinv);
                barrett_mod_row_acc_scalar(&row, &mut want_acc, p as i32, pinv);
                assert_eq!(got_acc, want_acc, "acc kernel={} p={p}", mod_kernel_name());
            }
        }
    }
}
