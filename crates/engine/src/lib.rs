//! # gemm-engine
//!
//! Simulated matrix engines — the "hardware" substrate of the reproduction:
//!
//! * [`int8`] — the INT8 matrix engine (`i8 × i8 → i32`, wrapping INT32
//!   accumulation) that Ozaki Scheme I/II run on;
//! * [`tensor`] — FP16/BF16/TF32 tensor-core engines with FP32 accumulation
//!   that the SGEMM baselines run on;
//! * [`backend`] — the pluggable [`backend::ResidueBackend`] seam the
//!   `ozaki2` pipeline executes residue planes through: the INT8 engine
//!   and an f32-accumulating bf16-FMA engine behind one trait, selectable
//!   per emulator and forceable process-wide via `OZAKI_FORCE_BACKEND`;
//! * [`stats`] — global invocation counters consumed by tests and the
//!   device model;
//! * [`faultinject`] — deterministic bit-flip injection at named pipeline
//!   sites plus the thread-local scalar-dispatch scope, the substrate of
//!   the `ozaki2` fault-tolerant execution layer.

#![warn(missing_docs)]

pub mod backend;
pub mod faultinject;
pub mod int8;
pub mod stats;
pub mod tensor;

pub use backend::{
    fma_gemm_prepacked_fused, fma_kernel_name, forced_backend, BackendCaps, BackendKind,
    FmaBf16Backend, Int8Backend, PanelLayout, ResidueBackend, FMA_CHUNK,
};
pub use int8::{
    barrett_mod_row_acc, barrett_mod_row_acc_scalar, barrett_mod_row_u8, barrett_mod_row_u8_scalar,
    barrett_mod_u8, force_scalar, int8_gemm, int8_gemm_blocked, int8_gemm_blocked_seq,
    int8_gemm_fused, int8_gemm_naive, int8_gemm_prepacked_fused, int8_gemm_rm_cm,
    int8_gemm_rm_cm_scalar, microkernel_name, mod_kernel_name, pack_panels_i16, padded_a_rows,
    padded_b_cols, padded_depth, AccumulateEpilogue, Epilogue, Int8Workspace, NoEpilogue,
    ReduceEpilogue, MR, NR, PK,
};
pub use stats::{EngineStats, INT8_STATS, LOWFP_STATS};
pub use tensor::{dequantize, lowfp_gemm, quantize};
