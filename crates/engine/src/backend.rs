//! Pluggable residue-GEMM backends — the seam between the Ozaki-II front
//! end and the matrix engine executing its residue planes.
//!
//! The pipeline (Algorithm 1) only needs *some* exact small-integer GEMM
//! per residue plane: packed `i16` panels in, a `C = A·B` plane with
//! wrapping INT32 semantics out, with the mod-`p` epilogue fused while the
//! stripe is cache-resident. [`ResidueBackend`] captures exactly that
//! contract, plus the capability metadata the moduli-selection layer needs
//! to negotiate a modulus set the engine can compute **exactly**:
//!
//! * [`Int8Backend`] — the blocked INT8/VNNI engine
//!   ([`crate::int8_gemm_prepacked_fused`]). Exact for any modulus
//!   `p ≤ 256` (residues are sign-extended i8, `|x| ≤ 128`, pairwise i16
//!   products fit 15 bits).
//! * [`FmaBf16Backend`] — an f32-accumulating FMA engine whose operands
//!   are bf16 residue encodings. bf16 has 8 significand bits, so every
//!   integer `|x| ≤ 256` round-trips exactly; products of residues
//!   (`|x| ≤ 128`) fit 14 bits and depth chunks of [`FMA_CHUNK`] products
//!   stay `≤ 2^24` — exactly representable in the f32 accumulator. Chunk
//!   sums are drained into a wrapping i32 accumulator, so the engine
//!   computes the *same exact integer* (mod `2^32`) as the INT8 engine:
//!   the two backends are bit-identical on any shared moduli set. Its
//!   *native* pool (what a hardware bf16 unit sustains without depth
//!   chunking) is the low-moduli set `p ≤ 64` exposed by
//!   `ozaki2::moduli::fma_moduli`.
//!
//! Both backends consume the one packed-panel layout
//! ([`crate::pack_panels_i16`]; geometry in [`PanelLayout`]) so prepared
//! operands convert once and execute anywhere — though the *moduli* baked
//! into a panel tie it to the pool it was converted for, which is why the
//! `ozaki2` prepared/batched layers carry a backend identity alongside the
//! panel data.
//!
//! # Forcing a backend
//!
//! `OZAKI_FORCE_BACKEND=int8|fma-bf16|scalar` pins the *execution engine*
//! process-wide without touching moduli selection (the pool stays the one
//! the emulator was configured for, so results are bit-identical under
//! every value — that is the CI forced-backend matrix). `scalar` keeps the
//! configured engines but forces their scalar oracle kernels, exactly like
//! the legacy `OZAKI_FORCE_SCALAR=1` alias.

use crate::int8::{
    padded_a_rows, padded_b_cols, padded_depth, stripe_count, AccumulateEpilogue, Epilogue,
    ReduceEpilogue, MR, NR, PK,
};
use crate::stats::LOWFP_STATS;
use gemm_lowfp::BF16;
use rayon::prelude::*;
use std::sync::atomic::AtomicU64;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Backend identity
// ---------------------------------------------------------------------------

/// The residue-GEMM backends the emulation pipeline can run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// The blocked INT8/VNNI engine (`i8 × i8 → i32`, wrapping INT32
    /// accumulation) — the paper's engine and the default.
    #[default]
    Int8,
    /// The f32-accumulating FMA engine over bf16 residue encodings.
    FmaBf16,
}

impl BackendKind {
    /// Every backend, in registry order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Int8, BackendKind::FmaBf16];

    /// Stable lowercase identifier (metric label value, env value, bench
    /// section key).
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Int8 => "int8",
            BackendKind::FmaBf16 => "fma-bf16",
        }
    }

    /// Parse an identifier as accepted by `OZAKI_FORCE_BACKEND` (`scalar`
    /// is handled separately — it forces kernels, not a backend).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "int8" | "vnni" => Some(BackendKind::Int8),
            "fma-bf16" | "fma_bf16" | "bf16" | "fma" => Some(BackendKind::FmaBf16),
            _ => None,
        }
    }

    /// The engine that will actually execute for this configured backend:
    /// `self` unless [`forced_backend`] pins another one process-wide.
    pub fn engine(self) -> BackendKind {
        forced_backend().unwrap_or(self)
    }

    /// The backend implementation for this kind.
    pub fn backend(self) -> &'static dyn ResidueBackend {
        match self {
            BackendKind::Int8 => &Int8Backend,
            BackendKind::FmaBf16 => &FmaBf16Backend,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The engine override from `OZAKI_FORCE_BACKEND`, if any. `scalar` (and
/// the legacy `OZAKI_FORCE_SCALAR=1`) force scalar *kernel dispatch* inside
/// whichever engines run — see [`crate::force_scalar`] — without swapping
/// the engine, so every backend keeps a bit-exact scalar oracle under the
/// CI matrix. Read once and cached.
///
/// # Panics
/// On an unrecognized value — a silently ignored typo in CI would void the
/// matrix, so the process fails loudly instead.
pub fn forced_backend() -> Option<BackendKind> {
    static FORCED: OnceLock<Option<BackendKind>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let raw = match std::env::var("OZAKI_FORCE_BACKEND") {
            Ok(v) => v,
            Err(_) => return None,
        };
        let v = raw.trim().to_ascii_lowercase();
        match v.as_str() {
            "" | "0" => None,
            // Kernel force, not an engine swap (see force_scalar()).
            "scalar" => None,
            _ => match BackendKind::parse(&v) {
                Some(k) => Some(k),
                None => panic!(
                    "OZAKI_FORCE_BACKEND: unknown backend {raw:?} \
                     (expected int8 | fma-bf16 | scalar)"
                ),
            },
        }
    })
}

// ---------------------------------------------------------------------------
// Capability metadata
// ---------------------------------------------------------------------------

/// Packed-panel geometry a backend consumes (all backends currently share
/// the [`crate::pack_panels_i16`] layout; the descriptor is what a future
/// backend with different tiling would vary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PanelLayout {
    /// A-panel row-count alignment (rows padded to a multiple of this).
    pub mr: usize,
    /// B-panel column-count alignment.
    pub nr: usize,
    /// Depth alignment: panel depth and every depth-window offset must be
    /// multiples of this.
    pub pk: usize,
}

/// Capability and exactness metadata for one backend.
#[derive(Clone, Copy, Debug)]
pub struct BackendCaps {
    /// Human-readable engine name.
    pub name: &'static str,
    /// Largest modulus whose residue products this engine computes
    /// exactly (the *exactness envelope*; moduli selection must not pick
    /// a modulus above it).
    pub max_modulus: u64,
    /// Largest modulus of the backend's *native* pool — the set it
    /// prefers when it negotiates moduli (for the FMA backend, what the
    /// modeled hardware sustains without software depth chunking).
    pub native_max_modulus: u64,
    /// Panel geometry the prepacked entry points consume.
    pub layout: PanelLayout,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// An exact residue-GEMM engine the pipeline can execute residue planes
/// on. Object-safe; implementations are stateless statics.
///
/// Both entry points multiply the depth window `[depth_off,
/// depth_off + k)` of pre-packed i16 panels (the
/// [`crate::pack_panels_i16`] layout with full padded depth `kp_stride`)
/// with wrapping INT32 product semantics, then apply a fused mod-`p`
/// epilogue to each completed stripe while it is cache-resident. They must
/// be bit-identical to [`crate::int8_gemm_prepacked_fused`] with the
/// corresponding epilogue for every modulus within the backend's
/// exactness envelope.
pub trait ResidueBackend: Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Capability/limits metadata.
    fn caps(&self) -> BackendCaps;

    /// The largest depth a single call may cover before a residue plane
    /// for moduli up to `p_max` could overflow the INT32 accumulation
    /// contract: the largest power of two `k` with `k · (p_max/2)^2 ≤
    /// 2^31`. Depends only on the moduli pool, so every backend splits
    /// `k`-blocked work identically — a prerequisite for bit-identical
    /// engine swaps. (`p_max = 256` gives the pipeline's historical
    /// `2^17`.)
    fn k_block_max(&self, p_max: u64) -> usize {
        let b = (p_max as usize / 2).max(1).next_power_of_two();
        ((1usize << 31) / (b * b)).max(PK)
    }

    /// `U = mod(A·B, p)` into a `u8` residue plane (the single-`k`-block
    /// path). `c` is the `m x n` INT32 scratch plane, `u_out` the `m x n`
    /// residue plane; `mod_nanos`, if given, receives the maximum
    /// per-stripe epilogue time.
    #[allow(clippy::too_many_arguments)]
    fn gemm_reduce(
        &self,
        m: usize,
        n: usize,
        k: usize,
        apack: &[i16],
        bpack: &[i16],
        kp_stride: usize,
        depth_off: usize,
        c: &mut [i32],
        u_out: &mut [u8],
        p: u64,
        pinv: u32,
        mod_nanos: Option<&AtomicU64>,
        parallel: bool,
    );

    /// `racc += mod(A·B, p)` residue accumulation into an i32 plane (the
    /// `k > k_block_max` path; the caller reduces `racc` once at the end).
    #[allow(clippy::too_many_arguments)]
    fn gemm_accumulate(
        &self,
        m: usize,
        n: usize,
        k: usize,
        apack: &[i16],
        bpack: &[i16],
        kp_stride: usize,
        depth_off: usize,
        c: &mut [i32],
        racc: &mut [i32],
        p: u64,
        pinv: u32,
        mod_nanos: Option<&AtomicU64>,
        parallel: bool,
    );
}

/// The layout every current backend shares.
const I16_PANEL_LAYOUT: PanelLayout = PanelLayout {
    mr: MR,
    nr: NR,
    pk: PK,
};

// ---------------------------------------------------------------------------
// INT8 backend (reference implementation)
// ---------------------------------------------------------------------------

/// The blocked INT8/VNNI engine behind the [`ResidueBackend`] seam — a
/// direct delegation to [`crate::int8_gemm_prepacked_fused`], bit-identical
/// to calling it directly.
pub struct Int8Backend;

impl ResidueBackend for Int8Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Int8
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            name: "int8-vnni",
            max_modulus: 256,
            native_max_modulus: 256,
            layout: I16_PANEL_LAYOUT,
        }
    }

    fn gemm_reduce(
        &self,
        m: usize,
        n: usize,
        k: usize,
        apack: &[i16],
        bpack: &[i16],
        kp_stride: usize,
        depth_off: usize,
        c: &mut [i32],
        u_out: &mut [u8],
        p: u64,
        pinv: u32,
        mod_nanos: Option<&AtomicU64>,
        parallel: bool,
    ) {
        let epi = ReduceEpilogue::new(p, pinv, mod_nanos);
        crate::int8::int8_gemm_prepacked_fused(
            m, n, k, apack, bpack, kp_stride, depth_off, c, u_out, &epi, parallel,
        );
    }

    fn gemm_accumulate(
        &self,
        m: usize,
        n: usize,
        k: usize,
        apack: &[i16],
        bpack: &[i16],
        kp_stride: usize,
        depth_off: usize,
        c: &mut [i32],
        racc: &mut [i32],
        p: u64,
        pinv: u32,
        mod_nanos: Option<&AtomicU64>,
        parallel: bool,
    ) {
        let epi = AccumulateEpilogue::new(p, pinv, mod_nanos);
        crate::int8::int8_gemm_prepacked_fused(
            m, n, k, apack, bpack, kp_stride, depth_off, c, racc, &epi, parallel,
        );
    }
}

// ---------------------------------------------------------------------------
// bf16-FMA backend
// ---------------------------------------------------------------------------

/// Depth products accumulated per f32 chunk. Residue products are `|x·y| ≤
/// 128² = 2^14`, so a chunk sum is `≤ 2^24` in magnitude — the largest
/// range in which every integer is exactly representable in f32. Each
/// chunk drains exactly into a wrapping i32 accumulator.
pub const FMA_CHUNK: usize = 1024;

/// The f32-accumulating FMA engine over bf16 residue encodings behind the
/// [`ResidueBackend`] seam. See the module docs for the exactness
/// argument; [`fma_gemm_prepacked_fused`] is the driver.
pub struct FmaBf16Backend;

impl ResidueBackend for FmaBf16Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::FmaBf16
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            name: "fma-bf16",
            // Software depth chunking keeps any p ≤ 256 exact …
            max_modulus: 256,
            // … but the native pool models hardware that accumulates a
            // whole k-block in one f32 chain: p ≤ 64 keeps k·(p/2)² ≤ 2^24
            // up to k = 2^14 without chunking.
            native_max_modulus: 64,
            layout: I16_PANEL_LAYOUT,
        }
    }

    fn gemm_reduce(
        &self,
        m: usize,
        n: usize,
        k: usize,
        apack: &[i16],
        bpack: &[i16],
        kp_stride: usize,
        depth_off: usize,
        c: &mut [i32],
        u_out: &mut [u8],
        p: u64,
        pinv: u32,
        mod_nanos: Option<&AtomicU64>,
        parallel: bool,
    ) {
        let epi = ReduceEpilogue::new(p, pinv, mod_nanos);
        fma_gemm_prepacked_fused(
            m, n, k, apack, bpack, kp_stride, depth_off, c, u_out, &epi, parallel,
        );
    }

    fn gemm_accumulate(
        &self,
        m: usize,
        n: usize,
        k: usize,
        apack: &[i16],
        bpack: &[i16],
        kp_stride: usize,
        depth_off: usize,
        c: &mut [i32],
        racc: &mut [i32],
        p: u64,
        pinv: u32,
        mod_nanos: Option<&AtomicU64>,
        parallel: bool,
    ) {
        let epi = AccumulateEpilogue::new(p, pinv, mod_nanos);
        fma_gemm_prepacked_fused(
            m, n, k, apack, bpack, kp_stride, depth_off, c, racc, &epi, parallel,
        );
    }
}

// ---------------------------------------------------------------------------
// bf16-FMA kernels
// ---------------------------------------------------------------------------

/// Which FMA dot kernel the running CPU supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FmaKernel {
    #[cfg(target_arch = "x86_64")]
    Avx512,
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    Scalar,
}

fn detect_fma_kernel() -> FmaKernel {
    if crate::int8::force_scalar() {
        return FmaKernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return FmaKernel::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return FmaKernel::Avx2Fma;
        }
    }
    FmaKernel::Scalar
}

fn fma_kernel() -> FmaKernel {
    static KERNEL: OnceLock<FmaKernel> = OnceLock::new();
    *KERNEL.get_or_init(detect_fma_kernel)
}

/// Human-readable name of the FMA dot kernel the running CPU dispatches
/// to (mirrors [`crate::microkernel_name`] for the INT8 engine).
pub fn fma_kernel_name() -> &'static str {
    match fma_kernel() {
        #[cfg(target_arch = "x86_64")]
        FmaKernel::Avx512 => "avx512-fma",
        #[cfg(target_arch = "x86_64")]
        FmaKernel::Avx2Fma => "avx2-fma",
        FmaKernel::Scalar => "scalar",
    }
}

/// The scalar oracle: one depth chunk accumulated through an **explicit
/// bf16 round-trip** per operand (`BF16::from_f32(x as f32)` — the literal
/// operand encoding the modeled engine consumes) and a serial f32 FMA
/// chain. Exact, because residues `|x| ≤ 128` round-trip bf16 exactly and
/// chunk sums stay `≤ 2^24`.
fn fma_chunk_scalar(a: &[i16], b: &[i16]) -> f32 {
    let mut s = 0f32;
    for (&x, &y) in a.iter().zip(b) {
        let xe = BF16::from_f32(x as f32).to_f32();
        let ye = BF16::from_f32(y as f32).to_f32();
        s = xe.mul_add(ye, s);
    }
    s
}

/// One depth chunk with [`LANES`] independent f32 accumulator chains —
/// the body the `target_feature` wrappers re-compile for each ISA. The
/// bf16 encode is elided: every value a panel can hold (`|x| ≤ 128`, and
/// injected-fault flips stay in range) is a fixed point of the bf16
/// round-trip, so `x as f32` is bit-identical to the oracle's explicit
/// encode (pinned by a test below). All arithmetic is exact integer math
/// in f32, so lane count and summation order cannot change the result.
#[inline(always)]
fn fma_chunk_body(a: &[i16], b: &[i16]) -> f32 {
    const LANES: usize = 16;
    let n = a.len().min(b.len());
    let nl = n / LANES * LANES;
    let mut lanes = [0f32; LANES];
    for (av, bv) in a[..nl].chunks_exact(LANES).zip(b[..nl].chunks_exact(LANES)) {
        for l in 0..LANES {
            lanes[l] = (av[l] as f32).mul_add(bv[l] as f32, lanes[l]);
        }
    }
    let mut s: f32 = lanes.iter().sum();
    for (&x, &y) in a[nl..n].iter().zip(&b[nl..n]) {
        s = (x as f32).mul_add(y as f32, s);
    }
    s
}

#[cfg(target_arch = "x86_64")]
mod fmax86 {
    //! `target_feature` wrappers around [`super::fma_chunk_body`]: the
    //! body autovectorizes (i16 → f32 widening loads + `vfmadd`) under
    //! each ISA. Exact integer arithmetic makes every variant
    //! bit-identical to the scalar oracle by construction.

    /// # Safety
    /// AVX-512F required.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn chunk_avx512(a: &[i16], b: &[i16]) -> f32 {
        super::fma_chunk_body(a, b)
    }

    /// # Safety
    /// AVX2 + FMA required.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn chunk_avx2(a: &[i16], b: &[i16]) -> f32 {
        super::fma_chunk_body(a, b)
    }
}

/// Full-depth dot product of one packed A row and one packed B column:
/// f32 chunks of [`FMA_CHUNK`] drained into a wrapping i32 accumulator.
fn fma_dot(kernel: FmaKernel, a: &[i16], b: &[i16]) -> i32 {
    let mut acc = 0i32;
    for (ac, bc) in a.chunks(FMA_CHUNK).zip(b.chunks(FMA_CHUNK)) {
        let s = match kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: variant selected by runtime feature detection.
            FmaKernel::Avx512 => unsafe { fmax86::chunk_avx512(ac, bc) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            FmaKernel::Avx2Fma => unsafe { fmax86::chunk_avx2(ac, bc) },
            FmaKernel::Scalar => fma_chunk_scalar(ac, bc),
        };
        // The chunk sum is an exact integer |s| ≤ 2^24: the cast is exact,
        // and wrapping adds reproduce the INT8 engine's accumulator mod
        // 2^32 regardless of chunking.
        acc = acc.wrapping_add(s as i32);
    }
    acc
}

/// The bf16-FMA analogue of [`crate::int8_gemm_prepacked_fused`]: same
/// panel layout, same depth-window contract, same stripe decomposition and
/// fused-epilogue seam — the tile sweep is replaced by per-element f32 FMA
/// dot products over bf16-encoded residues. Bit-identical to the INT8
/// engine for every input within the exactness envelope (residues
/// `|x| ≤ 128`, any window the INT8 engine accepts).
///
/// # Panics
/// Same geometry contract as [`crate::int8_gemm_prepacked_fused`].
#[allow(clippy::too_many_arguments)]
pub fn fma_gemm_prepacked_fused<E: Epilogue>(
    m: usize,
    n: usize,
    k: usize,
    apack: &[i16],
    bpack: &[i16],
    kp_stride: usize,
    depth_off: usize,
    c: &mut [i32],
    out: &mut [E::Out],
    epi: &E,
    parallel: bool,
) {
    let kp_eff = padded_depth(k);
    assert!(
        depth_off.is_multiple_of(PK),
        "depth_off must be PK-aligned, got {depth_off}"
    );
    assert!(
        depth_off + kp_eff <= kp_stride,
        "depth window {depth_off}+{kp_eff} over-runs panel depth {kp_stride}"
    );
    assert!(
        apack.len() >= padded_a_rows(m) * kp_stride,
        "A panel buffer mismatch"
    );
    assert!(
        bpack.len() >= padded_b_cols(n) * kp_stride,
        "B panel buffer mismatch"
    );
    assert_eq!(c.len(), m * n, "C buffer mismatch");
    if E::ACTIVE {
        assert_eq!(out.len(), m * n, "epilogue plane mismatch");
    }
    LOWFP_STATS.record_gemm(m, n, k);
    gemm_obs::catalog::ENGINE_FMA_CALLS.inc();
    gemm_obs::catalog::ENGINE_FMA_MACS.add((m as u64) * (n as u64) * (k as u64));
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0);
        if E::ACTIVE {
            epi.apply(c, out);
        }
        return;
    }
    let a_base = &apack[depth_off..];

    let n_panels = n.div_ceil(NR);
    let stripes = if parallel { stripe_count(n_panels) } else { 1 };

    struct FmaJob<'a, E: Epilogue> {
        j0: usize,
        c: &'a mut [i32],
        out: &'a mut [E::Out],
    }
    let mut jobs: Vec<FmaJob<'_, E>> = Vec::with_capacity(stripes);
    let mut c_rest = c;
    let mut out_rest = out;
    for s in 0..stripes {
        let p0 = s * n_panels / stripes;
        let p1 = (s + 1) * n_panels / stripes;
        let j0 = p0 * NR;
        let nc = n.min(p1 * NR) - j0;
        let (c_stripe, rest) = c_rest.split_at_mut(m * nc);
        c_rest = rest;
        let out_stripe = if E::ACTIVE {
            let (o, rest) = out_rest.split_at_mut(m * nc);
            out_rest = rest;
            o
        } else {
            &mut []
        };
        jobs.push(FmaJob {
            j0,
            c: c_stripe,
            out: out_stripe,
        });
    }

    let run = |job: FmaJob<'_, E>| {
        let kernel = if crate::faultinject::in_scalar_scope() {
            FmaKernel::Scalar
        } else {
            fma_kernel()
        };
        for (jl, ccol) in job.c.chunks_exact_mut(m).enumerate() {
            let j = job.j0 + jl;
            let bcol = &bpack[j * kp_stride + depth_off..][..kp_eff];
            for (i, cij) in ccol.iter_mut().enumerate() {
                let arow = &a_base[i * kp_stride..][..kp_eff];
                *cij = fma_dot(kernel, arow, bcol);
            }
        }
        // Fault-injection seam: the completed INT32 stripe, before the
        // fused epilogue consumes it (same contract as the INT8 engine).
        crate::faultinject::corrupt_acc(job.c);
        if E::ACTIVE {
            epi.apply(job.c, job.out);
        }
    };
    if jobs.len() == 1 {
        run(jobs.pop().expect("one stripe"));
    } else {
        jobs.into_par_iter().for_each(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int8::{int8_gemm_prepacked_fused, pack_panels_i16, NoEpilogue};

    fn residue_panels(vecs: usize, k: usize, p: u64, salt: i64) -> (Vec<i16>, usize, usize) {
        let kp = padded_depth(k);
        let vecs_pad = vecs.div_ceil(MR.max(NR)) * MR.max(NR);
        let half = (p / 2) as i64;
        let raw: Vec<i8> = (0..vecs * k)
            .map(|t| {
                let v = (t as i64 * 37 + salt * 11) % (2 * half + 1) - half;
                v as i8
            })
            .collect();
        let mut pack = Vec::new();
        pack_panels_i16(&mut pack, &raw, k, vecs, vecs_pad, k, kp);
        (pack, kp, vecs_pad)
    }

    /// The SIMD body's elided bf16 encode is an identity over the whole
    /// value range a residue panel can hold.
    #[test]
    fn bf16_roundtrip_is_identity_on_residue_range() {
        for x in -256i16..=256 {
            let direct = x as f32;
            let encoded = BF16::from_f32(direct).to_f32();
            assert_eq!(direct.to_bits(), encoded.to_bits(), "x={x}");
        }
    }

    #[test]
    fn fma_matches_int8_engine_bit_identically() {
        for &(m, n, k, p) in &[
            (7usize, 5usize, 33usize, 256u64),
            (16, 16, 64, 251),
            (3, 9, 130, 64),
            (12, 4, 96, 13),
        ] {
            let (apack, kp, _) = residue_panels(m, k, p, 1);
            let (bpack, _, _) = residue_panels(n, k, p, 2);
            let mut c_int8 = vec![0i32; m * n];
            let mut c_fma = vec![0i32; m * n];
            int8_gemm_prepacked_fused(
                m,
                n,
                k,
                &apack,
                &bpack,
                kp,
                0,
                &mut c_int8,
                &mut [],
                &NoEpilogue,
                false,
            );
            fma_gemm_prepacked_fused(
                m,
                n,
                k,
                &apack,
                &bpack,
                kp,
                0,
                &mut c_fma,
                &mut [],
                &NoEpilogue,
                false,
            );
            assert_eq!(c_int8, c_fma, "m={m} n={n} k={k} p={p}");
        }
    }

    /// The fused reduce epilogue on the FMA engine matches the INT8 one.
    #[test]
    fn fma_reduce_matches_int8_reduce() {
        let (m, n, k, p) = (10usize, 11usize, 200usize, 61u64);
        let pinv = ((1u64 << 32) / p - 1) as u32;
        let (apack, kp, _) = residue_panels(m, k, p, 5);
        let (bpack, _, _) = residue_panels(n, k, p, 6);
        let mut c1 = vec![0i32; m * n];
        let mut c2 = vec![0i32; m * n];
        let mut u1 = vec![0u8; m * n];
        let mut u2 = vec![0u8; m * n];
        Int8Backend.gemm_reduce(
            m, n, k, &apack, &bpack, kp, 0, &mut c1, &mut u1, p, pinv, None, true,
        );
        FmaBf16Backend.gemm_reduce(
            m, n, k, &apack, &bpack, kp, 0, &mut c2, &mut u2, p, pinv, None, true,
        );
        assert_eq!(u1, u2);
        assert!(u1.iter().all(|&x| (x as u64) < p));
    }

    /// Chunk boundaries and wrapping: a depth long enough to cross
    /// several FMA chunks with extreme residues still matches the INT8
    /// engine exactly.
    #[test]
    fn fma_chunked_wrapping_matches() {
        let (m, n, k) = (2usize, 2usize, 3 * FMA_CHUNK + 17);
        let kp = padded_depth(k);
        let mk_panel = |vecs: usize, sign: i16| {
            let vecs_pad = vecs.div_ceil(4) * 4;
            let mut pack = vec![0i16; vecs_pad * kp];
            for v in 0..vecs {
                for h in 0..k {
                    // Alternating extremes maximize |chunk sums|.
                    pack[v * kp + h] = if h % 2 == 0 { 128 } else { -128 * sign };
                }
            }
            pack
        };
        let apack = mk_panel(m, 1);
        let bpack = mk_panel(n, -1);
        let mut c_int8 = vec![0i32; m * n];
        let mut c_fma = vec![0i32; m * n];
        int8_gemm_prepacked_fused(
            m,
            n,
            k,
            &apack,
            &bpack,
            kp,
            0,
            &mut c_int8,
            &mut [],
            &NoEpilogue,
            false,
        );
        fma_gemm_prepacked_fused(
            m,
            n,
            k,
            &apack,
            &bpack,
            kp,
            0,
            &mut c_fma,
            &mut [],
            &NoEpilogue,
            false,
        );
        assert_eq!(c_int8, c_fma);
    }

    #[test]
    fn k_block_max_matches_pool_limits() {
        assert_eq!(Int8Backend.k_block_max(256), 1 << 17);
        assert_eq!(FmaBf16Backend.k_block_max(256), 1 << 17);
        assert_eq!(FmaBf16Backend.k_block_max(64), 1 << 21);
        // Every backend splits identically on a shared pool.
        for p in [13u64, 64, 173, 256] {
            assert_eq!(Int8Backend.k_block_max(p), FmaBf16Backend.k_block_max(p));
        }
    }

    #[test]
    fn kind_parsing_and_labels() {
        assert_eq!(BackendKind::parse("int8"), Some(BackendKind::Int8));
        assert_eq!(BackendKind::parse("fma-bf16"), Some(BackendKind::FmaBf16));
        assert_eq!(BackendKind::parse("FMA_BF16"), Some(BackendKind::FmaBf16));
        assert_eq!(BackendKind::parse("nonsense"), None);
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.backend().kind(), kind);
        }
        assert_eq!(BackendKind::default(), BackendKind::Int8);
    }

    #[test]
    fn caps_describe_exactness_envelopes() {
        let int8 = Int8Backend.caps();
        assert_eq!(int8.max_modulus, 256);
        let fma = FmaBf16Backend.caps();
        assert_eq!(fma.max_modulus, 256);
        assert_eq!(fma.native_max_modulus, 64);
        assert_eq!(int8.layout, fma.layout);
    }
}
