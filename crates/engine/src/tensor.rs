//! Simulated low-precision tensor-core engines (FP16 / BF16 / TF32 inputs,
//! FP32 accumulation).
//!
//! NVIDIA tensor cores compute each `a*b` product exactly (the 11-bit x
//! 11-bit significand product fits in FP32's 24 bits) and round once per
//! accumulation into an FP32 accumulator. The software model below has the
//! same two properties, so the baseline emulations built on it (cuMpSGEMM,
//! BF16x9, TF32GEMM) inherit the hardware's rounding behaviour.

use crate::stats::LOWFP_STATS;
use gemm_dense::{MatF32, Matrix};
use gemm_lowfp::LowFloat;
use rayon::prelude::*;

/// Columns of `C` per rayon task.
const COL_CHUNK: usize = 4;

/// GEMM on a low-precision format `T` with FP32 accumulation:
/// `C_f32 = A_T * B_T`.
pub fn lowfp_gemm<T: LowFloat + Default>(a: &Matrix<T>, b: &Matrix<T>) -> MatF32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimensions must agree");
    LOWFP_STATS.record_gemm(m, n, k);
    let mut c = Matrix::<f32>::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    // Widen operands once (the conversion to f32 is exact), pack A row-major.
    let a_rm: Vec<f32> = {
        let mut v = vec![0f32; m * k];
        for h in 0..k {
            let col = a.col(h);
            for (i, &x) in col.iter().enumerate() {
                v[i * k + h] = x.to_f32();
            }
        }
        v
    };
    let b_cm: Vec<f32> = b.iter().map(|&x| x.to_f32()).collect();
    c.as_mut_slice()
        .par_chunks_mut(m * COL_CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, c_chunk)| {
            let j0 = chunk_idx * COL_CHUNK;
            for (dj, c_col) in c_chunk.chunks_exact_mut(m).enumerate() {
                let j = j0 + dj;
                let b_col = &b_cm[j * k..(j + 1) * k];
                for (i, ci) in c_col.iter_mut().enumerate() {
                    let a_row = &a_rm[i * k..(i + 1) * k];
                    // One f32 rounding per accumulate — tensor-core order.
                    let mut acc = 0f32;
                    for (&x, &y) in a_row.iter().zip(b_col.iter()) {
                        acc += x * y;
                    }
                    *ci = acc;
                }
            }
        });
    c
}

/// Round an f32 matrix into format `T` elementwise (RNE), like the GPU
/// conversion kernels that feed tensor cores.
pub fn quantize<T: LowFloat>(a: &MatF32) -> Matrix<T> {
    a.map(T::from_f32)
}

/// Widen a low-precision matrix back to f32 (exact).
pub fn dequantize<T: LowFloat>(a: &Matrix<T>) -> MatF32 {
    a.map(|x| x.to_f32())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemm_lowfp::{Tf32, BF16, F16};

    #[test]
    fn f16_engine_exact_on_small_integers() {
        // Integer inputs |x| <= 64 with k = 16: products <= 4096, sums
        // <= 65536 — everything exact in both f16 inputs and f32 acc.
        let a = Matrix::from_fn(4, 16, |i, j| F16::from_f32((i as f32) - (j % 5) as f32));
        let b = Matrix::from_fn(16, 3, |i, j| {
            F16::from_f32((j as f32) + (i % 7) as f32 - 3.0)
        });
        let c = lowfp_gemm(&a, &b);
        for i in 0..4 {
            for j in 0..3 {
                let mut want = 0f64;
                for h in 0..16 {
                    want += a[(i, h)].to_f32() as f64 * b[(h, j)].to_f32() as f64;
                }
                assert_eq!(c[(i, j)] as f64, want);
            }
        }
    }

    #[test]
    fn bf16_engine_error_within_bound() {
        let a = Matrix::from_fn(8, 32, |i, j| {
            BF16::from_f32(((i * 13 + j * 7) % 17) as f32 / 7.0 - 1.0)
        });
        let b = Matrix::from_fn(32, 8, |i, j| {
            BF16::from_f32(((i * 5 + j * 11) % 13) as f32 / 5.0 - 1.0)
        });
        let c = lowfp_gemm(&a, &b);
        for i in 0..8 {
            for j in 0..8 {
                let mut want = 0f64;
                let mut absmax = 0f64;
                for h in 0..32 {
                    let p = a[(i, h)].to_f32() as f64 * b[(h, j)].to_f32() as f64;
                    want += p;
                    absmax += p.abs();
                }
                // FP32 accumulation error: <= k * eps32 * Σ|products|.
                let bound = 32.0 * 1.2e-7 * absmax + 1e-30;
                assert!(
                    (c[(i, j)] as f64 - want).abs() <= bound,
                    "({i},{j}): got {} want {want}",
                    c[(i, j)]
                );
            }
        }
    }

    #[test]
    fn quantize_dequantize_round_trip_for_representable() {
        let a = Matrix::from_fn(3, 3, |i, j| (i as f32 + 2.0 * j as f32) - 3.0);
        let q = quantize::<Tf32>(&a);
        let back = dequantize(&q);
        assert_eq!(back, a); // small integers are exact in tf32
    }

    #[test]
    fn tf32_engine_loses_precision_vs_f32() {
        // A value needing more than 11 significand bits.
        let x = 1.0 + 2.0_f32.powi(-12);
        let a = Matrix::from_fn(1, 1, |_, _| Tf32::from_f32(x));
        let b = Matrix::from_fn(1, 1, |_, _| Tf32::from_f32(1.0));
        let c = lowfp_gemm(&a, &b);
        assert_eq!(c[(0, 0)], 1.0); // 2^-12 was rounded away on input
    }

    #[test]
    fn records_stats() {
        LOWFP_STATS.reset();
        let a = Matrix::from_fn(2, 3, |_, _| F16::from_f32(1.0));
        let b = Matrix::from_fn(3, 2, |_, _| F16::from_f32(1.0));
        let _ = lowfp_gemm(&a, &b);
        assert_eq!(LOWFP_STATS.calls(), 1);
        assert_eq!(LOWFP_STATS.macs(), 12);
    }
}
