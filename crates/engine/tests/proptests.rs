//! Property-based tests for the simulated matrix engines.

use gemm_dense::Matrix;
use gemm_engine::{int8_gemm, int8_gemm_naive, lowfp_gemm, quantize};
use gemm_lowfp::{BF16, F16};
use proptest::prelude::*;

fn arb_i8_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<i8>> {
    proptest::collection::vec(any::<i8>(), rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            (s >> 33) as i64 as i8
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        prop_assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b));
    }

    #[test]
    fn arbitrary_values_match(a in arb_i8_matrix(5, 7), b in arb_i8_matrix(7, 4)) {
        prop_assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b));
    }

    #[test]
    fn linearity_in_scalar(a in arb_i8_matrix(4, 6), b in arb_i8_matrix(6, 3)) {
        // C(A, B) + C(A, B) == C(A, 2B) as long as 2B stays in range —
        // verify via i32 doubling instead to avoid range issues.
        let c = int8_gemm(&a, &b);
        let doubled = int8_gemm_naive(&a, &b).map(|x| x.wrapping_mul(2));
        let sum = c.map(|x| x.wrapping_mul(2));
        prop_assert_eq!(doubled, sum);
    }

    #[test]
    fn f16_engine_matches_f64_within_fp32_rounding(
        seed in any::<u64>(),
        m in 1usize..10,
        k in 1usize..32,
        n in 1usize..10,
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 40) as f32 / 256.0) - 32.0
        };
        let a32 = Matrix::from_fn(m, k, |_, _| next());
        let b32 = Matrix::from_fn(k, n, |_, _| next());
        let a = quantize::<F16>(&a32);
        let b = quantize::<F16>(&b32);
        let c = lowfp_gemm(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0f64;
                let mut mag = 0f64;
                for h in 0..k {
                    let p = a[(i, h)].to_f32() as f64 * b[(h, j)].to_f32() as f64;
                    want += p;
                    mag += p.abs();
                }
                let bound = (k as f64) * 1.2e-7 * mag + 1e-30;
                prop_assert!(
                    (c[(i, j)] as f64 - want).abs() <= bound,
                    "({}, {}): got {} want {}", i, j, c[(i, j)], want
                );
            }
        }
    }

    #[test]
    fn bf16_quantize_bounded(xs in proptest::collection::vec(-1e20f32..1e20f32, 12)) {
        let m = Matrix::from_vec(3, 4, xs);
        let q = quantize::<BF16>(&m);
        for (orig, low) in m.iter().zip(q.iter()) {
            let err = (low.to_f32() - orig).abs();
            prop_assert!(err <= orig.abs() * 2f32.powi(-8) + f32::MIN_POSITIVE);
        }
    }
}
