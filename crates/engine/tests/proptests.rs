//! Property-based tests for the simulated matrix engines.

use gemm_dense::Matrix;
use gemm_engine::{
    barrett_mod_row_acc, barrett_mod_row_acc_scalar, barrett_mod_row_u8, barrett_mod_row_u8_scalar,
    int8_gemm, int8_gemm_fused, int8_gemm_naive, int8_gemm_rm_cm, int8_gemm_rm_cm_scalar,
    lowfp_gemm, mod_kernel_name, quantize, Int8Workspace, ReduceEpilogue,
};
use gemm_lowfp::{BF16, F16};
use proptest::prelude::*;

fn arb_i8_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<i8>> {
    proptest::collection::vec(any::<i8>(), rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            (s >> 33) as i64 as i8
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        prop_assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b));
    }

    #[test]
    fn arbitrary_values_match(a in arb_i8_matrix(5, 7), b in arb_i8_matrix(7, 4)) {
        prop_assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b));
    }

    /// The dispatched mod-reduce row kernels (the fused line-7 epilogues)
    /// are lane-exact against their scalar oracles over the full i32
    /// domain, for every pipeline modulus and awkward row lengths.
    #[test]
    fn mod_rows_lane_exact_vs_scalar(
        len in 1usize..70,
        p in 2u64..=256,
        seed in any::<u64>(),
    ) {
        let pinv = ((1u64 << 32) / p - 1) as u32;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            // Mix full-range values with near-multiples of p (the fix-up
            // boundaries).
            if s & 0b100 == 0 {
                ((s >> 32) as i32 / p as i32) * p as i32
            } else {
                (s >> 32) as i32
            }
        };
        let row: Vec<i32> = (0..len).map(|_| next()).collect();
        let mut got = vec![0u8; len];
        let mut want = vec![0u8; len];
        barrett_mod_row_u8(&row, &mut got, p as i32, pinv);
        barrett_mod_row_u8_scalar(&row, &mut want, p as i32, pinv);
        prop_assert_eq!(&got, &want, "u8 kernel={} p={}", mod_kernel_name(), p);
        let mut got_acc: Vec<i32> = (0..len as i32).collect();
        let mut want_acc = got_acc.clone();
        barrett_mod_row_acc(&row, &mut got_acc, p as i32, pinv);
        barrett_mod_row_acc_scalar(&row, &mut want_acc, p as i32, pinv);
        prop_assert_eq!(&got_acc, &want_acc, "acc kernel={} p={}", mod_kernel_name(), p);
    }

    #[test]
    fn awkward_shapes_cross_blocking_boundaries(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..40,
        m_bump in 0usize..2,
        k_bump in 0usize..2,
        seed in any::<u64>(),
    ) {
        // Mix small odd shapes with shapes straddling the MR/NR/PK/MC
        // boundaries (129, 1025, ...) so every ragged-edge path runs.
        let m = m + m_bump * 127;
        let k = k + k_bump * 1021;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            (s >> 33) as i64 as i8
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        prop_assert_eq!(int8_gemm(&a, &b), int8_gemm_naive(&a, &b), "{}x{}x{}", m, k, n);
    }

    #[test]
    fn extreme_inputs_deep_k_wrap_identically(
        k_extra in 0usize..700,
        seed in any::<u64>(),
    ) {
        // k > 2^17 with entries drawn from {-128, 127}: accumulators wrap
        // (products of 2^14 overflow i32 past k = 2^17); the packed/tiled
        // kernel must wrap bit-identically to the seed scalar kernel.
        let k = (1usize << 17) + k_extra;
        let (m, n) = (2usize, 2);
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if s >> 63 == 0 { -128i8 } else { 127i8 }
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next()).collect();
        let mut c_blocked = vec![0i32; m * n];
        let mut c_scalar = vec![0i32; m * n];
        int8_gemm_rm_cm(m, n, k, &a, &b, &mut c_blocked);
        int8_gemm_rm_cm_scalar(m, n, k, &a, &b, &mut c_scalar);
        prop_assert_eq!(c_blocked, c_scalar, "k={}", k);
    }

    #[test]
    fn fused_reduce_epilogue_matches_separate_pass(
        m in 1usize..24,
        k in 1usize..60,
        n in 1usize..24,
        p in 3u64..=256,
        seed in any::<u64>(),
    ) {
        let pinv = ((1u64 << 32) / p - 1) as u32;
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            (s >> 33) as i64 as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..k * n).map(|_| next()).collect();
        let mut c_plain = vec![0i32; m * n];
        int8_gemm_rm_cm(m, n, k, &a, &b, &mut c_plain);
        let mut c_fused = vec![0i32; m * n];
        let mut u = vec![0u8; m * n];
        let mut ws = Int8Workspace::new();
        let epi = ReduceEpilogue::new(p, pinv, None);
        int8_gemm_fused(m, n, k, &a, k, &b, k, &mut c_fused, &mut u, &epi, &mut ws, true);
        prop_assert_eq!(&c_fused, &c_plain);
        for (i, (&r, &x)) in u.iter().zip(&c_plain).enumerate() {
            prop_assert_eq!(r as i64, (x as i64).rem_euclid(p as i64), "elem {} p {}", i, p);
        }
    }

    #[test]
    fn linearity_in_scalar(a in arb_i8_matrix(4, 6), b in arb_i8_matrix(6, 3)) {
        // C(A, B) + C(A, B) == C(A, 2B) as long as 2B stays in range —
        // verify via i32 doubling instead to avoid range issues.
        let c = int8_gemm(&a, &b);
        let doubled = int8_gemm_naive(&a, &b).map(|x| x.wrapping_mul(2));
        let sum = c.map(|x| x.wrapping_mul(2));
        prop_assert_eq!(doubled, sum);
    }

    #[test]
    fn f16_engine_matches_f64_within_fp32_rounding(
        seed in any::<u64>(),
        m in 1usize..10,
        k in 1usize..32,
        n in 1usize..10,
    ) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            ((s >> 40) as f32 / 256.0) - 32.0
        };
        let a32 = Matrix::from_fn(m, k, |_, _| next());
        let b32 = Matrix::from_fn(k, n, |_, _| next());
        let a = quantize::<F16>(&a32);
        let b = quantize::<F16>(&b32);
        let c = lowfp_gemm(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut want = 0f64;
                let mut mag = 0f64;
                for h in 0..k {
                    let p = a[(i, h)].to_f32() as f64 * b[(h, j)].to_f32() as f64;
                    want += p;
                    mag += p.abs();
                }
                let bound = (k as f64) * 1.2e-7 * mag + 1e-30;
                prop_assert!(
                    (c[(i, j)] as f64 - want).abs() <= bound,
                    "({}, {}): got {} want {}", i, j, c[(i, j)], want
                );
            }
        }
    }

    #[test]
    fn bf16_quantize_bounded(xs in proptest::collection::vec(-1e20f32..1e20f32, 12)) {
        let m = Matrix::from_vec(3, 4, xs);
        let q = quantize::<BF16>(&m);
        for (orig, low) in m.iter().zip(q.iter()) {
            let err = (low.to_f32() - orig).abs();
            prop_assert!(err <= orig.abs() * 2f32.powi(-8) + f32::MIN_POSITIVE);
        }
    }
}

// ---------------------------------------------------------------------------
// ResidueBackend trait conformance: every backend vs the scalar exact oracle
// ---------------------------------------------------------------------------

mod backend_oracle {
    use super::*;
    use gemm_engine::{
        pack_panels_i16, padded_a_rows, padded_b_cols, padded_depth, BackendKind, FmaBf16Backend,
        Int8Backend, ResidueBackend,
    };

    /// `⌊2^32 / p⌋ - 1`, the Barrett reciprocal every engine consumes.
    fn pinv(p: u64) -> u32 {
        ((1u64 << 32) / p - 1) as u32
    }

    /// Scalar exact oracle: plain i64 dot products of the logical
    /// residues, reduced with `rem_euclid` — no blocking, no SIMD, no
    /// Barrett. Emitted in the engines' column-major plane layout. What
    /// every backend must reproduce bit-for-bit within its exactness
    /// envelope.
    fn oracle_u8(a: &Matrix<i8>, b: &Matrix<i8>, p: u64) -> Vec<u8> {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        let mut out = vec![0u8; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for h in 0..k {
                    acc += a[(i, h)] as i64 * b[(h, j)] as i64;
                }
                out[j * m + i] = acc.rem_euclid(p as i64) as u8;
            }
        }
        out
    }

    /// Pack a residue matrix pair into the shared panel layout and run
    /// one backend's `gemm_reduce`, returning the row-major u8 plane.
    fn run_backend(
        engine: &dyn ResidueBackend,
        a: &Matrix<i8>,
        b: &Matrix<i8>,
        p: u64,
        parallel: bool,
    ) -> Vec<u8> {
        let (m, k) = a.shape();
        let (_, n) = b.shape();
        let (m_pad, n_pad, kp) = (padded_a_rows(m), padded_b_cols(n), padded_depth(k));
        // Row-major A: row i is the i-th k-vector. Column-major B: the
        // packers both take vec-major sources, so transpose B's storage.
        let a_rm: Vec<i8> = (0..m)
            .flat_map(|i| (0..k).map(move |h| a[(i, h)]))
            .collect();
        let b_cm: Vec<i8> = (0..n)
            .flat_map(|j| (0..k).map(move |h| b[(h, j)]))
            .collect();
        let mut apack = Vec::new();
        let mut bpack = Vec::new();
        pack_panels_i16(&mut apack, &a_rm, k, m, m_pad, k, kp);
        pack_panels_i16(&mut bpack, &b_cm, k, n, n_pad, k, kp);
        let mut c32 = vec![0i32; m * n];
        let mut u = vec![0u8; m * n];
        engine.gemm_reduce(
            m,
            n,
            k,
            &apack,
            &bpack,
            kp,
            0,
            &mut c32,
            &mut u,
            p,
            pinv(p),
            None,
            parallel,
        );
        u
    }

    /// Residues bounded for one backend's envelope: the INT8 engine takes
    /// the full i8 range (pool moduli ≤ 256), the FMA engine's own pool
    /// keeps |r| ≤ 32 (moduli ≤ 64 stored symmetrically).
    fn arb_residues(rows: usize, cols: usize, bound: i8) -> impl Strategy<Value = Matrix<i8>> {
        proptest::collection::vec(-bound..=bound, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Both backends reproduce the scalar oracle bit-for-bit on the
        /// moduli their pools share with the test's residue envelope —
        /// and therefore agree with each other.
        #[test]
        fn every_backend_matches_the_scalar_oracle(
            a in arb_residues(5, 23, 31),
            b in arb_residues(23, 7, 31),
            pidx in 0usize..4,
            parallel in any::<bool>(),
        ) {
            // Moduli from both pools, all ≥ 2·31²·23 headroom-safe.
            let p = [64u64, 63, 61, 59][pidx];
            let want = oracle_u8(&a, &b, p);
            let int8 = run_backend(&Int8Backend, &a, &b, p, parallel);
            let fma = run_backend(&FmaBf16Backend, &a, &b, p, parallel);
            prop_assert_eq!(&int8, &want, "int8 vs oracle, p={}", p);
            prop_assert_eq!(&fma, &want, "fma-bf16 vs oracle, p={}", p);
        }

        /// The INT8 engine's full envelope (residues to ±127, moduli to
        /// 256) also pins to the oracle — beyond the FMA pool's range.
        #[test]
        fn int8_backend_full_envelope_matches_oracle(
            a in arb_residues(4, 40, 127),
            b in arb_residues(40, 6, 127),
            pidx in 0usize..3,
        ) {
            let p = [256u64, 255, 253][pidx];
            let want = oracle_u8(&a, &b, p);
            let got = run_backend(&Int8Backend, &a, &b, p, true);
            prop_assert_eq!(&got, &want, "p={}", p);
        }

        /// The FMA engine stays exact across its chunk boundary
        /// (FMA_CHUNK = 1024): a depth straddling it must still match.
        #[test]
        fn fma_backend_exact_across_chunk_boundary(
            seed in any::<u64>(),
            k_extra in 0usize..80,
        ) {
            let k = gemm_engine::FMA_CHUNK - 40 + k_extra;
            let mut s = seed | 1;
            let mut next = move |bound: i64| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as i64).rem_euclid(2 * bound + 1) - bound
            };
            let a = Matrix::from_fn(3, k, |_, _| next(31) as i8);
            let b = Matrix::from_fn(k, 3, |_, _| next(31) as i8);
            let p = 61u64;
            let want = oracle_u8(&a, &b, p);
            let got = run_backend(&FmaBf16Backend, &a, &b, p, false);
            prop_assert_eq!(&got, &want, "k={}", k);
        }
    }

    /// Capability metadata is consistent with what the conformance tests
    /// exercised.
    #[test]
    fn caps_reflect_the_envelopes() {
        assert_eq!(Int8Backend.kind(), BackendKind::Int8);
        assert_eq!(FmaBf16Backend.kind(), BackendKind::FmaBf16);
        assert!(Int8Backend.caps().max_modulus >= 256);
        assert!(FmaBf16Backend.caps().max_modulus >= 64);
    }
}
