//! Strided batch descriptors: the batched-BLAS input convention.
//!
//! A uniform-shape batch is one buffer holding `count` column-major
//! matrices of identical shape, matrix `i` starting at `i * stride`.
//! `stride = 0` broadcasts a single matrix to every item — the idiomatic
//! way to express a shared operand (and what lets the runtime prepare it
//! exactly once). Each matrix may additionally carry a leading dimension
//! `ld > rows` ([`StridedBatch::with_ld`]): items are then windows of a
//! larger parent allocation and are handed to the pipeline as borrowed
//! [`MatView`]s — never copied into owned matrices.

use gemm_dense::{MatF32, MatF64, MatView};

/// A strided batch of column-major matrices over a borrowed element slice.
#[derive(Clone, Copy, Debug)]
pub struct StridedBatch<'a, T> {
    data: &'a [T],
    rows: usize,
    cols: usize,
    /// Per-matrix leading dimension (`rows` for dense items).
    ld: usize,
    stride: usize,
    count: usize,
}

/// Strided batch of f64 matrices (DGEMM operands).
pub type StridedBatchF64<'a> = StridedBatch<'a, f64>;
/// Strided batch of f32 matrices (SGEMM operands).
pub type StridedBatchF32<'a> = StridedBatch<'a, f32>;

impl<'a, T> StridedBatch<'a, T> {
    /// Batch of `count` `rows x cols` column-major matrices, matrix `i`
    /// at `data[i * stride ..]`. `stride` must be `0` (broadcast one
    /// matrix to every item) or at least `rows * cols`.
    ///
    /// # Panics
    /// If a nonzero stride is below the matrix footprint or `data` cannot
    /// hold `count` matrices.
    pub fn new(data: &'a [T], rows: usize, cols: usize, stride: usize, count: usize) -> Self {
        Self::with_ld(data, rows, cols, rows, stride, count)
    }

    /// [`StridedBatch::new`] with an explicit per-matrix leading
    /// dimension: element `(i, j)` of item `t` lives at
    /// `data[t * stride + i + j * ld]`. Items with `ld > rows` (windows
    /// of a parent buffer) run through the pipeline as zero-copy strided
    /// views.
    ///
    /// # Panics
    /// If `ld < rows`, a nonzero stride is below the item footprint, or
    /// `data` cannot hold `count` items.
    pub fn with_ld(
        data: &'a [T],
        rows: usize,
        cols: usize,
        ld: usize,
        stride: usize,
        count: usize,
    ) -> Self {
        assert!(ld >= rows, "leading dimension {ld} below rows {rows}");
        let footprint = if rows == 0 || cols == 0 {
            0
        } else {
            (cols - 1) * ld + rows
        };
        assert!(
            stride == 0 || stride >= footprint,
            "stride {stride} below matrix footprint {footprint}"
        );
        if count > 0 {
            let need = (count - 1) * stride + footprint;
            assert!(
                data.len() >= need,
                "batch data too short: {} < {need}",
                data.len()
            );
        }
        Self {
            data,
            rows,
            cols,
            ld,
            stride,
            count,
        }
    }

    /// Contiguous batch: matrices packed back to back
    /// (`stride = rows * cols`).
    pub fn packed(data: &'a [T], rows: usize, cols: usize, count: usize) -> Self {
        Self::new(data, rows, cols, rows * cols, count)
    }

    /// Matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Per-matrix leading dimension (`rows` unless built with
    /// [`StridedBatch::with_ld`]).
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element stride between consecutive matrices (`0` = broadcast).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of items in the batch.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether every item reads the same matrix.
    pub fn is_broadcast(&self) -> bool {
        self.stride == 0
    }

    /// Whether items are dense column-major blocks (`ld == rows`).
    pub fn is_contiguous(&self) -> bool {
        self.ld == self.rows || self.cols <= 1
    }

    /// Column-major element slice of item `i`.
    ///
    /// # Panics
    /// If `i` is out of range or the items carry a leading dimension
    /// (`ld > rows`) — use [`StridedBatch::view`] for those.
    pub fn item(&self, i: usize) -> &'a [T] {
        assert!(i < self.count, "item {i} out of {}", self.count);
        assert!(
            self.is_contiguous(),
            "item() on an ld-strided batch; use view()"
        );
        &self.data[i * self.stride..i * self.stride + self.rows * self.cols]
    }
}

impl<'a, T: Copy> StridedBatch<'a, T> {
    /// Borrowed strided view of item `i` — the canonical, copy-free item
    /// accessor (works for dense and `ld`-strided batches alike).
    pub fn view(&self, i: usize) -> MatView<'a, T> {
        assert!(i < self.count, "item {i} out of {}", self.count);
        MatView::new(
            &self.data[i * self.stride..],
            self.rows,
            self.cols,
            self.ld.max(1),
            gemm_dense::Layout::ColMajor,
        )
    }
}

impl<'a> StridedBatchF64<'a> {
    /// Broadcast one matrix to every item of a `count`-item batch
    /// (`stride = 0`): the shared-operand form the runtime caches.
    pub fn broadcast(m: &'a MatF64, count: usize) -> Self {
        Self::new(m.as_slice(), m.rows(), m.cols(), 0, count)
    }
}

impl<'a> StridedBatchF32<'a> {
    /// Broadcast one f32 matrix to every item (`stride = 0`).
    pub fn broadcast(m: &'a MatF32, count: usize) -> Self {
        Self::new(m.as_slice(), m.rows(), m.cols(), 0, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_items_tile_the_buffer() {
        let data: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let b = StridedBatchF64::packed(&data, 2, 3, 4);
        assert_eq!(b.item(0), &data[0..6]);
        assert_eq!(b.item(3), &data[18..24]);
        assert!(!b.is_broadcast());
    }

    #[test]
    fn broadcast_repeats_one_matrix() {
        let m = MatF64::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        let b = StridedBatchF64::broadcast(&m, 5);
        assert_eq!(b.count(), 5);
        assert!(b.is_broadcast());
        assert_eq!(b.item(0), b.item(4));
        assert_eq!(b.item(2), m.as_slice());
    }

    #[test]
    fn padded_stride_skips_gaps() {
        let data = vec![0f64; 3 * 10 + 6];
        let b = StridedBatchF64::new(&data, 2, 3, 10, 4);
        assert_eq!(b.item(1).len(), 6);
        assert_eq!(b.item(3).as_ptr(), data[30..].as_ptr());
    }

    #[test]
    fn ld_strided_items_are_views() {
        // 3 items, each a 2x3 window with ld 4 inside its own block.
        let (ld, stride) = (4usize, 4 * 3);
        let data: Vec<f64> = (0..stride * 3).map(|i| i as f64).collect();
        let b = StridedBatchF64::with_ld(&data, 2, 3, ld, stride, 3);
        assert!(!b.is_contiguous());
        assert_eq!(b.ld(), 4);
        let v = b.view(1);
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.get(1, 2), (stride + 1 + 2 * ld) as f64);
        assert!(v.as_col_major_slice().is_none());
        // Dense batches expose contiguous views.
        let dense = StridedBatchF64::packed(&data, 2, 3, 2);
        assert!(dense.view(1).as_col_major_slice().is_some());
    }

    #[test]
    #[should_panic(expected = "use view()")]
    fn item_rejects_ld_strided() {
        let data = vec![0f64; 64];
        let b = StridedBatchF64::with_ld(&data, 2, 3, 4, 16, 2);
        let _ = b.item(0);
    }

    #[test]
    #[should_panic(expected = "below rows")]
    fn rejects_undersized_ld() {
        let data = vec![0f64; 64];
        let _ = StridedBatchF64::with_ld(&data, 4, 3, 3, 16, 2);
    }

    #[test]
    #[should_panic(expected = "batch data too short")]
    fn rejects_short_buffers() {
        let data = vec![0f64; 11];
        let _ = StridedBatchF64::packed(&data, 2, 3, 2);
    }

    #[test]
    #[should_panic(expected = "below matrix footprint")]
    fn rejects_undersized_stride() {
        let data = vec![0f64; 100];
        let _ = StridedBatchF64::new(&data, 4, 4, 10, 2);
    }
}
