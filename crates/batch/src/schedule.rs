//! The many-GEMM scheduler: inter-item vs intra-item parallelism.
//!
//! A large emulated GEMM saturates the machine from inside one call — the
//! INT8 engine splits `C` into per-worker column stripes and every core
//! streams packed panels at full tilt. A *small* GEMM cannot: its handful
//! of column panels splinters into stripes too thin to amortize the
//! fork/join, and most of the wall clock is latency, not compute. Batched
//! workloads dominated by small items are therefore better served by the
//! opposite assignment — one whole item per worker, engine stripes
//! disabled — which is exactly what batched BLAS implementations do.
//!
//! The crossover is picked from the plan-level arithmetic intensity
//! ([`ozaki2::arithmetic_intensity`], INT8 ops per byte of engine-phase
//! traffic): intensity grows linearly with the problem scale, so it is a
//! clean one-number proxy for "does one item have enough arithmetic to
//! feed every core". Items below [`INTENSITY_CROSSOVER`] run inter-item,
//! the rest intra-item. Either schedule produces **bit-identical** results
//! — stripe splits never change the accumulation order of any output
//! element, and workers own disjoint items — so the choice is purely a
//! throughput knob.

use ozaki2::arithmetic_intensity;

/// Intensity (INT8 ops / byte) above which one item saturates the engine
/// with intra-GEMM stripes. At `N = 15` a cube crosses this near
/// `m = n = k ≈ 150`; the service-sized `64³` sits at ~13 ops/byte (runs
/// inter-item), the compute-bound `256³` at ~54 (runs intra-item).
pub const INTENSITY_CROSSOVER: f64 = 32.0;

/// How a batched call distributes its items over workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// One rayon task per item, engine stripes disabled: small items.
    InterItem,
    /// Items run one after another, each striped across workers inside
    /// the engine: large items.
    IntraItem,
}

impl Schedule {
    /// Choose the schedule for `item_count` products of shape
    /// `m x k · k x n` at `n_moduli`, given `workers` available threads.
    pub fn choose_with(
        m: usize,
        n: usize,
        k: usize,
        n_moduli: usize,
        item_count: usize,
        workers: usize,
    ) -> Schedule {
        if item_count < 2 || workers < 2 {
            // Nothing to spread (or no one to spread it over): stripe
            // within the single item / run plainly on the single worker.
            return Schedule::IntraItem;
        }
        if arithmetic_intensity(m, n, k, n_moduli) < INTENSITY_CROSSOVER {
            Schedule::InterItem
        } else {
            Schedule::IntraItem
        }
    }

    /// [`Schedule::choose_with`] on the current rayon worker count.
    pub fn choose(m: usize, n: usize, k: usize, n_moduli: usize, item_count: usize) -> Schedule {
        Self::choose_with(m, n, k, n_moduli, item_count, rayon::current_num_threads())
    }

    /// Whether per-item executions should enable the engine's internal
    /// stripe parallelism.
    pub fn intra_parallel(self) -> bool {
        matches!(self, Schedule::IntraItem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_separates_bench_shapes() {
        // The two shapes the batched benchmark records sit on opposite
        // sides of the crossover.
        assert_eq!(
            Schedule::choose_with(64, 64, 64, 15, 256, 8),
            Schedule::InterItem
        );
        assert_eq!(
            Schedule::choose_with(256, 256, 256, 15, 16, 8),
            Schedule::IntraItem
        );
    }

    #[test]
    fn degenerate_batches_run_intra() {
        assert_eq!(
            Schedule::choose_with(64, 64, 64, 15, 1, 8),
            Schedule::IntraItem
        );
        assert_eq!(
            Schedule::choose_with(64, 64, 64, 15, 64, 1),
            Schedule::IntraItem
        );
        // Empty shapes have zero intensity → inter (and no work anyway).
        assert_eq!(
            Schedule::choose_with(0, 64, 64, 15, 4, 8),
            Schedule::InterItem
        );
    }

    #[test]
    fn intensity_is_monotone_in_scale() {
        let mut last = 0.0;
        for s in [16usize, 64, 256, 1024] {
            let i = arithmetic_intensity(s, s, s, 15);
            assert!(i > last, "intensity must grow with scale");
            last = i;
        }
    }
}
