//! A checkout pool of pipeline [`Workspace`]s.
//!
//! Each concurrently executing batch item needs its own scratch (packed
//! panels for raw operands, residue planes, the INT32 product plane).
//! Allocating a fresh [`Workspace`] per item would put multi-megabyte
//! allocations on the hot path; the pool instead keeps returned
//! workspaces alive — each already grown to its high-water mark — and
//! hands them back out on the next checkout. In steady state a batched
//! call performs **zero** workspace allocations: the pool holds one
//! grown workspace per peak-concurrent item.
//!
//! The free list is **sharded by pool-worker index**: a checkout from
//! worker `w` tries shard `w % SHARDS` first and returns the workspace
//! there, so under inter-item parallelism each worker keeps re-borrowing
//! "its" grown workspace without contending on a single lock (and with
//! the side benefit that a workspace's pages stay warm on the core that
//! grew them). External threads use the last shard. A worker whose home
//! shard is empty falls back to scanning the others before allocating,
//! so the pool never creates a workspace while any shard holds a parked
//! one.

use ozaki2::Workspace;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Free-list shard count. A power of two comfortably above the worker
/// counts we test (`OZAKI_WORKERS <= 8` in CI); worker `w` homes to
/// `w % SHARDS`, external threads to the last shard.
const SHARDS: usize = 16;

/// Pool of reusable pipeline workspaces (see the module docs).
///
/// The pool is panic-hardened: a guard dropped during unwinding scrubs
/// its workspace before returning it (a panic mid-pipeline can leave
/// half-written panels behind), and a mutex poisoned by a panicking
/// holder is recovered rather than propagated — each free list is always
/// structurally valid, so later checkouts keep working.
///
/// # Examples
/// ```
/// use gemm_batch::WorkspacePool;
///
/// let pool = WorkspacePool::new();
/// {
///     let _ws = pool.checkout(); // fresh workspace created
/// } // returned on drop
/// let _ws2 = pool.checkout(); // the same workspace, reused
/// assert_eq!(pool.created(), 1);
/// ```
pub struct WorkspacePool {
    shards: [Mutex<Vec<Workspace>>; SHARDS],
    created: AtomicUsize,
}

impl Default for WorkspacePool {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            created: AtomicUsize::new(0),
        }
    }
}

/// Home shard of the calling thread: pool workers map to `w % SHARDS`,
/// external threads (including the batch submitter itself) share the
/// last shard.
fn home_shard() -> usize {
    rayon::current_worker_index()
        .map(|w| w % SHARDS)
        .unwrap_or(SHARDS - 1)
}

impl WorkspacePool {
    /// Empty pool; workspaces are created on demand at checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// One shard's free list, recovering from lock poisoning: the
    /// protected `Vec<Workspace>` is never left mid-mutation by pool code
    /// (push / pop / iterate are the only operations), so a poisoned lock
    /// only means some *holder* of a checked-out workspace panicked — the
    /// guard's drop has already scrubbed that workspace.
    fn shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Vec<Workspace>> {
        self.shards[idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Check out a workspace (reusing a returned one when available).
    /// The guard returns it to the pool on drop.
    pub fn checkout(&self) -> PooledWorkspace<'_> {
        gemm_obs::catalog::WORKSPACE_CHECKOUTS.inc();
        let home = home_shard();
        let mut ws = self.shard(home).pop();
        if ws.is_none() {
            // Home shard dry: adopt from any other shard before paying
            // for a fresh multi-megabyte workspace.
            for off in 1..SHARDS {
                ws = self.shard((home + off) % SHARDS).pop();
                if ws.is_some() {
                    break;
                }
            }
        }
        let ws = ws.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            gemm_obs::catalog::WORKSPACE_CREATED.inc();
            Workspace::new()
        });
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Total workspaces ever created — the peak checkout concurrency the
    /// pool has seen. Flat across steady-state iterations.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Workspaces currently parked in the pool (all shards).
    pub fn available(&self) -> usize {
        (0..SHARDS).map(|i| self.shard(i).len()).sum()
    }

    /// Summed scratch footprint of the parked workspaces in bytes.
    /// Stable across steady-state iterations (grow-once, reuse forever).
    pub fn bytes(&self) -> usize {
        (0..SHARDS)
            .map(|i| self.shard(i).iter().map(Workspace::bytes).sum::<usize>())
            .sum()
    }
}

/// Checkout guard: derefs to [`Workspace`], returns it to the pool on
/// drop.
pub struct PooledWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<Workspace>,
}

impl Deref for PooledWorkspace<'_> {
    type Target = Workspace;
    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(mut ws) = self.ws.take() {
            // A panic mid-pipeline can leave half-written panels or
            // residue planes behind; the buffers stay correctly sized,
            // but scrub them so the next borrower starts from zeroed
            // scratch rather than another item's torn state.
            if std::thread::panicking() {
                ws.scrub();
            }
            // Return to the dropping thread's home shard: under
            // inter-item parallelism that is the worker that just used
            // it, which will re-borrow it for its next item.
            self.pool.shard(home_shard()).push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_workspaces() {
        let pool = WorkspacePool::new();
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.created(), 2);
            assert_eq!(pool.available(), 0);
        }
        assert_eq!(pool.available(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.created(), 2, "reuse, not create");
            assert_eq!(pool.available(), 1);
        }
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pooled_workspace_keeps_its_growth() {
        use gemm_dense::workload::phi_matrix_f64;
        use ozaki2::{Mode, Ozaki2};
        let pool = WorkspacePool::new();
        let emu = Ozaki2::new(10, Mode::Fast);
        let a = phi_matrix_f64(16, 24, 0.5, 1, 0);
        let b = phi_matrix_f64(24, 12, 0.5, 1, 1);
        {
            let mut ws = pool.checkout();
            let _ = emu.dgemm_ws(&a, &b, &mut ws);
        }
        let grown = pool.bytes();
        assert!(grown > 0, "workspace growth must survive the return");
        // Steady state: same shape, no further growth, no new workspaces.
        for _ in 0..3 {
            let mut ws = pool.checkout();
            let _ = emu.dgemm_ws(&a, &b, &mut ws);
            drop(ws);
            assert_eq!(pool.bytes(), grown, "no realloc in steady state");
            assert_eq!(pool.created(), 1);
        }
    }

    #[test]
    fn cross_shard_adoption_beats_allocation() {
        use rayon::prelude::*;
        // Workspaces parked in pool-worker home shards must be found by
        // checkouts from other threads instead of allocating anew.
        rayon::set_num_threads(4);
        let pool = WorkspacePool::new();
        let jobs: Vec<usize> = (0..8).collect();
        jobs.into_par_iter().for_each(|_| {
            let _ws = pool.checkout();
            std::thread::yield_now();
        });
        let created = pool.created();
        assert!(created >= 1);
        assert_eq!(pool.available(), created, "all returned");
        // The external submitter homes to the last shard; adopting from
        // the worker shards must cover every checkout without allocating.
        let guards: Vec<_> = (0..created).map(|_| pool.checkout()).collect();
        assert_eq!(pool.created(), created, "adopt, never allocate");
        drop(guards);
        rayon::set_num_threads(0);
    }
}
