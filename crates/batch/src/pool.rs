//! A checkout pool of pipeline [`Workspace`]s.
//!
//! Each concurrently executing batch item needs its own scratch (packed
//! panels for raw operands, residue planes, the INT32 product plane).
//! Allocating a fresh [`Workspace`] per item would put multi-megabyte
//! allocations on the hot path; the pool instead keeps returned
//! workspaces alive — each already grown to its high-water mark — and
//! hands them back out on the next checkout. In steady state a batched
//! call performs **zero** workspace allocations: the pool holds one
//! grown workspace per peak-concurrent item.

use ozaki2::Workspace;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pool of reusable pipeline workspaces (see the module docs).
///
/// The pool is panic-hardened: a guard dropped during unwinding scrubs
/// its workspace before returning it (a panic mid-pipeline can leave
/// half-written panels behind), and a mutex poisoned by a panicking
/// holder is recovered rather than propagated — the free list is always
/// structurally valid, so later checkouts keep working.
///
/// # Examples
/// ```
/// use gemm_batch::WorkspacePool;
///
/// let pool = WorkspacePool::new();
/// {
///     let _ws = pool.checkout(); // fresh workspace created
/// } // returned on drop
/// let _ws2 = pool.checkout(); // the same workspace, reused
/// assert_eq!(pool.created(), 1);
/// ```
#[derive(Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<Workspace>>,
    created: AtomicUsize,
}

impl WorkspacePool {
    /// Empty pool; workspaces are created on demand at checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// The free list, recovering from lock poisoning: the protected
    /// `Vec<Workspace>` is never left mid-mutation by pool code (push /
    /// pop / iterate are the only operations), so a poisoned lock only
    /// means some *holder* of a checked-out workspace panicked — the
    /// guard's drop has already scrubbed that workspace.
    fn free_list(&self) -> std::sync::MutexGuard<'_, Vec<Workspace>> {
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Check out a workspace (reusing a returned one when available).
    /// The guard returns it to the pool on drop.
    pub fn checkout(&self) -> PooledWorkspace<'_> {
        let ws = self.free_list().pop();
        let ws = ws.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Workspace::new()
        });
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Total workspaces ever created — the peak checkout concurrency the
    /// pool has seen. Flat across steady-state iterations.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Workspaces currently parked in the pool.
    pub fn available(&self) -> usize {
        self.free_list().len()
    }

    /// Summed scratch footprint of the parked workspaces in bytes.
    /// Stable across steady-state iterations (grow-once, reuse forever).
    pub fn bytes(&self) -> usize {
        self.free_list().iter().map(Workspace::bytes).sum()
    }
}

/// Checkout guard: derefs to [`Workspace`], returns it to the pool on
/// drop.
pub struct PooledWorkspace<'p> {
    pool: &'p WorkspacePool,
    ws: Option<Workspace>,
}

impl Deref for PooledWorkspace<'_> {
    type Target = Workspace;
    fn deref(&self) -> &Workspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut Workspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(mut ws) = self.ws.take() {
            // A panic mid-pipeline can leave half-written panels or
            // residue planes behind; the buffers stay correctly sized,
            // but scrub them so the next borrower starts from zeroed
            // scratch rather than another item's torn state.
            if std::thread::panicking() {
                ws.scrub();
            }
            self.pool.free_list().push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_workspaces() {
        let pool = WorkspacePool::new();
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.created(), 2);
            assert_eq!(pool.available(), 0);
        }
        assert_eq!(pool.available(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.created(), 2, "reuse, not create");
            assert_eq!(pool.available(), 1);
        }
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn pooled_workspace_keeps_its_growth() {
        use gemm_dense::workload::phi_matrix_f64;
        use ozaki2::{Mode, Ozaki2};
        let pool = WorkspacePool::new();
        let emu = Ozaki2::new(10, Mode::Fast);
        let a = phi_matrix_f64(16, 24, 0.5, 1, 0);
        let b = phi_matrix_f64(24, 12, 0.5, 1, 1);
        {
            let mut ws = pool.checkout();
            let _ = emu.dgemm_ws(&a, &b, &mut ws);
        }
        let grown = pool.bytes();
        assert!(grown > 0, "workspace growth must survive the return");
        // Steady state: same shape, no further growth, no new workspaces.
        for _ in 0..3 {
            let mut ws = pool.checkout();
            let _ = emu.dgemm_ws(&a, &b, &mut ws);
            drop(ws);
            assert_eq!(pool.bytes(), grown, "no realloc in steady state");
            assert_eq!(pool.created(), 1);
        }
    }
}
